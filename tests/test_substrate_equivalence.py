"""Equivalence property tests for the batched replay engines.

The performance substrate has three interchangeable engines (see
:mod:`repro.machine.measure`): the reference per-access ``LRUCache``
loop, the pure-Python ``BatchLRU`` segment replay, and the compiled
``NativeLRU`` kernel.  Every measured number in the figures flows
through one of them, so the optimization contract is *byte-identical*
``CacheStats`` on any access sequence -- which hypothesis asserts here,
on random streams, random segment batches, and full randomized tiling
plans, alongside the stream-memoization invariants.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.plan import TilingPlan
from repro.machine import (
    BatchLRU,
    BatchStreamEmitter,
    LRUCache,
    StreamEmitter,
    measure_sweep_code_balance,
    measure_tiled_code_balance,
)
from repro.machine.measure import _interleave_band
from repro.machine.native import MAX_KEY_SPACE, NativeLRU, native_available
from repro.machine.spec import HASWELL_EP

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: Chunk size as a function of key -- constant per chunk kind, like the
#: real emitters (one size per array group).
def _size_of(key: int) -> int:
    return 64 * (1 + key % 3)


def _stats_tuple(cache):
    s = cache.stats
    return (
        s.read_hits,
        s.read_misses,
        s.write_hits,
        s.write_misses,
        s.writebacks,
        s.mem_read_bytes,
        s.mem_write_bytes,
    )


def _lru_keys(cache):
    """Resident keys in LRU -> MRU order, any engine."""
    if isinstance(cache, (LRUCache, BatchLRU)):
        return list(cache._entries)
    return cache.keys_lru_to_mru()


def _fast_engines(capacity: float, key_space: int):
    engines = [BatchLRU(capacity)]
    if native_available() and key_space <= MAX_KEY_SPACE:
        engines.append(NativeLRU(capacity, key_space))
    return engines


def _assert_same_state(cache, oracle):
    assert _stats_tuple(cache) == _stats_tuple(oracle), type(cache).__name__
    assert cache.used_bytes == oracle.used_bytes
    assert len(cache) == len(oracle)
    assert _lru_keys(cache) == _lru_keys(oracle)


# ---------------------------------------------------------------------------
# Random access streams
# ---------------------------------------------------------------------------


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 40), st.booleans()), min_size=1, max_size=300
    ),
    capacity_chunks=st.integers(min_value=1, max_value=30),
    epoch_at=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=60, **COMMON)
def test_engines_match_reference_on_random_streams(
    accesses, capacity_chunks, epoch_at
):
    """Per-access replay through every engine produces byte-identical
    CacheStats, occupancy and recency order -- across a reset_stats epoch
    and a final flush, exactly as the measurement campaigns use them."""
    capacity = capacity_chunks * 64
    oracle = LRUCache(capacity)
    engines = _fast_engines(capacity, key_space=41)

    def run(cache):
        for i, (key, write) in enumerate(accesses):
            if i == epoch_at:
                cache.reset_stats()
            cache.access(key, _size_of(key), write)

    run(oracle)
    for cache in engines:
        run(cache)
        _assert_same_state(cache, oracle)

    oracle.flush()
    for cache in engines:
        cache.flush()
        _assert_same_state(cache, oracle)


@given(
    segs=st.lists(
        st.tuples(
            st.integers(0, 3),  # prebase plane
            st.booleans(),
            st.lists(st.integers(0, 15), min_size=1, max_size=20),
        ),
        min_size=1,
        max_size=30,
    ),
    base=st.integers(0, 4),
    capacity_chunks=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=60, **COMMON)
def test_segment_replay_matches_per_access(segs, base, capacity_chunks):
    """``replay(segments, base)`` is access-for-access identical to the
    reference loop over ``prebase + base + rel`` keys."""
    capacity = capacity_chunks * 64
    segments = [
        (plane * 16, _size_of(plane), write, rel) for plane, write, rel in segs
    ]
    oracle = LRUCache(capacity)
    for prebase, size, write, rel in segments:
        for r in rel:
            oracle.access(prebase + base + r, size, write)

    for cache in _fast_engines(capacity, key_space=4 * 16 + 4 + 16):
        n = cache.replay(cache.prepare(segments), base=base)
        assert n == sum(len(r) for _, _, _, r in segments)
        _assert_same_state(cache, oracle)


@given(
    table=st.lists(
        st.tuples(
            st.integers(0, 3),
            st.booleans(),
            st.lists(st.integers(0, 15), min_size=1, max_size=12),
        ),
        min_size=1,
        max_size=8,
    ),
    jobs=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=20),
    capacity_chunks=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=60, **COMMON)
def test_job_table_replay_matches_per_job(table, jobs, capacity_chunks):
    """The shared-segment-table job batch (`replay_jobs`, one kernel call
    for many jobs) equals replaying each job's table range one by one."""
    if not native_available():
        pytest.skip("native kernel unavailable")
    capacity = capacity_chunks * 64
    segments = [
        (plane * 16, _size_of(plane), write, rel) for plane, write, rel in table
    ]
    n_seg = len(segments)
    # Each job covers a random contiguous range of the table at a base.
    job_ranges = []
    for a, b in jobs:
        lo, hi = sorted((a % (n_seg + 1), b % (n_seg + 1)))
        job_ranges.append((lo, hi))
    bases = [(a * 7 + b) % 16 for a, b in jobs]

    oracle = LRUCache(capacity)
    for (lo, hi), base in zip(job_ranges, bases):
        for prebase, size, write, rel in segments[lo:hi]:
            for r in rel:
                oracle.access(prebase + base + r, size, write)

    native = NativeLRU(capacity, key_space=4 * 16 + 16 + 16)
    native.table_add(segments)
    native.replay_jobs(
        [lo for lo, _ in job_ranges], [hi for _, hi in job_ranges], bases
    )
    _assert_same_state(native, oracle)


# ---------------------------------------------------------------------------
# Full schedules: randomized tiling plans through the real emitters
# ---------------------------------------------------------------------------


def _random_plan(draw_dw, draw_k, draw_nz, draw_bz, draw_steps):
    ny = draw_dw * draw_k
    return TilingPlan.build(
        ny=ny, nz=draw_nz, timesteps=draw_steps, dw=draw_dw, bz=draw_bz
    )


@given(
    dw=st.sampled_from((2, 4, 6)),
    k=st.integers(min_value=1, max_value=3),
    nz=st.integers(min_value=2, max_value=12),
    bz=st.integers(min_value=1, max_value=4),
    steps=st.integers(min_value=1, max_value=6),
    capacity_rows=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=25, **COMMON)
def test_tiled_plan_streams_identical_across_engines(
    dw, k, nz, bz, steps, capacity_rows
):
    """Every band of a randomized TilingPlan replayed through the batched
    emitters yields the same CacheStats and LUP count as the reference
    per-access emitter -- memoization, tile-congruence caching and the
    native job batch included."""
    plan = _random_plan(dw, k, nz, bz, steps)
    nx = 5
    capacity = capacity_rows * 16 * nx  # a few rows' worth

    ref_cache = LRUCache(capacity)
    ref = StreamEmitter(ref_cache, ny=plan.ny, nz=plan.nz, nx=nx)
    for band in plan.bands:
        ref.emit_jobs(_interleave_band(plan, band))

    key_space = BatchStreamEmitter.key_space(plan.ny, plan.nz)
    for cache in _fast_engines(capacity, key_space):
        em = BatchStreamEmitter(cache, ny=plan.ny, nz=plan.nz, nx=nx)
        for band in plan.bands:
            em.emit_tiles_interleaved(plan.band_tiles(band), plan.bz)
        assert _stats_tuple(cache) == _stats_tuple(ref_cache), type(cache).__name__
        assert em.cells == ref.cells
        assert em.lups == ref.lups


@given(
    dw=st.sampled_from((2, 4)),
    k=st.integers(min_value=1, max_value=3),
    nz=st.integers(min_value=2, max_value=10),
    bz=st.integers(min_value=1, max_value=3),
    steps=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, **COMMON)
def test_memoized_streams_equal_freshly_generated(dw, k, nz, bz, steps):
    """For every job of every tile of a randomized plan, the memoized
    packed stream handed to the replay engine equals the one freshly
    generated from the job -- memo hits can never alter the stream."""
    plan = _random_plan(dw, k, nz, bz, steps)
    em = BatchStreamEmitter(BatchLRU(1 << 20), ny=plan.ny, nz=plan.nz, nx=4)
    for band in plan.bands:
        for job in _interleave_band(plan, band):
            memoized, n = em.segments_for(job)  # memo hit after 1st congruent job
            fresh = tuple(em.raw_segments_for(job))
            assert memoized == fresh
            assert n == sum(len(s[3]) for s in fresh)
            em.emit_job(job)


# ---------------------------------------------------------------------------
# Measurement campaigns on paper-like configurations
# ---------------------------------------------------------------------------

FIG_TILED_CONFIGS = [
    # (nx, dw, bz, n_streams) -- Fig. 5/6-style MWD points.
    (384, 8, 4, 5),
    (384, 16, 2, 3),
    (960, 4, 6, 10),
    (384, 4, 1, 18),  # 1WD-style: one tile stream per thread
]

FIG_SWEEP_CONFIGS = [
    # (nx, ny, block_y, threads)
    (384, 400, None, 1),
    (384, 400, 16, 4),
]


@pytest.mark.parametrize("nx,dw,bz,n_streams", FIG_TILED_CONFIGS)
def test_measure_tiled_engines_agree(nx, dw, bz, n_streams):
    ref = measure_tiled_code_balance(
        HASWELL_EP, nx=nx, dw=dw, bz=bz, n_streams=n_streams, engine="reference"
    )
    for eng in ("batch", "native"):
        got = measure_tiled_code_balance(
            HASWELL_EP, nx=nx, dw=dw, bz=bz, n_streams=n_streams, engine=eng
        )
        assert got == ref, eng


@pytest.mark.parametrize("nx,ny,block_y,threads", FIG_SWEEP_CONFIGS)
def test_measure_sweep_engines_agree(nx, ny, block_y, threads):
    ref = measure_sweep_code_balance(
        HASWELL_EP, nx=nx, ny=ny, block_y=block_y, threads=threads, engine="reference"
    )
    for eng in ("batch", "native"):
        got = measure_sweep_code_balance(
            HASWELL_EP, nx=nx, ny=ny, block_y=block_y, threads=threads, engine=eng
        )
        assert got == ref, eng
