"""Tests for the temporally blocked solver driver and the I/O module."""

import os

import numpy as np
import pytest

from repro.core.tiled_solver import TiledTHIIM
from repro.fdfd import (
    A_SI_H,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    Scene,
    THIIMSolver,
    build_coefficients,
    random_coefficients,
)
from repro.io import (
    cross_section,
    export_vtk,
    load_coefficients,
    load_state,
    save_coefficients,
    save_state,
)

from conftest import random_state


def make_solver(tiled_ok=True):
    grid = Grid(nz=40, ny=10, nx=8)
    omega = 2 * np.pi / 10.0
    scene = Scene().add_layer(A_SI_H, 20, 32)
    return THIIMSolver(
        grid, omega, scene=scene,
        source=PlaneWaveSource(z_plane=10, z_width=2.0),
        pml={"z": PMLSpec(thickness=6)},
    )


class TestTiledTHIIM:
    def test_run_matches_naive_driver(self):
        a = make_solver()
        b = make_solver()
        a.run(16)
        tiled = TiledTHIIM(b, dw=4, bz=2, chunk=16)
        tiled.run(16)
        assert a.fields.max_abs_difference(b.fields) == 0.0
        assert tiled.steps_done == 16
        assert tiled.lups_done > 0 and tiled.jobs_done > 0

    def test_run_rounds_up_to_chunks(self):
        solver = make_solver()
        tiled = TiledTHIIM(solver, dw=4, chunk=4)
        tiled.run(6)  # 2 chunks
        assert tiled.steps_done == 8

    def test_solve_converges_like_naive(self):
        a = make_solver()
        ra = a.solve(tol=1e-4, max_steps=2000, check_every=50)
        b = make_solver()
        tiled = TiledTHIIM(b, dw=4, bz=2, chunk=50)
        rb = tiled.solve(tol=1e-4, max_steps=2000)
        assert ra.converged and rb.converged
        # Both end at the same fixed point (same physics).
        assert a.fields.max_abs_difference(b.fields) < 1e-4 * max(a.fields.norm(), 1)

    def test_default_chunk_is_diamond_height(self):
        solver = make_solver()
        tiled = TiledTHIIM(solver, dw=6)
        assert tiled.chunk == 6

    def test_periodic_grid_rejected(self):
        grid = Grid(nz=16, ny=8, nx=8, periodic=(False, True, False))
        solver = THIIMSolver(grid, 0.5)
        with pytest.raises(ValueError):
            TiledTHIIM(solver, dw=4)

    def test_invalid_args(self):
        solver = make_solver()
        with pytest.raises(ValueError):
            TiledTHIIM(solver, dw=4, chunk=0)
        tiled = TiledTHIIM(solver, dw=4)
        with pytest.raises(ValueError):
            tiled.run(-1)
        with pytest.raises(ValueError):
            tiled.solve(tol=0)

    def test_describe(self):
        tiled = TiledTHIIM(make_solver(), dw=4)
        assert "TiledTHIIM" in tiled.describe()


class TestStateIO:
    def test_roundtrip_state(self, tmp_path, rng):
        grid = Grid(nz=6, ny=5, nx=4, dz=0.5, periodic=(False, True, False))
        fields = random_state(grid, seed=3)
        path = save_state(fields, str(tmp_path / "ckpt.npz"))
        restored = load_state(path)
        assert restored.grid == grid
        assert fields.max_abs_difference(restored) == 0.0

    def test_roundtrip_coefficients(self, tmp_path):
        grid = Grid(nz=8, ny=5, nx=4)
        eps = np.ones(grid.shape)
        eps[4:] = -9.0
        coeffs = build_coefficients(grid, omega=0.7, tau=0.2, eps=eps, sigma=0.5)
        path = save_coefficients(coeffs, str(tmp_path / "coeffs.npz"))
        restored = load_coefficients(path)
        assert restored.omega == coeffs.omega
        assert restored.tau == coeffs.tau
        assert restored.back_mask is not None
        assert np.array_equal(restored.back_mask, coeffs.back_mask)
        for name, arr in coeffs.arrays.items():
            assert np.array_equal(restored.arrays[name], arr), name

    def test_checkpoint_resume_equivalence(self, tmp_path):
        """Saving mid-run and resuming gives the same trajectory."""
        grid = Grid(nz=10, ny=6, nx=5)
        coeffs = random_coefficients(grid, seed=9)
        from repro.fdfd import naive_sweep

        straight = random_state(grid, seed=10)
        naive_sweep(straight, coeffs, 6)

        resumed = random_state(grid, seed=10)
        naive_sweep(resumed, coeffs, 3)
        p = save_state(resumed, str(tmp_path / "mid.npz"))
        resumed = load_state(p)
        naive_sweep(resumed, coeffs, 3)
        assert straight.max_abs_difference(resumed) == 0.0


class TestVTKExport:
    def test_vtk_structure(self, tmp_path, rng):
        grid = Grid(nz=4, ny=3, nx=5)
        fields = random_state(grid, seed=1)
        path = export_vtk(fields, str(tmp_path / "out.vtk"), quantities=("Emag", "Ex"))
        text = open(path).read()
        assert "STRUCTURED_POINTS" in text
        assert f"DIMENSIONS {grid.nx} {grid.ny} {grid.nz}" in text
        assert f"POINT_DATA {grid.n_cells}" in text
        assert "SCALARS Emag double 1" in text
        assert "SCALARS Ex_re double 1" in text
        assert "SCALARS Ex_im double 1" in text
        # Value count: header lines + one float per point per scalar.
        floats = sum(1 for line in text.splitlines()
                     if line and line[0] in "-0123456789" and " " not in line.strip())
        assert floats == 3 * grid.n_cells

    def test_vtk_unknown_quantity(self, tmp_path, rng):
        fields = random_state(Grid(nz=3, ny=3, nx=3), seed=1)
        with pytest.raises(ValueError):
            export_vtk(fields, str(tmp_path / "x.vtk"), quantities=("bogus",))


class TestCrossSection:
    def test_shapes(self, rng):
        grid = Grid(nz=6, ny=5, nx=4)
        fields = random_state(grid, seed=2)
        assert cross_section(fields, "Emag", "z", 2).shape == (5, 4)
        assert cross_section(fields, "Hmag", "y", 0).shape == (6, 4)
        assert cross_section(fields, "Ex", "x", 3).shape == (6, 5)

    def test_values_match_direct_computation(self, rng):
        grid = Grid(nz=6, ny=5, nx=4)
        fields = random_state(grid, seed=2)
        got = cross_section(fields, "Ex", "z", 1)
        want = np.abs(fields.combined("Ex"))[1]
        assert np.array_equal(got, want)

    def test_validation(self, rng):
        fields = random_state(Grid(nz=4, ny=4, nx=4), seed=1)
        with pytest.raises(ValueError):
            cross_section(fields, "bogus", "z", 0)
        with pytest.raises(ValueError):
            cross_section(fields, "Emag", "w", 0)
        with pytest.raises(IndexError):
            cross_section(fields, "Emag", "z", 99)
