"""Tests for the machine spec, traffic measurements, the execution
simulator and the calibration -- including the paper-shape contracts of
DESIGN.md section 4."""

import pytest

from repro.core import (
    ThreadGroupConfig,
    TilingPlan,
    diamond_code_balance,
    naive_code_balance,
    spatial_code_balance,
)
from repro.core.autotuner import tune_spatial, tune_tiled
from repro.machine import (
    HASWELL_EP,
    MachineSpec,
    measure_sweep_code_balance,
    measure_tiled_code_balance,
    simulate_sweep,
    simulate_tiled,
    tg_efficiency,
    validate_calibration,
)


class TestMachineSpec:
    def test_haswell_parameters(self):
        assert HASWELL_EP.cores == 18
        assert HASWELL_EP.l3_bytes == 45 * 2**20
        assert HASWELL_EP.bandwidth_gbs == 50.0
        assert HASWELL_EP.usable_l3_bytes == pytest.approx(22.5 * 2**20)

    def test_peak_flops(self):
        # 18 cores * 2.3 GHz * 16 flops/cy = 662 Gflop/s.
        assert HASWELL_EP.peak_gflops == pytest.approx(662.4)

    def test_with_bandwidth(self):
        starved = HASWELL_EP.with_bandwidth(25.0)
        assert starved.bandwidth_gbs == 25.0
        assert starved.core_bandwidth_gbs <= 25.0
        assert starved.machine_balance() < HASWELL_EP.machine_balance()

    def test_with_cores(self):
        assert HASWELL_EP.with_cores(6).cores == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("x", cores=0, clock_ghz=1, l3_bytes=1, bandwidth_gbs=1)
        with pytest.raises(ValueError):
            MachineSpec("x", cores=1, clock_ghz=1, l3_bytes=1, bandwidth_gbs=1,
                        usable_cache_fraction=2.0)
        with pytest.raises(ValueError):
            MachineSpec("x", cores=1, clock_ghz=1, l3_bytes=1, bandwidth_gbs=1,
                        tiled_overhead=0.5)


class TestTrafficMeasurements:
    """The cache-sim counterparts of the paper's Section III numbers."""

    def test_naive_at_512_near_1344(self):
        r = measure_sweep_code_balance(HASWELL_EP, nx=512, ny=512, block_y=None)
        assert r.bytes_per_lup == pytest.approx(naive_code_balance(), rel=0.03)

    def test_spatial_blocking_exactly_1216(self):
        r = measure_sweep_code_balance(HASWELL_EP, nx=384, ny=384, block_y=16)
        assert r.bytes_per_lup == pytest.approx(spatial_code_balance(), rel=0.001)

    def test_spatial_saving_is_the_z_layer_condition(self):
        naive = measure_sweep_code_balance(HASWELL_EP, nx=512, ny=512, block_y=None)
        spatial = measure_sweep_code_balance(HASWELL_EP, nx=512, ny=512, block_y=16)
        # 1344 - 1216 = 128 B/LUP saved (Section III-B).
        assert naive.bytes_per_lup - spatial.bytes_per_lup == pytest.approx(128, abs=16)

    @pytest.mark.parametrize("dw", [4, 8])
    def test_tiled_tracks_eq12_when_fitting(self, dw):
        r = measure_tiled_code_balance(HASWELL_EP, nx=384, dw=dw, bz=1, n_streams=1)
        model = diamond_code_balance(dw)
        assert r.bytes_per_lup < 1.05 * model
        assert r.bytes_per_lup > 0.5 * model

    def test_tiled_diverges_when_tile_exceeds_cache(self):
        """Fig. 5: measured balance blows past Eq. 12 once C_s exceeds the
        usable L3 (Dw=16, Bz=1 at nx=384 needs ~34 MiB > 22.5 MiB)."""
        r = measure_tiled_code_balance(HASWELL_EP, nx=384, dw=16, bz=1, n_streams=1)
        assert r.bytes_per_lup > 3 * diamond_code_balance(16)

    def test_larger_bz_needs_more_cache(self):
        """Fig. 5a-c: larger wavefront widths reach divergence earlier."""
        r1 = measure_tiled_code_balance(HASWELL_EP, nx=480, dw=8, bz=1, n_streams=1)
        r9 = measure_tiled_code_balance(HASWELL_EP, nx=480, dw=8, bz=9, n_streams=1)
        assert r9.bytes_per_lup > r1.bytes_per_lup

    def test_stream_interference(self):
        """Concurrent per-thread tiles (1WD) thrash the shared L3 at high
        thread counts -- the Fig. 6 decline mechanism."""
        lone = measure_tiled_code_balance(HASWELL_EP, nx=384, dw=4, bz=1, n_streams=1)
        crowd = measure_tiled_code_balance(HASWELL_EP, nx=384, dw=4, bz=1, n_streams=18)
        assert crowd.bytes_per_lup > 2 * lone.bytes_per_lup

    def test_measure_validation(self):
        with pytest.raises(ValueError):
            measure_tiled_code_balance(HASWELL_EP, nx=64, dw=4, bz=1, n_streams=0)
        with pytest.raises(ValueError):
            measure_sweep_code_balance(HASWELL_EP, nx=64, ny=64, block_y=None, threads=0)


class TestExecutionSimulator:
    def test_sweep_single_thread_unsaturated(self):
        r = simulate_sweep(HASWELL_EP, 1, spatial_code_balance(), lups=1e8)
        assert 4 < r.mlups < 12
        assert r.bandwidth_gbs < HASWELL_EP.bandwidth_gbs

    def test_sweep_saturates_at_roofline(self):
        r = simulate_sweep(HASWELL_EP, 18, spatial_code_balance(), lups=1e8)
        assert r.mlups == pytest.approx(41.1, abs=0.5)
        assert r.bandwidth_gbs == pytest.approx(50.0, abs=0.5)

    def test_sweep_scaling_linear_before_knee(self):
        r2 = simulate_sweep(HASWELL_EP, 2, spatial_code_balance(), lups=1e8)
        r4 = simulate_sweep(HASWELL_EP, 4, spatial_code_balance(), lups=1e8)
        assert r4.mlups == pytest.approx(2 * r2.mlups, rel=0.01)

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            simulate_sweep(HASWELL_EP, 0, 1000, lups=1e6)
        with pytest.raises(ValueError):
            simulate_sweep(HASWELL_EP, 99, 1000, lups=1e6)
        with pytest.raises(ValueError):
            simulate_sweep(HASWELL_EP, 1, -5, lups=1e6)

    def test_tiled_full_chip_beats_spatial_3x(self):
        """The headline: MWD at 18 cores is >= 3x saturated spatial."""
        plan = TilingPlan.build(ny=384, nz=384, timesteps=16, dw=8, bz=9)
        cfg = ThreadGroupConfig(wavefront_threads=3, x_threads=2, component_threads=3)
        bc = measure_tiled_code_balance(HASWELL_EP, nx=384, dw=8, bz=9, n_streams=1)
        r = simulate_tiled(HASWELL_EP, plan, nx=384, tg_config=cfg,
                           code_balance=bc.bytes_per_lup)
        spatial = simulate_sweep(HASWELL_EP, 18, spatial_code_balance(), lups=1e8)
        assert r.mlups > 3.0 * spatial.mlups
        # ...while using less than the full bandwidth (decoupled).
        assert r.bandwidth_gbs < 0.9 * HASWELL_EP.bandwidth_gbs

    def test_tiled_oversized_group_rejected(self):
        plan = TilingPlan.build(ny=32, nz=32, timesteps=8, dw=4, bz=1)
        cfg = ThreadGroupConfig(x_threads=19)
        with pytest.raises(ValueError):
            simulate_tiled(HASWELL_EP, plan, nx=32, tg_config=cfg, code_balance=300)

    def test_tg_efficiency_bounds(self):
        for cfg in (
            ThreadGroupConfig(),
            ThreadGroupConfig(x_threads=6),
            ThreadGroupConfig(wavefront_threads=3, component_threads=3),
        ):
            eff = tg_efficiency(cfg, nx=384, nz=384, bz=4)
            assert 0.5 < eff <= 1.0

    def test_tg_efficiency_penalizes_short_x_chunks(self):
        wide = tg_efficiency(ThreadGroupConfig(x_threads=2), nx=384, nz=384, bz=1)
        narrow = tg_efficiency(ThreadGroupConfig(x_threads=18), nx=384, nz=384, bz=1)
        assert narrow < wide


class TestCalibration:
    def test_spatial_saturation_near_six_cores(self):
        rep = validate_calibration(HASWELL_EP)
        assert 5.0 < rep.spatial_saturation_cores < 7.5
        assert rep.spatial_saturated_mlups == pytest.approx(41.1, abs=0.5)

    def test_headline_speedup_in_3_4x_band(self):
        rep = validate_calibration(HASWELL_EP)
        assert 3.0 <= rep.speedup_over_spatial <= 4.2

    def test_single_core_spatial_mlups(self):
        rep = validate_calibration(HASWELL_EP)
        assert 5.0 < rep.spatial_single_core_mlups < 9.0


class TestAutotuner:
    """Auto-tuned shapes at a reduced set of points (full sweeps live in
    the benchmarks)."""

    def test_spatial_tuning_saturates(self):
        p = tune_spatial(HASWELL_EP, 384, 18)
        assert p.mlups == pytest.approx(41.1, abs=1.0)
        assert p.code_balance == pytest.approx(1216, rel=0.02)

    def test_1wd_peaks_then_drops(self):
        mid = tune_tiled(HASWELL_EP, 384, 10, tg_size=1, variant="1WD")
        full = tune_tiled(HASWELL_EP, 384, 18, tg_size=1, variant="1WD")
        assert mid.mlups > full.mlups  # the Fig. 6a decline

    def test_mwd_scales_to_full_chip(self):
        mwd = tune_tiled(HASWELL_EP, 384, 18)
        spatial = tune_spatial(HASWELL_EP, 384, 18)
        assert mwd.mlups > 3.0 * spatial.mlups
        assert 150 < mwd.code_balance < 450  # Fig. 6c window

    def test_mwd_tuner_prefers_sharing_at_full_chip(self):
        mwd = tune_tiled(HASWELL_EP, 384, 18)
        assert mwd.tg_size > 1
        assert mwd.dw >= 8

    def test_tuned_point_describe(self):
        p = tune_spatial(HASWELL_EP, 384, 18)
        assert "spatial" in p.describe()
