"""Tests for the simulated PMU (likwid-style marker regions + groups).

The headline contract: all three replay engines report *identical* MEM,
CACHE and WORK group values for the same schedule -- asserted on the
Fig. 6 fixed point (MWD at 18 threads, 384^3: D_w=8, B_z=9, one stream
per group sharing the L3).
"""

import pytest

from repro.machine import measure
from repro.machine.cache import LRUCache
from repro.machine.measure import measure_tiled_code_balance
from repro.machine.pmu import (
    GLOBAL_PMU,
    PERF_GROUPS,
    PMU,
    PerfRegion,
    PerfSample,
    resolve_groups,
)
from repro.machine.spec import HASWELL_EP
from repro.machine.streams import ComponentStreamEmitter

#: Fig. 6 fixed point (MWD@18t at 384^3 tunes to dw=8, bz=9, tg_size=18).
FIG6_POINT = dict(nx=384, dw=8, bz=9, n_streams=1)


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def samples(self):
        return {
            eng: measure_tiled_code_balance(HASWELL_EP, engine=eng, **FIG6_POINT).perf
            for eng in ("reference", "batch", "native")
        }

    @pytest.mark.parametrize("group", ("MEM", "CACHE", "WORK"))
    def test_groups_identical_across_engines(self, samples, group):
        ref = samples["reference"].group_values(group)
        assert ref, group
        for eng in ("batch", "native"):
            assert samples[eng].group_values(group) == ref, eng

    def test_sample_consistent_with_traffic_result(self):
        res = measure_tiled_code_balance(HASWELL_EP, **FIG6_POINT)
        perf = res.perf
        assert perf is not None
        assert perf.mem_bytes == res.mem_bytes
        assert perf.lups == res.lups
        assert perf.cells == res.cells
        assert perf.hit_rate == res.hit_rate
        assert perf.code_balance == pytest.approx(res.bytes_per_lup)


class TestPerfRegion:
    def _workload(self):
        cache = LRUCache(4 * 2**20)
        emitter = ComponentStreamEmitter(cache, ny=8, nz=8, nx=16)
        return cache, emitter

    def test_delta_matches_stats(self):
        cache, emitter = self._workload()
        region = PerfRegion("r")
        with region(cache, emitter):
            emitter.emit_component_rows("Exy", 0, 4, 0, 8)
        s = region.sample
        st = cache.stats
        assert s.read_hits == st.read_hits
        assert s.read_misses == st.read_misses
        assert s.mem_read_bytes == st.mem_read_bytes
        assert s.mem_write_bytes == st.mem_write_bytes
        assert s.cells == emitter.cells
        assert s.lups == emitter.lups
        assert s.resident_bytes == cache.used_bytes
        assert s.calls == 1

    def test_region_excludes_warmup_epoch(self):
        """A region opened after reset_stats counts only the epoch."""
        cache, emitter = self._workload()
        emitter.emit_component_rows("Exy", 0, 8, 0, 8)  # warm-up
        cache.reset_stats()
        cells0, lups0 = emitter.cells, emitter.lups
        region = PerfRegion("epoch")
        with region(cache, emitter):
            emitter.emit_component_rows("Exy", 0, 8, 0, 8)
        s = region.sample
        assert s.mem_bytes == cache.stats.mem_bytes
        assert s.cells == emitter.cells - cells0
        assert s.lups == emitter.lups - lups0
        # the warm cache means this epoch has hits the cold pass lacked
        assert s.read_hits == cache.stats.read_hits

    def test_multiple_calls_accumulate(self):
        cache, emitter = self._workload()
        region = PerfRegion("r")
        for _ in range(3):
            with region(cache, emitter):
                emitter.emit_component_rows("Exy", 0, 2, 0, 4)
        assert region.sample.calls == 3
        assert region.sample.mem_bytes == cache.stats.mem_bytes

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            PerfRegion("r").stop()


class TestPerfSample:
    def test_merged_sums_counters_and_maxes_resident(self):
        a = PerfSample(read_hits=1, mem_read_bytes=100, resident_bytes=50,
                       cells=2, lups=3.0, calls=1)
        b = PerfSample(read_hits=2, mem_read_bytes=200, resident_bytes=40,
                       cells=4, lups=5.0, calls=2)
        m = a.merged(b)
        assert m.read_hits == 3
        assert m.mem_read_bytes == 300
        assert m.resident_bytes == 50  # max, not sum
        assert m.cells == 6 and m.lups == 8.0 and m.calls == 3

    def test_derived_metrics(self):
        s = PerfSample(mem_read_bytes=60, mem_write_bytes=40, lups=10.0,
                       read_hits=3, read_misses=1, write_hits=0, write_misses=0)
        assert s.mem_bytes == 100
        assert s.code_balance == pytest.approx(10.0)
        assert s.hit_rate == pytest.approx(0.75)
        from repro.fdfd.specs import FLOPS_PER_LUP
        assert s.flops == pytest.approx(10.0 * FLOPS_PER_LUP)

    def test_group_values_cover_events_and_metrics(self):
        s = PerfSample(lups=1.0)
        for name, g in PERF_GROUPS.items():
            vals = s.group_values(name)
            assert set(vals) == set(g.events) | set(g.metrics)

    def test_to_dict_round_trips_fields(self):
        d = PerfSample(read_hits=7, lups=2.0).to_dict()
        assert d["read_hits"] == 7
        assert d["derived"]["code_balance_B_per_LUP"] == 0.0


class TestResolveGroups:
    def test_all_and_none(self):
        assert resolve_groups(None) == ("MEM", "CACHE", "WORK")
        assert resolve_groups("ALL") == ("MEM", "CACHE", "WORK")

    def test_comma_list_dedup_case(self):
        assert resolve_groups("mem, MEM ,cache") == ("MEM", "CACHE")

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown perf group"):
            resolve_groups("L2")


class TestPMUReporting:
    def test_report_tables(self):
        pmu = PMU()
        cache = LRUCache(1 << 20)
        emitter = ComponentStreamEmitter(cache, ny=4, nz=4, nx=8)
        with pmu.region("steady", cache, emitter):
            emitter.emit_component_rows("Exy", 0, 4, 0, 4)
        text = pmu.report(groups="MEM")
        assert "Region steady, Group MEM" in text
        assert "Code balance [B/LUP]" in text
        assert "DRAM_READ_BYTES" in text

    def test_empty_report(self):
        assert PMU().report() == "(no perf regions recorded)"

    def test_global_pmu_fed_by_measurement(self):
        measure._measure_tiled_cached.cache_clear()
        GLOBAL_PMU.reset()
        measure_tiled_code_balance(HASWELL_EP, nx=32, dw=4, bz=2, n_streams=1)
        assert "measure.tiled" in GLOBAL_PMU
        assert GLOBAL_PMU.sample("measure.tiled").lups > 0
        assert "measure.tiled" in GLOBAL_PMU.to_json()
