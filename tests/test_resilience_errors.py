"""Error taxonomy, divergence guard, counters, checksummed JSON."""

import json
import os

import numpy as np
import pytest

from repro.fdfd import Grid, PlaneWaveSource, THIIMSolver
from repro.fdfd.thiim import divergence_reason
from repro.ioutil import (
    atomic_write_json,
    corrupt_file,
    json_checksum,
    read_json_checked,
)
from repro.resilience.errors import (
    CheckpointMismatch,
    CorruptArtifact,
    EngineUnavailable,
    InjectedFault,
    ReproError,
    ResilienceCounters,
    SolverDiverged,
    error_from_kind,
)


class TestTaxonomy:
    @pytest.mark.parametrize("cls,status,retryable", [
        (ReproError, 500, True),
        (SolverDiverged, 422, False),
        (CorruptArtifact, 500, True),
        (EngineUnavailable, 503, True),
        (CheckpointMismatch, 409, False),
        (InjectedFault, 500, True),
    ])
    def test_status_and_retry_semantics(self, cls, status, retryable):
        exc = cls("boom")
        assert exc.http_status == status
        assert exc.retryable is retryable
        assert isinstance(exc, RuntimeError)  # legacy handlers still catch

    def test_payload_carries_details(self):
        exc = SolverDiverged("blew up", steps=40, residual=1e9)
        assert exc.payload() == {
            "error": "blew up", "kind": "SolverDiverged",
            "details": {"steps": 40, "residual": 1e9},
        }
        assert ReproError("plain").payload() == {"error": "plain",
                                                 "kind": "ReproError"}

    def test_error_from_kind_round_trips(self):
        for cls in (SolverDiverged, CorruptArtifact, EngineUnavailable,
                    CheckpointMismatch, InjectedFault):
            back = error_from_kind(cls.__name__, "m")
            assert type(back) is cls and str(back) == "m"

    def test_unknown_kind_degrades_to_runtime_error(self):
        for kind in (None, "", "SomethingForeign"):
            back = error_from_kind(kind, "m")
            assert type(back) is RuntimeError
            assert not getattr(back, "retryable", True) is False


class TestDivergenceGuard:
    def test_healthy_history_is_none(self):
        assert divergence_reason(0.5, [1.0, 0.8, 0.5]) is None

    def test_non_finite_residual(self):
        assert "non-finite" in divergence_reason(float("nan"), [1.0])
        assert "non-finite" in divergence_reason(float("inf"), [1.0])

    def test_monotone_blowup(self):
        history = [1e-6, 1e-4, 1e-2, 1.0, 100.0]
        assert "blow-up" in divergence_reason(100.0, history)

    def test_growth_below_factor_is_tolerated(self):
        history = [1e-6, 2e-6, 4e-6, 8e-6, 9e-6]
        assert divergence_reason(9e-6, history) is None

    @pytest.mark.filterwarnings("ignore:overflow:RuntimeWarning")
    def test_unstable_solve_raises_with_diagnostics(self):
        # tau far beyond the CFL limit: the leapfrog iteration blows up.
        grid = Grid(nz=16, ny=4, nx=4, periodic=(False, True, True))
        solver = THIIMSolver(grid, 2 * np.pi / 8.0,
                             source=PlaneWaveSource(z_plane=4), tau=5.0)
        with pytest.raises(SolverDiverged) as exc:
            solver.solve(tol=1e-8, max_steps=400, check_every=5,
                         on_divergence="raise")
        details = exc.value.details
        assert details["steps"] < 400  # failed fast, not at max_steps
        assert len(details["history_tail"]) <= 6

    @pytest.mark.filterwarnings("ignore:overflow:RuntimeWarning")
    def test_unstable_solve_legacy_return_mode(self):
        grid = Grid(nz=16, ny=4, nx=4, periodic=(False, True, True))
        solver = THIIMSolver(grid, 2 * np.pi / 8.0,
                             source=PlaneWaveSource(z_plane=4), tau=5.0)
        result = solver.solve(tol=1e-8, max_steps=400, check_every=5)
        assert not result.converged and result.iterations < 400

    def test_on_divergence_is_validated(self):
        grid = Grid(nz=16, ny=4, nx=4, periodic=(False, True, True))
        solver = THIIMSolver(grid, 2 * np.pi / 8.0)
        with pytest.raises(ValueError):
            solver.solve(on_divergence="explode")


class TestCounters:
    def test_bump_get_snapshot(self):
        c = ResilienceCounters()
        c.bump("a")
        c.bump("a", 2)
        assert c.get("a") == 3 and c.get("missing") == 0
        assert c.snapshot() == {"a": 3}

    def test_merge_folds_child_deltas(self):
        c = ResilienceCounters()
        c.bump("a")
        c.merge({"a": 2, "b": 1})
        c.merge(None)
        assert c.snapshot() == {"a": 3, "b": 1}

    def test_reset(self):
        c = ResilienceCounters()
        c.bump("a")
        c.reset()
        assert c.snapshot() == {}


class TestChecksummedJson:
    def test_checksum_roundtrip(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"x": 1, "y": [2, 3]}, checksum=True)
        doc = read_json_checked(path)
        assert doc == {"x": 1, "y": [2, 3]}
        assert "_sha256" not in doc

    def test_checksum_is_canonical(self):
        assert json_checksum({"a": 1, "b": 2}) == json_checksum({"b": 2, "a": 1})
        assert json_checksum({"a": 1}) != json_checksum({"a": 2})

    def test_missing_file_is_none(self, tmp_path):
        assert read_json_checked(str(tmp_path / "absent.json")) is None

    def test_torn_write_quarantined(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"x": 1}, checksum=True)
        corrupt_file(path)
        assert read_json_checked(path) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")

    def test_bit_flip_detected_by_checksum(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"x": 1}, checksum=True)
        doc = json.load(open(path))
        doc["x"] = 2  # valid JSON, wrong content
        with open(path, "w") as f:
            json.dump(doc, f)
        assert read_json_checked(path) is None
        assert os.path.exists(path + ".corrupt")

    def test_unchecksummed_legacy_doc_still_reads(self, tmp_path):
        # Pre-resilience cache files have no _sha256: accepted as-is.
        path = str(tmp_path / "doc.json")
        with open(path, "w") as f:
            json.dump({"x": 1}, f)
        assert read_json_checked(path) == {"x": 1}
