"""Tests for the real-multiprocess distributed runtime: bit-identity of
rank-decomposed solves with the single-domain sweep, halo accounting
against the cost model, the ``kind="distributed"`` job path, and
rank-crash resume through the scheduler."""

import os
import tempfile

import numpy as np
import pytest

from repro.cluster import RankLayout, step_bytes_by_axis
from repro.cluster.runtime import run_distributed
from repro.fdfd import ALL_COMPONENTS, Grid, PlaneWaveSource, PMLSpec, THIIMSolver
from repro.fdfd.presets import preset_scene
from repro.service.jobs import JobSpec, run_job


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for var in ("REPRO_FAULTS", "REPRO_CHECKPOINT_EVERY",
                "REPRO_CHECKPOINT_DIR", "REPRO_CLUSTER_TRANSPORT"):
        monkeypatch.delenv(var, raising=False)


def _make_solver(n=10, periodic=(False, True, True)):
    """The served-solve geometry (untiled): z doubled, absorber scene."""
    nz = 2 * n
    grid = Grid(nz=nz, ny=n, nx=n, periodic=periodic)
    return THIIMSolver(
        grid, 2 * np.pi / 12.0, scene=preset_scene("absorber", nz),
        source=PlaneWaveSource(z_plane=max(nz // 8, 12), z_width=2.0),
        pml={"z": PMLSpec(thickness=max(nz // 10, 6))},
    )


class TestRunDistributed:
    def test_one_rank_equals_plain_solver(self):
        """A 1x1x1 layout is the scalar solve, object for object."""
        scalar = _make_solver().solve(tol=1e-12, max_steps=60)
        solver = _make_solver()
        layout = RankLayout(solver.grid, 1, 1, 1)
        result, info = run_distributed(layout, solver, tol=1e-12,
                                       max_steps=60)
        assert result.iterations == scalar.iterations
        assert result.residual == scalar.residual
        assert result.converged == scalar.converged
        assert result.residual_history == scalar.residual_history
        for name in ALL_COMPONENTS:
            assert np.array_equal(result.fields[name], scalar.fields[name])
        assert info["ranks"] == 1 and len(info["pids"]) == 1

    @pytest.mark.parametrize("dims", [(2, 1, 1), (1, 2, 1), (1, 1, 2),
                                      (2, 2, 1)])
    def test_bitwise_equality_real_processes(self, dims):
        scalar = _make_solver().solve(tol=1e-12, max_steps=60)
        solver = _make_solver()
        layout = RankLayout(solver.grid, *dims)
        result, info = run_distributed(layout, solver, tol=1e-12,
                                       max_steps=60)
        # Real OS processes, not threads: distinct child pids.
        assert len(set(info["pids"])) == layout.n_ranks
        assert os.getpid() not in info["pids"] or layout.n_ranks == 1
        assert result.residual_history == scalar.residual_history
        for name in ALL_COMPONENTS:
            assert np.array_equal(result.fields[name], scalar.fields[name])

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_both_transports_bit_identical(self, transport, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_TRANSPORT", transport)
        scalar = _make_solver().solve(tol=1e-12, max_steps=40)
        solver = _make_solver()
        result, info = run_distributed(RankLayout(solver.grid, 2, 1, 1),
                                       solver, tol=1e-12, max_steps=40)
        assert info["transport"] == ("shm" if transport == "shm" else "pipe")
        for name in ALL_COMPONENTS:
            assert np.array_equal(result.fields[name], scalar.fields[name])

    def test_halo_bytes_match_cost_model(self):
        solver = _make_solver()
        layout = RankLayout(solver.grid, 2, 2, 1)
        _, info = run_distributed(layout, solver, tol=1e-12, max_steps=40)
        expected = step_bytes_by_axis(layout)
        measured = info["halo"]["bytes_by_axis"]  # JSON-safe string keys
        assert measured == {str(a): 40 * b for a, b in expected.items()}

    def test_mismatched_solver_rejected(self):
        solver = _make_solver()
        other = Grid(nz=24, ny=12, nx=12)
        with pytest.raises(ValueError):
            run_distributed(RankLayout(other, 2, 1, 1), solver,
                            tol=1e-6, max_steps=20)
        # Same shape, different periodicity: also rejected (ghost
        # clipping depends on it).
        twisted = Grid(nz=solver.grid.nz, ny=solver.grid.ny,
                       nx=solver.grid.nx, periodic=(False, False, False))
        with pytest.raises(ValueError):
            run_distributed(RankLayout(twisted, 2, 1, 1), solver,
                            tol=1e-6, max_steps=20)


class TestCpuPinning:
    @pytest.mark.skipif(not hasattr(os, "sched_getaffinity"),
                        reason="no sched_setaffinity on this platform")
    def test_pinning_reported_and_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_PIN", "1")
        scalar = _make_solver().solve(tol=1e-12, max_steps=40)
        solver = _make_solver()
        result, info = run_distributed(RankLayout(solver.grid, 2, 1, 1),
                                       solver, tol=1e-12, max_steps=40)
        pins = info["cpu_pins"]
        allowed = os.sched_getaffinity(0)
        assert len(pins) == 2
        assert all(cpu in allowed for cpu in pins)
        # Round-robin over the allowed set: distinct CPUs when there
        # are at least as many CPUs as ranks.
        if len(allowed) >= 2:
            assert len(set(pins)) == 2
        # Pinning is a placement hint only -- the numerics are untouched.
        for name in ALL_COMPONENTS:
            assert np.array_equal(result.fields[name], scalar.fields[name])

    def test_pinning_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLUSTER_PIN", raising=False)
        solver = _make_solver()
        _, info = run_distributed(RankLayout(solver.grid, 2, 1, 1),
                                  solver, tol=1e-6, max_steps=20)
        assert "cpu_pins" not in info

    @pytest.mark.parametrize("off", ["0", "off", "false", "no"])
    def test_falsey_values_disable_pinning(self, monkeypatch, off):
        from repro import config

        monkeypatch.setenv("REPRO_CLUSTER_PIN", off)
        assert config.cluster_pin() is False


class TestDistributedJobSpec:
    def test_requires_ranks(self):
        with pytest.raises(ValueError, match="ranks"):
            JobSpec(kind="distributed", grid=10)

    def test_ranks_only_for_distributed(self):
        with pytest.raises(ValueError, match="ranks"):
            JobSpec(kind="solve", grid=10, ranks="2")

    def test_distributed_must_be_untiled(self):
        with pytest.raises(ValueError, match="tiled"):
            JobSpec(kind="distributed", grid=10, ranks="2", tiled=True)

    @pytest.mark.parametrize("bad", ["0", "2x2", "axb", "-1", "2x2x0"])
    def test_bad_ranks_rejected(self, bad):
        with pytest.raises(ValueError):
            JobSpec(kind="distributed", grid=10, ranks=bad)

    def test_ranks_canonicalized(self):
        spec = JobSpec(kind="distributed", grid=10, ranks=" 2X2x1 ")
        assert spec.ranks == "2x2x1"

    def test_identity_omits_ranks_when_none(self):
        """Pre-existing solve job ids must not shift."""
        spec = JobSpec(kind="solve", grid=10)
        assert "ranks" not in spec.identity()

    def test_job_ids_namespaced_by_layout(self):
        a = JobSpec(kind="distributed", grid=10, ranks="2x1x1")
        b = JobSpec(kind="distributed", grid=10, ranks="1x2x1")
        plain = JobSpec(kind="solve", grid=10)
        assert len({a.job_id, b.job_id, plain.job_id}) == 3

    def test_single_domain_spec(self):
        spec = JobSpec(kind="distributed", grid=10, ranks="2x2x1")
        plain = spec.single_domain_spec()
        assert plain.kind == "solve" and plain.ranks is None
        assert plain.grid == spec.grid and plain.tol == spec.tol


class TestDistributedJobs:
    @pytest.mark.parametrize("ranks", ["2x1x1", "2"])
    def test_run_job_matches_single_domain(self, ranks):
        spec = JobSpec(kind="distributed", preset="absorber", grid=10,
                       tol=1e-12, max_steps=60, ranks=ranks)
        assert run_job(spec) == run_job(spec.single_domain_spec())

    def test_infeasible_layout_raises(self):
        # 10-cell axes cannot host 8 ranks on one axis.
        spec = JobSpec(kind="distributed", grid=10, ranks="1x8x1",
                       tol=1e-6, max_steps=20)
        with pytest.raises(ValueError):
            run_job(spec)


class TestRankCrashResume:
    def test_scheduler_resumes_bit_identical(self, monkeypatch):
        """Seeded kill of one rank mid-solve: the scheduler retry
        restores the group checkpoint and reproduces the clean bytes."""
        from repro.resilience import FaultPlan
        from repro.service import Scheduler
        from repro.service.jobs import JobState

        spec = JobSpec(kind="distributed", preset="absorber", grid=10,
                       tol=1e-12, max_steps=120, max_retries=2,
                       ranks="2x1x1")
        clean = run_job(spec)

        plan = FaultPlan.seeded(7, "cluster.rank.1", "crash", max_after=4)
        monkeypatch.setenv("REPRO_FAULTS", plan.env_value())
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "40")
        ckpt_dir = tempfile.mkdtemp(prefix="repro-test-rank-crash-")
        sched = Scheduler(workers=1, mode="process", retry_base_s=0.001,
                          checkpoint_dir=ckpt_dir).start()
        try:
            job = sched.submit(spec)
            sched.wait(job.id, timeout=300.0)
        finally:
            sched.stop()
        assert job.state == JobState.DONE, job.error
        assert sched.n_crashes >= 1
        assert job.attempts >= 2
        assert job.resumed_from == 40
        assert job.result == clean
