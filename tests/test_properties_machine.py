"""Property-based tests for the machine substrate and the cluster layer.

Complements test_properties.py (which covers the tiling core): here
hypothesis drives the LRU cache, the water-filling allocator, the
decomposition geometry and the distributed solver.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import RankLayout
from repro.cluster.distributed import DistributedTHIIM
from repro.core.wavefront import RowJob
from repro.fdfd import FieldState, Grid, naive_sweep, random_coefficients
from repro.machine import LRUCache, StreamEmitter
from repro.machine.simulator import _water_fill

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 30), st.booleans()), min_size=1, max_size=300
    ),
    capacity_chunks=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=60, **COMMON)
def test_lru_traffic_monotone_in_capacity(accesses, capacity_chunks):
    """A bigger LRU cache never causes more memory traffic (inclusion
    property of LRU on a fixed trace)."""
    size = 64

    def traffic(cap_chunks):
        c = LRUCache(cap_chunks * size)
        for key, write in accesses:
            c.access(key, size, write)
        c.flush()
        return c.stats.mem_bytes

    small = traffic(capacity_chunks)
    large = traffic(capacity_chunks * 2)
    assert large <= small


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 20), st.booleans()), min_size=1, max_size=200
    )
)
@settings(max_examples=40, **COMMON)
def test_lru_conservation(accesses):
    """Every access is classified exactly once; dirty data is written
    back exactly once."""
    c = LRUCache(5 * 64)
    writes = 0
    for key, write in accesses:
        c.access(key, 64, write)
        writes += int(write)
    c.flush()
    s = c.stats
    assert s.accesses == len(accesses)
    # Each written chunk is flushed or evicted once per dirty episode:
    # never more write-backs than writes.
    assert s.writebacks <= writes
    assert s.mem_write_bytes == s.writebacks * 64


@given(
    n=st.integers(min_value=1, max_value=10),
    data=st.data(),
)
@settings(max_examples=60, **COMMON)
def test_water_fill_respects_caps_and_budget(n, data):
    demands = [data.draw(st.floats(min_value=1.0, max_value=5000.0)) for _ in range(n)]
    caps = [data.draw(st.floats(min_value=1e3, max_value=1e9)) for _ in range(n)]
    bw = data.draw(st.floats(min_value=1e4, max_value=1e11))
    rates = _water_fill(demands, caps, bw)
    for r, c in zip(rates, caps):
        assert 0 <= r <= c * (1 + 1e-6)
    used = sum(r * d for r, d in zip(rates, demands))
    # Either inside the budget, or everyone is at cap (demand < supply).
    assert used <= bw * (1 + 1e-6) or all(
        abs(r - c) <= c * 1e-9 for r, c in zip(rates, caps)
    )


@given(
    nz=st.integers(min_value=4, max_value=20),
    ny=st.integers(min_value=4, max_value=20),
    nx=st.integers(min_value=4, max_value=16),
    pz=st.integers(min_value=1, max_value=3),
    py=st.integers(min_value=1, max_value=3),
    px=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=30, **COMMON)
def test_decomposition_partitions_any_grid(nz, ny, nx, pz, py, px):
    grid = Grid(nz=nz, ny=ny, nx=nx)
    if nz // pz < 2 or ny // py < 2 or nx // px < 2:
        return  # infeasible layouts are rejected elsewhere
    layout = RankLayout(grid, pz, py, px)
    owned = np.zeros(grid.shape, dtype=int)
    for sub in layout.subdomains().values():
        owned[sub.z[0]:sub.z[1], sub.y[0]:sub.y[1], sub.x[0]:sub.x[1]] += 1
    assert np.all(owned == 1)


@given(
    seed=st.integers(0, 2**16),
    pz=st.integers(min_value=1, max_value=2),
    py=st.integers(min_value=1, max_value=2),
    steps=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, **COMMON)
def test_distributed_equals_global_random(seed, pz, py, steps):
    grid = Grid(nz=6, ny=6, nx=5)
    coeffs = random_coefficients(grid, seed=seed % 97)
    f_global = FieldState(grid).fill_random(np.random.default_rng(seed))
    f_dist = f_global.copy()
    naive_sweep(f_global, coeffs, steps)
    dist = DistributedTHIIM(RankLayout(grid, pz, py, 1), f_dist, coeffs)
    dist.step(steps)
    assert f_global.max_abs_difference(dist.gather()) == 0.0


@given(
    ny=st.integers(min_value=2, max_value=10),
    nz=st.integers(min_value=2, max_value=10),
    steps=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, **COMMON)
def test_stream_emitter_lups_invariant(ny, nz, steps):
    """The emitted LUP count equals the schedule's analytical volume for
    a naive job stream, at any cache size."""
    cache = LRUCache(12345)
    em = StreamEmitter(cache, ny=ny, nz=nz, nx=3)
    for tau in range(2 * steps):
        em.emit_job(RowJob(tau, 0, ny, 0, nz))
    assert em.lups == ny * nz * 3 * steps
