"""Tests for the diamond tessellation geometry."""

import numpy as np
import pytest

from repro.core.diamond import (
    DiamondTile,
    RowSpan,
    enumerate_tiles,
    node_tile_index,
)


def all_nodes(tiles):
    """Flatten a tile set into {(tau, y, is_h): count}."""
    seen = {}
    for tile in tiles.values():
        for row in tile.rows:
            for y in range(row.y_lo, row.y_hi):
                key = (row.tau, y, row.is_h)
                seen[key] = seen.get(key, 0) + 1
    return seen


class TestTessellation:
    @pytest.mark.parametrize(
        "ny,T,dw", [(8, 4, 2), (12, 6, 4), (16, 8, 4), (10, 10, 6), (7, 3, 4), (20, 5, 8)]
    )
    def test_exact_cover(self, ny, T, dw):
        """Every (tau, y) node appears in exactly one tile."""
        tiles = enumerate_tiles(ny, T, dw)
        seen = all_nodes(tiles)
        expected = {(tau, y, tau % 2 == 0) for tau in range(2 * T) for y in range(ny)}
        assert set(seen) == expected
        assert all(v == 1 for v in seen.values())

    def test_node_tile_index_agrees(self):
        ny, T, dw = 12, 6, 4
        tiles = enumerate_tiles(ny, T, dw)
        for idx, tile in tiles.items():
            for row in tile.rows:
                for y in range(row.y_lo, row.y_hi):
                    assert node_tile_index(row.tau, y, row.is_h, dw) == idx

    def test_total_node_count(self):
        ny, T, dw = 16, 8, 4
        tiles = enumerate_tiles(ny, T, dw)
        assert sum(t.n_nodes for t in tiles.values()) == 2 * T * ny


class TestInteriorDiamondShape:
    """The paper's Fig. 2 diamond: E vertex bottom and top, H footprint
    D_w, E footprint D_w - 1, area D_w^2 / 2 LUPs."""

    @pytest.fixture
    def interior(self):
        tiles = enumerate_tiles(ny=40, timesteps=20, dw=4)
        inner = [t for t in tiles.values() if t.is_interior]
        assert inner
        return inner[0]

    def test_starts_and_ends_with_e(self, interior):
        assert interior.rows[0].field == "E"
        assert interior.rows[-1].field == "E"

    def test_height_is_dw_full_steps(self, interior):
        # 2*Dw - 1 sub-steps from the bottom E row to the top E row.
        assert interior.tau_hi - interior.tau_lo == 2 * interior.dw - 2

    def test_footprints(self, interior):
        dw = interior.dw
        h_rows = [r for r in interior.rows if r.is_h]
        e_rows = [r for r in interior.rows if not r.is_h]
        h_lo = min(r.y_lo for r in h_rows)
        h_hi = max(r.y_hi for r in h_rows)
        e_lo = min(r.y_lo for r in e_rows)
        e_hi = max(r.y_hi for r in e_rows)
        assert h_hi - h_lo == dw          # Eq. 12: H written at width Dw
        assert e_hi - e_lo == dw - 1      # Eq. 12: E written at width Dw-1

    def test_area_dw_squared_over_two(self, interior):
        assert interior.lups == pytest.approx(interior.dw**2 / 2)

    def test_vertex_rows_are_single_width(self, interior):
        assert interior.rows[0].width == 1
        assert interior.rows[-1].width == 1

    def test_widths_unimodal(self, interior):
        widths = [r.width for r in interior.rows]
        peak = widths.index(max(widths))
        assert all(widths[k] <= widths[k + 1] for k in range(peak))
        assert all(widths[k] >= widths[k + 1] for k in range(peak, len(widths) - 1))

    @pytest.mark.parametrize("dw", [2, 4, 6, 8, 12, 16])
    def test_all_paper_widths(self, dw):
        tiles = enumerate_tiles(ny=4 * dw, timesteps=3 * dw, dw=dw)
        inner = [t for t in tiles.values() if t.is_interior]
        assert inner
        for t in inner:
            assert t.lups == pytest.approx(dw**2 / 2)
            assert t.rows[0].field == "E" and t.rows[-1].field == "E"


class TestDAGStructure:
    def test_band_is_monotone_under_deps(self):
        tiles = enumerate_tiles(ny=16, timesteps=8, dw=4)
        for tile in tiles.values():
            for p in tile.predecessors():
                if p in tiles:
                    assert tiles[p].band < tile.band

    def test_same_band_tiles_disjoint_in_y_per_substep(self):
        """Concurrent (same band) tiles never write the same (tau, y)."""
        tiles = enumerate_tiles(ny=32, timesteps=8, dw=4)
        by_band = {}
        for tile in tiles.values():
            by_band.setdefault(tile.band, []).append(tile)
        for band_tiles in by_band.values():
            seen = set()
            for t in band_tiles:
                for row in t.rows:
                    for y in range(row.y_lo, row.y_hi):
                        key = (row.tau, y)
                        assert key not in seen
                        seen.add(key)


class TestValidation:
    @pytest.mark.parametrize("dw", [0, 1, 3, 5, -2])
    def test_bad_dw_rejected(self, dw):
        with pytest.raises(ValueError):
            enumerate_tiles(8, 4, dw)

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            enumerate_tiles(0, 4, 2)
        with pytest.raises(ValueError):
            enumerate_tiles(8, 0, 2)

    def test_rowspan_properties(self):
        r = RowSpan(tau=4, y_lo=2, y_hi=5)
        assert r.is_h and r.field == "H" and r.width == 3 and r.time_step == 2
        r = RowSpan(tau=7, y_lo=0, y_hi=1)
        assert not r.is_h and r.field == "E" and r.time_step == 3
