"""Tests for the distributed-memory layer: decomposition geometry, the
communication cost model, and bitwise equality of the halo-exchanged
multi-rank run with the single-domain sweep."""

import numpy as np
import pytest

from repro.cluster import (
    CommCostModel,
    CommStats,
    DistributedTHIIM,
    RankLayout,
    candidate_layouts,
    choose_decomposition,
    step_bytes_by_axis,
)
from repro.cluster.decomposition import _split
from repro.fdfd import FieldState, Grid, naive_sweep, random_coefficients

from conftest import random_state


class TestRankLayout:
    def test_subdomains_partition_grid(self):
        grid = Grid(nz=13, ny=10, nx=9)
        layout = RankLayout(grid, pz=3, py=2, px=2)
        subs = layout.subdomains()
        assert len(subs) == 12
        total = sum(s.n_cells for s in subs.values())
        assert total == grid.n_cells
        # Ranges per axis tile exactly.
        z_ranges = sorted({s.z for s in subs.values()})
        assert z_ranges[0][0] == 0 and z_ranges[-1][1] == 13
        for (a, b), (c, d) in zip(z_ranges, z_ranges[1:]):
            assert b == c

    def test_neighbor_interior_and_edges(self):
        grid = Grid(nz=12, ny=12, nx=12)
        layout = RankLayout(grid, pz=2, py=2, px=1)
        assert layout.neighbor((0, 0, 0), 0, +1) == (1, 0, 0)
        assert layout.neighbor((1, 0, 0), 0, +1) is None
        assert layout.neighbor((0, 0, 0), 1, -1) is None

    def test_neighbor_periodic_wraps(self):
        grid = Grid(nz=12, ny=12, nx=12, periodic=(False, True, True))
        layout = RankLayout(grid, pz=1, py=2, px=1)
        assert layout.neighbor((0, 1, 0), 1, +1) == (0, 0, 0)
        # Single rank on a periodic axis wraps to itself.
        assert layout.neighbor((0, 0, 0), 2, +1) == (0, 0, 0)

    def test_too_many_ranks_rejected(self):
        grid = Grid(nz=4, ny=4, nx=4)
        with pytest.raises(ValueError):
            RankLayout(grid, pz=4, py=1, px=1)
        with pytest.raises(ValueError):
            RankLayout(grid, pz=0, py=1, px=1)


class TestCommCostModel:
    def test_x_faces_most_expensive(self):
        """Section VI: the leading-dimension halo is not contiguous."""
        m = CommCostModel()
        cells = 64 * 64
        assert m.face_cost_us(cells, 2) > m.face_cost_us(cells, 1) > m.face_cost_us(cells, 0)

    def test_choose_avoids_x_axis(self):
        grid = Grid(nz=64, ny=64, nx=64)
        layout = choose_decomposition(grid, 8)
        assert layout.px == 1  # x split only as a last resort
        assert layout.n_ranks == 8

    def test_choose_thin_domain_keeps_thin_axis_undivided(self):
        """Thin dimension mapped to x: never decomposed; the others carry
        the ranks (the paper's thin-domain argument)."""
        grid = Grid(nz=128, ny=128, nx=16)
        layout = choose_decomposition(grid, 16)
        assert layout.px == 1
        assert layout.pz * layout.py == 16

    def test_surface_to_volume_improves_with_cubes(self):
        grid = Grid(nz=64, ny=64, nx=64)
        m = CommCostModel()
        slab = RankLayout(grid, pz=8, py=1, px=1)
        cube = RankLayout(grid, pz=2, py=4, px=1)
        assert m.surface_to_volume(cube) < m.surface_to_volume(slab)

    def test_choose_validation(self):
        with pytest.raises(ValueError):
            choose_decomposition(Grid(nz=4, ny=4, nx=4), 0)
        with pytest.raises(ValueError):
            choose_decomposition(Grid(nz=3, ny=3, nx=3), 64)


class TestDistributedEqualsGlobal:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 1, 1), (1, 2, 1), (1, 1, 2),
                                       (2, 2, 1), (2, 2, 2), (3, 2, 1)])
    def test_bitwise_equality(self, dims):
        grid = Grid(nz=9, ny=8, nx=7)
        coeffs = random_coefficients(grid, seed=5)
        f_global = random_state(grid, seed=6)
        f_dist = f_global.copy()

        naive_sweep(f_global, coeffs, 3)

        layout = RankLayout(grid, *dims)
        dist = DistributedTHIIM(layout, f_dist, coeffs)
        dist.step(3)
        gathered = dist.gather()
        assert f_global.max_abs_difference(gathered) == 0.0

    def test_periodic_x_distributed(self):
        grid = Grid(nz=8, ny=8, nx=8, periodic=(False, False, True))
        coeffs = random_coefficients(grid, seed=15)
        f_global = random_state(grid, seed=16)
        f_dist = f_global.copy()
        naive_sweep(f_global, coeffs, 2)
        layout = RankLayout(grid, 2, 1, 2)  # also decomposes the periodic axis
        dist = DistributedTHIIM(layout, f_dist, coeffs)
        dist.step(2)
        assert f_global.max_abs_difference(dist.gather()) == 0.0

    def test_periodic_undecomposed_axis(self):
        grid = Grid(nz=8, ny=8, nx=8, periodic=(False, True, False))
        coeffs = random_coefficients(grid, seed=25)
        f_global = random_state(grid, seed=26)
        f_dist = f_global.copy()
        naive_sweep(f_global, coeffs, 2)
        layout = RankLayout(grid, 2, 1, 1)  # periodic y stays on one rank
        dist = DistributedTHIIM(layout, f_dist, coeffs)
        dist.step(2)
        assert f_global.max_abs_difference(dist.gather()) == 0.0

    def test_comm_stats_accumulate(self):
        grid = Grid(nz=8, ny=8, nx=8)
        coeffs = random_coefficients(grid, seed=35)
        layout = RankLayout(grid, 2, 1, 1)
        dist = DistributedTHIIM(layout, random_state(grid, seed=36), coeffs)
        dist.step(2)
        # Two ranks, one internal z face: 6 arrays per half step per
        # direction-relevant rank; both half steps, 2 steps.
        assert dist.stats.messages == 2 * 2 * 6
        assert dist.stats.bytes_total == dist.stats.messages * 8 * 8 * 16
        assert dist.halo_bytes_per_step() == dist.stats.bytes_total / 2
        assert dist.stats.bytes_by_axis[0] == dist.stats.bytes_total
        assert dist.stats.bytes_by_axis[2] == 0

    def test_mismatched_grid_rejected(self):
        grid = Grid(nz=8, ny=8, nx=8)
        other = Grid(nz=10, ny=8, nx=8)
        layout = RankLayout(grid, 2, 1, 1)
        with pytest.raises(ValueError):
            DistributedTHIIM(layout, FieldState(other), random_coefficients(other))

    def test_negative_steps_rejected(self):
        grid = Grid(nz=8, ny=8, nx=8)
        layout = RankLayout(grid, 1, 1, 1)
        dist = DistributedTHIIM(layout, FieldState(grid), random_coefficients(grid))
        with pytest.raises(ValueError):
            dist.step(-1)


class TestSplitEdges:
    @pytest.mark.parametrize("n,parts", [(13, 3), (8, 4), (9, 2), (2, 1)])
    def test_contiguous_exact_partition(self, n, parts):
        ranges = _split(n, parts)
        assert len(ranges) == parts
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
        sizes = {b - a for a, b in ranges}
        assert max(sizes) - min(sizes) <= 1

    def test_remainder_goes_to_leading_ranks(self):
        assert _split(10, 3) == [(0, 4), (4, 7), (7, 10)]

    @pytest.mark.parametrize("dims", [(2, 1, 1), (1, 2, 1), (1, 1, 2)])
    def test_thin_domains_raise(self, dims):
        # 3 cells on the split axis would leave one rank a 1-cell slab,
        # too thin to host a ghost ring.
        grid = Grid(nz=3, ny=3, nx=3)
        with pytest.raises(ValueError, match="cannot feed"):
            RankLayout(grid, *dims)


class TestCommStats:
    def test_record_validates_axis(self):
        stats = CommStats()
        with pytest.raises(ValueError):
            stats.record(3, 128)
        stats.record(1, 128)
        assert stats.bytes_by_axis == {0: 0, 1: 128, 2: 0}
        assert stats.messages == 1 and stats.bytes_total == 128

    def test_merge_accumulates_and_returns_self(self):
        a, b = CommStats(), CommStats()
        a.record(0, 100)
        b.record(0, 10)
        b.record(2, 5)
        out = a.merge(b)
        assert out is a
        assert a.messages == 3 and a.bytes_total == 115
        assert a.bytes_by_axis == {0: 110, 1: 0, 2: 5}

    def test_dict_round_trip(self):
        stats = CommStats()
        stats.record(2, 48)
        stats.record(2, 48)
        again = CommStats.from_dict(stats.to_dict())
        assert again.messages == stats.messages
        assert again.bytes_by_axis == stats.bytes_by_axis


class TestCandidateLayouts:
    def test_sorted_by_model_cost_and_pick_is_first(self):
        grid = Grid(nz=24, ny=12, nx=12)
        ranked = candidate_layouts(grid, 4)
        costs = [c for c, _ in ranked]
        assert costs == sorted(costs)
        assert ranked[0][1] == choose_decomposition(grid, 4)
        assert all(layout.n_ranks == 4 for _, layout in ranked)

    def test_infeasible_count_raises(self):
        with pytest.raises(ValueError):
            candidate_layouts(Grid(nz=3, ny=3, nx=3), 64)

    def test_x_halo_bytes_match_cost_model(self):
        """The non-contiguous x halo's byte count: 6 arrays per half
        step per internal face, complex128 -- measured traffic of the
        simulated ranks equals the model's per-step figure exactly."""
        grid = Grid(nz=8, ny=8, nx=10)
        layout = RankLayout(grid, 1, 1, 2)
        expected = step_bytes_by_axis(layout)
        assert expected[2] == 2 * 6 * 8 * 8 * 16  # both directions
        dist = DistributedTHIIM(layout, random_state(grid, seed=46),
                                random_coefficients(grid, seed=45))
        steps = 3
        dist.step(steps)
        assert dist.stats.bytes_by_axis[2] == steps * expected[2]
        assert dist.stats.bytes_by_axis[0] == dist.stats.bytes_by_axis[1] == 0

    def test_bytes_by_axis_covers_every_internal_face(self):
        grid = Grid(nz=20, ny=10, nx=10, periodic=(False, True, True))
        layout = RankLayout(grid, 2, 2, 1)
        expected = step_bytes_by_axis(layout)
        dist = DistributedTHIIM(layout, random_state(grid, seed=56),
                                random_coefficients(grid, seed=55))
        dist.step(2)
        assert dist.stats.bytes_by_axis == {a: 2 * b
                                            for a, b in expected.items()}
