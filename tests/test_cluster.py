"""Tests for the distributed-memory layer: decomposition geometry, the
communication cost model, and bitwise equality of the halo-exchanged
multi-rank run with the single-domain sweep."""

import numpy as np
import pytest

from repro.cluster import (
    CommCostModel,
    DistributedTHIIM,
    RankLayout,
    choose_decomposition,
)
from repro.fdfd import FieldState, Grid, naive_sweep, random_coefficients

from conftest import random_state


class TestRankLayout:
    def test_subdomains_partition_grid(self):
        grid = Grid(nz=13, ny=10, nx=9)
        layout = RankLayout(grid, pz=3, py=2, px=2)
        subs = layout.subdomains()
        assert len(subs) == 12
        total = sum(s.n_cells for s in subs.values())
        assert total == grid.n_cells
        # Ranges per axis tile exactly.
        z_ranges = sorted({s.z for s in subs.values()})
        assert z_ranges[0][0] == 0 and z_ranges[-1][1] == 13
        for (a, b), (c, d) in zip(z_ranges, z_ranges[1:]):
            assert b == c

    def test_neighbor_interior_and_edges(self):
        grid = Grid(nz=12, ny=12, nx=12)
        layout = RankLayout(grid, pz=2, py=2, px=1)
        assert layout.neighbor((0, 0, 0), 0, +1) == (1, 0, 0)
        assert layout.neighbor((1, 0, 0), 0, +1) is None
        assert layout.neighbor((0, 0, 0), 1, -1) is None

    def test_neighbor_periodic_wraps(self):
        grid = Grid(nz=12, ny=12, nx=12, periodic=(False, True, True))
        layout = RankLayout(grid, pz=1, py=2, px=1)
        assert layout.neighbor((0, 1, 0), 1, +1) == (0, 0, 0)
        # Single rank on a periodic axis wraps to itself.
        assert layout.neighbor((0, 0, 0), 2, +1) == (0, 0, 0)

    def test_too_many_ranks_rejected(self):
        grid = Grid(nz=4, ny=4, nx=4)
        with pytest.raises(ValueError):
            RankLayout(grid, pz=4, py=1, px=1)
        with pytest.raises(ValueError):
            RankLayout(grid, pz=0, py=1, px=1)


class TestCommCostModel:
    def test_x_faces_most_expensive(self):
        """Section VI: the leading-dimension halo is not contiguous."""
        m = CommCostModel()
        cells = 64 * 64
        assert m.face_cost_us(cells, 2) > m.face_cost_us(cells, 1) > m.face_cost_us(cells, 0)

    def test_choose_avoids_x_axis(self):
        grid = Grid(nz=64, ny=64, nx=64)
        layout = choose_decomposition(grid, 8)
        assert layout.px == 1  # x split only as a last resort
        assert layout.n_ranks == 8

    def test_choose_thin_domain_keeps_thin_axis_undivided(self):
        """Thin dimension mapped to x: never decomposed; the others carry
        the ranks (the paper's thin-domain argument)."""
        grid = Grid(nz=128, ny=128, nx=16)
        layout = choose_decomposition(grid, 16)
        assert layout.px == 1
        assert layout.pz * layout.py == 16

    def test_surface_to_volume_improves_with_cubes(self):
        grid = Grid(nz=64, ny=64, nx=64)
        m = CommCostModel()
        slab = RankLayout(grid, pz=8, py=1, px=1)
        cube = RankLayout(grid, pz=2, py=4, px=1)
        assert m.surface_to_volume(cube) < m.surface_to_volume(slab)

    def test_choose_validation(self):
        with pytest.raises(ValueError):
            choose_decomposition(Grid(nz=4, ny=4, nx=4), 0)
        with pytest.raises(ValueError):
            choose_decomposition(Grid(nz=3, ny=3, nx=3), 64)


class TestDistributedEqualsGlobal:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 1, 1), (1, 2, 1), (1, 1, 2),
                                       (2, 2, 1), (2, 2, 2), (3, 2, 1)])
    def test_bitwise_equality(self, dims):
        grid = Grid(nz=9, ny=8, nx=7)
        coeffs = random_coefficients(grid, seed=5)
        f_global = random_state(grid, seed=6)
        f_dist = f_global.copy()

        naive_sweep(f_global, coeffs, 3)

        layout = RankLayout(grid, *dims)
        dist = DistributedTHIIM(layout, f_dist, coeffs)
        dist.step(3)
        gathered = dist.gather()
        assert f_global.max_abs_difference(gathered) == 0.0

    def test_periodic_x_distributed(self):
        grid = Grid(nz=8, ny=8, nx=8, periodic=(False, False, True))
        coeffs = random_coefficients(grid, seed=15)
        f_global = random_state(grid, seed=16)
        f_dist = f_global.copy()
        naive_sweep(f_global, coeffs, 2)
        layout = RankLayout(grid, 2, 1, 2)  # also decomposes the periodic axis
        dist = DistributedTHIIM(layout, f_dist, coeffs)
        dist.step(2)
        assert f_global.max_abs_difference(dist.gather()) == 0.0

    def test_periodic_undecomposed_axis(self):
        grid = Grid(nz=8, ny=8, nx=8, periodic=(False, True, False))
        coeffs = random_coefficients(grid, seed=25)
        f_global = random_state(grid, seed=26)
        f_dist = f_global.copy()
        naive_sweep(f_global, coeffs, 2)
        layout = RankLayout(grid, 2, 1, 1)  # periodic y stays on one rank
        dist = DistributedTHIIM(layout, f_dist, coeffs)
        dist.step(2)
        assert f_global.max_abs_difference(dist.gather()) == 0.0

    def test_comm_stats_accumulate(self):
        grid = Grid(nz=8, ny=8, nx=8)
        coeffs = random_coefficients(grid, seed=35)
        layout = RankLayout(grid, 2, 1, 1)
        dist = DistributedTHIIM(layout, random_state(grid, seed=36), coeffs)
        dist.step(2)
        # Two ranks, one internal z face: 6 arrays per half step per
        # direction-relevant rank; both half steps, 2 steps.
        assert dist.stats.messages == 2 * 2 * 6
        assert dist.stats.bytes_total == dist.stats.messages * 8 * 8 * 16
        assert dist.halo_bytes_per_step() == dist.stats.bytes_total / 2
        assert dist.stats.bytes_by_axis[0] == dist.stats.bytes_total
        assert dist.stats.bytes_by_axis[2] == 0

    def test_mismatched_grid_rejected(self):
        grid = Grid(nz=8, ny=8, nx=8)
        other = Grid(nz=10, ny=8, nx=8)
        layout = RankLayout(grid, 2, 1, 1)
        with pytest.raises(ValueError):
            DistributedTHIIM(layout, FieldState(other), random_coefficients(other))

    def test_negative_steps_rejected(self):
        grid = Grid(nz=8, ny=8, nx=8)
        layout = RankLayout(grid, 1, 1, 1)
        dist = DistributedTHIIM(layout, FieldState(grid), random_coefficients(grid))
        with pytest.raises(ValueError):
            dist.step(-1)
