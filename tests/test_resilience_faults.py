"""Tests for the deterministic fault-injection registry."""

import pytest

from repro.resilience import faults
from repro.resilience.errors import InjectedFault
from repro.resilience.faults import CRASH_EXIT_CODE, KINDS, SITES, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.uninstall()
    faults.set_attempt(1)
    yield
    faults.uninstall()
    faults.set_attempt(1)


class TestFaultSpecParsing:
    def test_minimal(self):
        s = FaultSpec.parse("registry.read:raise")
        assert (s.site, s.kind, s.after_n, s.attempt) == \
            ("registry.read", "raise", 0, 1)

    def test_full(self):
        s = FaultSpec.parse("solver.sweep:crash:5:2")
        assert (s.site, s.kind, s.after_n, s.attempt) == \
            ("solver.sweep", "crash", 5, 2)

    def test_any_attempt(self):
        assert FaultSpec.parse("job.run:raise:0:*").attempt is None

    def test_describe_roundtrips(self):
        for text in ("a:raise:0:1", "b:crash:3:*", "c:corrupt:7:2"):
            assert FaultSpec.parse(text).describe() == text

    @pytest.mark.parametrize("bad", [
        "", "siteonly", ":raise", "site:frobnicate", "site:raise:-1",
        "site:raise:0:1:extra",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_plan_parses_comma_list(self):
        plan = FaultPlan.parse("a:raise, b:corrupt:2 ,")
        assert [s.site for s in plan.specs] == ["a", "b"]

    def test_unknown_site_is_legal_and_inert(self):
        plan = FaultPlan.parse("no.such.site:raise")
        assert plan.hit("registry.read") is None


class TestDeterminism:
    def test_seeded_is_reproducible(self):
        a = FaultPlan.seeded(7, "solver.sweep", "crash", max_after=12)
        b = FaultPlan.seeded(7, "solver.sweep", "crash", max_after=12)
        assert a.env_value() == b.env_value()
        assert 0 <= a.specs[0].after_n < 12

    def test_seeds_spread_the_injection_point(self):
        points = {FaultPlan.seeded(s, "x", "raise", 100).specs[0].after_n
                  for s in range(30)}
        assert len(points) > 5

    def test_fires_at_exactly_after_n(self):
        plan = faults.install(FaultPlan.parse("s:raise:2"))
        assert faults.hit("s") is None
        assert faults.hit("s") is None
        with pytest.raises(InjectedFault, match="injected failure at s"):
            faults.hit("s")
        assert faults.hit("s") is None  # fires once, not repeatedly
        assert plan.counts() == {"s": 4}
        assert plan.fired() == ["s:raise:2:1"]


class TestActivation:
    def test_env_var_activates_and_reparses(self, monkeypatch):
        assert faults.active() is None
        monkeypatch.setenv("REPRO_FAULTS", "a:raise")
        plan = faults.active()
        assert plan is not None and plan.specs[0].site == "a"
        assert faults.active() is plan  # same source -> cached counters
        monkeypatch.setenv("REPRO_FAULTS", "b:raise")
        assert faults.active().specs[0].site == "b"

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "a:raise")
        mine = faults.install(FaultPlan.parse("b:raise"))
        assert faults.active() is mine
        faults.uninstall()
        assert faults.active().specs[0].site == "a"

    def test_hit_is_inert_without_plan(self):
        assert faults.hit("anything") is None

    def test_attempt_filter(self):
        faults.install(FaultPlan.parse("s:raise:0:1"))
        faults.set_attempt(2)
        assert faults.hit("s") is None  # attempt 2: spec pinned to 1
        faults.install(FaultPlan.parse("s:raise:0:*"))
        with pytest.raises(InjectedFault):
            faults.hit("s")

    def test_corrupt_kind_returned_to_site(self):
        faults.install(FaultPlan.parse("s:corrupt"))
        assert faults.hit("s") == "corrupt"

    def test_fired_summary_shapes(self):
        assert faults.fired_summary() == {"active": False, "specs": [],
                                          "fired": []}
        faults.install(FaultPlan.parse("s:corrupt:1"))
        faults.hit("s")
        faults.hit("s")
        summary = faults.fired_summary()
        assert summary["active"] is True
        assert summary["fired"] == ["s:corrupt:1:1"]


class TestTrigger:
    def test_raise_message_names_site_and_reason(self):
        with pytest.raises(InjectedFault, match=r"at job.fault \(fail_once\)"):
            faults.trigger("job.fault", "raise", reason="fail_once")

    def test_inline_crash_degrades_to_exception(self):
        with pytest.raises(InjectedFault, match="inline worker"):
            faults.trigger("s", "crash", in_child=False)

    def test_crash_exit_code_distinct_from_legacy(self):
        assert CRASH_EXIT_CODE == 43

    def test_site_and_kind_tables(self):
        assert "solver.sweep" in SITES and "checkpoint.write" in SITES
        assert set(KINDS) == {"raise", "crash", "corrupt"}
