"""Unit tests for auto-tuner internals and simulator result handling."""

import pytest

from repro.core.autotuner import (
    DW_MIN,
    _dw_candidates,
    grid_lups,
    simulate_grid_lups,
    tune_spatial,
    tune_tiled,
)
from repro.core.models import cache_block_size
from repro.machine import HASWELL_EP
from repro.machine.simulator import SimResult


class TestDwCandidates:
    BUDGET = HASWELL_EP.usable_l3_bytes

    def test_top_widths_fit(self):
        cands = _dw_candidates(n_groups=1, bz=1, nx=384, budget=self.BUDGET)
        assert cands
        top = cands[0]
        assert cache_block_size(top, 1, 384) <= self.BUDGET * 1.1
        assert cache_block_size(top + 2, 1, 384) > self.BUDGET * 1.1

    def test_descending_order(self):
        cands = _dw_candidates(n_groups=1, bz=1, nx=384, budget=self.BUDGET)
        assert cands == sorted(cands, reverse=True)
        assert all(c % 2 == 0 and c >= DW_MIN for c in cands)

    def test_fallback_to_minimum(self):
        """When nothing fits (many groups, big rows) the minimum diamond
        is still returned -- the 1WD thrashing regime."""
        cands = _dw_candidates(n_groups=18, bz=9, nx=512, budget=self.BUDGET)
        assert cands == [DW_MIN]

    def test_more_groups_smaller_diamonds(self):
        one = _dw_candidates(1, 1, 384, self.BUDGET)[0]
        many = _dw_candidates(6, 1, 384, self.BUDGET)[0]
        assert many <= one


class TestTunedPointApi:
    def test_spatial_point_fields(self):
        p = tune_spatial(HASWELL_EP, 128, 4)
        assert p.variant == "spatial"
        assert p.dw is None and p.tg is None
        assert p.block_y is not None
        assert p.tg_size == 1
        assert p.mlups > 0

    def test_tiled_point_fields(self):
        p = tune_tiled(HASWELL_EP, 128, 4, tg_size=2, variant="2WD")
        assert p.variant == "2WD"
        assert p.dw is not None and p.bz is not None and p.tg is not None
        assert p.tg.size == 2
        assert "2WD@4t" in p.describe()

    def test_results_cached(self):
        a = tune_spatial(HASWELL_EP, 128, 4)
        b = tune_spatial(HASWELL_EP, 128, 4)
        assert a is b  # lru_cache identity

    def test_grid_lups(self):
        assert grid_lups(64, timesteps=10) == 64**3 * 10


class TestSimResult:
    def test_scaled_to_preserves_rates(self):
        r = SimResult(mlups=100.0, bandwidth_gbs=20.0, bytes_per_lup=200.0,
                      seconds=1.0, lups=1e8, threads=18)
        s = r.scaled_to(2e8)
        assert s.mlups == r.mlups
        assert s.bandwidth_gbs == r.bandwidth_gbs
        assert s.seconds == pytest.approx(2.0)
        assert s.lups == 2e8

    def test_simulate_grid_lups(self):
        p = tune_spatial(HASWELL_EP, 128, 4)
        full = simulate_grid_lups(p, 256, timesteps=50)
        assert full.lups == 256**3 * 50
        assert full.mlups == pytest.approx(p.mlups)

    def test_tuner_threads_bounds(self):
        with pytest.raises(ValueError):
            tune_spatial(HASWELL_EP, 128, 0)
