"""Ring buffers, the forked-worker event sink, and the disabled-path
overhead contract of the progress hub."""

import json
import os
import time

import pytest

from repro import telemetry
from repro.telemetry import JobContext
from repro.telemetry.progress import ProgressHub, RingBuffer, event_file


@pytest.fixture(autouse=True)
def _isolate_telemetry_state():
    """Restore the global gate and job context around every test."""
    was_on = telemetry.enabled()
    ctx = telemetry.current()
    yield
    telemetry.enable(force=True) if was_on else telemetry.disable()
    telemetry.set_current(ctx)


class TestRingBuffer:
    def test_append_stamps_monotonic_seq(self):
        ring = RingBuffer(capacity=8)
        events = [ring.append({"kind": "progress", "sweeps": i})
                  for i in range(3)]
        assert [e["seq"] for e in events] == [0, 1, 2]

    def test_overflow_drops_oldest(self):
        ring = RingBuffer(capacity=4)
        for i in range(10):
            ring.append({"kind": "progress", "sweeps": i})
        events, cursor, missed = ring.since(-1)
        assert [e["sweeps"] for e in events] == [6, 7, 8, 9]
        assert cursor == 9
        assert missed == 6
        assert ring.dropped == 6
        assert len(ring) == 4

    def test_overflow_never_grows_the_buffer(self):
        ring = RingBuffer(capacity=2)
        for i in range(1000):
            ring.append({"kind": "progress", "sweeps": i})
        assert len(ring) == 2  # bounded: the solver never blocks on readers

    def test_cursor_resumes_where_it_left_off(self):
        ring = RingBuffer(capacity=16)
        for i in range(5):
            ring.append({"i": i})
        events, cursor, missed = ring.since(-1)
        assert len(events) == 5 and missed == 0
        assert ring.since(cursor) == ([], 4, 0)
        ring.append({"i": 5})
        events, cursor, missed = ring.since(cursor)
        assert [e["i"] for e in events] == [5] and missed == 0

    def test_keeping_up_reader_misses_nothing(self):
        ring = RingBuffer(capacity=4)
        cursor = -1
        for i in range(20):
            ring.append({"i": i})
            events, cursor, missed = ring.since(cursor)
            assert missed == 0 and [e["i"] for e in events] == [i]

    def test_end_event_closes(self):
        ring = RingBuffer()
        ring.append({"kind": "progress"})
        assert not ring.closed
        ring.append({"kind": "end"})
        assert ring.closed

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)


class TestProgressHub:
    def test_publish_and_read(self):
        hub = ProgressHub()
        hub.publish("job-1", "state", state="running")
        hub.publish("job-1", "progress", sweeps=20, residual=0.5)
        events, cursor, missed = hub.events_since("job-1")
        assert [e["kind"] for e in events] == ["state", "progress"]
        assert all("t" in e and "seq" in e for e in events)
        assert missed == 0
        assert hub.published == 2

    def test_jobs_are_isolated(self):
        hub = ProgressHub()
        hub.publish("a", "progress", sweeps=1)
        hub.publish("b", "progress", sweeps=2)
        events, _, _ = hub.events_since("a")
        assert [e["sweeps"] for e in events] == [1]

    def test_dropped_total_sums_rings(self):
        hub = ProgressHub(capacity=2)
        for i in range(5):
            hub.publish("a", "progress", sweeps=i)
            hub.publish("b", "progress", sweeps=i)
        assert hub.dropped_total() == 6

    def test_end_closes_the_ring(self):
        hub = ProgressHub()
        hub.end("job-1", state="done")
        events, _, _ = hub.events_since("job-1")
        assert events[-1]["kind"] == "end"
        assert hub.buffer("job-1").closed


class TestFileSink:
    """The forked-worker path: child appends JSONL, parent tails."""

    def test_sink_and_tail_round_trip(self, tmp_path):
        child = ProgressHub()
        child.configure_sink(str(tmp_path))
        child.publish("job-1", "progress", sweeps=20, residual=0.25)
        child.publish("job-1", "checkpoint", sweeps=40)
        child.close_sink()

        parent = ProgressHub()
        parent.configure_tail(str(tmp_path))
        events, _, missed = parent.events_since("job-1")
        assert [e["kind"] for e in events] == ["progress", "checkpoint"]
        assert events[0]["residual"] == 0.25
        assert missed == 0
        # Parent re-stamps seq in its own ring.
        assert [e["seq"] for e in events] == [0, 1]

    def test_tail_is_incremental(self, tmp_path):
        child = ProgressHub()
        child.configure_sink(str(tmp_path))
        parent = ProgressHub()
        parent.configure_tail(str(tmp_path))

        child.publish("j", "progress", sweeps=1)
        assert parent.sync_job("j") == 1
        child.publish("j", "progress", sweeps=2)
        child.publish("j", "progress", sweeps=3)
        assert parent.sync_job("j") == 2
        assert parent.sync_job("j") == 0

    def test_torn_tail_line_is_deferred(self, tmp_path):
        parent = ProgressHub()
        parent.configure_tail(str(tmp_path))
        path = event_file(str(tmp_path), "j")
        with open(path, "w") as f:
            f.write(json.dumps({"kind": "progress", "sweeps": 1}) + "\n")
            f.write('{"kind": "progress", "swee')  # torn mid-write
        assert parent.sync_job("j") == 1
        with open(path, "a") as f:
            f.write('ps": 2}\n')
        assert parent.sync_job("j") == 1
        events, _, _ = parent.events_since("j")
        assert [e["sweeps"] for e in events] == [1, 2]

    def test_missing_file_is_a_quiet_noop(self, tmp_path):
        parent = ProgressHub()
        parent.configure_tail(str(tmp_path))
        assert parent.sync_job("nope") == 0

    def test_sink_file_name(self, tmp_path):
        assert event_file(str(tmp_path), "abc").endswith("events-abc.jsonl")


class TestGate:
    def test_publish_is_noop_when_disabled(self):
        telemetry.disable()
        telemetry.set_current(JobContext(job_id="j", trace_id="t"))
        before = telemetry.PROGRESS.published
        telemetry.publish("progress", sweeps=1)
        assert telemetry.PROGRESS.published == before

    def test_publish_is_noop_without_context(self):
        telemetry.enable(force=True)
        telemetry.set_current(None)
        before = telemetry.PROGRESS.published
        telemetry.publish("progress", sweeps=1)
        assert telemetry.PROGRESS.published == before

    def test_publish_records_with_context_and_enabled(self):
        telemetry.enable(force=True)
        telemetry.set_current(JobContext(job_id="gate-j", trace_id="t"))
        telemetry.publish("progress", sweeps=7)
        events, _, _ = telemetry.PROGRESS.events_since("gate-j")
        assert events[-1]["sweeps"] == 7
        telemetry.PROGRESS.forget("gate-j")

    def test_env_veto_blocks_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        telemetry.refresh_from_env()
        try:
            assert telemetry.enable() is False
            assert not telemetry.enabled()
            assert telemetry.enable(force=True) is True
        finally:
            monkeypatch.delenv("REPRO_TELEMETRY")
            telemetry.refresh_from_env()

    def test_env_truthy_enables_at_import(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        telemetry.refresh_from_env()
        try:
            assert telemetry.enabled()
        finally:
            monkeypatch.delenv("REPRO_TELEMETRY")
            telemetry.refresh_from_env()


def test_disabled_publish_overhead_is_under_two_percent():
    """The disabled hook costs one attribute load + bool check; per
    convergence check that must be <2% of the cheapest real check work
    (a single-sweep advance on a tiny grid)."""
    import numpy as np

    from repro.fdfd import FieldState, Grid, naive_sweep, random_coefficients

    telemetry.disable()
    telemetry.set_current(JobContext(job_id="bench", trace_id="t"))

    n = 50_000
    t0 = time.perf_counter()
    for _ in range(n):
        telemetry.publish("progress", sweeps=1, residual=0.5)
    publish_cost = (time.perf_counter() - t0) / n

    grid = Grid(nz=16, ny=8, nx=8)
    coeffs = random_coefficients(grid, seed=3)
    fields = FieldState(grid).fill_random(np.random.default_rng(4))
    naive_sweep(fields, coeffs, 1)  # warm-up
    t0 = time.perf_counter()
    reps = 5
    for _ in range(reps):
        naive_sweep(fields, coeffs, 1)
    sweep_cost = (time.perf_counter() - t0) / reps

    # One publish per convergence check, >= 1 sweep per check: the
    # disabled path must stay far below 2% of even this minimal work.
    assert publish_cost < 0.02 * sweep_cost, (
        f"disabled publish {publish_cost * 1e9:.0f} ns vs "
        f"sweep {sweep_cost * 1e6:.0f} us")
