"""Tests for the REPRO_* flag registry and the atomic write helpers."""

import glob
import json
import os
import re
import threading

import pytest

from repro import config
from repro.ioutil import atomic_write_json, atomic_write_text, read_json


class TestFlagRegistry:
    def test_every_flag_read_in_src_is_documented(self):
        """Any ``REPRO_*`` name mentioned in the source tree must be a
        declared flag (the whole point of the registry)."""
        src_root = os.path.join(os.path.dirname(config.__file__))
        found = set()
        for path in glob.glob(os.path.join(src_root, "**", "*.py"),
                              recursive=True):
            with open(path, encoding="utf-8") as f:
                found |= set(re.findall(r"REPRO_[A-Z_]+", f.read()))
        assert found  # the scan saw the tree
        assert found <= set(config.FLAGS), (
            f"undocumented flags: {sorted(found - set(config.FLAGS))}"
        )

    def test_no_stray_environment_reads(self):
        """``os.environ.get("REPRO_...`` belongs in config.py only
        (writes, e.g. the bench engine override, are allowed)."""
        src_root = os.path.dirname(config.__file__)
        offenders = []
        for path in glob.glob(os.path.join(src_root, "**", "*.py"),
                              recursive=True):
            if os.path.basename(path) == "config.py":
                continue
            with open(path, encoding="utf-8") as f:
                if re.search(r"environ\.get\(\s*[\"']REPRO_", f.read()):
                    offenders.append(os.path.relpath(path, src_root))
        assert not offenders, f"direct REPRO_* reads outside config: {offenders}"

    def test_describe_covers_all_flags(self):
        rows = config.describe()
        assert {r["flag"] for r in rows} == set(config.FLAGS)
        for r in rows:
            assert r["description"] and r["default"]

    def test_raw_reflects_environment(self, monkeypatch):
        flag = config.FLAGS["REPRO_TUNE_WORKERS"]
        monkeypatch.delenv("REPRO_TUNE_WORKERS", raising=False)
        assert flag.raw is None
        monkeypatch.setenv("REPRO_TUNE_WORKERS", "4")
        assert flag.raw == "4"


class TestAccessors:
    def test_tune_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNE_WORKERS", raising=False)
        assert config.tune_workers() == 1
        monkeypatch.setenv("REPRO_TUNE_WORKERS", "6")
        assert config.tune_workers() == 6
        monkeypatch.setenv("REPRO_TUNE_WORKERS", "0")
        assert config.tune_workers() == 1  # clamped
        monkeypatch.setenv("REPRO_TUNE_WORKERS", "many")
        assert config.tune_workers() == 1  # malformed -> serial

    def test_path_flags_default_to_none(self, monkeypatch):
        for name, accessor in [
            ("REPRO_TUNE_CACHE", config.tune_cache_dir),
            ("REPRO_TRACE", config.trace_path),
            ("REPRO_REGISTRY_DIR", config.registry_dir),
            ("REPRO_RESULT_DIR", config.result_dir),
        ]:
            monkeypatch.delenv(name, raising=False)
            assert accessor() is None
            monkeypatch.setenv(name, "")
            assert accessor() is None  # empty string means unset
            monkeypatch.setenv(name, "/some/where")
            assert accessor() == "/some/where"

    def test_native_disabled_is_truthiness(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_NATIVE", raising=False)
        assert not config.native_disabled()
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        assert config.native_disabled()
        monkeypatch.setenv("REPRO_NO_NATIVE", "")
        assert not config.native_disabled()

    def test_stream_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM_ENGINE", raising=False)
        assert config.stream_engine() is None
        monkeypatch.setenv("REPRO_STREAM_ENGINE", "reference")
        assert config.stream_engine() == "reference"

    def test_native_build_dir_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_BUILD_DIR", raising=False)
        assert config.native_build_dir("/d") == "/d"
        monkeypatch.setenv("REPRO_NATIVE_BUILD_DIR", "/e")
        assert config.native_build_dir("/d") == "/e"


class TestAtomicWrites:
    def test_roundtrip_and_cleanup(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"a": 1, "pi": 3.141592653589793})
        assert read_json(path) == {"a": 1, "pi": 3.141592653589793}
        assert os.listdir(tmp_path) == ["doc.json"]  # no temp debris

    def test_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "doc.txt")
        atomic_write_text(path, "hello")
        assert open(path).read() == "hello"

    def test_replace_is_all_or_nothing(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"v": 1})

        class Exploding:
            """json.dumps cannot serialize this -> write fails mid-way."""

        with pytest.raises(TypeError):
            atomic_write_json(path, {"v": Exploding()})
        assert read_json(path) == {"v": 1}  # old content intact
        assert os.listdir(tmp_path) == ["doc.json"]

    def test_read_json_misses_never_raise(self, tmp_path):
        assert read_json(str(tmp_path / "absent.json")) is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"half": ')
        assert read_json(str(torn)) is None

    def test_concurrent_writers_never_tear(self, tmp_path):
        """The REPRO_TUNE_CACHE regression: many threads rewriting one
        path; every read observes one complete payload, never a splice."""
        path = str(tmp_path / "cache.json")
        payloads = [{"writer": i, "fill": "x" * 4096} for i in range(8)]
        stop = threading.Event()
        errors = []

        def writer(payload):
            while not stop.is_set():
                try:
                    atomic_write_json(path, payload)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer, args=(p,))
                   for p in payloads]
        for t in threads:
            t.start()
        try:
            import time

            seen = set()
            deadline = time.monotonic() + 30.0
            # Read until we have provably raced >= 2 distinct writers
            # (bounded by a generous deadline, not a fixed read count --
            # a loaded machine can starve the writer threads).
            while len(seen) < 2 and time.monotonic() < deadline:
                doc = read_json(path)
                if doc is not None:
                    assert doc["fill"] == "x" * 4096  # complete, untorn
                    seen.add(doc["writer"])
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
        assert not errors
        assert len(seen) >= 2  # the readers really raced multiple writers
        leftovers = [f for f in os.listdir(tmp_path) if f != "cache.json"]
        assert not leftovers  # every temp file was consumed by os.replace


class TestTuneCachePersistence:
    def test_tune_cache_files_are_atomic_json(self, tmp_path, monkeypatch):
        """REPRO_TUNE_CACHE entries go through atomic_write_json: valid
        JSON on disk, no temp debris, reread on a cold lru_cache."""
        from repro.core.autotuner import tune_spatial
        from repro.machine import HASWELL_EP

        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path))
        tune_spatial.cache_clear()
        try:
            first = tune_spatial(HASWELL_EP, 64, 2)
            files = os.listdir(tmp_path)
            assert len(files) == 1 and files[0].endswith(".json")
            doc = json.load(open(tmp_path / files[0]))
            assert doc["point"]["variant"] == "spatial"

            tune_spatial.cache_clear()  # force the disk path
            again = tune_spatial(HASWELL_EP, 64, 2)
            assert (again.block_y, again.threads) == (first.block_y,
                                                      first.threads)
            assert again.result.mlups == first.result.mlups
        finally:
            tune_spatial.cache_clear()  # drop points tied to tmp_path
