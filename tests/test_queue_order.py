"""TileQueue under out-of-order completion (multi-worker schedules).

The FIFO tile queue of the paper is exercised elsewhere through
``drain_serial`` (one worker, pop-complete-pop).  Real TGs complete
tiles *out of order*: several tiles are in flight at once and a later
pop may finish first.  These tests drive that protocol directly and pin
down the two properties the executors rely on: every dependent is
enqueued exactly once (by the completion that clears its last
predecessor), and the pop order is a deterministic function of the
completion schedule.
"""

import pytest

from repro.core.plan import TilingPlan
from repro.core.queue import TileQueue


def _plan(ny=24, nz=16, timesteps=8, dw=4, bz=2):
    return TilingPlan.build(ny=ny, nz=nz, timesteps=timesteps, dw=dw, bz=bz)


def _drain_with_workers(queue, n_workers, finish_policy):
    """Run the protocol with ``n_workers`` slots; ``finish_policy`` picks
    which in-flight tile completes next.  Returns (pop_order,
    completion_order, enqueue_events)."""
    pops, completions, enqueued = [], [], []
    in_flight = []
    while not queue.exhausted:
        # Fill the worker slots greedily (TGs pop as soon as they idle).
        while len(in_flight) < n_workers:
            idx = queue.pop()
            if idx is None:
                break
            pops.append(idx)
            in_flight.append(idx)
        if not in_flight:
            raise AssertionError("deadlock: nothing in flight, queue empty")
        victim = finish_policy(in_flight)
        in_flight.remove(victim)
        completions.append(victim)
        enqueued.extend(queue.complete(victim))
    return pops, completions, enqueued


class TestOutOfOrderCompletion:
    @pytest.mark.parametrize("n_workers", [2, 3, 4])
    def test_lifo_completion_enqueues_dependents_exactly_once(self, n_workers):
        plan = _plan()
        queue = TileQueue(plan)
        # Worst-case inversion: the most recently popped tile always
        # finishes first (pure LIFO completion).
        pops, _completions, enqueued = _drain_with_workers(
            queue, n_workers, finish_policy=lambda fl: fl[-1]
        )
        assert len(pops) == len(plan.tiles)
        assert len(set(pops)) == len(plan.tiles)  # no tile popped twice
        # Every non-root tile was enqueued by exactly one completion.
        roots = [idx for idx in plan.tiles if not plan.preds[idx]]
        assert sorted(enqueued) == sorted(set(plan.tiles) - set(roots))
        assert queue.exhausted and queue.done_count == len(plan.tiles)

    def test_out_of_order_respects_dependencies(self):
        plan = _plan()
        queue = TileQueue(plan)
        done = set()
        in_flight = []
        while not queue.exhausted:
            while len(in_flight) < 3:
                idx = queue.pop()
                if idx is None:
                    break
                # A tile may only become ready once every predecessor
                # has completed.
                assert set(plan.preds[idx]) <= done
                in_flight.append(idx)
            victim = in_flight.pop(0)
            done.add(victim)
            queue.complete(victim)
        assert done == set(plan.tiles)

    def test_fixed_schedule_is_deterministic(self):
        """Same plan + same completion schedule -> identical pop order,
        run after run (the FIFO queue has no hidden state)."""
        plan = _plan()

        def run():
            queue = TileQueue(plan)
            # Deterministic mixed policy: alternate finishing the oldest
            # and the newest in-flight tile.
            toggle = [0]

            def policy(fl):
                toggle[0] ^= 1
                return fl[0] if toggle[0] else fl[-1]

            return _drain_with_workers(queue, 3, policy)

        first = run()
        for _ in range(3):
            assert run() == first

    def test_serial_and_parallel_complete_same_tile_set(self):
        plan = _plan()
        serial = TileQueue(plan).drain_serial()
        pops, _, _ = _drain_with_workers(
            TileQueue(plan), 4, finish_policy=lambda fl: fl[-1]
        )
        assert sorted(pops) == sorted(serial)

    def test_initial_ready_set_is_sorted(self):
        plan = _plan()
        queue = TileQueue(plan)
        roots = sorted(idx for idx in plan.tiles if not plan.preds[idx])
        assert [queue.pop() for _ in range(len(roots))] == roots


class TestProtocolErrors:
    def test_complete_requires_in_flight(self):
        queue = TileQueue(_plan())
        some_tile = next(iter(queue.plan.tiles))
        with pytest.raises(ValueError, match="not in flight"):
            queue.complete(some_tile)

    def test_double_complete_rejected(self):
        queue = TileQueue(_plan())
        idx = queue.pop()
        queue.complete(idx)
        with pytest.raises(ValueError, match="not in flight"):
            queue.complete(idx)

    def test_pop_on_empty_returns_none(self):
        queue = TileQueue(_plan())
        drained = [queue.pop() for _ in range(queue.ready_count)]
        assert all(d is not None for d in drained)
        assert queue.pop() is None  # momentarily empty, not an error

    def test_drain_serial_matches_fifo_order_property(self):
        plan = _plan()
        order = TileQueue(plan).drain_serial()
        seen = set()
        for idx in order:
            assert set(plan.preds[idx]) <= seen
            seen.add(idx)
        assert seen == set(plan.tiles)
