"""Batch campaign jobs through the service layer.

Covers the batch :class:`JobSpec` (validation, content-addressed
identity, per-point spec derivation), the dedup/fan-out contract of
``run_job`` on batch jobs, and the two isolation regressions from the
batch axis:

* a batched checkpoint token can never collide with -- or be resumed
  from -- a per-point snapshot (mismatches quarantine, they do not
  poison the solve);
* ``PlanRegistry.key`` keeps width-tagged entries in a namespace
  disjoint from every pre-batch key.
"""

import os

import pytest

from repro.machine import HASWELL_EP
from repro.resilience import faults
from repro.resilience.checkpoint import (
    CheckpointManager,
    batched_solver_token,
    solver_token,
)
from repro.resilience.errors import InjectedFault
from repro.resilience.faults import FaultPlan
from repro.service import JobSpec, ResultStore, Scheduler, run_job
from repro.service.registry import PlanRegistry

BATCH = dict(kind="batch", preset="absorber", grid=10, tol=1e-4,
             max_steps=60, threads=2, wavelengths=(10.0, 11.0, 12.0))


class TestBatchSpec:
    @pytest.mark.parametrize("bad", [
        dict(wavelengths=None),
        dict(wavelengths=()),
        dict(wavelengths=(10.0, -1.0)),
        dict(wavelengths=(10.0, 10.0)),        # duplicates
    ])
    def test_rejects_bad_wavelengths(self, bad):
        with pytest.raises(ValueError):
            JobSpec(**{**BATCH, **bad})

    def test_rejects_wavelengths_on_non_batch_kinds(self):
        with pytest.raises(ValueError, match="only valid for kind='batch'"):
            JobSpec(kind="solve", preset="absorber", grid=10,
                    wavelength=10.0, wavelengths=(10.0, 11.0))

    def test_wavelengths_normalized_to_float_tuple(self):
        spec = JobSpec(**{**BATCH, "wavelengths": [10, 11, 12]})
        assert spec.wavelengths == (10.0, 11.0, 12.0)
        assert spec.job_id == JobSpec(**BATCH).job_id

    def test_identity_is_the_wavelength_set(self):
        a = JobSpec(**BATCH)
        assert JobSpec(**{**BATCH, "wavelengths": (10.0, 11.0)}).job_id != a.job_id
        # The scalar wavelength field is inert for batch identity.
        assert JobSpec(**BATCH, wavelength=99.0).job_id == a.job_id
        assert a.identity()["wavelength"] is None

    def test_point_spec_matches_direct_per_point_submission(self):
        batch = JobSpec(**BATCH, wavelength=99.0)
        for w in BATCH["wavelengths"]:
            point = batch.point_spec(w)
            direct = JobSpec(kind="solve", preset="absorber", grid=10,
                             tol=1e-4, max_steps=60, threads=2, wavelength=w)
            assert point.job_id == direct.job_id
            assert "wavelengths" not in point.identity()

    def test_point_spec_only_on_batch(self):
        solve = JobSpec(kind="solve", preset="absorber", grid=10,
                        wavelength=10.0)
        with pytest.raises(ValueError):
            solve.point_spec(10.0)


class TestBatchRunJob:
    def test_dedup_and_bit_identical_fanout(self):
        spec = JobSpec(**BATCH)
        direct = {w: run_job(spec.point_spec(w))
                  for w in spec.wavelengths}

        store = ResultStore()
        store.put(spec.point_spec(10.0).job_id, direct[10.0])

        result = run_job(spec, store=store)
        assert result["kind"] == "batch"
        assert result["batch_width"] == 3
        assert result["dedup_hits"] == 1
        assert result["solved"] == 2
        assert result["failed"] == 0
        for point in result["points"]:
            w = point["wavelength"]
            assert point["from_store"] == (w == 10.0)
            assert point["result"] == direct[w]
            assert store.get(point["id"]) == direct[w]

    def test_fully_stored_batch_solves_nothing(self):
        spec = JobSpec(**BATCH)
        store = ResultStore()
        first = run_job(spec, store=store)
        again = run_job(spec, store=store)
        assert again["dedup_hits"] == 3 and again["solved"] == 0
        assert [p["result"] for p in again["points"]] == \
            [p["result"] for p in first["points"]]

    def test_per_point_submission_after_batch_is_a_store_hit(self):
        spec = JobSpec(**BATCH)
        store = ResultStore()
        batch_result = run_job(spec, store=store)

        sched = Scheduler(workers=1, store=store, mode="thread").start()
        try:
            job = sched.wait(sched.submit(spec.point_spec(11.0)).id,
                             timeout=60.0)
        finally:
            sched.stop()
        assert job.from_store is True
        assert job.result == batch_result["points"][1]["result"]


class TestBatchCheckpointIsolation:
    """Satellite regression: batch-width-tagged checkpoint tokens keep a
    batched snapshot and a per-point snapshot mutually unresumable."""

    def _solvers(self, spec):
        import numpy as np

        from repro.fdfd import BatchedTHIIMSolver, THIIMSolver
        from repro.service.jobs import _solve_geometry

        grid, scene, source_plane, source, pml = _solve_geometry(spec)
        omegas = [2 * np.pi / w for w in spec.wavelengths]
        scalar = THIIMSolver(grid, omegas[0], scene=scene, source=source,
                             pml=pml)
        batched = BatchedTHIIMSolver(grid, omegas, scene=scene,
                                     source=source, pml=pml)
        return scalar, batched

    def test_tokens_are_disjoint(self):
        spec = JobSpec(**BATCH)
        scalar, batched = self._solvers(spec)
        cadence = dict(tol=spec.tol, max_steps=spec.max_steps, check_every=20)
        b3 = batched_solver_token(batched, **cadence)
        assert b3.startswith("b")
        assert b3 != solver_token(scalar, **cadence)
        # Width itself is part of the hash: a width-1 batch of the same
        # scene still cannot resume a scalar snapshot.
        _, batched1 = self._solvers(
            JobSpec(**{**BATCH, "wavelengths": (10.0,)}))
        assert batched_solver_token(batched1, **cadence) != \
            solver_token(scalar, **cadence)
        _, batched2 = self._solvers(
            JobSpec(**{**BATCH, "wavelengths": (10.0, 11.0)}))
        assert batched_solver_token(batched2, **cadence) != b3

    def test_foreign_scalar_snapshot_is_quarantined_not_resumed(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "20")
        spec = JobSpec(**BATCH)
        clean = run_job(spec)

        # Plant a *scalar* snapshot under the batch job's checkpoint name.
        scalar, _ = self._solvers(spec)
        cadence = dict(tol=spec.tol, max_steps=spec.max_steps, check_every=20)
        foreign = CheckpointManager(
            str(tmp_path), name=spec.job_id,
            token=solver_token(scalar, **cadence), every=20)
        foreign.save(scalar.fields, steps=20, history=[1.0])
        assert os.path.exists(foreign.path)

        result = run_job(spec, checkpoint_dir=str(tmp_path))
        # The mismatched snapshot was moved aside, not resumed from and
        # not left to poison retries; the solve restarted from sweep 0.
        assert os.path.exists(foreign.path + ".corrupt")
        assert result == clean

    def test_crash_resume_is_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "20")
        spec = JobSpec(**BATCH)
        clean = run_job(spec)

        faults.install(FaultPlan.parse("solver.sweep:raise:2"))
        try:
            with pytest.raises(InjectedFault):
                run_job(spec, checkpoint_dir=str(tmp_path))
        finally:
            faults.uninstall()

        resumed = run_job(spec, checkpoint_dir=str(tmp_path))
        assert resumed == clean


class TestRegistryBatchNamespace:
    def test_default_key_is_the_pre_batch_key(self):
        key = PlanRegistry.key(HASWELL_EP, grid=16, threads=4)
        assert PlanRegistry.key(HASWELL_EP, grid=16, threads=4,
                                batch=None) == key

    def test_width_tagged_keys_are_disjoint(self):
        base = PlanRegistry.key(HASWELL_EP, grid=16, threads=4)
        b4 = PlanRegistry.key(HASWELL_EP, grid=16, threads=4, batch=4)
        b8 = PlanRegistry.key(HASWELL_EP, grid=16, threads=4, batch=8)
        assert len({base, b4, b8}) == 3
