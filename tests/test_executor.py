"""The headline correctness contract: tiled execution == naive sweep,
for any valid plan configuration and any topological tile order, plus the
FIFO queue protocol tests."""

import numpy as np
import pytest

from repro.core import TiledExecutor, TileQueue, TilingPlan
from repro.fdfd import (
    FieldState,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    THIIMSolver,
    naive_sweep,
    random_coefficients,
)

from conftest import random_state


def run_pair(grid, plan, seed=5, nsteps=None):
    coeffs = random_coefficients(grid, seed=seed)
    f_naive = random_state(grid, seed=seed + 1)
    f_tiled = f_naive.copy()
    naive_sweep(f_naive, coeffs, plan.timesteps)
    TiledExecutor(f_tiled, coeffs, plan).run()
    return f_naive, f_tiled


class TestTiledEqualsNaive:
    @pytest.mark.parametrize(
        "ny,nz,T,dw,bz",
        [
            (8, 8, 4, 2, 1),
            (12, 10, 6, 4, 1),
            (12, 10, 6, 4, 3),
            (16, 12, 8, 4, 2),
            (16, 16, 4, 8, 1),
            (16, 16, 10, 8, 4),
            (9, 7, 5, 2, 2),     # odd, non-divisible extents
            (10, 11, 7, 6, 5),
            (24, 6, 3, 12, 1),   # diamond wider than the horizon
            (6, 20, 2, 4, 7),    # bz larger than needed
        ],
    )
    def test_exact_equality(self, ny, nz, T, dw, bz):
        grid = Grid(nz=nz, ny=ny, nx=4)
        plan = TilingPlan.build(ny=ny, nz=nz, timesteps=T, dw=dw, bz=bz)
        f_naive, f_tiled = run_pair(grid, plan)
        # Same arithmetic in the same per-cell order: bitwise equality.
        assert f_naive.max_abs_difference(f_tiled) == 0.0

    def test_periodic_x_supported(self):
        grid = Grid(nz=8, ny=8, nx=6, periodic=(False, False, True))
        plan = TilingPlan.build(ny=8, nz=8, timesteps=4, dw=4, bz=2)
        f_naive, f_tiled = run_pair(grid, plan)
        assert f_naive.max_abs_difference(f_tiled) == 0.0

    def test_periodic_y_rejected(self):
        grid = Grid(nz=8, ny=8, nx=4, periodic=(False, True, False))
        plan = TilingPlan.build(ny=8, nz=8, timesteps=4, dw=4, bz=1)
        with pytest.raises(ValueError):
            TiledExecutor(random_state(grid), random_coefficients(grid), plan)

    def test_periodic_z_rejected(self):
        grid = Grid(nz=8, ny=8, nx=4, periodic=(True, False, False))
        plan = TilingPlan.build(ny=8, nz=8, timesteps=4, dw=4, bz=1)
        with pytest.raises(ValueError):
            TiledExecutor(random_state(grid), random_coefficients(grid), plan)

    def test_mismatched_plan_rejected(self):
        grid = Grid(nz=8, ny=8, nx=4)
        plan = TilingPlan.build(ny=10, nz=8, timesteps=4, dw=4, bz=1)
        with pytest.raises(ValueError):
            TiledExecutor(random_state(grid), random_coefficients(grid), plan)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_topological_orders_bitwise_equal(self, seed):
        """Any linear extension of the tile DAG gives identical fields --
        the property that makes concurrent MWD execution safe."""
        grid = Grid(nz=10, ny=14, nx=4)
        plan = TilingPlan.build(ny=14, nz=10, timesteps=6, dw=4, bz=2)
        coeffs = random_coefficients(grid, seed=33)
        reference = random_state(grid, seed=34)
        shuffled = reference.copy()
        naive_sweep(reference, coeffs, plan.timesteps)
        TiledExecutor(shuffled, coeffs, plan).run_interleaved(
            np.random.default_rng(seed)
        )
        assert reference.max_abs_difference(shuffled) == 0.0

    def test_physics_run_through_tiles(self):
        """The tiled executor reproduces an actual THIIM physics run
        (PML + source + absorber), not just random data."""
        grid = Grid(nz=32, ny=12, nx=6)
        omega = 2 * np.pi / 10.0
        solver_a = THIIMSolver(
            grid, omega,
            source=PlaneWaveSource(z_plane=10, z_width=2.0),
            pml={"z": PMLSpec(thickness=6)},
        )
        solver_b = THIIMSolver(
            grid, omega,
            source=PlaneWaveSource(z_plane=10, z_width=2.0),
            pml={"z": PMLSpec(thickness=6)},
        )
        T = 12
        solver_a.run(T)
        plan = TilingPlan.build(ny=12, nz=32, timesteps=T, dw=4, bz=3)
        TiledExecutor(solver_b.fields, solver_b.coefficients, plan).run()
        assert solver_a.fields.max_abs_difference(solver_b.fields) == 0.0

    def test_lup_accounting(self):
        grid = Grid(nz=8, ny=8, nx=4)
        plan = TilingPlan.build(ny=8, nz=8, timesteps=3, dw=4, bz=1)
        coeffs = random_coefficients(grid)
        ex = TiledExecutor(random_state(grid), coeffs, plan)
        ex.run()
        # Every component update is counted: compare with a naive run.
        f = random_state(grid)
        expected = naive_sweep(f, coeffs, 3)
        assert ex.lups_done == expected
        assert ex.jobs_done > 0


class TestTileQueue:
    def make_plan(self):
        return TilingPlan.build(ny=16, nz=8, timesteps=8, dw=4, bz=1)

    def test_serial_drain_is_topological(self):
        plan = self.make_plan()
        order = TileQueue(plan).drain_serial()
        assert len(order) == plan.n_tiles
        pos = {idx: k for k, idx in enumerate(order)}
        for idx in plan.tiles:
            for p in plan.preds[idx]:
                assert pos[p] < pos[idx]

    def test_fifo_starts_with_band_zero(self):
        plan = self.make_plan()
        q = TileQueue(plan)
        first = q.pop()
        assert plan.tiles[first].band == min(plan.bands)

    def test_complete_unpopped_tile_rejected(self):
        plan = self.make_plan()
        q = TileQueue(plan)
        with pytest.raises(ValueError):
            q.complete((0, 0))

    def test_concurrent_workers_drain(self):
        """Several simulated workers popping concurrently never deadlock
        and complete all tiles."""
        plan = self.make_plan()
        q = TileQueue(plan)
        rng = np.random.default_rng(0)
        in_flight = []
        completed = 0
        while not q.exhausted:
            # Pop up to 4 tiles, then complete them in random order.
            while len(in_flight) < 4:
                idx = q.pop()
                if idx is None:
                    break
                in_flight.append(idx)
            assert in_flight, "deadlock: nothing in flight and not exhausted"
            k = int(rng.integers(len(in_flight)))
            q.complete(in_flight.pop(k))
            completed += 1
        assert completed == plan.n_tiles

    def test_ready_count_tracks(self):
        plan = self.make_plan()
        q = TileQueue(plan)
        n0 = q.ready_count
        assert n0 >= 1
        idx = q.pop()
        assert q.ready_count == n0 - 1
        q.complete(idx)
        assert q.done_count == 1
