"""Tests for the priority-FIFO scheduler: dedup, backpressure, retry,
and crash recovery."""

import pytest

from repro.service import (
    JobSpec,
    JobState,
    QueueFullError,
    ResultStore,
    Scheduler,
    run_job,
)

FAST_SOLVE = dict(kind="solve", preset="vacuum", grid=10, wavelength=10.0,
                  tol=1e-4, max_steps=20)
#: grid 8 makes the tuner bail instantly (infeasible) -- the cheapest
#: real job for exercising the scheduler machinery.
FAST_TUNE = dict(kind="tune", grid=8, threads=2)


def _sched(**kw):
    kw.setdefault("retry_base_s", 0.001)
    return Scheduler(**kw)


class TestDedup:
    def test_identical_specs_execute_once(self):
        sched = _sched(workers=2).start()
        try:
            a = sched.submit(JobSpec(**FAST_SOLVE))
            b = sched.submit(JobSpec(**FAST_SOLVE, priority=9))  # same id
            assert b is a and a.dedup_count == 1
            done = sched.wait(a.id, timeout=60.0)
            assert done.state == JobState.DONE
        finally:
            sched.stop()
        st = sched.stats()
        assert st["submitted"] == 2
        assert st["deduplicated"] == 1
        assert st["executed"] == 1
        assert st["completed"] == 1

    def test_store_hit_completes_without_execution(self):
        store = ResultStore()
        spec = JobSpec(**FAST_TUNE)
        store.put(spec.job_id, run_job(spec))
        sched = _sched(workers=1, store=store)  # never started
        job = sched.submit(spec)
        assert job.state == JobState.DONE and job.from_store
        assert job.result == run_job(spec)  # served bit-identically
        st = sched.stats()
        assert st["store_hits"] == 1 and st["executed"] == 0

    def test_failed_job_can_be_resubmitted(self):
        sched = _sched(workers=1).start()
        try:
            spec = JobSpec(**FAST_TUNE, fault="always_fail", max_retries=0)
            job = sched.submit(spec)
            assert sched.wait(job.id, timeout=30.0).state == JobState.FAILED
            retry = sched.submit(spec)
            assert retry is not job  # a fresh Job record, same id
            assert sched.wait(retry.id, timeout=30.0).state == JobState.FAILED
        finally:
            sched.stop()
        assert len(sched.jobs()) == 1  # listing stays deduplicated by id


class TestOrdering:
    def test_priority_then_fifo(self):
        sched = _sched(workers=1, queue_size=8)  # not started: inspect queue
        lo = sched.submit(JobSpec(**FAST_TUNE, priority=0))
        hi1 = sched.submit(JobSpec(**{**FAST_TUNE, 'grid': 10}, priority=5))
        hi2 = sched.submit(JobSpec(**{**FAST_TUNE, 'grid': 12}, priority=5))
        with sched._cv:
            order = [sched._next_job() for _ in range(3)]
        assert [j.id for j in order] == [hi1.id, hi2.id, lo.id]

    def test_popped_jobs_skip_cancelled(self):
        sched = _sched(workers=1, queue_size=8)
        a = sched.submit(JobSpec(**FAST_TUNE))
        b = sched.submit(JobSpec(**{**FAST_TUNE, 'grid': 10}))
        sched.cancel(a.id)
        with sched._cv:
            nxt = sched._next_job()
        assert nxt.id == b.id


class TestBackpressure:
    def test_queue_full_rejects_with_reason(self):
        sched = _sched(workers=1, queue_size=1)  # not started: jobs stay queued
        sched.submit(JobSpec(**FAST_TUNE))
        with pytest.raises(QueueFullError) as err:
            sched.submit(JobSpec(**{**FAST_TUNE, 'grid': 10}))
        assert "queue full (1/1" in err.value.reason
        assert sched.stats()["rejected"] == 1

    def test_dedup_bypasses_backpressure(self):
        sched = _sched(workers=1, queue_size=1)
        job = sched.submit(JobSpec(**FAST_TUNE))
        # A duplicate of the queued job coalesces instead of rejecting.
        assert sched.submit(JobSpec(**FAST_TUNE)) is job

    def test_cancelled_jobs_free_queue_slots(self):
        sched = _sched(workers=1, queue_size=1)
        job = sched.submit(JobSpec(**FAST_TUNE))
        sched.cancel(job.id)
        sched.submit(JobSpec(**{**FAST_TUNE, 'grid': 10}))  # no raise


class TestCancel:
    def test_cancel_queued(self):
        sched = _sched(workers=1)
        job = sched.submit(JobSpec(**FAST_TUNE))
        sched.cancel(job.id)
        assert job.state == JobState.CANCELLED
        assert sched.stats()["cancelled"] == 1

    def test_cancel_terminal_raises(self):
        sched = _sched(workers=1)
        job = sched.submit(JobSpec(**FAST_TUNE))
        sched.cancel(job.id)
        with pytest.raises(ValueError, match="not cancellable"):
            sched.cancel(job.id)


class TestRetry:
    def test_fail_once_retries_to_success(self):
        sched = _sched(workers=1).start()
        try:
            job = sched.submit(JobSpec(**FAST_TUNE, fault="fail_once",
                                       max_retries=2))
            done = sched.wait(job.id, timeout=30.0)
            assert done.state == JobState.DONE
            assert done.attempts == 2
            assert done.result["kind"] == "tune"
        finally:
            sched.stop()
        st = sched.stats()
        assert st["retries"] == 1 and st["worker_crashes"] == 0

    def test_always_fail_exhausts_budget(self):
        sched = _sched(workers=1).start()
        try:
            job = sched.submit(JobSpec(**FAST_TUNE, fault="always_fail",
                                       max_retries=2))
            done = sched.wait(job.id, timeout=30.0)
        finally:
            sched.stop()
        assert done.state == JobState.FAILED
        assert done.attempts == 3  # initial + 2 retries
        assert "retry budget 2 exhausted" in done.error
        assert sched.stats()["retries"] == 2

    def test_zero_budget_fails_first_error(self):
        sched = _sched(workers=1).start()
        try:
            job = sched.submit(JobSpec(**FAST_TUNE, fault="fail_once",
                                       max_retries=0))
            done = sched.wait(job.id, timeout=30.0)
        finally:
            sched.stop()
        assert done.state == JobState.FAILED and done.attempts == 1


class TestCrashRecovery:
    def test_killed_worker_requeues_and_completes(self):
        # The acceptance-criteria scenario: the worker process dies
        # mid-job (os._exit in the child -- no result, nonzero exit); the
        # dispatcher must count a crash and requeue until the job lands.
        sched = _sched(workers=1, mode="process").start()
        try:
            job = sched.submit(JobSpec(**FAST_TUNE, fault="crash_once",
                                       max_retries=2))
            done = sched.wait(job.id, timeout=60.0)
            assert done.state == JobState.DONE
            assert done.attempts == 2
            assert "worker died mid-job" in done.error  # attempt-1 record
        finally:
            sched.stop()
        st = sched.stats()
        assert st["worker_crashes"] == 1
        assert st["retries"] == 1
        assert st["completed"] == 1

    def test_process_mode_runs_clean_jobs(self):
        sched = _sched(workers=2, mode="process").start()
        try:
            job = sched.submit(JobSpec(**FAST_SOLVE))
            done = sched.wait(job.id, timeout=60.0)
            assert done.state == JobState.DONE
        finally:
            sched.stop()
        # The spooled result matches an in-process execution exactly.
        assert done.result == run_job(JobSpec(**FAST_SOLVE))

    def test_deterministic_failure_in_child_is_not_a_crash(self):
        sched = _sched(workers=1, mode="process").start()
        try:
            job = sched.submit(JobSpec(**FAST_TUNE, fault="always_fail",
                                       max_retries=0))
            done = sched.wait(job.id, timeout=30.0)
        finally:
            sched.stop()
        assert done.state == JobState.FAILED
        assert "always_fail" in done.error
        assert sched.stats()["worker_crashes"] == 0


class TestWaiting:
    def test_wait_timeout(self):
        sched = _sched(workers=1)  # not started: job never runs
        job = sched.submit(JobSpec(**FAST_TUNE))
        with pytest.raises(TimeoutError):
            sched.wait(job.id, timeout=0.05)

    def test_join_drains_everything(self):
        sched = _sched(workers=2).start()
        try:
            jobs = [sched.submit(JobSpec(**{**FAST_TUNE, 'grid': g}))
                    for g in (8, 10, 12)]
            sched.join(timeout=60.0)
        finally:
            sched.stop()
        assert all(j.state == JobState.DONE for j in jobs)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Scheduler(workers=0)
        with pytest.raises(ValueError):
            Scheduler(queue_size=0)
        with pytest.raises(ValueError):
            Scheduler(mode="coroutine")
