"""Numerical dispersion validation of the discrete THIIM scheme.

The staggered leapfrog scheme has the classic Yee dispersion relation

    sin^2(w tau / 2) / tau^2 = sum_i sin^2(k_i d_i / 2) / d_i^2 .

For a plane wave along z this predicts the numerical wavenumber
``k_num`` given ``omega`` and ``tau``.  We measure the phase gradient of
the converged THIIM field in vacuum and check it lands on the discrete
relation (and *not* exactly on the continuum ``k = omega``) -- direct
evidence that the kernel implements the intended discretization.
"""

import numpy as np
import pytest

from repro.fdfd import Grid, PMLSpec, PlaneWaveSource, THIIMSolver


def yee_wavenumber(omega: float, tau: float, dz: float) -> float:
    """Invert the 1-D Yee dispersion relation for k."""
    s = np.sin(omega * tau / 2.0) / tau * dz
    if abs(s) > 1:
        raise ValueError("evanescent: omega beyond the grid cutoff")
    return 2.0 / dz * np.arcsin(s)


@pytest.fixture(scope="module")
def converged_vacuum():
    grid = Grid(nz=96, ny=4, nx=4, periodic=(False, True, True))
    omega = 2 * np.pi / 12.0
    solver = THIIMSolver(
        grid, omega,
        source=PlaneWaveSource(z_plane=14, z_width=2.0),
        pml={"z": PMLSpec(thickness=10)},
    )
    solver.run(2500)
    return solver, omega


class TestDispersion:
    def test_measured_wavenumber_matches_yee_relation(self, converged_vacuum):
        solver, omega = converged_vacuum
        ex = solver.fields.combined("Ex")[:, 0, 0]
        # Phase gradient in the clean propagation region below the source.
        zs = np.arange(30, 70)
        phase = np.unwrap(np.angle(ex[zs]))
        k_measured = -np.polyfit(zs.astype(float), phase, 1)[0]

        k_yee = yee_wavenumber(omega, solver.tau, solver.grid.dz)
        assert k_measured == pytest.approx(k_yee, rel=2e-3)

    def test_dispersion_error_has_correct_sign(self, converged_vacuum):
        """On the time-stability side of the CFL limit the Yee numerical
        wavenumber in 1-D propagation is *smaller* than omega/c (the wave
        travels slightly fast) for tau near the 3-D CFL step."""
        solver, omega = converged_vacuum
        k_yee = yee_wavenumber(omega, solver.tau, solver.grid.dz)
        # tau chosen by the 3-D CFL is well below the 1-D limit, so the
        # temporal sharpening loses to the spatial flattening: k > omega.
        assert k_yee != pytest.approx(omega, rel=1e-6)
        assert k_yee > omega

    def test_relation_continuum_limit(self):
        """As tau, dz -> 0 the relation collapses to k = omega."""
        omega = 0.5
        k = yee_wavenumber(omega, tau=1e-4, dz=1e-3)
        assert k == pytest.approx(omega, rel=1e-6)

    def test_cutoff_rejected(self):
        with pytest.raises(ValueError):
            yee_wavenumber(omega=3.0, tau=0.5, dz=2.0)
