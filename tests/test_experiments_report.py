"""Tests for the experiment harness internals: table rendering, JSON
persistence, the water-filling allocator, and quick-path figure
generators (the full sweeps live in benchmarks/)."""

import json
import math

import pytest

from repro.experiments import (
    ablation_thin_domain,
    fig5_cache_model,
    format_series,
    format_table,
    save_json,
    section3_table,
)
from repro.machine.simulator import _water_fill


class TestFormatTable:
    def test_alignment_and_columns(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 3.14159}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_number_formatting(self):
        rows = [{"v": 123456.0}, {"v": 0.00123}, {"v": 12.34}]
        text = format_table(rows)
        assert "123,456" in text
        assert "0.00123" in text
        assert "12.3" in text

    def test_format_series(self):
        series = {"a": [(1, 10), (2, 20)], "b": [(1, 5)]}
        text = format_series(series, "x", "MLUPs", title="S")
        assert "S" in text and "MLUPs" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, two x rows


class TestSaveJson:
    def test_roundtrip(self, tmp_path):
        data = [{"x": 1, "y": "s"}]
        path = save_json(data, str(tmp_path / "sub" / "out.json"))
        assert json.load(open(path)) == data

    def test_non_serializable_coerced(self, tmp_path):
        path = save_json({"v": complex(1, 2)}, str(tmp_path / "c.json"))
        assert "1" in open(path).read()


class TestWaterFill:
    def test_unconstrained(self):
        rates = _water_fill(demands=[100.0, 100.0], caps=[1e6, 1e6], bandwidth=1e9)
        assert rates == [1e6, 1e6]

    def test_fully_constrained_fair_split(self):
        rates = _water_fill(demands=[100.0, 100.0], caps=[1e9, 1e9], bandwidth=1e8)
        assert rates[0] == pytest.approx(5e5)
        assert rates[1] == pytest.approx(5e5)
        assert sum(r * 100.0 for r in rates) == pytest.approx(1e8)

    def test_mixed_small_user_keeps_cap(self):
        """A light consumer keeps its cap; the heavy ones split the rest."""
        rates = _water_fill(demands=[10.0, 1000.0, 1000.0], caps=[1e6, 1e9, 1e9],
                            bandwidth=1e8)
        assert rates[0] == 1e6
        remaining = 1e8 - 1e6 * 10.0
        assert rates[1] == pytest.approx(remaining / 2 / 1000.0)

    def test_budget_never_exceeded(self):
        import random

        rng = random.Random(3)
        for _ in range(50):
            n = rng.randint(1, 8)
            demands = [rng.uniform(1, 2000) for _ in range(n)]
            caps = [rng.uniform(1e4, 1e8) for _ in range(n)]
            bw = rng.uniform(1e6, 1e10)
            rates = _water_fill(demands, caps, bw)
            used = sum(r * d for r, d in zip(rates, demands))
            assert used <= bw * (1 + 1e-9) or all(
                r == c for r, c in zip(rates, caps)
            )
            for r, c in zip(rates, caps):
                assert r <= c * (1 + 1e-9)

    def test_zero_demand_gets_cap(self):
        rates = _water_fill(demands=[0.0], caps=[123.0], bandwidth=1.0)
        assert rates == [123.0]


class TestQuickFigurePaths:
    def test_section3_runs(self):
        rows = section3_table()
        assert len(rows) == 8
        assert all("paper" in r and "reproduced" in r for r in rows)

    def test_fig5_reduced(self):
        rows = fig5_cache_model(dw_values=(4,), bz_values=(1,), nx=96)
        assert len(rows) == 1
        r = rows[0]
        assert r["fits_usable_L3"]
        assert math.isfinite(r["Bc_measured"])

    def test_thin_domain_ablation(self):
        rows = ablation_thin_domain(thin=32, wide=256, dw=4)
        assert len(rows) == 2
        thin = next(r for r in rows if r["Nx"] == 32)
        wide = next(r for r in rows if r["Nx"] == 256)
        assert thin["Cs_MiB"] < wide["Cs_MiB"]
