"""Fleet durability: persistent shard stores, write replication,
lease-based membership and gateway admission control.

The layers under test, bottom-up: token buckets and the retry budget
(deterministic with an injected clock), lease files and lease-derived
membership, the result store's replica/torn-write behaviour, the node
HTTP server's replication endpoint and store-fallback reads, and the
gateway end-to-end -- replication on done-polls, replica promotion after
owner death, per-tenant 429s, retry-budget 503s, spec-cache LRU bounds
and the concurrent-failover race."""

import json
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro import telemetry
from repro.fleet import (ALIVE, DEAD, LeaseHeartbeat, NodeRegistry,
                         RetryBudget, TenantQuotas, TokenBucket,
                         clear_lease, make_gateway, read_leases,
                         write_lease)
from repro.fleet.admission import TENANT_HEADER
from repro.ioutil import corrupt_file
from repro.service import (JobSpec, PlanRegistry, ResultStore, Scheduler,
                           make_server, run_job)

FAST = dict(kind="solve", preset="vacuum", grid=10, wavelength=10.0,
            tol=1e-4, max_steps=20)


class _Clock:
    """Injectable monotonic clock: bucket math without sleeping."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _request(method, url, payload=None, headers=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read() or b"{}"), \
                dict(resp.headers)
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}"), dict(e.headers or {})


def _poll(base, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while True:
        status, doc, _ = _request("GET", f"{base}/jobs/{job_id}")
        assert status == 200, doc
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        assert time.monotonic() < deadline, f"job stuck {doc['state']}"
        time.sleep(0.05)


class _Node:
    """One in-process serve node; optionally with a persistent store."""

    def __init__(self, i, store_root=None, registry_root=None):
        self.store_root = store_root
        self.sched = Scheduler(
            workers=1, retry_base_s=0.001,
            store=ResultStore(store_root, node_id=f"node{i}"),
            registry=PlanRegistry(registry_root, node_id=f"node{i}"),
        ).start()
        self.server = make_server(self.sched, port=0, node_id=f"node{i}")
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self.thread.start()
        self.url = f"http://127.0.0.1:{self.server.server_port}"
        self.dead = False

    def kill(self):
        if self.dead:
            return
        self.dead = True
        self.server.shutdown()
        self.server.server_close()
        self.sched.stop()
        self.thread.join(timeout=5.0)


@pytest.fixture()
def fleet(request):
    """Three live nodes + a gateway with telemetry on; heartbeats are
    manual (``check_once``).  Parametrize gateway kwargs indirectly via
    ``request.param`` (a dict), e.g. ``{"quota": 0.001}``."""
    gw_kwargs = getattr(request, "param", None) or {}
    was_enabled = telemetry.enabled()
    telemetry.enable()
    nodes = [_Node(i) for i in range(3)]
    registry = NodeRegistry([n.url for n in nodes], dead_after=1,
                            timeout_s=10.0, interval_s=3600.0)
    registry.check_once()
    gateway = make_gateway(registry, **gw_kwargs)
    thread = threading.Thread(target=gateway.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{gateway.server_port}"
    try:
        yield SimpleNamespace(base=base, registry=registry, nodes=nodes,
                              gateway=gateway)
    finally:
        gateway.shutdown()
        gateway.server_close()
        thread.join(timeout=5.0)
        registry.stop()
        for node in nodes:
            node.kill()
        if not was_enabled:
            telemetry.disable()


def _node_by_url(fleet, url):
    return next(n for n in fleet.nodes if n.url == url)


def _spec_homed_on(fleet, url):
    smap = fleet.registry.shard_map()
    for w in range(10, 200):
        spec = JobSpec(**dict(FAST, wavelength=float(w)))
        if smap.owners(spec.job_id)[0] == url:
            return spec
    raise AssertionError(f"no spec homed on {url}")


# -- admission control (unit) --------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = _Clock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take() == (True, 0.0)
        assert bucket.try_take() == (True, 0.0)
        ok, retry_after = bucket.try_take()
        assert not ok and retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_take()[0]

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate=0.0, burst=0.0, clock=_Clock())
        assert all(bucket.try_take()[0] for _ in range(100))
        assert bucket.available() == float("inf")

    def test_tokens_cap_at_burst(self):
        clock = _Clock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(3.0)


class TestTenantQuotas:
    def test_over_quota_tenant_does_not_affect_others(self):
        clock = _Clock()
        quotas = TenantQuotas(rate=0.5, burst=1.0, clock=clock)
        assert quotas.try_take("alice")[0]
        ok, retry_after = quotas.try_take("alice")
        assert not ok and retry_after == pytest.approx(2.0)
        assert quotas.try_take("bob")[0]  # own bucket, untouched

    def test_disabled_admits_everyone(self):
        quotas = TenantQuotas(rate=0.0, clock=_Clock())
        assert not quotas.enabled
        assert quotas.try_take(None)[0]

    def test_default_burst_admits_at_least_one(self):
        quotas = TenantQuotas(rate=0.001, clock=_Clock())
        assert quotas.burst == 1.0
        assert quotas.try_take("t")[0]
        assert not quotas.try_take("t")[0]


class TestRetryBudget:
    def test_budget_exhausts_and_refills(self):
        clock = _Clock()
        budget = RetryBudget(per_minute=2.0, clock=clock)
        assert budget.enabled
        assert budget.try_take() and budget.try_take()
        assert not budget.try_take()
        clock.advance(30.0)  # one token back at 2/min
        assert budget.try_take()
        assert not budget.try_take()

    def test_disabled_budget_never_blocks(self):
        budget = RetryBudget(per_minute=0.0, clock=_Clock())
        assert not budget.enabled
        assert all(budget.try_take() for _ in range(100))


# -- lease files (unit) --------------------------------------------------------


class TestLeases:
    def test_roundtrip_fresh(self, tmp_path):
        lease_dir = str(tmp_path)
        write_lease(lease_dir, "node0", "http://h:1/", ttl_s=5.0)
        leases = read_leases(lease_dir)
        assert leases == {"http://h:1": {
            "node_id": "node0", "fresh": True,
            "age_s": leases["http://h:1"]["age_s"], "ttl_s": 5.0}}
        assert leases["http://h:1"]["age_s"] < 5.0

    def test_expiry_is_a_function_of_now(self, tmp_path):
        lease_dir = str(tmp_path)
        write_lease(lease_dir, "node0", "http://h:1", ttl_s=5.0)
        now = time.time()
        assert read_leases(lease_dir, now=now)["http://h:1"]["fresh"]
        stale = read_leases(lease_dir, now=now + 6.0)["http://h:1"]
        assert not stale["fresh"]

    def test_clear_lease(self, tmp_path):
        lease_dir = str(tmp_path)
        write_lease(lease_dir, "node0", "http://h:1")
        assert clear_lease(lease_dir, "node0")
        assert read_leases(lease_dir) == {}
        assert not clear_lease(lease_dir, "node0")  # already gone

    def test_corrupt_lease_quarantines_and_reads_absent(self, tmp_path):
        lease_dir = str(tmp_path)
        path = write_lease(lease_dir, "node0", "http://h:1")
        corrupt_file(path)
        assert read_leases(lease_dir) == {}
        assert (tmp_path / (path.split("/")[-1] + ".corrupt")).exists()

    def test_freshest_writer_wins_per_url(self, tmp_path):
        lease_dir = str(tmp_path)
        write_lease(lease_dir, "old-proc", "http://h:1", ttl_s=500.0)
        time.sleep(0.02)
        write_lease(lease_dir, "new-proc", "http://h:1", ttl_s=500.0)
        assert read_leases(lease_dir)["http://h:1"]["node_id"] == "new-proc"

    def test_heartbeat_refreshes_and_clears_on_stop(self, tmp_path):
        lease_dir = str(tmp_path)
        hb = LeaseHeartbeat(lease_dir, "node0", "http://h:1",
                            ttl_s=0.3).start()
        try:
            assert read_leases(lease_dir)["http://h:1"]["fresh"]
            time.sleep(0.5)  # several beats; the lease must stay fresh
            assert read_leases(lease_dir)["http://h:1"]["fresh"]
        finally:
            hb.stop(clear=True)
        assert read_leases(lease_dir) == {}  # graceful leave


# -- lease-derived membership --------------------------------------------------


class TestLeaseMembership:
    def test_fresh_lease_joins_and_bumps_version(self, tmp_path):
        lease_dir = str(tmp_path)
        registry = NodeRegistry([], lease_dir=lease_dir)
        assert registry.urls == []
        write_lease(lease_dir, "node0", "http://h:1", ttl_s=500.0)
        v0 = registry.version
        registry.sync_leases()
        assert registry.urls == ["http://h:1"]
        assert registry.version > v0
        assert "http://h:1" in registry.shard_map().owners("somejob")

    def test_removed_lease_leaves_membership(self, tmp_path):
        lease_dir = str(tmp_path)
        write_lease(lease_dir, "node0", "http://h:1", ttl_s=500.0)
        registry = NodeRegistry([], lease_dir=lease_dir)
        assert registry.urls == ["http://h:1"]
        clear_lease(lease_dir, "node0")
        v0 = registry.version
        registry.sync_leases()
        assert registry.urls == [] and registry.version > v0

    def test_expired_lease_marks_dead_but_keeps_placement(self, tmp_path):
        lease_dir = str(tmp_path)
        write_lease(lease_dir, "node0", "http://h:1", ttl_s=0.05)
        registry = NodeRegistry([], lease_dir=lease_dir)
        assert registry.node("http://h:1").state == ALIVE
        time.sleep(0.1)
        v0 = registry.version
        registry.sync_leases()
        node = registry.node("http://h:1")
        assert node.state == DEAD and registry.version > v0
        # Placement survives: the ring still owns the shard, so a
        # reboot under the same URL serves its old shard warm.
        assert "http://h:1" in registry.shard_map().owners("somejob")

    def test_static_urls_survive_missing_leases(self, tmp_path):
        registry = NodeRegistry(["http://static:1"],
                                lease_dir=str(tmp_path))
        registry.sync_leases()
        assert registry.urls == ["http://static:1"]

    def test_no_urls_and_no_lease_dir_raises(self):
        with pytest.raises(ValueError):
            NodeRegistry([])


# -- result store: replicas + torn writes --------------------------------------


class TestReplicaStore:
    def test_put_replica_stores_with_provenance(self, tmp_path):
        store = ResultStore(str(tmp_path), node_id="replica")
        assert store.put_replica("abc", {"x": 1}, replicated_from="http://o")
        doc = store.get_doc("abc")
        assert doc["result"] == {"x": 1}
        assert doc["node"] == "replica"
        assert doc["replicated_from"] == "http://o"
        assert store.counters()["replica_puts"] == 1
        # Persisted: a fresh instance reads it back from disk.
        assert ResultStore(str(tmp_path)).get("abc") == {"x": 1}

    def test_put_replica_is_idempotent_and_local_doc_wins(self):
        store = ResultStore(node_id="home")
        store.put("abc", {"x": 1})
        assert not store.put_replica("abc", {"x": 1}, replicated_from="u")
        assert store.get_doc("abc").get("replicated_from") is None
        assert store.counters()["replica_puts"] == 0
        assert not store.put_replica("abc", {"x": 1})  # repeat: still no-op

    def test_torn_write_quarantines_and_recomputes_identically(
            self, tmp_path):
        spec = JobSpec(**FAST)
        first = run_job(spec)
        root = str(tmp_path)
        ResultStore(root).put(spec.job_id, first)
        # A foreign process tears the committed file mid-write.
        path = f"{root}/result-{spec.job_id}.json"
        with open(path, "w") as f:
            f.write('{"version": 1, "id": "')
        fresh = ResultStore(root)
        assert fresh.get(spec.job_id) is None  # miss, not garbage
        import os

        assert os.path.exists(path + ".corrupt")
        assert run_job(spec) == first  # recompute is bit-identical


# -- node server: replication endpoint + store-fallback reads ------------------


class TestNodeReplicaEndpoints:
    @pytest.fixture()
    def node(self):
        node = _Node(0)
        try:
            yield node
        finally:
            node.kill()

    def test_put_requires_replication_header(self, node):
        status, doc, _ = _request("PUT", f"{node.url}/results/abc",
                                  payload={"result": {"x": 1}})
        assert status == 403

    def test_put_requires_result_payload(self, node):
        status, doc, _ = _request("PUT", f"{node.url}/results/abc",
                                  payload={"nope": 1},
                                  headers={"X-Repro-Replicate": "1"})
        assert status == 400

    def test_put_then_store_fallback_get(self, node):
        status, doc, _ = _request(
            "PUT", f"{node.url}/results/abc",
            payload={"result": {"x": 1}, "node": "http://origin:1"},
            headers={"X-Repro-Replicate": "1"})
        assert status == 200 and doc == {"id": "abc", "stored": True,
                                         "dedup": False}
        # The node never ran job "abc", yet serves it from its store.
        status, doc, _ = _request("GET", f"{node.url}/jobs/abc")
        assert status == 200
        assert doc["state"] == "done" and doc["from_store"] is True
        assert doc["result"] == {"x": 1}
        assert doc["replicated_from"] == "http://origin:1"
        assert node.sched.stats()["executed"] == 0

    def test_duplicate_put_dedups(self, node):
        headers = {"X-Repro-Replicate": "1"}
        _request("PUT", f"{node.url}/results/abc",
                 payload={"result": {"x": 1}}, headers=headers)
        status, doc, _ = _request("PUT", f"{node.url}/results/abc",
                                  payload={"result": {"x": 1}},
                                  headers=headers)
        assert status == 200 and doc["dedup"] is True
        assert node.sched.store.counters()["replica_puts"] == 1


# -- gateway: write replication + replica promotion ----------------------------


class TestReplication:
    def test_done_poll_replicates_to_the_other_owner(self, fleet):
        telemetry.fleet_replications()
        before = telemetry.METRICS.get_value(
            "fleet_replications_total", labels=("ok",))
        _, doc, _ = _request("POST", f"{fleet.base}/jobs", FAST)
        done = _poll(fleet.base, doc["id"])
        owners = fleet.registry.shard_map().owners(doc["id"])
        replica = _node_by_url(fleet, owners[1])
        stored = replica.sched.store.get_doc(doc["id"])
        assert stored is not None
        assert stored["result"] == done["result"]
        assert stored["replicated_from"] == owners[0]
        assert replica.sched.store.counters()["replica_puts"] == 1
        assert telemetry.METRICS.get_value(
            "fleet_replications_total", labels=("ok",)) - before >= 1

    def test_replica_promotion_serves_store_hit_bit_identically(self, fleet):
        spec = JobSpec(**FAST)
        clean = run_job(spec)
        _, doc, _ = _request("POST", f"{fleet.base}/jobs", spec.to_dict())
        _poll(fleet.base, doc["id"])  # done-poll replicates
        owners = fleet.registry.shard_map().owners(doc["id"])
        replica = _node_by_url(fleet, owners[1])
        executed_before = replica.sched.stats()["executed"]
        v0 = fleet.registry.version

        _node_by_url(fleet, owners[0]).kill()
        status, promoted, _ = _request("GET",
                                       f"{fleet.base}/jobs/{doc['id']}")
        assert status == 200
        assert promoted["result"] == clean  # bit-identical, no recompute
        assert promoted["from_store"] is True
        assert promoted["node"] == owners[1]
        assert replica.sched.stats()["executed"] == executed_before
        assert fleet.registry.version == v0 + 1  # exactly one bump


# -- gateway: admission control ------------------------------------------------


class TestGatewayQuotas:
    # ~0 refill: the single burst token is all a tenant gets.
    @pytest.mark.parametrize(
        "fleet", [{"quota": 0.001, "quota_burst": 1.0}], indirect=True)
    def test_over_quota_tenant_429_others_proceed(self, fleet):
        telemetry.fleet_quota_rejections()
        before = telemetry.METRICS.get_value("fleet_quota_rejections_total")
        alice = {TENANT_HEADER: "alice"}
        status, doc, _ = _request("POST", f"{fleet.base}/jobs", FAST,
                                  headers=alice)
        assert status == 202
        status, doc, headers = _request(
            "POST", f"{fleet.base}/jobs",
            dict(FAST, wavelength=11.0), headers=alice)
        assert status == 429
        assert doc["kind"] == "QuotaExceeded"
        assert doc["details"]["tenant"] == "alice"
        assert int(headers["Retry-After"]) >= 1
        # A different tenant -- and the anonymous bucket -- are untouched.
        status, _, _ = _request("POST", f"{fleet.base}/jobs",
                                dict(FAST, wavelength=12.0),
                                headers={TENANT_HEADER: "bob"})
        assert status == 202
        status, _, _ = _request("POST", f"{fleet.base}/jobs",
                                dict(FAST, wavelength=13.0))
        assert status == 202
        assert telemetry.METRICS.get_value(
            "fleet_quota_rejections_total") - before == 1

    def test_quota_disabled_by_default(self, fleet):
        for w in (10.0, 11.0, 12.0, 13.0, 14.0):
            status, _, _ = _request("POST", f"{fleet.base}/jobs",
                                    dict(FAST, wavelength=w),
                                    headers={TENANT_HEADER: "burst"})
            assert status == 202


class TestGatewayRetryBudget:
    @pytest.mark.parametrize("fleet", [{"retry_budget": 1.0}],
                             indirect=True)
    def test_exhausted_budget_stops_failover_loops(self, fleet):
        spec = JobSpec(**FAST)
        owners = fleet.registry.shard_map().owners(spec.job_id)
        for url in owners:
            _node_by_url(fleet, url).kill()
        telemetry.fleet_retry_budget_spent()
        before = telemetry.METRICS.get_value(
            "fleet_retry_budget_spent_total")
        # First lookup: one failover hop is bought from the budget.
        status, doc, headers = _request(
            "GET", f"{fleet.base}/jobs/{spec.job_id}")
        assert status == 503 and headers.get("Retry-After")
        # Second lookup: the budget is dry -- the chain aborts instead
        # of hammering the fleet, visibly so.
        status, doc, _ = _request("GET",
                                  f"{fleet.base}/jobs/{spec.job_id}")
        assert status == 503
        assert doc["details"].get("budget_exhausted") is True
        assert telemetry.METRICS.get_value(
            "fleet_retry_budget_spent_total") - before == 1


class TestSpecCacheLRU:
    def test_lru_eviction_counts_and_recall_refreshes(self):
        was_enabled = telemetry.enabled()
        telemetry.enable()
        registry = NodeRegistry(["http://h:1"])
        gw = make_gateway(registry, spec_cache_size=2)
        try:
            telemetry.fleet_spec_cache_evictions()
            before = telemetry.METRICS.get_value(
                "fleet_spec_cache_evictions_total")
            gw.remember_spec("a", {"n": 1})
            gw.remember_spec("b", {"n": 2})
            assert gw.recall_spec("a") == {"n": 1}  # refreshes a over b
            gw.remember_spec("c", {"n": 3})
            assert gw.recall_spec("b") is None  # LRU victim was b, not a
            assert gw.recall_spec("a") == {"n": 1}
            assert telemetry.METRICS.get_value(
                "fleet_spec_cache_evictions_total") - before == 1
        finally:
            gw.server_close()
            if not was_enabled:
                telemetry.disable()


# -- durability races ----------------------------------------------------------


class TestConcurrentSolves:
    def test_concurrent_same_shape_solves_stay_bit_identical(self):
        """Regression: the kernel scratch pool was module-global, so two
        same-shaped solves running concurrently (a node with workers>1,
        or several in-process schedulers) raced on shared buffers and
        corrupted each other's numerics.  The pool is thread-local now."""
        specs = [JobSpec(**dict(FAST, wavelength=w, max_steps=40))
                 for w in (10.0, 11.0, 12.0, 13.0)]
        clean = {s.job_id: run_job(s) for s in specs}
        results = {}

        def solve(spec):
            results[spec.job_id] = run_job(spec)

        threads = [threading.Thread(target=solve, args=(s,))
                   for s in specs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90.0)
        assert results == clean


class TestConcurrentFailover:
    def test_racing_polls_after_owner_death_stay_exactly_once(self, fleet):
        """Two clients poll the same lost job concurrently: both resubmit
        through the gateway, the replica dedups on the content-addressed
        id, and the spec executes exactly once fleet-wide."""
        victim_url = fleet.nodes[0].url
        spec = _spec_homed_on(fleet, victim_url)
        clean = run_job(spec)
        _, doc, _ = _request("POST", f"{fleet.base}/jobs", spec.to_dict())
        assert doc["node"] == victim_url
        # Kill before completion can be observed: the job is lost with
        # the node's memory, so polls must race down the resubmit path.
        _node_by_url(fleet, victim_url).kill()

        results, errors = [], []

        def chase():
            try:
                results.append(_poll(fleet.base, spec.job_id))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=chase) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90.0)
        assert not errors
        assert len(results) == 2
        for done in results:
            assert done["result"] == clean
        survivors = [n for n in fleet.nodes if not n.dead]
        assert sum(n.sched.stats()["executed"] for n in survivors) <= 1


class TestWarmRestart:
    def test_rebooted_node_serves_committed_results_from_store(
            self, tmp_path):
        """A node killed and restarted over the same ``REPRO_DATA_DIR``
        answers reads of its committed jobs from the persistent store:
        zero re-solves, bit-identical bytes, provenance preserved."""
        spec = JobSpec(**FAST)
        store_root = str(tmp_path / "results")
        node = _Node(0, store_root=store_root)
        try:
            status, doc, _ = _request("POST", f"{node.url}/jobs",
                                      spec.to_dict())
            assert status == 202
            done = _poll(node.url, spec.job_id)
        finally:
            node.kill()  # SIGKILL-equivalent: scheduler memory is gone

        reborn = _Node(0, store_root=store_root)
        try:
            status, warm, _ = _request("GET",
                                       f"{reborn.url}/jobs/{spec.job_id}")
            assert status == 200
            assert warm["from_store"] is True
            assert warm["result"] == done["result"]
            assert warm["computed_by"] == "node0"
            assert reborn.sched.stats()["executed"] == 0
        finally:
            reborn.kill()
