"""Unit tests of the consistent-hash ring: determinism, balance,
replica distinctness and the minimal-remap property membership changes
rely on."""

import pytest

from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.service.jobs import JobSpec

NODES = ["http://127.0.0.1:9001", "http://127.0.0.1:9002",
         "http://127.0.0.1:9003"]


def _keys(n=400):
    """Content-hash-shaped keys (hex strings, like job ids)."""
    import hashlib

    return [hashlib.sha256(str(i).encode()).hexdigest()[:24]
            for i in range(n)]


class TestPlacement:
    def test_deterministic_across_instances(self):
        a, b = HashRing(NODES), HashRing(list(NODES))
        for key in _keys(50):
            assert a.owners(key) == b.owners(key)

    def test_member_order_does_not_matter(self):
        a = HashRing(NODES)
        b = HashRing(list(reversed(NODES)))
        for key in _keys(50):
            assert a.owners(key) == b.owners(key)

    def test_owners_are_distinct_members(self):
        ring = HashRing(NODES)
        for key in _keys(100):
            owners = ring.owners(key, n=2)
            assert len(owners) == 2
            assert len(set(owners)) == 2
            assert all(o in NODES for o in owners)

    def test_single_node_fleet_has_no_replica(self):
        ring = HashRing(NODES[:1])
        assert ring.owners("abc", n=2) == (NODES[0],)

    def test_home_is_first_owner(self):
        ring = HashRing(NODES)
        for key in _keys(20):
            assert ring.home(key) == ring.owners(key)[0]

    def test_empty_ring(self):
        ring = HashRing([])
        assert ring.owners("abc") == ()
        with pytest.raises(ValueError):
            ring.home("abc")

    def test_duplicate_members_collapse(self):
        ring = HashRing(NODES + NODES)
        assert len(ring) == len(NODES)

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(NODES, vnodes=0)


class TestBalance:
    def test_keyspace_roughly_even(self):
        """With 64 vnodes/member a 3-node ring splits a few hundred keys
        within a loose factor of the fair share."""
        counts = HashRing(NODES).assignment_counts(_keys(600))
        fair = 600 / len(NODES)
        for member, count in counts.items():
            assert count > fair / 3, (member, counts)
            assert count < fair * 3, (member, counts)

    def test_real_job_ids_spread(self):
        """Actual content-addressed job ids (wavelength sweep) land on
        more than one node -- the property batch scattering needs."""
        ring = HashRing(NODES)
        homes = {
            ring.home(JobSpec(kind="solve", preset="vacuum", grid=10,
                              wavelength=float(w), tol=1e-4,
                              max_steps=20).job_id)
            for w in range(10, 30)
        }
        assert len(homes) > 1


class TestMinimalRemap:
    def test_adding_a_node_moves_a_minority(self):
        keys = _keys(600)
        before = HashRing(NODES)
        after = HashRing(NODES + ["http://127.0.0.1:9004"])
        moved = sum(1 for k in keys if before.home(k) != after.home(k))
        # The classic property: ~1/(N+1) of the keyspace moves, and
        # everything that moved went to the new node.
        assert moved < len(keys) / 2
        for k in keys:
            if before.home(k) != after.home(k):
                assert after.home(k) == "http://127.0.0.1:9004"

    def test_removing_a_node_only_reassigns_its_keys(self):
        keys = _keys(600)
        before = HashRing(NODES)
        after = HashRing(NODES[:-1])
        for k in keys:
            if before.home(k) != NODES[-1]:
                assert after.home(k) == before.home(k)

    def test_default_vnodes(self):
        assert HashRing(NODES).vnodes == DEFAULT_VNODES
