"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fdfd import FieldState, Grid, random_coefficients


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid():
    return Grid(nz=8, ny=9, nx=7)


@pytest.fixture
def small_setup(small_grid, rng):
    """A small random (fields, coefficients) pair for traversal tests."""
    coeffs = random_coefficients(small_grid, seed=7)
    fields = FieldState(small_grid).fill_random(rng)
    return fields, coeffs


def random_state(grid: Grid, seed: int = 0) -> FieldState:
    return FieldState(grid).fill_random(np.random.default_rng(seed))
