"""Tests for the FED (fixed-execution-to-data) work assignment."""

import pytest

from repro.core.threadgroups import ThreadGroupConfig, WorkItem, work_assignment


class TestWorkAssignment:
    def test_thread_count_matches_config_size(self):
        cfg = ThreadGroupConfig(wavefront_threads=2, x_threads=3, component_threads=3)
        items = work_assignment(cfg, nx=96)
        assert len(items) == cfg.size == 18
        assert {w.thread for w in items} == set(range(18))

    def test_x_chunks_partition_row(self):
        cfg = ThreadGroupConfig(x_threads=4)
        items = work_assignment(cfg, nx=10)
        spans = sorted({(w.x_lo, w.x_hi) for w in items})
        assert spans[0][0] == 0 and spans[-1][1] == 10
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c

    def test_component_groups_partition_six_updates(self):
        cfg = ThreadGroupConfig(component_threads=3)
        items = work_assignment(cfg, nx=8)
        covered = sorted(i for w in items for i in w.components)
        assert covered == [0, 1, 2, 3, 4, 5]

    def test_full_coverage_per_slot(self):
        """Every (x cell, component) pair is owned exactly once per
        wavefront slot."""
        cfg = ThreadGroupConfig(wavefront_threads=2, x_threads=2, component_threads=3)
        items = work_assignment(cfg, nx=7)
        for slot in range(2):
            seen = set()
            for w in items:
                if w.wavefront_slot != slot:
                    continue
                for x in range(w.x_lo, w.x_hi):
                    for c in w.components:
                        key = (x, c)
                        assert key not in seen
                        seen.add(key)
            assert len(seen) == 7 * 6

    def test_fed_binding_is_deterministic(self):
        """Re-deriving the assignment never reshuffles threads: the FED
        property that keeps data in private caches."""
        cfg = ThreadGroupConfig(wavefront_threads=3, x_threads=2, component_threads=1)
        a = work_assignment(cfg, nx=50)
        b = work_assignment(cfg, nx=50)
        assert a == b

    def test_serial_config(self):
        items = work_assignment(ThreadGroupConfig(), nx=12)
        assert len(items) == 1
        w = items[0]
        assert (w.x_lo, w.x_hi) == (0, 12)
        assert w.components == (0, 1, 2, 3, 4, 5)
        assert w.x_cells == 12

    def test_too_few_x_cells_rejected(self):
        with pytest.raises(ValueError):
            work_assignment(ThreadGroupConfig(x_threads=8), nx=4)
