"""Tests for plane-wave sources and field observables."""

import numpy as np
import pytest

from repro.fdfd import (
    FieldState,
    Grid,
    PlaneWaveSource,
    absorbed_power,
    absorption_density,
    field_energy,
    gaussian_beam_profile,
    poynting_flux_z,
    poynting_z,
    relative_change,
)


class TestPlaneWaveSource:
    def test_x_polarized_pairs(self):
        g = Grid(nz=16, ny=4, nx=4)
        src = PlaneWaveSource(z_plane=3, amplitude=2.0).build(g)
        assert set(src) == {"SrcEx", "SrcHy"}
        assert np.all(src["SrcEx"][3] == 2.0)
        assert np.all(src["SrcHy"][3] == 2.0)
        assert not src["SrcEx"][4].any()

    def test_y_polarized_pairs(self):
        g = Grid(nz=16, ny=4, nx=4)
        src = PlaneWaveSource(z_plane=3, polarization="y").build(g)
        assert set(src) == {"SrcEy", "SrcHx"}
        assert np.all(src["SrcHx"][3] == -1.0)

    def test_direction_flips_h(self):
        g = Grid(nz=16, ny=4, nx=4)
        up = PlaneWaveSource(z_plane=3, direction=-1).build(g)
        down = PlaneWaveSource(z_plane=3, direction=+1).build(g)
        assert np.allclose(up["SrcHy"], -down["SrcHy"])
        assert np.allclose(up["SrcEx"], down["SrcEx"])

    def test_impedance_scales_h(self):
        g = Grid(nz=16, ny=4, nx=4)
        src = PlaneWaveSource(z_plane=3, impedance=2.0).build(g)
        assert np.all(src["SrcHy"][3] == 0.5)

    def test_profile(self):
        g = Grid(nz=16, ny=8, nx=8)
        prof = gaussian_beam_profile(g, waist_cells=2.0)
        src = PlaneWaveSource(z_plane=3, profile=prof).build(g)
        centre = src["SrcEx"][3, 3, 3]
        corner = src["SrcEx"][3, 0, 0]
        assert abs(centre) > abs(corner)

    def test_thick_source_envelope_and_phase(self):
        g = Grid(nz=32, ny=4, nx=4)
        src = PlaneWaveSource(z_plane=16, z_width=3.0, wavenumber=0.5).build(g)
        e = src["SrcEx"]
        # Peaked at the source plane, decaying away from it.
        assert abs(e[16, 0, 0]) > abs(e[19, 0, 0]) > abs(e[22, 0, 0])
        assert abs(e[16, 0, 0]) == pytest.approx(1.0)
        # Travelling-wave phasing: e^{-i k dz} between adjacent planes.
        ratio = e[17, 0, 0] / e[16, 0, 0]
        assert np.angle(ratio) == pytest.approx(-0.5, abs=1e-9)

    def test_thick_source_direction_reverses_phase(self):
        g = Grid(nz=32, ny=4, nx=4)
        up = PlaneWaveSource(z_plane=16, z_width=3.0, wavenumber=0.5, direction=-1).build(g)
        ratio = up["SrcEx"][17, 0, 0] / up["SrcEx"][16, 0, 0]
        assert np.angle(ratio) == pytest.approx(+0.5, abs=1e-9)

    def test_thick_source_needs_wavenumber(self):
        g = Grid(nz=16, ny=4, nx=4)
        with pytest.raises(ValueError):
            PlaneWaveSource(z_plane=8, z_width=2.0).build(g)

    def test_negative_z_width_rejected(self):
        with pytest.raises(ValueError):
            PlaneWaveSource(z_plane=8, z_width=-1.0)

    def test_validation(self):
        g = Grid(nz=16, ny=4, nx=4)
        with pytest.raises(ValueError):
            PlaneWaveSource(z_plane=99).build(g)
        with pytest.raises(ValueError):
            PlaneWaveSource(z_plane=3, polarization="z")
        with pytest.raises(ValueError):
            PlaneWaveSource(z_plane=3, direction=0)
        with pytest.raises(ValueError):
            PlaneWaveSource(z_plane=3, impedance=-1.0)
        with pytest.raises(ValueError):
            PlaneWaveSource(z_plane=3, profile=np.ones((2, 2))).build(g)
        with pytest.raises(ValueError):
            gaussian_beam_profile(g, waist_cells=0.0)


class TestObservables:
    def test_field_energy_positive_definite(self, rng):
        s = FieldState(Grid.cube(6)).fill_random(rng)
        assert field_energy(s) > 0
        assert field_energy(FieldState(Grid.cube(6))) == 0

    def test_energy_scales_quadratically(self, rng):
        s = FieldState(Grid.cube(6)).fill_random(rng)
        e1 = field_energy(s)
        for name in s:
            s[name] = s[name] * 2.0
        assert field_energy(s) == pytest.approx(4 * e1)

    def test_poynting_plane_wave_sign(self):
        """A +z travelling wave (Ex, Hy) in phase carries positive S_z."""
        g = Grid(nz=8, ny=4, nx=4)
        s = FieldState(g)
        s["Exy"][...] = 1.0
        s["Hyz"][...] = 1.0
        assert np.all(poynting_z(s) > 0)
        assert poynting_flux_z(s, 4) == pytest.approx(0.5 * 16)

    def test_poynting_reversed_wave(self):
        g = Grid(nz=8, ny=4, nx=4)
        s = FieldState(g)
        s["Exy"][...] = 1.0
        s["Hyz"][...] = -1.0
        assert np.all(poynting_z(s) < 0)

    def test_poynting_flux_bounds(self):
        s = FieldState(Grid.cube(6))
        with pytest.raises(IndexError):
            poynting_flux_z(s, 99)

    def test_absorption_zero_without_conductivity(self, rng):
        s = FieldState(Grid.cube(6)).fill_random(rng)
        assert absorbed_power(s, sigma=0.0) == 0.0

    def test_absorption_masked(self, rng):
        g = Grid.cube(6)
        s = FieldState(g).fill_random(rng)
        sigma = np.ones(g.shape)
        mask = np.zeros(g.shape)
        mask[:3] = 1.0
        total = absorbed_power(s, sigma)
        half = absorbed_power(s, sigma, mask=mask)
        assert 0 < half < total
        dens = absorption_density(s, sigma)
        assert dens.shape == g.shape and np.all(dens >= 0)

    def test_relative_change(self, rng):
        s = FieldState(Grid.cube(6)).fill_random(rng)
        same = s.copy()
        assert relative_change(s, same) == 0.0
        other = s.copy()
        for name in other:
            other[name] = other[name] * 1.01
        rc = relative_change(s, other)
        assert 0 < rc < 0.02

    def test_relative_change_zero_fields(self):
        a = FieldState(Grid.cube(4))
        b = FieldState(Grid.cube(4))
        assert relative_change(a, b) == 0.0
