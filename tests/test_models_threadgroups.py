"""Tests for the Section III analytic models and thread-group configs.

The model identities are the paper's own printed numbers, so these are
exact reproduction checks (DESIGN.md correctness contract 4)."""

import pytest

from repro.core.models import (
    arithmetic_intensity,
    bandwidth_limited_mlups,
    cache_block_size,
    diamond_code_balance,
    diamond_lups,
    max_diamond_width,
    naive_code_balance,
    spatial_code_balance,
    usable_cache_bytes,
    wavefront_tile_width,
)
from repro.core.threadgroups import (
    ThreadGroupConfig,
    divisors,
    enumerate_tg_configs,
)


class TestPaperNumbers:
    """Exact values stated in Section III of the paper."""

    def test_eq8_naive_1344(self):
        assert naive_code_balance() == 1344

    def test_eq9_spatial_1216(self):
        assert spatial_code_balance() == 1216

    def test_naive_intensity_018(self):
        assert arithmetic_intensity(naive_code_balance()) == pytest.approx(0.18, abs=0.005)

    def test_spatial_intensity_020(self):
        assert arithmetic_intensity(spatial_code_balance()) == pytest.approx(0.20, abs=0.005)

    def test_eq10_41_mlups(self):
        # 50 GB/s / 1216 B/LUP = 41 MLUP/s.
        assert bandwidth_limited_mlups(50.0, spatial_code_balance()) == pytest.approx(41.1, abs=0.1)

    def test_eq11_worked_example(self):
        # Dw=4, Bz=4 -> Ww=7 and C_s = 14912 * N_x (Section III-C).
        assert wavefront_tile_width(4, 4) == 7
        assert cache_block_size(4, 4, nx=1) == 14912
        assert cache_block_size(4, 4, nx=480) == 14912 * 480

    def test_fig5_narrative_bz6_dw4_30mib(self):
        """Section III-C: wavefront-only parallelism with Bz=6 means
        18/6 = 3 concurrent thread groups; three Dw=4 tiles at 480^3 need
        ~30 MiB, exceeding the usable (half) L3."""
        total = 3 * cache_block_size(4, 6, nx=480)
        assert total / 2**20 == pytest.approx(30.0, abs=3.0)
        assert total > usable_cache_bytes(45 * 2**20)

    def test_fig5_narrative_bz1_dw8_20mib(self):
        """Section III-C: Bz=1 with nine threads per block -> 2 groups;
        two Dw=8 tiles use ~20 MiB, inside the usable budget."""
        total = 2 * cache_block_size(8, 1, nx=480)
        assert total / 2**20 == pytest.approx(21.0, abs=2.5)
        assert total <= usable_cache_bytes(45 * 2**20)

    def test_eq12_decreases_with_dw(self):
        values = [diamond_code_balance(dw) for dw in (4, 8, 12, 16)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_eq12_values_in_mwd_regime(self):
        """Eq. 12 at the auto-tuned MWD widths (8-16) predicts the order
        of magnitude of Fig. 6c's 200-400 B/LUP measured window (the
        measured values sit above the model because of clipped tiles and
        imperfect reuse; the cache-simulation benchmarks cover that)."""
        for dw in (8, 12, 16):
            assert 100 < diamond_code_balance(dw) < 450
        # And a ~6x reduction vs. spatial blocking at Dw=8 - 12
        # (Section IV-C: "6x lower code balance").
        assert spatial_code_balance() / diamond_code_balance(10) == pytest.approx(6.0, abs=1.5)

    def test_eq12_explicit_value(self):
        # Dw=4: 16 * (6*7 + 160 + 12) / 8 = 428 B/LUP.
        assert diamond_code_balance(4) == pytest.approx(16 * (42 + 172) / 8.0)


class TestModelHelpers:
    def test_max_diamond_width_monotone_in_budget(self):
        small = max_diamond_width(bz=1, nx=480, cache_budget=5 * 2**20)
        large = max_diamond_width(bz=1, nx=480, cache_budget=22.5 * 2**20)
        assert small is not None and large is not None
        assert small <= large

    def test_max_diamond_width_none_when_too_small(self):
        assert max_diamond_width(bz=1, nx=480, cache_budget=1024) is None

    def test_max_diamond_width_shrinks_with_bz(self):
        budget = 22.5 * 2**20
        dw1 = max_diamond_width(bz=1, nx=480, cache_budget=budget)
        dw9 = max_diamond_width(bz=9, nx=480, cache_budget=budget)
        assert dw1 >= dw9

    def test_diamond_lups(self):
        assert diamond_lups(4) == 8
        assert diamond_lups(16) == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            diamond_code_balance(1)
        with pytest.raises(ValueError):
            cache_block_size(3, 1, 8)
        with pytest.raises(ValueError):
            cache_block_size(4, 0, 8)
        with pytest.raises(ValueError):
            bandwidth_limited_mlups(-1, 100)
        with pytest.raises(ValueError):
            arithmetic_intensity(0)
        with pytest.raises(ValueError):
            usable_cache_bytes(100, fraction=0.0)
        with pytest.raises(ValueError):
            wavefront_tile_width(4, 0)


class TestThreadGroups:
    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        with pytest.raises(ValueError):
            divisors(0)

    def test_config_size(self):
        cfg = ThreadGroupConfig(wavefront_threads=2, x_threads=3, component_threads=3)
        assert cfg.size == 18
        assert cfg.label() == "wf2.x3.c3"

    def test_invalid_component_ways(self):
        with pytest.raises(ValueError):
            ThreadGroupConfig(component_threads=4)
        with pytest.raises(ValueError):
            ThreadGroupConfig(wavefront_threads=0)

    def test_feasibility_wavefront_bound(self):
        cfg = ThreadGroupConfig(wavefront_threads=4)
        assert cfg.is_feasible(bz=4, nx=384)
        assert not cfg.is_feasible(bz=3, nx=384)

    def test_feasibility_x_chunk_bound(self):
        cfg = ThreadGroupConfig(x_threads=8)
        assert cfg.is_feasible(bz=1, nx=384)
        assert not cfg.is_feasible(bz=1, nx=64)

    def test_imbalance(self):
        cfg = ThreadGroupConfig(x_threads=4)
        assert cfg.imbalance(nx=384) == pytest.approx(1.0)
        cfg = ThreadGroupConfig(x_threads=5)
        # ceil(384/5)=77 vs 76.8 average.
        assert cfg.imbalance(nx=384) == pytest.approx(77 / 76.8)

    def test_enumerate_covers_all_factorizations(self):
        cfgs = list(enumerate_tg_configs(6, bz=8, nx=384, min_x_chunk=16))
        sizes = {c.size for c in cfgs}
        assert sizes == {6}
        labels = {c.label() for c in cfgs}
        # 6 = nc * nwf * nx over nc in {1,2,3,6}: several splits.
        assert "wf1.x1.c6" in labels
        assert "wf6.x1.c1" in labels
        assert "wf1.x6.c1" in labels
        assert "wf2.x1.c3" in labels

    def test_enumerate_respects_feasibility(self):
        cfgs = list(enumerate_tg_configs(18, bz=1, nx=384))
        for c in cfgs:
            assert c.wavefront_threads == 1  # bz=1 forbids wavefront split
        # 18 = 1 * x * c with c in {1,2,3,6}: x in {18,9,6,3}; all x chunks
        # of 384 are >= 16 cells, so 4 configs.
        assert len(cfgs) == 4

    def test_enumerate_tg1(self):
        cfgs = list(enumerate_tg_configs(1, bz=4, nx=384))
        assert len(cfgs) == 1 and cfgs[0].size == 1

    def test_enumerate_invalid(self):
        with pytest.raises(ValueError):
            list(enumerate_tg_configs(0, bz=1, nx=8))
