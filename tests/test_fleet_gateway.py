"""End-to-end tests of the fleet tier: three real in-process serve
nodes behind a consistent-hash gateway.

Each node is a full ``Scheduler`` + ``ServiceServer`` pair on an
ephemeral port; the gateway routes by job content hash.  The tests
cover the fleet contract: gateway-served results are bit-identical to
direct ``run_job`` runs, dedup survives the extra hop, node death fails
over to the replica (bumping the shard-map version) with exactly-once
results, cross-shard batches scatter and gather losslessly, and the
health endpoints expose membership and staleness."""

import json
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.fleet import NodeRegistry, make_gateway
from repro.service import JobSpec, Scheduler, make_server, run_job

FAST = dict(kind="solve", preset="vacuum", grid=10, wavelength=10.0,
            tol=1e-4, max_steps=20)


def _request(method, url, payload=None, headers=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read() or b"{}"), \
                dict(resp.headers)
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}"), dict(e.headers or {})


def _poll(base, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while True:
        status, doc, _ = _request("GET", f"{base}/jobs/{job_id}")
        assert status == 200, doc
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        assert time.monotonic() < deadline, f"job stuck {doc['state']}"
        time.sleep(0.05)


class _Node:
    """One in-process serve node (scheduler + HTTP server)."""

    def __init__(self, i):
        self.sched = Scheduler(workers=1, retry_base_s=0.001).start()
        self.server = make_server(self.sched, port=0, node_id=f"node{i}")
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self.thread.start()
        self.url = f"http://127.0.0.1:{self.server.server_port}"
        self.dead = False

    def kill(self):
        """Abrupt node death: the socket starts refusing."""
        if self.dead:
            return
        self.dead = True
        self.server.shutdown()
        self.server.server_close()
        self.sched.stop()
        self.thread.join(timeout=5.0)


@pytest.fixture()
def fleet():
    """Three live nodes + a gateway; heartbeats are manual
    (``check_once``) so every liveness transition is deterministic."""
    nodes = [_Node(i) for i in range(3)]
    registry = NodeRegistry([n.url for n in nodes], dead_after=1,
                            timeout_s=10.0, interval_s=3600.0)
    registry.check_once()  # learn node_ids; no background thread
    gateway = make_gateway(registry)
    thread = threading.Thread(target=gateway.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{gateway.server_port}"
    try:
        yield SimpleNamespace(base=base, registry=registry, nodes=nodes,
                              gateway=gateway)
    finally:
        gateway.shutdown()
        gateway.server_close()
        thread.join(timeout=5.0)
        registry.stop()
        for node in nodes:
            node.kill()


def _node_by_url(fleet, url):
    return next(n for n in fleet.nodes if n.url == url)


def _spec_homed_on(fleet, url, *, grid=10):
    """A FAST-shaped spec whose home shard is ``url``."""
    smap = fleet.registry.shard_map()
    for w in range(10, 200):
        spec = JobSpec(**dict(FAST, grid=grid, wavelength=float(w)))
        if smap.owners(spec.job_id)[0] == url:
            return spec
    raise AssertionError(f"no spec homed on {url}")


class TestRouting:
    def test_gateway_result_bit_identical_to_direct_run(self, fleet):
        status, doc, headers = _request("POST", f"{fleet.base}/jobs", FAST)
        assert status == 202
        assert headers.get("X-Repro-Gateway") == "1"
        # The gateway annotates the envelope with the owning node...
        home = fleet.registry.shard_map().owners(doc["id"])[0]
        assert doc["node"] == home
        done = _poll(fleet.base, doc["id"])
        # ...but the result payload is exactly the direct run's bytes.
        assert done["result"] == run_job(JobSpec(**FAST))

    def test_duplicate_submission_coalesces_through_gateway(self, fleet):
        _, first, _ = _request("POST", f"{fleet.base}/jobs", FAST)
        _, second, _ = _request("POST", f"{fleet.base}/jobs",
                                dict(FAST, priority=3))
        assert second["id"] == first["id"]
        assert second["dedup_count"] == 1
        _poll(fleet.base, first["id"])
        assert sum(n.sched.stats()["executed"] for n in fleet.nodes) == 1

    def test_specs_spread_over_nodes(self, fleet):
        smap = fleet.registry.shard_map()
        homes = {
            smap.owners(JobSpec(**dict(FAST, wavelength=float(w))).job_id)[0]
            for w in range(10, 40)
        }
        assert len(homes) > 1

    def test_invalid_spec_rejected_at_gateway(self, fleet):
        status, doc, _ = _request("POST", f"{fleet.base}/jobs",
                                  dict(FAST, kind="dance"))
        assert status == 400 and "invalid job spec" in doc["error"]

    def test_unknown_job_404(self, fleet):
        status, doc, _ = _request(
            "GET", f"{fleet.base}/jobs/ffffffffffffffffffffffff")
        assert status == 404

    def test_cancel_unknown_404(self, fleet):
        assert _request("DELETE", f"{fleet.base}/jobs/feedface")[0] == 404

    def test_merged_job_listing(self, fleet):
        ids = set()
        for w in (10.0, 11.0, 12.0, 13.0):
            _, doc, _ = _request("POST", f"{fleet.base}/jobs",
                                 dict(FAST, wavelength=w))
            ids.add(doc["id"])
        status, doc, _ = _request("GET", f"{fleet.base}/jobs")
        assert status == 200
        listed = {j["id"] for j in doc["jobs"]}
        assert ids <= listed
        assert all(j["node"] in {n.url for n in fleet.nodes}
                   for j in doc["jobs"])


class TestFailover:
    def test_node_death_fails_over_with_identical_result(self, fleet):
        victim_url = fleet.nodes[0].url
        spec = _spec_homed_on(fleet, victim_url)
        clean = run_job(spec)
        _, doc, _ = _request("POST", f"{fleet.base}/jobs", spec.to_dict())
        assert doc["node"] == victim_url
        _poll(fleet.base, doc["id"])

        v0 = fleet.registry.version
        _node_by_url(fleet, victim_url).kill()
        # The in-memory store died with the node; the gateway routes to
        # the replica, resubmits the cached spec, and the result comes
        # back byte-for-byte the same (exactly-once in results).
        done = _poll(fleet.base, doc["id"])
        assert done["result"] == clean
        assert done["node"] != victim_url
        assert fleet.registry.node(victim_url).state == "dead"
        assert fleet.registry.version > v0

    def test_all_owners_dead_is_503_with_retry_after(self, fleet):
        spec = JobSpec(**FAST)
        owners = fleet.registry.shard_map().owners(spec.job_id)
        for url in owners:
            _node_by_url(fleet, url).kill()
        status, doc, headers = _request(
            "GET", f"{fleet.base}/jobs/{spec.job_id}")
        assert status == 503
        assert headers.get("Retry-After")
        assert doc["kind"] == "NodeUnavailable"

    def test_healthz_reflects_death_and_revival_bumps_version(self, fleet):
        fleet.registry.mark_dead(fleet.nodes[2].url)
        v_dead = fleet.registry.version
        _, doc, _ = _request("GET", f"{fleet.base}/healthz")
        assert doc["ok"] is True and doc["alive"] == 2
        dead = [n for n in doc["nodes"] if n["state"] == "dead"]
        assert [n["url"] for n in dead] == [fleet.nodes[2].url]
        # The node is actually fine: the next heartbeat revives it and
        # bumps the version again.
        fleet.registry.check_once()
        assert fleet.registry.version > v_dead
        _, doc, _ = _request("GET", f"{fleet.base}/healthz")
        assert doc["alive"] == 3


class TestScatterGather:
    def _cross_shard_batch(self, fleet, k=4):
        """A batch whose points span at least two home shards."""
        smap = fleet.registry.shard_map()
        ws, homes = [], set()
        for w in range(10, 200):
            spec = JobSpec(**dict(FAST, wavelength=float(w)))
            ws.append(float(w))
            homes.add(smap.owners(spec.job_id)[0])
            if len(ws) >= k and len(homes) > 1:
                break
        assert len(homes) > 1
        base = {key: value for key, value in FAST.items()
                if key not in ("wavelength", "kind")}
        return JobSpec(kind="batch", wavelengths=tuple(ws), **base)

    def test_cross_shard_batch_scatters_and_gathers(self, fleet):
        spec = self._cross_shard_batch(fleet)
        clean = run_job(spec)
        status, doc, _ = _request("POST", f"{fleet.base}/jobs",
                                  spec.to_dict())
        assert status == 202
        assert doc["scatter"]["shards"] > 1
        done = _poll(fleet.base, spec.job_id)
        assert done["state"] == "done"
        got = done["result"]
        assert got["kind"] == "batch"
        assert got["batch_width"] == len(spec.wavelengths)
        assert got["solved"] + got["dedup_hits"] == len(spec.wavelengths)
        assert got["failed"] == 0
        # Per-point docs come back verbatim from their shards: the
        # result payloads are bit-identical to the unsplit batch's.
        assert [p["wavelength"] for p in got["points"]] == \
            [p["wavelength"] for p in clean["points"]]
        for mine, theirs in zip(got["points"], clean["points"]):
            assert mine["id"] == theirs["id"]
            assert mine["result"] == theirs["result"]

    def test_scattered_batch_has_no_single_event_stream(self, fleet):
        spec = self._cross_shard_batch(fleet)
        _request("POST", f"{fleet.base}/jobs", spec.to_dict())
        status, doc, _ = _request(
            "GET", f"{fleet.base}/jobs/{spec.job_id}/events")
        assert status == 404 and "scattered" in doc["error"]
        _poll(fleet.base, spec.job_id)


class TestEventsProxy:
    def test_stream_proxied_to_owning_node(self, fleet):
        _, doc, _ = _request("POST", f"{fleet.base}/jobs", FAST)
        events = []
        with urllib.request.urlopen(
                f"{fleet.base}/jobs/{doc['id']}/events",
                timeout=90.0) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            assert resp.headers["X-Repro-Gateway"] == "1"
            assert resp.headers["X-Repro-Node-Url"] in {
                n.url for n in fleet.nodes}
            for raw in resp:
                line = raw.decode().strip()
                if line:
                    events.append(json.loads(line))
        assert events and events[-1]["kind"] == "end"


class TestFleetIntrospection:
    def test_fleet_endpoint_exposes_shard_map(self, fleet):
        status, doc, _ = _request("GET", f"{fleet.base}/fleet")
        assert status == 200
        assert doc["version"] == fleet.registry.version
        assert doc["replicas"] == 2
        assert len(doc["nodes"]) == 3
        assert {n["node_id"] for n in doc["nodes"]} == \
            {"node0", "node1", "node2"}

    def test_healthz_shape(self, fleet):
        _, doc, _ = _request("GET", f"{fleet.base}/healthz")
        assert doc["role"] == "gateway"
        assert doc["ok"] is True
        assert doc["alive"] == 3 and doc["replicas"] == 2
        assert doc["shard_version"] == fleet.registry.version
        assert doc["stale"] == [] and doc["split_brain"] == []

    def test_metrics_json_rollup_includes_every_node(self, fleet):
        _, doc, _ = _request("POST", f"{fleet.base}/jobs", FAST)
        _poll(fleet.base, doc["id"])
        status, m, _ = _request("GET",
                                f"{fleet.base}/metrics?format=json")
        assert status == 200
        assert set(m["nodes"]) == {n.url for n in fleet.nodes}
        assert m["shard_version"] == fleet.registry.version
        assert all("scheduler" in rollup for rollup in m["nodes"].values())

    def test_metrics_prometheus_text(self, fleet):
        req = urllib.request.Request(f"{fleet.base}/metrics")
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")


class TestRegistryUnit:
    def test_stale_and_split_brain_flags(self, fleet):
        url = fleet.nodes[0].url
        fleet.registry.mark_dead(fleet.nodes[1].url)  # bump the version
        current = fleet.registry.version
        fleet.registry.mark_alive(url, {"node_id": "node0",
                                        "shard_version": current - 1})
        assert fleet.registry.node(url).stale is True
        fleet.registry.mark_alive(url, {"node_id": "node0",
                                        "shard_version": current + 10})
        assert fleet.registry.node(url).split_brain is True
        _, doc, _ = _request("GET", f"{fleet.base}/healthz")
        assert url in doc["split_brain"]

    def test_replaced_node_id_bumps_version(self, fleet):
        url = fleet.nodes[0].url
        v0 = fleet.registry.version
        fleet.registry.mark_alive(url, {"node_id": "impostor"})
        assert fleet.registry.version > v0

    def test_registry_validates_urls(self):
        with pytest.raises(ValueError):
            NodeRegistry([])
        with pytest.raises(ValueError):
            NodeRegistry(["http://a", "http://a/"])
