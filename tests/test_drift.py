"""Tests for the model-vs-measured drift gate.

The pinned baseline captures the deterministic LRU measurement at pin
time; drift must be exactly zero on an unchanged substrate, and the gate
must trip when a point moves beyond the budget.
"""

import copy
import json

import pytest

from repro.experiments.drift import (
    DRIFT_BUDGET,
    FIG5_POINTS,
    DriftReport,
    baseline_path,
    fig5_drift_report,
    load_baseline,
    pin_baseline,
)


class TestBaseline:
    def test_committed_baseline_covers_all_points(self):
        base = load_baseline()
        assert base["grid_nx"] == 480
        assert len(base["points"]) == len(FIG5_POINTS) == 12
        for bz, dw in FIG5_POINTS:
            p = base["points"][f"bz={bz},dw={dw}"]
            assert p["Bz"] == bz and p["Dw"] == dw
            assert p["Bc_measured"] > 0

    def test_pin_reproduces_committed_baseline(self, tmp_path):
        """The substrate is deterministic: re-pinning must reproduce the
        committed numbers exactly."""
        out = pin_baseline(path=str(tmp_path / "pin.json"))
        assert json.load(open(out)) == json.load(open(baseline_path()))


class TestDriftReport:
    def test_zero_drift_on_unchanged_substrate(self):
        rep = fig5_drift_report()
        assert rep.ok
        assert rep.worst == 0.0
        assert len(rep.rows) == 12
        for r in rep.rows:
            assert r["drift_pct"] == 0.0 and r["within_budget"]
            assert r["Bc_measured"] == r["Bc_expected"]

    def test_gate_trips_on_perturbed_expectation(self):
        base = copy.deepcopy(load_baseline())
        key = "bz=1,dw=4"
        base["points"][key]["Bc_measured"] *= 1.02  # 2% > 1% budget
        rep = fig5_drift_report(baseline=base)
        assert not rep.ok
        bad = [r for r in rep.rows if not r["within_budget"]]
        assert len(bad) == 1
        assert (bad[0]["Bz"], bad[0]["Dw"]) == (1, 4)
        # measured/expected - 1 = 1/1.02 - 1 = -1.96% -> |worst| ~ 2%
        assert 1.5 < rep.worst < 2.5

    def test_budget_boundary_inclusive(self):
        base = copy.deepcopy(load_baseline())
        for p in base["points"].values():
            p["Bc_measured"] *= 1.0 + DRIFT_BUDGET * 0.99
        rep = fig5_drift_report(baseline=base)
        assert rep.ok  # just inside the budget on every point

    def test_to_json_shape(self):
        rep = DriftReport(rows=[{"drift_pct": 0.5, "within_budget": True}],
                          budget=0.01)
        d = rep.to_json()
        assert d["ok"] and d["budget_pct"] == 1.0
        assert d["worst_drift_pct"] == 0.5
        assert d["rows"] == rep.rows


class TestDriftCli:
    def test_figures_drift_ok(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["figures", "--which", "drift", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "drift gate: OK" in out
        doc = json.load(open(tmp_path / "drift.json"))
        assert doc["ok"] and len(doc["rows"]) == 12
