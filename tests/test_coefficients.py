"""Tests for the THIIM coefficient builder: array accounting, stability
properties (forward vs. back iteration), PML folding, source handling."""

import numpy as np
import pytest

from repro.fdfd import (
    ALL_COMPONENTS,
    SPECS,
    Grid,
    PMLSpec,
    build_coefficients,
    random_coefficients,
)
from repro.fdfd.coefficients import CoefficientSet


@pytest.fixture
def grid():
    return Grid(nz=12, ny=6, nx=5)


class TestArrayAccounting:
    def test_exactly_28_arrays(self, grid):
        cs = build_coefficients(grid, omega=1.0, tau=0.1)
        assert len(cs.arrays) == 28
        names = set(cs.arrays)
        assert {"SrcEx", "SrcEy", "SrcHx", "SrcHy"} <= names
        for comp in ALL_COMPONENTS:
            assert f"t{comp}" in names and f"c{comp}" in names

    def test_all_domain_sized_complex(self, grid):
        cs = build_coefficients(grid, omega=1.0, tau=0.1)
        for name, arr in cs.arrays.items():
            assert arr.shape == grid.shape, name
            assert arr.dtype == np.complex128, name

    def test_validation_missing_array(self, grid):
        cs = build_coefficients(grid, omega=1.0, tau=0.1)
        arrays = dict(cs.arrays)
        arrays.pop("tExy")
        with pytest.raises(KeyError):
            CoefficientSet(grid=grid, omega=1.0, tau=0.1, arrays=arrays)

    def test_validation_extra_array(self, grid):
        cs = build_coefficients(grid, omega=1.0, tau=0.1)
        arrays = dict(cs.arrays)
        arrays["tExy"] = arrays["tExy"]
        arrays["bogus"] = grid.zeros()
        arrays.pop("SrcHy")
        with pytest.raises(KeyError):
            CoefficientSet(grid=grid, omega=1.0, tau=0.1, arrays=arrays)

    def test_accessors(self, grid):
        cs = build_coefficients(grid, omega=1.0, tau=0.1)
        assert cs.t("Exy") is cs.arrays["tExy"]
        assert cs.c("Hzy") is cs.arrays["cHzy"]
        assert cs.src("Exz") is cs.arrays["SrcEx"]
        assert cs.src("Exy") is None
        assert cs["tExy"] is cs.arrays["tExy"]


class TestStability:
    """THIIM's raison d'etre: |c| <= 1 with the right iteration per cell."""

    def test_vacuum_is_neutrally_stable(self, grid):
        cs = build_coefficients(grid, omega=0.8, tau=0.2)
        assert cs.spectral_radius_bound() == pytest.approx(1.0, abs=1e-12)

    def test_lossy_material_contracts(self, grid):
        cs = build_coefficients(grid, omega=0.8, tau=0.2, eps=2.0, sigma=0.5)
        for name in ALL_COMPONENTS:
            if name.startswith("E"):
                assert np.all(np.abs(cs.c(name)) < 1.0)

    def test_back_iteration_selected_for_negative_eps(self, grid):
        eps = np.ones(grid.shape)
        eps[5:] = -9.0  # metal half-space
        cs = build_coefficients(grid, omega=0.8, tau=0.2, eps=eps, sigma=1.0)
        assert cs.back_mask is not None
        assert np.all(cs.back_mask[5:])
        assert not cs.back_mask[:5].any()
        # Back iteration damps the metal cells.
        for name in ALL_COMPONENTS:
            if name.startswith("E"):
                assert np.all(np.abs(cs.c(name)[5:]) < 1.0)

    def test_forward_iteration_would_amplify_metal(self, grid):
        """|c_forward| > 1 for sigma > 0, eps < 0 -- the instability the
        back iteration exists to avoid (Section I of the paper)."""
        omega, tau, eps, sigma = 0.8, 0.2, -9.0, 1.0
        denom_fwd = 1.0 + tau * sigma / eps
        assert abs(np.exp(-1j * omega * tau) / denom_fwd) > 1.0
        denom_back = 1.0 - tau * sigma / eps
        assert abs(np.exp(1j * omega * tau) / denom_back) < 1.0

    def test_no_back_mask_for_dielectrics(self, grid):
        cs = build_coefficients(grid, omega=0.8, tau=0.2, eps=2.25)
        assert cs.back_mask is None


class TestPMLFolding:
    def test_pml_damps_only_matching_axis_components(self, grid):
        cs = build_coefficients(
            grid, omega=0.8, tau=0.2, pml={"z": PMLSpec(thickness=4)}
        )
        inside_pml = (0, 3, 2)  # z = 0 is deep in the PML
        centre = (6, 3, 2)
        for name in ALL_COMPONENTS:
            spec = SPECS[name]
            c_in = abs(cs.c(name)[inside_pml])
            c_mid = abs(cs.c(name)[centre])
            if spec.deriv_axis == 0:  # z-loss components are damped
                assert c_in < c_mid
            else:  # others untouched by a z-PML
                assert c_in == pytest.approx(c_mid, rel=1e-12)

    def test_pml_magnetic_matching(self, grid):
        """H split parts are damped too (matched PML)."""
        cs = build_coefficients(grid, omega=0.8, tau=0.2, pml={"z": PMLSpec(thickness=4)})
        assert abs(cs.c("Hyz")[0, 0, 0]) < abs(cs.c("Hyz")[6, 0, 0])

    def test_multi_axis_pml(self, grid):
        cs = build_coefficients(
            grid,
            omega=0.8,
            tau=0.2,
            pml={"z": PMLSpec(thickness=4), "y": PMLSpec(thickness=2)},
        )
        assert abs(cs.c("Exy")[6, 0, 2]) < abs(cs.c("Exy")[6, 3, 2])


class TestSources:
    def test_source_arrays_folded(self, grid):
        raw = np.zeros(grid.shape, dtype=np.complex128)
        raw[4, :, :] = 2.0
        cs = build_coefficients(grid, omega=0.8, tau=0.2, sources={"SrcEx": raw})
        src = cs.arrays["SrcEx"]
        assert src[4].all()
        assert not src[0].any() and not src[8].any()
        # Folded value = raw * tau * e^{-i w tau} / denom (vacuum: denom=1).
        expected = 2.0 * 0.2 * np.exp(-1j * 0.8 * 0.2)
        assert src[4, 0, 0] == pytest.approx(expected)

    def test_missing_sources_are_zero(self, grid):
        cs = build_coefficients(grid, omega=0.8, tau=0.2)
        for s in ("SrcEx", "SrcEy", "SrcHx", "SrcHy"):
            assert not cs.arrays[s].any()

    def test_wrong_source_shape_rejected(self, grid):
        with pytest.raises(ValueError):
            build_coefficients(
                grid, omega=0.8, tau=0.2, sources={"SrcEx": np.zeros((2, 2, 2))}
            )


class TestValidation:
    def test_bad_scalars(self, grid):
        with pytest.raises(ValueError):
            build_coefficients(grid, omega=0.0, tau=0.1)
        with pytest.raises(ValueError):
            build_coefficients(grid, omega=1.0, tau=-0.1)
        with pytest.raises(ValueError):
            build_coefficients(grid, omega=1.0, tau=0.1, eps=0.0)
        with pytest.raises(ValueError):
            build_coefficients(grid, omega=1.0, tau=0.1, sigma=-1.0)
        with pytest.raises(ValueError):
            build_coefficients(grid, omega=1.0, tau=0.1, mu=0.0)

    def test_random_coefficients_stable(self, grid):
        cs = random_coefficients(grid, seed=3, contraction=0.8)
        assert cs.spectral_radius_bound() < 0.8 + 1e-9
        with pytest.raises(ValueError):
            random_coefficients(grid, contraction=1.5)
