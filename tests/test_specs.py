"""Tests for the component specifications (the paper's Section III counts)."""

import pytest

from repro.fdfd.specs import (
    ALL_COMPONENTS,
    AXIS_X,
    AXIS_Y,
    AXIS_Z,
    BYTES_PER_CELL,
    COEFF_ARRAY_COUNT,
    E_COMPONENTS,
    FIELD_ARRAY_COUNT,
    FLOPS_PER_LUP,
    H_COMPONENTS,
    SOURCE_COMPONENTS,
    SPECS,
    TOTAL_ARRAY_COUNT,
    component_groups,
    flops_for_component,
)


class TestArrayCounts:
    """The storage accounting of Section III of the paper."""

    def test_twelve_field_components(self):
        assert FIELD_ARRAY_COUNT == 12
        assert len(E_COMPONENTS) == 6
        assert len(H_COMPONENTS) == 6

    def test_twenty_eight_coefficient_arrays(self):
        # 4 * 3 + 8 * 2 = 28 (paper, Section III).
        assert COEFF_ARRAY_COUNT == 28

    def test_forty_arrays_640_bytes_per_cell(self):
        assert TOTAL_ARRAY_COUNT == 40
        assert BYTES_PER_CELL == 640

    def test_four_source_components(self):
        assert len(SOURCE_COMPONENTS) == 4
        # All four difference along the outer (z) dimension -- they are
        # the paper's Listing-1-type kernels.
        for name in SOURCE_COMPONENTS:
            assert SPECS[name].deriv_axis == AXIS_Z

    def test_flop_counts_match_listings(self):
        # Listing 1 (with source): 22 flops; Listing 2: 20 flops.
        for name in ALL_COMPONENTS:
            expected = 22 if SPECS[name].source else 20
            assert flops_for_component(name) == expected

    def test_total_flops_per_lup(self):
        # 4 * 22 + 8 * 20 = 248 DP flops/LUP (Section III-A).
        assert FLOPS_PER_LUP == 248


class TestDependencyStructure:
    """Fig. 3: H depends in the positive direction, E in the negative."""

    def test_h_components_shift_positive(self):
        for name in H_COMPONENTS:
            assert SPECS[name].shift == +1

    def test_e_components_shift_negative(self):
        for name in E_COMPONENTS:
            assert SPECS[name].shift == -1

    def test_reads_cross_fields(self):
        # E components read only H split parts and vice versa.
        for name, spec in SPECS.items():
            other = "H" if spec.field == "E" else "E"
            for r in spec.reads:
                assert r.startswith(other)

    def test_reads_are_split_pair(self):
        # Each update reads both split parts of one driving component.
        for spec in SPECS.values():
            a, b = spec.reads
            assert a[:2] == b[:2]
            assert {a[2], b[2]} == set("zyx") - {a[1]}

    def test_component_and_deriv_axes_differ(self):
        for spec in SPECS.values():
            assert spec.comp_axis != spec.deriv_axis

    def test_loss_axis_is_deriv_axis(self):
        for spec in SPECS.values():
            assert spec.loss_axis == spec.deriv_axis

    def test_curl_pairs_have_opposite_signs(self):
        # The two split parts of any vector component come from the two
        # curl terms, which carry opposite signs.
        for comp in ("Ex", "Ey", "Ez", "Hx", "Hy", "Hz"):
            parts = [s for n, s in SPECS.items() if n.startswith(comp)]
            assert len(parts) == 2
            assert parts[0].sign * parts[1].sign == -1

    def test_each_axis_appears_four_times_as_deriv(self):
        for axis in (AXIS_Z, AXIS_Y, AXIS_X):
            count = sum(1 for s in SPECS.values() if s.deriv_axis == axis)
            assert count == 4

    def test_coeff_names_unique(self):
        names = [n for s in SPECS.values() for n in s.coeff_names]
        assert len(names) == len(set(names))


class TestComponentGroups:
    """The 1/2/3/6-way component parallelism of Section II-B."""

    @pytest.mark.parametrize("n", [1, 2, 3, 6])
    def test_partition_is_balanced_and_complete(self, n):
        groups = component_groups(n)
        assert len(groups) == n
        sizes = {len(g) for g in groups}
        assert sizes == {6 // n}
        flat = [i for g in groups for i in g]
        assert sorted(flat) == list(range(6))

    @pytest.mark.parametrize("n", [0, 4, 5, 7, 12])
    def test_invalid_parallelism_rejected(self, n):
        with pytest.raises(ValueError):
            component_groups(n)
