"""Batched solves are bit-for-bit the per-point solves.

The batched campaign engine's one absolute contract: stacking k
wavelengths into ``12 x k`` arrays and sweeping them together must
produce, for every lane, *exactly* the arrays, iteration counts and
residual histories of k independent scalar solves -- including when the
lanes converge at different sweeps and the batch compacts mid-run.

The property test randomizes the preset and the wavelength set, then
picks the tolerance *adaptively* from probed per-point residual
histories: the candidate tolerance that makes every lane converge while
maximizing the spread of convergence sweeps, so staggered convergence
(and the lane-compaction path it triggers) is exercised rather than
hoped for.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tiled_solver import BatchedTiledTHIIM, TiledTHIIM
from repro.fdfd import (
    BatchedTHIIMSolver,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    THIIMSolver,
)
from repro.fdfd.presets import PRESETS, preset_scene

SIZE = 8
CHECK_EVERY = 20
PROBE_STEPS = 160


def _problem(preset):
    nz = 2 * SIZE
    grid = Grid(nz=nz, ny=SIZE, nx=SIZE, periodic=(False, False, False))
    scene = preset_scene(preset, nz)
    source = PlaneWaveSource(z_plane=nz // 2, z_width=2.0)
    pml = {"z": PMLSpec(thickness=4)}
    return grid, scene, source, pml


def _scalar(preset, omega):
    grid, scene, source, pml = _problem(preset)
    return THIIMSolver(grid, omega, scene=scene, source=source, pml=pml)


def _batched(preset, omegas):
    grid, scene, source, pml = _problem(preset)
    return BatchedTHIIMSolver(grid, omegas, scene=scene, source=source,
                              pml=pml)


def _probe_histories(preset, omegas):
    """Per-lane residual histories of full-length scalar runs
    (unreachable tolerance, so every lane records PROBE_STEPS worth)."""
    return [
        _scalar(preset, omega).solve(
            tol=1e-30, max_steps=PROBE_STEPS, check_every=CHECK_EVERY
        ).residual_history
        for omega in omegas
    ]


def _staggering_tol(histories):
    """The candidate tolerance (just above a recorded residual) that
    converges every lane while maximizing distinct convergence sweeps.

    Returns ``(tol, expected_iterations, distinct)``.  A converging
    candidate always exists: the largest per-lane minimum residual."""
    best = None
    for base in sorted({r for h in histories for r in h}, reverse=True):
        tol = base * (1 + 1e-9)
        iters = []
        for h in histories:
            idx = next((i for i, r in enumerate(h) if r < tol), None)
            if idx is None:
                break
            iters.append((idx + 1) * CHECK_EVERY)
        else:
            distinct = len(set(iters))
            if best is None or distinct > best[2]:
                best = (tol, iters, distinct)
    assert best is not None
    return best


def _assert_lanes_equal(scalar_results, batch):
    for lane, (a, b) in enumerate(zip(scalar_results, batch.results)):
        assert a.iterations == b.iterations, f"lane {lane}"
        assert a.converged == b.converged, f"lane {lane}"
        assert a.residual == b.residual, f"lane {lane}"
        assert a.residual_history == b.residual_history, f"lane {lane}"
        for name in a.fields:
            assert np.array_equal(a.fields[name], b.fields[name]), \
                f"lane {lane}: {name}"


@given(preset=st.sampled_from(PRESETS), seed=st.integers(0, 2**16))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_batched_equals_per_point_bitwise(preset, seed):
    rng = np.random.default_rng(seed)
    wavelengths = np.sort(rng.uniform(6.0, 18.0, size=3))
    omegas = [2 * np.pi / w for w in wavelengths]

    tol, expected_iters, distinct = _staggering_tol(
        _probe_histories(preset, omegas))

    scalar_results = [
        _scalar(preset, omega).solve(tol=tol, max_steps=PROBE_STEPS,
                                     check_every=CHECK_EVERY)
        for omega in omegas
    ]
    batch = _batched(preset, omegas).solve(tol=tol, max_steps=PROBE_STEPS,
                                           check_every=CHECK_EVERY)

    assert [r.iterations for r in batch.results] == expected_iters
    assert len({r.iterations for r in batch.results}) == distinct
    _assert_lanes_equal(scalar_results, batch)


@pytest.mark.parametrize("preset", PRESETS)
def test_staggered_convergence_compacts_bitwise(preset):
    """A deterministic wide-spread wavelength set where the adaptive
    tolerance yields genuinely staggered convergence, so mid-run lane
    compaction is on the line for every preset."""
    wavelengths = [6.0, 10.0, 17.0]
    omegas = [2 * np.pi / w for w in wavelengths]

    tol, expected_iters, distinct = _staggering_tol(
        _probe_histories(preset, omegas))
    assert distinct >= 2, (
        f"no staggering tolerance found for {preset}: {expected_iters}")

    scalar_results = [
        _scalar(preset, omega).solve(tol=tol, max_steps=PROBE_STEPS,
                                     check_every=CHECK_EVERY)
        for omega in omegas
    ]
    batch = _batched(preset, omegas).solve(tol=tol, max_steps=PROBE_STEPS,
                                           check_every=CHECK_EVERY)

    assert [r.iterations for r in batch.results] == expected_iters
    _assert_lanes_equal(scalar_results, batch)


def test_tiled_batched_equals_tiled_per_point_bitwise():
    """The MWD-tiled batched driver matches per-point tiled solves lane
    for lane (fixed sweep count: unreachable tolerance)."""
    preset = "tandem"
    omegas = [2 * np.pi / w for w in (10.0, 11.0, 12.0)]
    tol, max_steps = 1e-12, 24

    scalar_results = []
    for omega in omegas:
        driver = TiledTHIIM(_scalar(preset, omega), dw=4, bz=2)
        scalar_results.append(driver.solve(tol=tol, max_steps=max_steps))

    driver = BatchedTiledTHIIM(_batched(preset, omegas), dw=4, bz=2)
    batch = driver.solve(tol=tol, max_steps=max_steps)

    _assert_lanes_equal(scalar_results, batch)
