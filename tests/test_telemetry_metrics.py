"""Unit tests of the telemetry metrics registry (Prometheus exposition)."""

import math

import pytest

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounters:
    def test_inc_and_get(self, reg):
        c = reg.counter("widgets_total", "widgets made")
        c.inc()
        c.inc(2.5)
        assert reg.get_value("widgets_total") == 3.5

    def test_counters_only_go_up(self, reg):
        c = reg.counter("widgets_total", "widgets made", labelnames=("l",))
        with pytest.raises(ValueError):
            c.labels("a").inc(-1)
        with pytest.raises(TypeError):
            c.labels("a").set(5)

    def test_labelled_series_are_independent(self, reg):
        c = reg.counter("outcomes_total", "by outcome", labelnames=("outcome",))
        c.labels("done").inc(3)
        c.labels(outcome="failed").inc()
        assert reg.get_value("outcomes_total", ("done",)) == 3
        assert reg.get_value("outcomes_total", ("failed",)) == 1

    def test_wrong_label_arity_raises(self, reg):
        c = reg.counter("outcomes_total", "by outcome", labelnames=("outcome",))
        with pytest.raises(ValueError):
            c.labels("a", "b")

    def test_registration_is_idempotent_by_name(self, reg):
        a = reg.counter("widgets_total", "widgets made")
        b = reg.counter("widgets_total", "widgets made")
        assert a is b

    def test_kind_conflict_raises(self, reg):
        reg.counter("widgets_total", "widgets made")
        with pytest.raises(ValueError):
            reg.gauge("widgets_total", "now a gauge?!")

    def test_prefix_is_applied_once(self, reg):
        c = reg.counter("repro_widgets_total", "already prefixed")
        assert c.name == "repro_widgets_total"
        assert reg.counter("widgets_total", "same one") is c


class TestGauges:
    def test_set_and_inc(self, reg):
        g = reg.gauge("depth", "queue depth")
        g.set(7)
        g.inc(-2)
        assert reg.get_value("depth") == 5

    def test_gauges_cannot_observe(self, reg):
        g = reg.gauge("depth", "queue depth", labelnames=("l",))
        with pytest.raises(TypeError):
            g.labels("a").observe(1.0)


class TestHistogramBucketMath:
    def test_observations_land_in_the_right_buckets(self, reg):
        h = reg.histogram("lat", "latency", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 3.0, 10.0):
            h.observe(v)
        snap = reg.snapshot()["repro_lat"]["series"][0]
        # Cumulative: le=1 counts 0.5 and the boundary value 1.0.
        assert snap["buckets"] == {"1": 2, "2": 3, "5": 4, "+Inf": 5}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(16.0)

    def test_boundary_value_is_le(self, reg):
        h = reg.histogram("lat", "latency", buckets=(1.0,))
        h.observe(1.0)
        snap = reg.snapshot()["repro_lat"]["series"][0]
        assert snap["buckets"] == {"1": 1, "+Inf": 1}

    def test_edges_are_sorted_and_unique(self, reg):
        h = reg.histogram("lat", "latency", buckets=(5.0, 1.0, 2.0))
        assert h.edges == (1.0, 2.0, 5.0)
        with pytest.raises(ValueError):
            reg.histogram("lat2", "dupes", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("lat3", "empty", buckets=())

    def test_default_buckets_cover_solve_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 300.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_labelled_histogram_children_get_buckets(self, reg):
        h = reg.histogram("lat", "latency", labelnames=("kind",),
                          buckets=(1.0, 2.0))
        h.labels("solve").observe(1.5)
        series = reg.snapshot()["repro_lat"]["series"]
        assert series[0]["labels"] == {"kind": "solve"}
        assert series[0]["buckets"] == {"1": 0, "2": 1, "+Inf": 1}


class TestRender:
    def test_text_format_headers_and_series(self, reg):
        c = reg.counter("jobs_total", "jobs", labelnames=("state",))
        c.labels("done").inc(2)
        text = reg.render()
        assert "# HELP repro_jobs_total jobs" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{state="done"} 2' in text
        assert text.endswith("\n")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_histogram_renders_cumulative_buckets(self, reg):
        h = reg.histogram("lat", "latency", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = reg.render()
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="2"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_sum 2" in text
        assert "repro_lat_count 2" in text

    def test_label_values_are_escaped(self, reg):
        c = reg.counter("odd_total", "odd labels", labelnames=("path",))
        c.labels('a"b\\c\nd').inc()
        text = reg.render()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_infinite_gauge_renders_as_inf(self, reg):
        g = reg.gauge("lag", "lag")
        g.set(math.inf)
        assert "repro_lag +Inf" in reg.render()


class TestCollectors:
    def test_collector_runs_at_render_time(self, reg):
        g = reg.gauge("depth", "queue depth")
        source = {"depth": 0}
        reg.register_collector(lambda: g.set(source["depth"]))
        source["depth"] = 9
        assert "repro_depth 9" in reg.render()
        source["depth"] = 4
        assert reg.snapshot()["repro_depth"]["series"][0]["value"] == 4

    def test_broken_collector_does_not_break_scrapes(self, reg):
        reg.counter("ok_total", "fine").inc()

        def boom():
            raise RuntimeError("collector bug")

        reg.register_collector(boom)
        assert "repro_ok_total 1" in reg.render()

    def test_unregister(self, reg):
        g = reg.gauge("depth", "queue depth")
        calls = []
        fn = reg.register_collector(lambda: calls.append(g))
        reg.render()
        reg.unregister_collector(fn)
        reg.render()
        assert len(calls) == 1


class TestMergeSnapshot:
    """The forked-worker delta merge (child resets, parent adds)."""

    def test_counters_add_and_gauges_adopt(self, reg):
        child = MetricsRegistry()
        reg.counter("sweeps_total", "sweeps").inc(10)
        child.counter("sweeps_total", "sweeps").inc(7)
        child.gauge("mlups", "rate").set(42.0)
        reg.merge_snapshot(child.snapshot())
        assert reg.get_value("sweeps_total") == 17
        assert reg.get_value("mlups") == 42.0

    def test_labelled_series_merge_by_label(self, reg):
        child = MetricsRegistry()
        c = child.counter("outcomes_total", "o", labelnames=("outcome",))
        c.labels("done").inc(2)
        reg.counter("outcomes_total", "o",
                    labelnames=("outcome",)).labels("done").inc()
        reg.merge_snapshot(child.snapshot())
        assert reg.get_value("outcomes_total", ("done",)) == 3

    def test_histogram_buckets_add(self, reg):
        child = MetricsRegistry()
        h = child.histogram("lat", "l", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        reg.histogram("lat", "l", buckets=(1.0, 2.0)).observe(1.5)
        reg.merge_snapshot(child.snapshot())
        snap = reg.snapshot()["repro_lat"]["series"][0]
        assert snap["buckets"] == {"1": 1, "2": 2, "+Inf": 3}
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(7.0)

    def test_merge_survives_json_round_trip(self, reg):
        import json

        child = MetricsRegistry()
        child.counter("sweeps_total", "sweeps").inc(3)
        child.histogram("lat", "l", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(child.snapshot()))
        reg.merge_snapshot(snap)
        assert reg.get_value("sweeps_total") == 3
        assert reg.get_value("lat") == 1  # histogram count


class TestInstrumentClasses:
    def test_direct_construction(self):
        c = Counter("raw_total", "unregistered")
        c.inc(4)
        h = Histogram("raw_lat", "unregistered", buckets=(1.0,))
        h.observe(0.5)
        assert c._default.value == 4
        assert h._default.buckets == [1, 0]
