"""Tests for substrate counter merging and re-entrant timed sections.

Covers the fork-pool telemetry path: ``REPRO_TUNE_WORKERS`` workers
count in copy-on-write copies of :data:`SUBSTRATE_COUNTERS`; per-
candidate snapshots ride back with the results and are merged into the
parent, so no telemetry is lost to process boundaries.
"""

import time

import pytest

from repro.machine.counters import (
    SUBSTRATE_COUNTERS,
    SubstrateCounters,
    timed_section,
)


class TestMerge:
    def test_merge_counters_object(self):
        a = SubstrateCounters(jobs_replayed=2, accesses_replayed=10,
                              stream_memo_hits=1, stream_memo_misses=3)
        a.section_seconds["x"] = 0.5
        b = SubstrateCounters(jobs_replayed=5, accesses_replayed=20,
                              stream_memo_hits=4, stream_memo_misses=0)
        b.section_seconds.update({"x": 0.25, "y": 1.0})
        a.merge(b)
        assert a.jobs_replayed == 7
        assert a.accesses_replayed == 30
        assert a.stream_memo_hits == 5 and a.stream_memo_misses == 3
        assert a.section_seconds == {"x": 0.75, "y": 1.0}

    def test_merge_snapshot_dict(self):
        a = SubstrateCounters(jobs_replayed=1)
        b = SubstrateCounters(jobs_replayed=2, stream_memo_hits=3)
        b.section_seconds["replay"] = 0.125
        a.merge(b.snapshot())
        assert a.jobs_replayed == 3
        assert a.stream_memo_hits == 3
        assert a.section_seconds == {"replay": 0.125}

    def test_snapshot_excludes_bookkeeping(self):
        c = SubstrateCounters()
        with timed_section("s", c):
            pass
        snap = c.snapshot()
        assert set(snap) == {"jobs_replayed", "accesses_replayed",
                             "stream_memo_hits", "stream_memo_misses",
                             "section_seconds", "stream_memo_rate"}

    def test_sections_by_time_sorted_descending(self):
        c = SubstrateCounters()
        c.section_seconds.update({"fast": 0.1, "slow": 2.0, "mid": 0.7})
        assert [n for n, _ in c.sections_by_time()] == ["slow", "mid", "fast"]


class TestTimedSection:
    def test_nested_same_name_counts_once(self):
        c = SubstrateCounters()
        with timed_section("outer", c):
            t0 = time.perf_counter()
            with timed_section("outer", c):
                time.sleep(0.02)
            inner_elapsed = time.perf_counter() - t0
            assert c.section_seconds.get("outer") is None  # still open
        total = c.section_seconds["outer"]
        # accumulated once, spanning the whole outer frame -- not doubled
        assert total >= inner_elapsed
        assert total < 2 * inner_elapsed + 0.05
        assert c._section_depth == {}

    def test_different_names_nest_independently(self):
        c = SubstrateCounters()
        with timed_section("a", c):
            with timed_section("b", c):
                pass
        assert set(c.section_seconds) == {"a", "b"}
        assert c.section_seconds["a"] >= c.section_seconds["b"]

    def test_exception_still_records(self):
        c = SubstrateCounters()
        with pytest.raises(RuntimeError):
            with timed_section("boom", c):
                time.sleep(0.01)
                raise RuntimeError("kaboom")
        assert c.section_seconds["boom"] >= 0.01
        assert c._section_depth == {}

    def test_exception_inside_nested_unwinds_cleanly(self):
        c = SubstrateCounters()
        with pytest.raises(ValueError):
            with timed_section("s", c):
                with timed_section("s", c):
                    raise ValueError
        assert "s" in c.section_seconds
        assert c._section_depth == {}

    def test_reset_clears_depth(self):
        c = SubstrateCounters()
        with timed_section("s", c):
            c.reset()
        # The unwinding frame repopulates section_seconds after reset --
        # acceptable; depth bookkeeping must not leak negative counts.
        with timed_section("s", c):
            pass
        assert c._section_depth == {}


class TestForkPoolTelemetry:
    def test_worker_counters_reach_parent(self, monkeypatch):
        """With REPRO_TUNE_WORKERS=2 the replay happens in fork children;
        the merged parent counters must still see the jobs."""
        from repro.core import autotuner
        from repro.machine import measure, streams
        from repro.machine.spec import HASWELL_EP

        monkeypatch.setenv("REPRO_TUNE_WORKERS", "2")
        monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
        autotuner.tune_tiled.cache_clear()
        measure._measure_tiled_cached.cache_clear()
        streams._RAW_SEGMENT_CACHE.clear()
        SUBSTRATE_COUNTERS.reset()
        point = autotuner.tune_tiled(HASWELL_EP, 64, 4)
        assert point is not None
        assert SUBSTRATE_COUNTERS.jobs_replayed > 0
        assert SUBSTRATE_COUNTERS.accesses_replayed > 0
        assert "tune.score" in SUBSTRATE_COUNTERS.section_seconds
        # leave no cross-test contamination from the tuned lru_cache entry
        autotuner.tune_tiled.cache_clear()

    def test_serial_and_parallel_pick_same_winner(self, monkeypatch):
        from repro.core import autotuner
        from repro.machine.spec import HASWELL_EP

        monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
        monkeypatch.setenv("REPRO_TUNE_WORKERS", "1")
        autotuner.tune_tiled.cache_clear()
        serial = autotuner.tune_tiled(HASWELL_EP, 64, 4)
        monkeypatch.setenv("REPRO_TUNE_WORKERS", "2")
        autotuner.tune_tiled.cache_clear()
        parallel = autotuner.tune_tiled(HASWELL_EP, 64, 4)
        autotuner.tune_tiled.cache_clear()
        assert serial == parallel
