"""Tests for service job specs, lifecycle, and deterministic execution."""

import pytest

from repro.service.jobs import (
    FAULTS,
    Job,
    JobSpec,
    JobState,
    run_job,
)

FAST_SOLVE = dict(kind="solve", preset="vacuum", grid=10, wavelength=10.0,
                  tol=1e-4, max_steps=30)


class TestContentAddressing:
    def test_policy_fields_excluded_from_id(self):
        a = JobSpec(**FAST_SOLVE)
        b = JobSpec(**FAST_SOLVE, priority=7, max_retries=0, timeout_s=5.0)
        assert a.job_id == b.job_id

    def test_computational_fields_change_id(self):
        a = JobSpec(**FAST_SOLVE)
        for change in (dict(wavelength=11.0), dict(grid=12), dict(tol=1e-5),
                       dict(preset="absorber"), dict(tiled=True),
                       dict(max_steps=31), dict(threads=4)):
            assert JobSpec(**{**FAST_SOLVE, **change}).job_id != a.job_id

    def test_fault_is_part_of_identity(self):
        a = JobSpec(**FAST_SOLVE)
        b = JobSpec(**FAST_SOLVE, fault="fail_once")
        assert a.job_id != b.job_id

    def test_id_is_stable_hex(self):
        a = JobSpec(**FAST_SOLVE)
        assert a.job_id == JobSpec(**FAST_SOLVE).job_id
        assert len(a.job_id) == 24
        int(a.job_id, 16)  # hex digest prefix


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(kind="frobnicate"),
        dict(preset="nope"),
        dict(grid=9),              # solves need >= 10
        dict(wavelength=0.0),
        dict(tol=-1e-4),
        dict(max_steps=0),
        dict(dw=3),                # odd
        dict(dw=2),                # < 4
        dict(bz=0),
        dict(threads=0),
        dict(variant="2.5wd"),
        dict(tuning="psychic"),
        dict(max_retries=-1),
        dict(fault="segfault"),
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            JobSpec(**{**FAST_SOLVE, **bad})

    def test_tune_allows_grid_8(self):
        JobSpec(kind="tune", grid=8, threads=2)  # no raise
        with pytest.raises(ValueError):
            JobSpec(kind="tune", grid=7, threads=2)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown job spec fields"):
            JobSpec.from_dict({**FAST_SOLVE, "frobnicate": 1})
        with pytest.raises(ValueError):
            JobSpec.from_dict("not a dict")

    def test_from_dict_roundtrip(self):
        spec = JobSpec(**FAST_SOLVE, priority=3)
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestJobLifecycle:
    def test_happy_path(self):
        job = Job(JobSpec(**FAST_SOLVE))
        assert job.state == JobState.QUEUED and not job.terminal
        job.transition(JobState.RUNNING)
        assert job.started_at is not None
        job.transition(JobState.DONE)
        assert job.terminal and job.finished_at is not None

    def test_crash_requeue_transition(self):
        job = Job(JobSpec(**FAST_SOLVE))
        job.transition(JobState.RUNNING)
        job.transition(JobState.QUEUED)  # the crash requeue
        job.transition(JobState.RUNNING)
        job.transition(JobState.FAILED)
        assert job.terminal

    def test_cancel_only_from_queued(self):
        job = Job(JobSpec(**FAST_SOLVE))
        job.transition(JobState.CANCELLED)
        assert job.terminal

    @pytest.mark.parametrize("start,new", [
        (JobState.QUEUED, JobState.DONE),
        (JobState.RUNNING, JobState.CANCELLED),
        (JobState.DONE, JobState.RUNNING),
        (JobState.FAILED, JobState.QUEUED),
        (JobState.CANCELLED, JobState.RUNNING),
    ])
    def test_illegal_transitions(self, start, new):
        job = Job(JobSpec(**FAST_SOLVE))
        job.state = start
        with pytest.raises(ValueError, match="illegal job transition"):
            job.transition(new)

    def test_to_dict_shapes(self):
        job = Job(JobSpec(**FAST_SOLVE))
        d = job.to_dict()
        assert d["id"] == job.id and d["state"] == "queued"
        assert "result" in d
        assert "result" not in job.to_dict(include_result=False)
        assert d["spec"]["preset"] == "vacuum"


class TestRunJob:
    def test_solve_is_deterministic(self):
        spec = JobSpec(**FAST_SOLVE)
        r1 = run_job(spec)
        r2 = run_job(spec)
        assert r1 == r2  # bit-for-bit, including the field checksum
        assert r1["kind"] == "solve"
        assert len(r1["checksum"]) == 64

    def test_solve_matches_direct_solver(self):
        # The served result must be bit-identical to constructing and
        # running the solver directly (the `repro solve` path).
        import hashlib

        import numpy as np

        from repro.fdfd import (
            ALL_COMPONENTS, Grid, PMLSpec, PlaneWaveSource, THIIMSolver,
            preset_scene,
        )

        spec = JobSpec(**FAST_SOLVE)
        served = run_job(spec)

        nz = 2 * spec.grid
        grid = Grid(nz=nz, ny=spec.grid, nx=spec.grid,
                    periodic=(False, True, True))
        solver = THIIMSolver(
            grid, 2 * np.pi / spec.wavelength,
            scene=preset_scene(spec.preset, nz),
            source=PlaneWaveSource(z_plane=max(nz // 8, 12), z_width=2.0),
            pml={"z": PMLSpec(thickness=max(nz // 10, 6))},
        )
        result = solver.solve(tol=spec.tol, max_steps=spec.max_steps)
        h = hashlib.sha256()
        for name in ALL_COMPONENTS:
            h.update(solver.fields[name].tobytes())
        assert served["checksum"] == h.hexdigest()
        assert served["iterations"] == result.iterations
        assert served["residual"] == float(result.residual)

    def test_untiled_plan(self):
        out = run_job(JobSpec(**FAST_SOLVE))
        assert out["plan"] == {"tiled": False}

    def test_tiled_spec_plan(self):
        spec = JobSpec(kind="solve", preset="absorber", grid=10,
                       wavelength=10.0, tol=1e-4, max_steps=10, tiled=True,
                       dw=4, bz=2, tuning="spec")
        out = run_job(spec)
        assert out["plan"] == {"tiled": True, "dw": 4, "bz": 2,
                               "source": "spec", "registry_hit": False}
        assert "absorbed" in out and "incident" in out

    def test_tune_without_registry(self):
        out = run_job(JobSpec(kind="tune", grid=16, threads=2))
        assert out["kind"] == "tune"
        assert out["registry_hit"] is False
        assert out["point"]["dw"] >= 4 and out["point"]["bz"] >= 1
        assert "MLUP/s" in out["describe"]

    def test_tune_infeasible_grid(self):
        # nx=8 < MIN_X_CHUNK: the tuner proves no feasible config.
        out = run_job(JobSpec(kind="tune", grid=8, threads=2))
        assert out["point"] is None and out["describe"] is None


class TestFaultInjection:
    def test_fail_once(self):
        spec = JobSpec(**FAST_SOLVE, fault="fail_once")
        with pytest.raises(RuntimeError, match="fail_once"):
            run_job(spec, attempt=1)
        assert run_job(spec, attempt=2)["kind"] == "solve"

    def test_always_fail(self):
        spec = JobSpec(**FAST_SOLVE, fault="always_fail")
        for attempt in (1, 2, 3):
            with pytest.raises(RuntimeError, match="always_fail"):
                run_job(spec, attempt=attempt)

    def test_crash_once_inline_raises(self):
        # Outside a child process the crash degrades to an exception
        # (os._exit would kill the test runner).
        spec = JobSpec(**FAST_SOLVE, fault="crash_once")
        with pytest.raises(RuntimeError, match="crash_once"):
            run_job(spec, attempt=1, in_child=False)
        assert run_job(spec, attempt=2)["kind"] == "solve"

    def test_fault_names_are_frozen(self):
        assert FAULTS == ("fail_once", "crash_once", "always_fail")
