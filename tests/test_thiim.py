"""Physics validation of the THIIM solver.

These tests exercise the full solver pipeline (scene -> coefficients ->
iteration -> observables) on small grids and verify the physical behaviour
the production code relies on: causal wave propagation, PML absorption,
stable back iteration in silver, and convergence of the inverse iteration
to the time-harmonic state.
"""

import numpy as np
import pytest

from repro.fdfd import (
    A_SI_H,
    SILVER,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    Scene,
    THIIMSolver,
    absorbed_power,
    field_energy,
    poynting_flux_z,
)


def make_solver(nz=48, n_xy=6, scene=None, pml=True, wavelength=12.0, z_src=12,
                z_width=2.0, **kw):
    grid = Grid(nz=nz, ny=n_xy, nx=n_xy, periodic=(False, True, True))
    omega = 2 * np.pi / wavelength
    pml_spec = {"z": PMLSpec(thickness=8)} if pml else None
    src = PlaneWaveSource(z_plane=z_src, amplitude=1.0, z_width=z_width)
    return THIIMSolver(grid, omega, scene=scene, source=src, pml=pml_spec, **kw)


class TestPropagation:
    def test_causality_wavefront_speed(self):
        """Fields ahead of the numerical light cone must remain exactly
        zero.  The discrete domain of dependence expands by one cell per
        time step (via the H-then-E chain), so beyond ``z_src + nsteps + 1``
        nothing can be written."""
        solver = make_solver(pml=False, z_width=0.0)
        nsteps = 20
        solver.run(nsteps)
        front = 12 + nsteps + 1
        ex = solver.fields.combined("Ex")
        assert np.abs(ex[front:]).max() == 0.0
        # ...and nonzero behind the physical front c * t.
        behind = 12 + int(nsteps * solver.tau) - 1
        assert np.abs(ex[12:behind]).max() > 0

    def test_physical_front_dominates(self):
        """Amplitude beyond the physical light cone (numerical precursor)
        is small compared to the main wave."""
        solver = make_solver(pml=False, z_width=0.0)
        nsteps = 30
        solver.run(nsteps)
        ex = np.abs(solver.fields.combined("Ex"))
        physical_front = 12 + int(np.ceil(nsteps * solver.tau)) + 3
        precursor = ex[physical_front:].max()
        main = ex[12 : physical_front - 4].max()
        assert precursor < 0.12 * main

    def test_wave_reaches_bottom_with_time(self):
        solver = make_solver(pml=False)
        solver.run(200)
        ex = solver.fields.combined("Ex")
        assert np.abs(ex[-5]).max() > 1e-6


class TestPML:
    def test_pml_suppresses_standing_wave(self):
        """With PML the steady state below the source is a travelling wave
        (|Ex| roughly constant along z); with reflecting Dirichlet walls a
        standing-wave pattern appears (deep amplitude modulation)."""

        def modulation(pml: bool) -> float:
            solver = make_solver(pml=pml)
            solver.run(800)
            amp = np.abs(solver.fields.combined("Ex")[14:36].mean(axis=(1, 2)))
            return float(amp.std() / amp.mean())

        assert modulation(True) < 0.25
        assert modulation(False) > 2 * modulation(True)

    def test_pml_bounded_energy(self):
        solver = make_solver()
        energies = []
        for _ in range(6):
            solver.run(100)
            energies.append(field_energy(solver.fields, eps=solver.eps))
        # Energy must level off (absorbed at the boundaries), not grow.
        assert energies[-1] < 1.5 * energies[2]
        assert np.isfinite(energies[-1])

    def test_power_flows_downward_from_source(self):
        solver = make_solver()
        solver.run(800)
        # Below the source plane: net power toward +z.
        assert poynting_flux_z(solver.fields, 25) > 0


class TestSilverBackIteration:
    def _silver_scene(self, nz=48):
        return Scene().add_layer(SILVER, nz - 16, nz)

    def test_back_iteration_stable(self):
        scene = self._silver_scene()
        solver = make_solver(scene=scene)
        assert solver.coefficients.back_mask is not None
        norms = []
        for _ in range(5):
            solver.run(100)
            norms.append(solver.fields.norm())
        assert all(np.isfinite(n) for n in norms)
        # Bounded: no exponential growth between the last checkpoints.
        assert norms[-1] < 2.0 * norms[-3] + 1e-12

    def test_silver_reflects(self):
        """A silver mirror transmits almost nothing: the net downward flux
        just above the metal is a small fraction of the incident flux of a
        mirror-free reference run."""
        reference = make_solver()
        reference.run(1500)
        incident = poynting_flux_z(reference.fields, 30)

        solver = make_solver(scene=self._silver_scene())
        solver.run(1500)
        into_metal = poynting_flux_z(solver.fields, 30)
        assert abs(into_metal) < 0.35 * abs(incident)

    def test_field_decays_inside_metal(self):
        scene = self._silver_scene()
        solver = make_solver(scene=scene)
        solver.run(1000)
        ex = np.abs(solver.fields.combined("Ex")).mean(axis=(1, 2))
        surface = 48 - 16
        assert ex[surface + 6] < 0.3 * ex[surface - 4]


class TestAbsorber:
    def test_absorbing_layer_dissipates(self):
        scene = Scene().add_layer(A_SI_H, 24, 40)
        solver = make_solver(scene=scene)
        solver.run(800)
        mask = solver.material_mask("a-Si:H")
        p = absorbed_power(solver.fields, solver.sigma, mask=mask)
        assert p > 0

    def test_flux_decreases_through_absorber(self):
        scene = Scene().add_layer(A_SI_H, 24, 40)
        solver = make_solver(scene=scene)
        solver.run(1200)
        above = poynting_flux_z(solver.fields, 20)
        below = poynting_flux_z(solver.fields, 42)
        assert below < above


class TestConvergence:
    def test_solve_converges_with_absorber(self):
        scene = Scene().add_layer(A_SI_H, 24, 40)
        solver = make_solver(scene=scene)
        result = solver.solve(tol=1e-5, max_steps=4000, check_every=100)
        assert result.converged, f"residual history: {result.residual_history[-5:]}"
        assert result.residual < 1e-5
        # Residuals trend downward.
        h = result.residual_history
        assert h[-1] < h[0]

    def test_fixed_point_residual_decreases(self):
        scene = Scene().add_layer(A_SI_H, 24, 40)
        solver = make_solver(scene=scene)
        solver.run(100)
        r1 = solver.frequency_domain_residual()
        solver.run(900)
        r2 = solver.frequency_domain_residual()
        assert r2 < r1

    def test_residual_diagnostic_is_side_effect_free(self):
        solver = make_solver()
        solver.run(50)
        snap = solver.fields.copy()
        solver.frequency_domain_residual()
        assert solver.fields.allclose(snap, rtol=0, atol=0)

    def test_reset(self):
        solver = make_solver()
        solver.run(50)
        assert solver.fields.norm() > 0
        solver.reset()
        assert solver.fields.norm() == 0

    def test_solver_validation(self):
        solver = make_solver()
        with pytest.raises(ValueError):
            solver.solve(tol=0.0)
        with pytest.raises(ValueError):
            solver.solve(check_every=0)
        with pytest.raises(ValueError):
            solver.run(10, traversal="bogus")

    def test_spatial_traversal_matches_naive(self):
        s1 = make_solver()
        s2 = make_solver()
        s1.run(60, traversal="naive")
        s2.run(60, traversal="spatial", block_y=3)
        assert s1.fields.allclose(s2.fields)
