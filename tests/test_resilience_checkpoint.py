"""Checkpoint/restart: bit-identical resume, token guard, quarantine."""

import os

import numpy as np
import pytest

from repro.core.tiled_solver import TiledTHIIM
from repro.fdfd import Grid, PMLSpec, PlaneWaveSource, THIIMSolver
from repro.resilience import faults
from repro.resilience.checkpoint import (
    CheckpointManager,
    latest_lag_s,
    solver_token,
    take_report,
)
from repro.resilience.errors import CheckpointMismatch


def make_solver(nz=24, n_xy=6, wavelength=10.0):
    grid = Grid(nz=nz, ny=n_xy, nx=n_xy, periodic=(False, True, True))
    return THIIMSolver(
        grid, 2 * np.pi / wavelength,
        source=PlaneWaveSource(z_plane=6, amplitude=1.0, z_width=2.0),
        pml={"z": PMLSpec(thickness=6)},
    )


def make_tiled():
    grid = Grid(nz=24, ny=8, nx=6)
    solver = THIIMSolver(
        grid, 2 * np.pi / 10.0,
        source=PlaneWaveSource(z_plane=6, z_width=2.0),
        pml={"z": PMLSpec(thickness=6)},
    )
    return TiledTHIIM(solver, dw=4, bz=2, chunk=8)


@pytest.fixture(autouse=True)
def _no_faults():
    faults.uninstall()
    take_report()
    yield
    faults.uninstall()
    take_report()


class TestToken:
    def test_stable_for_identical_solves(self):
        assert solver_token(make_solver(), check_every=20) == \
            solver_token(make_solver(), check_every=20)

    def test_sensitive_to_scene_and_cadence(self):
        base = solver_token(make_solver(), check_every=20)
        assert solver_token(make_solver(nz=32), check_every=20) != base
        assert solver_token(make_solver(), check_every=10) != base


class TestSaveLoad:
    def test_roundtrip_is_bit_exact(self, tmp_path):
        solver = make_solver()
        solver.run(30)
        mgr = CheckpointManager(str(tmp_path), "t", token="tok", every=10)
        assert mgr.save(solver.fields, 30, [0.5, 0.25]) == mgr.path
        ckpt = mgr.load()
        assert ckpt.steps == 30 and ckpt.history == [0.5, 0.25]
        assert ckpt.token == "tok"
        for name in solver.fields:
            assert np.array_equal(ckpt.arrays[name], solver.fields[name])

    def test_due_cadence(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), "t", token="tok", every=40)
        assert not mgr.due(39)
        assert mgr.due(40)
        mgr.save(make_solver().fields, 40, [1.0])
        assert not mgr.due(79)
        assert mgr.due(80)

    def test_cadence_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), "t", token="tok", every=0)

    def test_missing_checkpoint_is_a_miss(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), "t", token="tok", every=10)
        assert mgr.load() is None
        assert mgr.resume(make_solver().fields) is None

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        solver = make_solver()
        mgr = CheckpointManager(str(tmp_path), "t", token="tok", every=10)
        mgr.save(solver.fields, 10, [1.0])
        with open(mgr.path, "wb") as f:
            f.write(b"not an npz")
        assert mgr.load() is None
        assert not os.path.exists(mgr.path)
        assert os.path.exists(mgr.path + ".corrupt")

    def test_token_mismatch_lenient_quarantines(self, tmp_path):
        solver = make_solver()
        CheckpointManager(str(tmp_path), "t", token="theirs",
                          every=10).save(solver.fields, 10, [1.0])
        mine = CheckpointManager(str(tmp_path), "t", token="mine", every=10)
        assert mine.load() is None
        assert os.path.exists(mine.path + ".corrupt")

    def test_token_mismatch_strict_raises(self, tmp_path):
        solver = make_solver()
        CheckpointManager(str(tmp_path), "t", token="theirs",
                          every=10).save(solver.fields, 10, [1.0])
        mine = CheckpointManager(str(tmp_path), "t", token="mine",
                                 every=10, strict=True)
        with pytest.raises(CheckpointMismatch) as exc:
            mine.load()
        assert exc.value.http_status == 409 and not exc.value.retryable

    def test_injected_write_fault_never_breaks_the_solve(self, tmp_path):
        faults.install(faults.FaultPlan.parse("checkpoint.write:raise"))
        mgr = CheckpointManager(str(tmp_path), "t", token="tok", every=10)
        assert mgr.save(make_solver().fields, 10, [1.0]) is None
        assert not os.path.exists(mgr.path)

    def test_report_carries_resume_provenance(self, tmp_path):
        solver = make_solver()
        mgr = CheckpointManager(str(tmp_path), "t", token="tok", every=10)
        mgr.save(solver.fields, 10, [1.0])
        take_report()
        other = make_solver()
        mgr2 = CheckpointManager(str(tmp_path), "t", token="tok", every=10)
        assert mgr2.resume(other.fields).steps == 10
        report = take_report()
        assert report == {"path": mgr.path, "saves": 0, "resumed_from": 10}
        assert take_report() is None  # popped


class TestBitIdenticalResume:
    def test_naive_solver_resume_matches_uninterrupted(self, tmp_path):
        kw = dict(tol=1e-15, check_every=10)
        clean = make_solver().solve(max_steps=80, **kw)

        interrupted = make_solver()
        token = solver_token(interrupted, check_every=10)
        mgr = CheckpointManager(str(tmp_path), "j", token=token, every=30)
        interrupted.solve(max_steps=50, checkpoint=mgr, **kw)
        assert mgr.saves >= 1 and mgr.last_saved_steps == 30

        resumed = make_solver()
        mgr2 = CheckpointManager(str(tmp_path), "j", token=token, every=30)
        result = resumed.solve(max_steps=80, checkpoint=mgr2, **kw)
        assert mgr2.resumed_from == 30

        assert result.iterations == clean.iterations
        assert result.residual == clean.residual
        assert result.residual_history[1:] == clean.residual_history[
            len(clean.residual_history) - len(result.residual_history) + 1:]
        for name in clean.fields:
            assert np.array_equal(result.fields[name], clean.fields[name])

    def test_tiled_solver_resume_restores_work_counters(self, tmp_path):
        kw = dict(tol=1e-15, max_steps=48)
        clean = make_tiled()
        clean_result = clean.solve(**kw)

        partial = make_tiled()
        token = solver_token(partial.solver, chunk=partial.chunk)
        mgr = CheckpointManager(str(tmp_path), "j", token=token, every=16)
        partial.solve(tol=1e-15, max_steps=24, checkpoint=mgr)

        resumed = make_tiled()
        mgr2 = CheckpointManager(str(tmp_path), "j", token=token, every=16)
        result = resumed.solve(checkpoint=mgr2, **kw)
        assert mgr2.resumed_from == 16

        assert result.iterations == clean_result.iterations
        for name in clean.solver.fields:
            assert np.array_equal(result.fields[name],
                                  clean_result.fields[name])
        # The executed-work statistics survive the crash/restart.
        assert resumed.steps_done == clean.steps_done
        assert resumed.executor.lups_done == clean.executor.lups_done
        assert resumed.executor.jobs_done == clean.executor.jobs_done


class TestLag:
    def test_no_directory_or_checkpoint_is_none(self, tmp_path):
        assert latest_lag_s(None) is None
        assert latest_lag_s(str(tmp_path / "missing")) is None
        assert latest_lag_s(str(tmp_path)) is None

    def test_fresh_checkpoint_has_small_lag(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), "t", token="tok", every=10)
        mgr.save(make_solver().fields, 10, [1.0])
        lag = latest_lag_s(str(tmp_path))
        assert 0.0 <= lag < 60.0

    def test_clear_removes_snapshot(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), "t", token="tok", every=10)
        mgr.save(make_solver().fields, 10, [1.0])
        mgr.clear()
        assert not os.path.exists(mgr.path)
        mgr.clear()  # idempotent
