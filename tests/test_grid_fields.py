"""Tests for the grid descriptor and the field-state container."""

import numpy as np
import pytest

from repro.fdfd import ALL_COMPONENTS, FieldState, Grid


class TestGrid:
    def test_shape_and_cells(self):
        g = Grid(nz=4, ny=5, nx=6)
        assert g.shape == (4, 5, 6)
        assert g.n_cells == 120

    def test_cube(self):
        g = Grid.cube(16)
        assert g.shape == (16, 16, 16)

    @pytest.mark.parametrize("bad", [dict(nz=2, ny=5, nx=5), dict(nz=5, ny=0, nx=5)])
    def test_too_small_rejected(self, bad):
        with pytest.raises(ValueError):
            Grid(**bad)

    def test_negative_spacing_rejected(self):
        with pytest.raises(ValueError):
            Grid(nz=4, ny=4, nx=4, dx=-1.0)

    def test_cfl_time_step_unit_cube(self):
        g = Grid.cube(8)
        # 1 / sqrt(3) at CFL = 1.
        assert g.cfl_time_step(cfl=1.0) == pytest.approx(1 / np.sqrt(3))
        assert g.cfl_time_step(cfl=0.5) == pytest.approx(0.5 / np.sqrt(3))

    def test_cfl_respects_speed(self):
        g = Grid.cube(8)
        assert g.cfl_time_step(light_speed=2.0) == pytest.approx(g.cfl_time_step() / 2)

    def test_cfl_invalid(self):
        with pytest.raises(ValueError):
            Grid.cube(8).cfl_time_step(cfl=0.0)

    def test_interior_range(self):
        g = Grid(nz=10, ny=10, nx=10)
        assert g.interior_range(0, +1) == (0, 9)
        assert g.interior_range(0, -1) == (1, 10)
        assert g.interior_range(1, 0) == (0, 10)

    def test_interior_range_periodic(self):
        g = Grid(nz=10, ny=10, nx=10, periodic=(True, False, False))
        assert g.interior_range(0, +1) == (0, 10)
        assert g.interior_range(1, +1) == (0, 9)

    def test_memory_bytes_640_per_cell(self):
        g = Grid.cube(8)
        assert g.memory_bytes() == 8**3 * 640

    def test_zeros_and_full(self):
        g = Grid(nz=3, ny=4, nx=5)
        z = g.zeros()
        assert z.shape == g.shape and z.dtype == np.complex128 and not z.any()
        f = g.full(2 + 1j)
        assert np.all(f == 2 + 1j)


class TestFieldState:
    def test_init_zero(self):
        s = FieldState(Grid.cube(4))
        assert s.norm() == 0.0

    def test_component_access(self):
        g = Grid.cube(4)
        s = FieldState(g)
        s["Exy"] = np.ones(g.shape)
        assert s["Exy"][0, 0, 0] == 1.0
        with pytest.raises(KeyError):
            s["nope"]

    def test_init_validates_shapes(self):
        g = Grid.cube(4)
        arrays = {n: g.zeros() for n in ALL_COMPONENTS}
        arrays["Exy"] = np.zeros((3, 3, 3), dtype=np.complex128)
        with pytest.raises(ValueError):
            FieldState(g, arrays)

    def test_init_validates_dtype(self):
        g = Grid.cube(4)
        arrays = {n: g.zeros() for n in ALL_COMPONENTS}
        arrays["Exy"] = np.zeros(g.shape, dtype=np.float64)
        with pytest.raises(TypeError):
            FieldState(g, arrays)

    def test_init_missing_component(self):
        g = Grid.cube(4)
        arrays = {n: g.zeros() for n in ALL_COMPONENTS[:-1]}
        with pytest.raises(KeyError):
            FieldState(g, arrays)

    def test_copy_is_deep(self, rng):
        s = FieldState(Grid.cube(4)).fill_random(rng)
        c = s.copy()
        c["Exy"][...] = 0
        assert s["Exy"].any()

    def test_combined(self, rng):
        s = FieldState(Grid.cube(4)).fill_random(rng)
        assert np.allclose(s.combined("Ex"), s["Exy"] + s["Exz"])
        assert np.allclose(s.combined("Hz"), s["Hzx"] + s["Hzy"])
        with pytest.raises(KeyError):
            s.combined("Qx")

    def test_vectors(self, rng):
        s = FieldState(Grid.cube(4)).fill_random(rng)
        ex, ey, ez = s.e_vector()
        assert np.allclose(ex, s["Exy"] + s["Exz"])
        assert np.allclose(ey, s["Eyz"] + s["Eyx"])
        assert np.allclose(ez, s["Ezx"] + s["Ezy"])
        hx, hy, hz = s.h_vector()
        assert np.allclose(hx, s["Hxy"] + s["Hxz"])

    def test_allclose_and_difference(self, rng):
        s = FieldState(Grid.cube(4)).fill_random(rng)
        c = s.copy()
        assert s.allclose(c)
        c["Hzy"][1, 1, 1] += 1.0
        assert not s.allclose(c)
        assert s.max_abs_difference(c) == pytest.approx(1.0)

    def test_norms(self):
        g = Grid.cube(4)
        s = FieldState(g)
        s["Exy"][...] = 3.0
        assert s.field_norm("E") == pytest.approx(3.0 * np.sqrt(g.n_cells))
        assert s.field_norm("H") == 0.0
        assert s.norm() == pytest.approx(3.0 * np.sqrt(g.n_cells))

    def test_zero_boundary(self, rng):
        g = Grid(nz=5, ny=5, nx=5, periodic=(False, True, False))
        s = FieldState(g).fill_random(rng)
        s.zero_boundary()
        assert not s["Exy"][0].any() and not s["Exy"][-1].any()
        assert not s["Exy"][:, :, 0].any() and not s["Exy"][:, :, -1].any()
        # Periodic y boundary is left alone.
        assert s["Exy"][2, 0, 2] != 0
