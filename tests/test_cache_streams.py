"""Tests for the LRU cache simulator and the access-stream generation."""

import numpy as np
import pytest

from repro.core.wavefront import RowJob
from repro.machine import (
    ALL_ARRAYS,
    ARRAY_GROUPS,
    CLASS_RECIPES,
    COMPONENT_RECIPES,
    ComponentStreamEmitter,
    LRUCache,
    StreamEmitter,
)
from repro.fdfd.specs import ALL_COMPONENTS, SPECS


class TestLRUCache:
    def test_miss_then_hit(self):
        c = LRUCache(1000)
        assert not c.access(1, 100, write=False)
        assert c.access(1, 100, write=False)
        assert c.stats.read_misses == 1 and c.stats.read_hits == 1
        assert c.stats.mem_read_bytes == 100

    def test_capacity_eviction_lru_order(self):
        c = LRUCache(300)
        c.access(1, 100, False)
        c.access(2, 100, False)
        c.access(3, 100, False)
        c.access(1, 100, False)  # refresh 1; LRU order now 2,3,1
        c.access(4, 100, False)  # evicts 2
        assert 2 not in c and 1 in c and 3 in c and 4 in c

    def test_write_miss_charges_no_read(self):
        c = LRUCache(1000)
        c.access(1, 100, write=True)
        assert c.stats.mem_read_bytes == 0
        assert c.stats.write_misses == 1

    def test_dirty_eviction_charges_writeback(self):
        c = LRUCache(100)
        c.access(1, 100, write=True)
        c.access(2, 100, write=False)  # evicts dirty 1
        assert c.stats.mem_write_bytes == 100
        assert c.stats.writebacks == 1

    def test_clean_eviction_free(self):
        c = LRUCache(100)
        c.access(1, 100, write=False)
        c.access(2, 100, write=False)
        assert c.stats.mem_write_bytes == 0

    def test_read_then_write_one_load_one_writeback(self):
        """The paper's own-field accounting: read + eventual write-back."""
        c = LRUCache(100)
        c.access(1, 100, write=False)
        c.access(1, 100, write=True)
        c.flush()
        assert c.stats.mem_read_bytes == 100
        assert c.stats.mem_write_bytes == 100

    def test_flush(self):
        c = LRUCache(1000)
        c.access(1, 100, True)
        c.access(2, 100, False)
        c.flush()
        assert len(c) == 0 and c.used_bytes == 0
        assert c.stats.mem_write_bytes == 100

    def test_reset_stats_keeps_contents(self):
        c = LRUCache(1000)
        c.access(1, 100, False)
        old = c.reset_stats()
        assert old.read_misses == 1
        assert c.access(1, 100, False)  # still cached
        assert c.stats.read_hits == 1 and c.stats.read_misses == 0

    def test_hit_rate(self):
        c = LRUCache(1000)
        assert c.stats.hit_rate == 1.0
        c.access(1, 10, False)
        c.access(1, 10, False)
        assert c.stats.hit_rate == 0.5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestArrayGroups:
    def test_all_40_arrays_grouped_once(self):
        grouped = [a for g in ARRAY_GROUPS for a in g.arrays]
        assert len(grouped) == 40
        assert len(set(grouped)) == 40

    def test_eight_groups(self):
        # 6 field pairs + 2 coefficient bundles.
        assert len(ARRAY_GROUPS) == 8
        names = {g.name for g in ARRAY_GROUPS}
        assert {"Ex", "Ey", "Ez", "Hx", "Hy", "Hz", "coeffH", "coeffE"} == names

    def test_coeff_bundles_have_14_arrays(self):
        for g in ARRAY_GROUPS:
            if g.name.startswith("coeff"):
                assert len(g.arrays) == 14
            else:
                assert len(g.arrays) == 2

    def test_row_bytes(self):
        for g in ARRAY_GROUPS:
            assert g.row_bytes(nx=100) == len(g.arrays) * 16 * 100

    def test_recipes_touch_all_field_groups(self):
        for cls in ("H", "E"):
            ops = CLASS_RECIPES[cls]
            gids = {op.gid for op in ops}
            # All six field pairs + own coefficient bundle.
            assert len(gids) == 7
            writes = [op for op in ops if op.write]
            assert len(writes) == 3  # the three own-field pairs

    def test_recipe_offsets_match_dependency_directions(self):
        h_ops = CLASS_RECIPES["H"]
        # H reads E at +1 only, E reads H at -1 only.
        for op in h_ops:
            assert op.dy in (0, 1) and op.dz in (0, 1)
        for op in CLASS_RECIPES["E"]:
            assert op.dy in (0, -1) and op.dz in (0, -1)

    def test_component_recipes_sizes(self):
        # Listing-1 components touch 3 coeffs, Listing-2 touch 2; plus own
        # (read+write) and pair near/far.
        for comp in ALL_COMPONENTS:
            ops = COMPONENT_RECIPES[comp]
            n_coeff = len(SPECS[comp].coeff_names)
            has_far = SPECS[comp].deriv_axis != 2  # x shifts stay in-row
            expected = 1 + 2 + (2 if has_far else 0) + n_coeff + 1
            assert len(ops) == expected, comp

    def test_all_arrays_index_stable(self):
        assert len(ALL_ARRAYS) == 40
        assert ALL_ARRAYS[:12] == ALL_COMPONENTS


class TestStreamEmitter:
    def test_lups_accounting(self):
        cache = LRUCache(10**9)
        em = StreamEmitter(cache, ny=8, nz=8, nx=10)
        em.emit_job(RowJob(0, 0, 8, 0, 8))  # H half step, whole plane
        em.emit_job(RowJob(1, 0, 8, 0, 8))
        assert em.lups == 8 * 8 * 10  # one full step over the slab

    def test_infinite_cache_traffic_is_compulsory(self):
        """With infinite capacity, repeated steps only pay the first-touch
        traffic: per extra step only write-backs ... nothing, since no
        evictions happen before the flush."""
        cache = LRUCache(10**12)
        em = StreamEmitter(cache, ny=8, nz=8, nx=4)
        for tau in range(8):
            em.emit_job(RowJob(tau, 0, 8, 0, 8))
        first_epoch = cache.stats.mem_bytes
        cache.reset_stats()
        for tau in range(8, 16):
            em.emit_job(RowJob(tau, 0, 8, 0, 8))
        assert cache.stats.mem_bytes == 0  # everything resident
        assert first_epoch > 0

    def test_tiny_cache_traffic_is_streaming(self):
        """With a tiny cache every group row is re-fetched."""
        big = LRUCache(10**12)
        em_big = StreamEmitter(big, ny=16, nz=16, nx=4)
        small = LRUCache(4 * 16 * 40 * 2)  # ~2 rows worth
        em_small = StreamEmitter(small, ny=16, nz=16, nx=4)
        for tau in range(4):
            em_big.emit_job(RowJob(tau, 0, 16, 0, 16))
            em_small.emit_job(RowJob(tau, 0, 16, 0, 16))
        assert small.stats.mem_bytes > big.stats.mem_bytes

    def test_boundary_clipping(self):
        cache = LRUCache(10**9)
        em = StreamEmitter(cache, ny=4, nz=4, nx=2)
        # A job at the top edge: the (y+1) far reads must be clipped, not
        # wrap or crash.
        em.emit_job(RowJob(0, 3, 4, 0, 4))
        gids = set()
        # no key may decode to y >= 4
        # keys are (gid*ny + y)*nz + z
        for key in list(cache._entries):
            rest, z = divmod(key, 4)
            gid, y = divmod(rest, 4)
            assert 0 <= y < 4 and 0 <= z < 4
            gids.add(gid)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamEmitter(LRUCache(10), ny=0, nz=4, nx=4)
        with pytest.raises(ValueError):
            ComponentStreamEmitter(LRUCache(10), ny=4, nz=0, nx=4)


class TestComponentStreamEmitter:
    def test_lups_is_one_twelfth_of_component_cells(self):
        cache = LRUCache(10**9)
        em = ComponentStreamEmitter(cache, ny=4, nz=4, nx=6)
        for comp in ALL_COMPONENTS:
            em.emit_component_rows(comp, 0, 4, 0, 4)
        assert em.lups == 4 * 4 * 6  # 12 component updates = 1 LUP/cell

    def test_per_component_streams_do_not_dedupe(self):
        """Two components sharing a pair array stream it twice (the
        paper's Eq. 8 counting) when the cache is too small."""
        tiny = LRUCache(16 * 6 * 3)  # a few rows only
        em = ComponentStreamEmitter(tiny, ny=64, nz=1, nx=6)
        em.emit_component_rows("Hyz", 0, 64, 0, 1)
        bytes_a = tiny.stats.mem_bytes
        em.emit_component_rows("Hzy", 0, 64, 0, 1)
        assert tiny.stats.mem_bytes > 1.5 * bytes_a
