"""Resilience through the service stack: crash/resume, drain, spool.

The centerpiece is a property-style chaos test: a forked worker is
killed at a *seeded-random* sweep mid-solve, the scheduler retries, the
retry resumes from the checkpoint, and the final result must be
bit-identical to an undisturbed run -- with the job executed exactly
once from the client's point of view (one DONE record, one stored
result, nothing lost, nothing double-counted).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.resilience import faults
from repro.resilience.checkpoint import take_report
from repro.resilience.errors import SolverDiverged
from repro.service import JobSpec, PlanRegistry, ResultStore, Scheduler, run_job
from repro.service.jobs import JobState

CHAOS_SOLVE = dict(kind="solve", preset="vacuum", grid=10, wavelength=10.0,
                   tol=1e-12, max_steps=120, max_retries=2)
FAST_TUNE = dict(kind="tune", grid=8, threads=2)


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    for var in ("REPRO_FAULTS", "REPRO_CHECKPOINT_EVERY",
                "REPRO_CHECKPOINT_DIR", "REPRO_QUEUE_FILE"):
        monkeypatch.delenv(var, raising=False)
    faults.uninstall()
    take_report()
    yield
    faults.uninstall()
    take_report()


class TestCrashResume:
    @pytest.mark.parametrize("seed", [3, 11, 2026])
    def test_seeded_worker_crash_resumes_bit_identical(
            self, seed, tmp_path, monkeypatch):
        """Kill the worker at a seeded-random sweep; the retry must pick
        up from the snapshot and reproduce the clean answer exactly."""
        clean = run_job(JobSpec(**CHAOS_SOLVE))

        # max_steps=120 / check_every=20 -> 6 solver.sweep passes; the
        # crash lands on a seeded one of them (first attempt only).
        plan = faults.FaultPlan.seeded(seed, "solver.sweep", "crash",
                                       max_after=6)
        monkeypatch.setenv("REPRO_FAULTS", plan.env_value())
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "40")
        sched = Scheduler(workers=1, mode="process", retry_base_s=0.001,
                          checkpoint_dir=str(tmp_path)).start()
        try:
            job = sched.submit(JobSpec(**CHAOS_SOLVE))
            sched.wait(job.id, timeout=120.0)

            assert job.state == JobState.DONE
            assert job.result == clean  # bit-identical payload
            # Exactly-once semantics: the crash consumed an attempt but
            # produced no result; the retry produced exactly one.
            assert job.attempts == 2
            stats = sched.stats()
            assert stats["worker_crashes"] == 1
            assert stats["completed"] == 1 and stats["failed"] == 0
            assert sched.store.get(job.id) == clean
            # A crash after the first checkpoint (sweep pass >= 2, i.e.
            # step 40) must resume mid-solve rather than restart.
            if plan.specs[0].after_n >= 2:
                assert job.resumed_from is not None
                assert job.resumed_from >= 40
                assert stats["resumed"] == 1
        finally:
            sched.stop()

    def test_unchaosed_run_with_checkpoints_is_unchanged(
            self, tmp_path, monkeypatch):
        """Checkpointing alone (no fault) must not perturb the result."""
        clean = run_job(JobSpec(**CHAOS_SOLVE))
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "40")
        sched = Scheduler(workers=1, mode="process", retry_base_s=0.001,
                          checkpoint_dir=str(tmp_path)).start()
        try:
            job = sched.submit(JobSpec(**CHAOS_SOLVE))
            sched.wait(job.id, timeout=120.0)
            assert job.state == JobState.DONE
            assert job.result == clean
            assert job.attempts == 1 and job.resumed_from is None
            # The snapshot is cleared once the result is stored.
            assert [f for f in os.listdir(tmp_path)
                    if f.startswith("ckpt-")] == []
        finally:
            sched.stop()


class TestFailFast:
    def test_non_retryable_error_skips_the_retry_budget(self, monkeypatch):
        def diverge(spec, **kw):
            raise SolverDiverged("blew up", steps=40)

        from repro.service import scheduler as sched_mod
        monkeypatch.setattr(sched_mod, "run_job", diverge)
        sched = Scheduler(workers=1, retry_base_s=0.001).start()
        try:
            job = sched.submit(JobSpec(**CHAOS_SOLVE))
            sched.wait(job.id, timeout=30.0)
            assert job.state == JobState.FAILED
            assert job.attempts == 1  # no retries burned
            assert job.error_kind == "SolverDiverged"
            assert "not retryable" in job.error
            assert sched.stats()["retries"] == 0
        finally:
            sched.stop()

    def test_retryable_kind_survives_the_process_boundary(
            self, monkeypatch):
        """An InjectedFault raised in the child comes back typed (via the
        spool's error_kind) and is retried until the budget runs out."""
        monkeypatch.setenv("REPRO_FAULTS", "job.run:raise:0:*")
        spec = JobSpec(**dict(FAST_TUNE, max_retries=1))
        sched = Scheduler(workers=1, mode="process",
                          retry_base_s=0.001).start()
        try:
            job = sched.submit(spec)
            sched.wait(job.id, timeout=60.0)
            assert job.state == JobState.FAILED
            assert job.attempts == 2  # budget of 1 retry was spent
            assert job.error_kind == "InjectedFault"
            assert "retry budget 1 exhausted" in job.error
        finally:
            sched.stop()


class TestDrainAndSpool:
    def test_drain_finishes_running_and_keeps_queued(self):
        sched = Scheduler(workers=1, retry_base_s=0.001).start()
        try:
            first = sched.submit(JobSpec(**dict(CHAOS_SOLVE, max_steps=400)))
            second = sched.submit(JobSpec(**FAST_TUNE))
            # Wait for the solve to actually start before draining.
            deadline = time.monotonic() + 30.0
            while first.state == JobState.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert sched.drain(timeout=60.0) is True
            assert sched.draining is True
            assert first.state == JobState.DONE
            assert second.state == JobState.QUEUED  # never dispatched
            assert sched.queue_depth() == 1
        finally:
            sched.stop()

    def test_persist_and_restore_round_trip(self, tmp_path):
        spool = str(tmp_path / "queue.json")
        cold = Scheduler(workers=1)  # never started: everything queues
        a = cold.submit(JobSpec(**FAST_TUNE))
        b = cold.submit(JobSpec(**dict(FAST_TUNE, grid=10, priority=2)))
        assert cold.persist_queue(spool) == 2

        warm = Scheduler(workers=2, retry_base_s=0.001).start()
        try:
            assert warm.restore_queue(spool) == 2
            assert not os.path.exists(spool)  # consumed
            warm.join(timeout=60.0)
            for job_id in (a.id, b.id):
                assert warm.get(job_id).state == JobState.DONE
        finally:
            warm.stop()

    def test_corrupt_spool_restores_nothing(self, tmp_path):
        from repro.ioutil import corrupt_file

        spool = str(tmp_path / "queue.json")
        cold = Scheduler(workers=1)
        cold.submit(JobSpec(**FAST_TUNE))
        cold.persist_queue(spool)
        corrupt_file(spool)
        warm = Scheduler(workers=1)
        assert warm.restore_queue(spool) == 0
        assert os.path.exists(spool + ".corrupt")

    def test_persist_preserves_priority_order(self, tmp_path):
        from repro.ioutil import read_json_checked

        spool = str(tmp_path / "queue.json")
        cold = Scheduler(workers=1)
        low = cold.submit(JobSpec(**dict(FAST_TUNE, priority=0)))
        high = cold.submit(JobSpec(**dict(FAST_TUNE, grid=10, priority=5)))
        cold.persist_queue(spool)
        doc = read_json_checked(spool)
        grids = [e["spec"]["grid"] for e in doc["jobs"]]
        assert grids == [10, 8]  # high priority first
        assert low.id != high.id


class TestServeGracefulShutdown:
    def test_sigterm_drains_spools_and_exits_zero(self, tmp_path):
        """End-to-end: `repro serve` under SIGTERM finishes in-flight
        work, spools the queue, and exits 0."""
        queue_file = str(tmp_path / "queue.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", "1", "--queue-file", queue_file,
             "--drain-timeout", "30"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
        )
        try:
            banner = proc.stdout.readline()
            assert "repro service on http://" in banner
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60.0)
        except Exception:
            proc.kill()
            raise
        assert proc.returncode == 0, out
        assert "shutdown: drained" in out
