"""Property-based tests (hypothesis) for the core invariants.

These randomize the tiling configuration, the grid, and the execution
interleaving, asserting the library's three load-bearing properties:

1. the diamond tessellation covers the space-time domain exactly once;
2. every generated schedule passes the dependency checker;
3. tiled execution equals the naive sweep bitwise, in any topological
   order of the tile DAG.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import TiledExecutor, TilingPlan, validate_jobs
from repro.core.diamond import enumerate_tiles
from repro.fdfd import FieldState, Grid, naive_sweep, random_coefficients

# Small-but-irregular domains: primes and non-multiples stress clipping.
ny_st = st.integers(min_value=3, max_value=21)
nz_st = st.integers(min_value=3, max_value=17)
steps_st = st.integers(min_value=1, max_value=9)
dw_st = st.sampled_from([2, 4, 6, 8])
bz_st = st.integers(min_value=1, max_value=6)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(ny=ny_st, steps=steps_st, dw=dw_st)
@settings(max_examples=40, **COMMON)
def test_tessellation_exact_cover(ny, steps, dw):
    tiles = enumerate_tiles(ny, steps, dw)
    count = np.zeros((2 * steps, ny), dtype=int)
    for tile in tiles.values():
        for row in tile.rows:
            count[row.tau, row.y_lo : row.y_hi] += 1
    assert np.all(count == 1)


@given(ny=ny_st, nz=nz_st, steps=steps_st, dw=dw_st, bz=bz_st, seed=st.integers(0, 2**16))
@settings(max_examples=40, **COMMON)
def test_any_plan_any_order_passes_checker(ny, nz, steps, dw, bz, seed):
    plan = TilingPlan.build(ny=ny, nz=nz, timesteps=steps, dw=dw, bz=bz)
    order = plan.random_topological_order(np.random.default_rng(seed))
    validate_jobs(plan.row_jobs(order), ny, nz, timesteps=steps)


@given(
    ny=st.integers(min_value=3, max_value=14),
    nz=st.integers(min_value=3, max_value=12),
    steps=st.integers(min_value=1, max_value=6),
    dw=st.sampled_from([2, 4, 6]),
    bz=st.integers(min_value=1, max_value=4),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, **COMMON)
def test_tiled_equals_naive_bitwise(ny, nz, steps, dw, bz, seed):
    grid = Grid(nz=nz, ny=ny, nx=3)
    plan = TilingPlan.build(ny=ny, nz=nz, timesteps=steps, dw=dw, bz=bz)
    rng = np.random.default_rng(seed)
    coeffs = random_coefficients(grid, seed=seed % 1000)
    f_naive = FieldState(grid).fill_random(rng)
    f_tiled = f_naive.copy()
    naive_sweep(f_naive, coeffs, steps)
    TiledExecutor(f_tiled, coeffs, plan).run_interleaved(rng)
    assert f_naive.max_abs_difference(f_tiled) == 0.0


@given(
    ny=ny_st,
    steps=steps_st,
    dw=dw_st,
    data=st.data(),
)
@settings(max_examples=30, **COMMON)
def test_band_tiles_mutually_independent(ny, steps, dw, data):
    """Tiles of one band never depend on each other (they may run
    concurrently) -- checked structurally on random plans."""
    plan = TilingPlan.build(ny=ny, nz=5, timesteps=steps, dw=dw, bz=1)
    for idx in plan.tiles:
        band = idx[0] + idx[1]
        for p in plan.preds[idx]:
            assert p[0] + p[1] < band


@given(ny=ny_st, nz=nz_st, steps=steps_st, dw=dw_st, bz=bz_st)
@settings(max_examples=40, **COMMON)
def test_plan_node_count_conserved(ny, nz, steps, dw, bz):
    """Total work is invariant under tiling: sum of node-cells over all
    row jobs equals (2 * steps) * ny * nz."""
    plan = TilingPlan.build(ny=ny, nz=nz, timesteps=steps, dw=dw, bz=bz)
    total = sum(job.cells_per_x for job in plan.row_jobs())
    assert total == 2 * steps * ny * nz
