"""Job-scoped trace propagation: one trace id from submission through a
forked worker's sweeps, merged back into a single Chrome trace."""

import pytest

from repro import telemetry
from repro.core import tracing
from repro.core.tracing import WALL_PID, TraceRecorder
from repro.service import Scheduler
from repro.service.jobs import JobSpec, JobState

FAST_SOLVE = dict(kind="solve", preset="vacuum", grid=10, wavelength=10.0,
                  tol=1e-4, max_steps=20)


@pytest.fixture(autouse=True)
def _isolate_telemetry_state():
    was_on = telemetry.enabled()
    yield
    if tracing.active() is not None:
        tracing.stop_trace()
    telemetry.enable(force=True) if was_on else telemetry.disable()
    telemetry.set_current(None)


class TestMergeChild:
    def test_child_timestamps_rebase_on_epoch_delta(self):
        parent = TraceRecorder()
        child = TraceRecorder()
        child.epoch = parent.epoch + 1.5  # child started 1.5 s later
        child.complete("sweep", "solver", ts_us=100.0, dur_us=50.0)
        parent.merge_child(child.export(), label="worker")
        merged = [e for e in parent._events if e["name"] == "sweep"]
        assert len(merged) == 1
        assert merged[0]["ts_us"] == pytest.approx(100.0 + 1.5e6)
        assert merged[0]["dur_us"] == 50.0

    def test_child_pids_map_to_fresh_processes(self):
        parent = TraceRecorder()
        child = TraceRecorder()
        sim = child.new_process("simulated threads")
        child.complete("wall span", "c", 0.0, 1.0)  # pid WALL_PID
        child.complete("sim span", "c", 0.0, 1.0, pid=sim)
        wall = parent.merge_child(child.export(), label="worker #1")
        pids = {e["name"]: e["pid"] for e in parent._events}
        assert pids["wall span"] == wall and wall != WALL_PID
        assert pids["sim span"] not in (WALL_PID, wall)
        names = {m["pid"]: m["name"] for m in parent._meta
                 if m["kind"] == "process_name"}
        assert names[wall] == "worker #1"
        assert names[pids["sim span"]] == "simulated threads"

    def test_merge_preserves_span_args(self):
        parent = TraceRecorder()
        child = TraceRecorder()
        child.complete("job abc", "service", 0.0, 1.0,
                       args={"trace": "deadbeef"})
        parent.merge_child(child.export())
        [ev] = [e for e in parent._events if e["name"] == "job abc"]
        assert ev["args"]["trace"] == "deadbeef"


class TestJobContext:
    def test_every_submitted_job_gets_a_trace_id(self):
        a, b = JobSpec(**FAST_SOLVE), JobSpec(**dict(FAST_SOLVE, grid=12))
        from repro.service.jobs import Job

        ja, jb = Job(spec=a), Job(spec=b)
        assert len(ja.trace_id) == 16 and ja.trace_id != jb.trace_id
        assert ja.to_dict()["trace_id"] == ja.trace_id

    def test_span_args_tags_the_current_trace(self):
        telemetry.set_current(telemetry.JobContext(job_id="j",
                                                   trace_id="cafe1234"))
        try:
            assert telemetry.span_args({"x": 1}) == {"x": 1,
                                                     "trace": "cafe1234"}
            assert telemetry.span_args(None) == {"trace": "cafe1234"}
        finally:
            telemetry.set_current(None)
        assert telemetry.span_args({"x": 1}) == {"x": 1}


class TestForkedWorkerPropagation:
    """The acceptance path: an HTTP-shaped job through a forked process
    worker lands every span -- parent and child -- under one trace id."""

    @pytest.fixture
    def traced_run(self):
        telemetry.enable(force=True)
        rec = tracing.start_trace(None)
        sched = Scheduler(workers=1, mode="process").start()
        try:
            job = sched.submit(JobSpec(**FAST_SOLVE))
            sched.wait(job.id, timeout=180.0)
        finally:
            sched.stop()
            tracing.stop_trace()
        assert job.state == JobState.DONE, job.error
        return rec, job

    def test_single_trace_id_spans_parent_and_worker(self, traced_run):
        rec, job = traced_run
        spans = [e for e in rec._events if e["type"] == "span"]
        traced = [e for e in spans
                  if (e.get("args") or {}).get("trace") == job.trace_id]
        names = {e["name"] for e in traced}
        # Parent-side lifecycle spans...
        assert any(n.startswith("queued") for n in names)
        assert any(n.startswith("attempt") for n in names)
        # ...and the worker's job span, merged from the forked process.
        assert any(n.startswith("job") for n in names)
        pids = {e["pid"] for e in traced}
        assert WALL_PID in pids, "parent spans missing"
        assert any(p != WALL_PID for p in pids), (
            "forked worker spans were not merged into the parent trace")
        # No other trace id leaks into this job's span names.
        foreign = [e for e in spans
                   if e["name"] in names
                   and (e.get("args") or {}).get("trace")
                   not in (None, job.trace_id)]
        assert not foreign

    def test_worker_process_lane_is_labelled(self, traced_run):
        rec, job = traced_run
        labels = [m["name"] for m in rec._meta
                  if m["kind"] == "process_name"]
        assert any(l.startswith("worker") for l in labels)

    def test_progress_events_crossed_the_fork(self, traced_run):
        _, job = traced_run
        events, _, _ = telemetry.PROGRESS.events_since(job.id)
        kinds = [e["kind"] for e in events]
        assert "progress" in kinds, f"no solver progress in {kinds}"
        assert kinds[-1] == "end"
        residuals = [e["residual"] for e in events
                     if e["kind"] == "progress"]
        assert residuals and all(r >= 0 for r in residuals)
        telemetry.PROGRESS.forget(job.id)
