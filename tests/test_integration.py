"""End-to-end integration: the whole pipeline on one small problem.

Scene -> coefficients -> THIIM solve -> temporally blocked re-run ->
distributed re-run -> checkpoint/restore -> observables -> performance
projection.  Everything a downstream user chains together, in one test
module, with cross-checks at every hand-off.
"""

import numpy as np
import pytest

from repro.cluster import DistributedTHIIM, RankLayout
from repro.core import TiledTHIIM, TilingPlan, TiledExecutor, tune_spatial, tune_tiled
from repro.fdfd import (
    A_SI_H,
    SILVER,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    Scene,
    THIIMSolver,
    absorbed_power,
    field_energy,
    naive_sweep,
    poynting_flux_z,
)
from repro.io import load_state, save_state
from repro.machine import HASWELL_EP


@pytest.fixture(scope="module")
def problem():
    grid = Grid(nz=40, ny=12, nx=10)
    omega = 2 * np.pi / 10.0
    scene = Scene().add_layer(A_SI_H, 20, 30).add_layer(SILVER, 32, 40)
    solver = THIIMSolver(
        grid, omega, scene=scene,
        source=PlaneWaveSource(z_plane=10, z_width=2.0),
        pml={"z": PMLSpec(thickness=6)},
    )
    return grid, omega, scene, solver


class TestFullPipeline:
    def test_solve_and_observables(self, problem):
        grid, omega, scene, solver = problem
        solver.reset()
        result = solver.solve(tol=2e-4, max_steps=2500, check_every=100)
        assert result.converged
        # Physics sanity: bounded energy, positive absorber dissipation,
        # metal barely absorbs.
        assert np.isfinite(field_energy(solver.fields, eps=solver.eps))
        a_si = absorbed_power(solver.fields, solver.sigma, solver.material_mask("a-Si:H"))
        ag = absorbed_power(solver.fields, solver.sigma, solver.material_mask("Ag"))
        assert a_si > 0
        assert ag < 0.2 * a_si
        assert poynting_flux_z(solver.fields, 14) > 0

    def test_three_execution_paths_agree(self, problem):
        """Naive, wavefront-diamond and distributed runs of the same 12
        steps produce the same bits."""
        grid, omega, scene, _ = problem

        def fresh():
            return THIIMSolver(
                grid, omega, scene=scene,
                source=PlaneWaveSource(z_plane=10, z_width=2.0),
                pml={"z": PMLSpec(thickness=6)},
            )

        steps = 12
        ref = fresh()
        ref.run(steps)

        tiled = fresh()
        TiledTHIIM(tiled, dw=4, bz=2, chunk=steps).run(steps)
        assert ref.fields.max_abs_difference(tiled.fields) == 0.0

        dist_solver = fresh()
        dist = DistributedTHIIM(RankLayout(grid, 2, 2, 1), dist_solver.fields,
                                dist_solver.coefficients)
        dist.step(steps)
        assert ref.fields.max_abs_difference(dist.gather()) == 0.0

    def test_checkpoint_across_execution_paths(self, problem, tmp_path):
        """Checkpoint a naive run, restore, continue with the tiled
        executor: the trajectory is unchanged."""
        grid, omega, scene, _ = problem
        solver = THIIMSolver(
            grid, omega, scene=scene,
            source=PlaneWaveSource(z_plane=10, z_width=2.0),
            pml={"z": PMLSpec(thickness=6)},
        )
        straight = solver.fields.copy()
        naive_sweep(straight, solver.coefficients, 10)

        naive_sweep(solver.fields, solver.coefficients, 5)
        restored = load_state(save_state(solver.fields, str(tmp_path / "mid.npz")))
        plan = TilingPlan.build(ny=grid.ny, nz=grid.nz, timesteps=5, dw=4, bz=1)
        TiledExecutor(restored, solver.coefficients, plan).run()
        assert straight.max_abs_difference(restored) == 0.0

    def test_performance_projection(self):
        """The machine-model handoff a user makes at the end: how long
        would my production campaign take, spatial vs MWD?"""
        spatial = tune_spatial(HASWELL_EP, 128, HASWELL_EP.cores)
        mwd = tune_tiled(HASWELL_EP, 128, HASWELL_EP.cores)
        assert mwd.mlups > 2.0 * spatial.mlups
        lups = 128**3 * 500
        t_sp = lups / (spatial.mlups * 1e6)
        t_mwd = lups / (mwd.mlups * 1e6)
        assert t_mwd < t_sp
