"""Tests for the command-line interface (driven in-process)."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_args(self):
        args = build_parser().parse_args(
            ["plan", "--ny", "16", "--nz", "16", "--steps", "4", "--dw", "4"]
        )
        assert args.command == "plan" and args.bz == 1


class TestPlanCommand:
    def test_valid_plan(self, capsys):
        rc = main(["plan", "--ny", "24", "--nz", "16", "--steps", "6", "--dw", "4", "--bz", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dependency check: OK" in out
        assert "interior diamond" in out

    def test_invalid_dw(self):
        with pytest.raises(ValueError):
            main(["plan", "--ny", "16", "--nz", "16", "--steps", "4", "--dw", "3"])


class TestTuneCommand:
    def test_spatial(self, capsys):
        rc = main(["tune", "--grid", "128", "--threads", "4", "--variant", "spatial"])
        assert rc == 0
        assert "spatial@4t" in capsys.readouterr().out

    def test_mwd_with_bandwidth_override(self, capsys):
        rc = main(["tune", "--grid", "128", "--threads", "6", "--variant", "mwd",
                   "--bandwidth", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "30 GB/s" in out


class TestFiguresCommand:
    def test_section3_with_json(self, tmp_path, capsys):
        rc = main(["figures", "--which", "section3", "--out", str(tmp_path)])
        assert rc == 0
        data = json.load(open(tmp_path / "section3.json"))
        assert any(r["quantity"] == "flops/LUP" for r in data)
        assert "Section III" in capsys.readouterr().out

    def test_fig5_quick(self, capsys):
        rc = main(["figures", "--which", "fig5", "--quick"])
        assert rc == 0
        assert "Fig. 5" in capsys.readouterr().out


class TestSolveCommand:
    def test_vacuum_solve_with_checkpoint(self, tmp_path, capsys):
        ckpt = str(tmp_path / "state.npz")
        vtk = str(tmp_path / "field.vtk")
        rc = main(["solve", "--preset", "vacuum", "--grid", "10",
                   "--wavelength", "10", "--tol", "1e-4", "--max-steps", "1500",
                   "--save", ckpt, "--vtk", vtk])
        assert rc == 0
        assert os.path.exists(ckpt) and os.path.exists(vtk)
        out = capsys.readouterr().out
        assert "converged" in out

    def test_tiled_solve(self, capsys):
        rc = main(["solve", "--preset", "absorber", "--grid", "10",
                   "--wavelength", "10", "--tol", "1e-4", "--max-steps", "2000",
                   "--tiled", "--dw", "4", "--bz", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TiledTHIIM" in out and "converged" in out


class TestBenchCommand:
    def test_bench_plan_profile(self, capsys):
        rc = main(["bench", "plan", "--grid", "48", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench plan: result" in out
        assert "cumulative" in out  # pstats sort header

    def test_bench_measure_profile(self, capsys):
        rc = main(["bench", "measure", "--grid", "64", "--threads", "4", "--top", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Ordered by: cumulative time" in out
        assert "substrate counters" in out
        assert "timed sections (most expensive first):" in out
        assert "measure.tiled" in out

    def test_bench_section_times_sorted_descending(self, capsys):
        rc = main(["bench", "tune", "--grid", "64", "--threads", "4", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        start = lines.index("timed sections (most expensive first):")
        times = []
        for line in lines[start + 1:]:
            if not line.startswith("  "):
                break
            times.append(float(line.split()[-2]))
        assert len(times) >= 2  # tune.score + measure.tiled at least
        assert times == sorted(times, reverse=True)

    def test_bench_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "nope"])


class TestCountersCommand:
    def test_tiled_tables(self, capsys):
        rc = main(["counters", "--workload", "tiled", "--grid", "96",
                   "--group", "MEM,CACHE"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Region measure.tiled, Group MEM" in out
        assert "Region measure.tiled, Group CACHE" in out
        assert "Code balance [B/LUP]" in out
        assert "Group WORK" not in out  # not requested

    def test_both_workloads_json(self, capsys):
        rc = main(["counters", "--workload", "both", "--grid", "64", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"measure.tiled", "measure.sweep"}
        for sample in doc.values():
            assert sample["lups"] > 0
            assert sample["derived"]["code_balance_B_per_LUP"] > 0

    def test_rejects_unknown_group(self):
        with pytest.raises(ValueError, match="unknown perf group"):
            main(["counters", "--workload", "tiled", "--grid", "64",
                  "--group", "TLB"])


class TestTraceCommand:
    def test_writes_both_formats(self, tmp_path, capsys):
        out_path = tmp_path / "tune.json"
        rc = main(["trace", "--out", str(out_path), "--grid", "64",
                   "--threads", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out and f"trace -> {out_path}" in out
        doc = json.load(open(out_path))
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"autotune", "measure", "sim.tile"} <= cats
        assert (tmp_path / "tune.jsonl").exists()


class TestPerfGroupFlag:
    def test_tune_perf_group(self, capsys):
        from repro.machine import measure
        from repro.machine.pmu import GLOBAL_PMU

        measure._measure_tiled_cached.cache_clear()
        GLOBAL_PMU.reset()
        rc = main(["tune", "--grid", "96", "--threads", "4",
                   "--perf-group", "MEM"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MWD@4t" in out
        assert "Region measure.tiled, Group MEM" in out

    def test_solve_perf_group_synthesizes_work(self, capsys):
        from repro.machine.pmu import GLOBAL_PMU

        GLOBAL_PMU.reset()
        rc = main(["solve", "--preset", "vacuum", "--grid", "10",
                   "--wavelength", "10", "--tol", "1e-4",
                   "--max-steps", "1500", "--perf-group", "WORK"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Region solve, Group WORK" in out
        assert "RETIRED_FLOPS" in out


class TestVersionFlag:
    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()  # "repro <semver>"

    def test_version_matches_package_metadata(self):
        from repro.cli import package_version

        v = package_version()
        assert v and v[0].isdigit()


class TestEnvCommand:
    def test_table_lists_every_flag(self, capsys):
        from repro import config

        rc = main(["env"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in config.FLAGS:
            assert name in out
        assert "description" in out.splitlines()[0]

    def test_json_output(self, capsys, monkeypatch):
        from repro import config

        monkeypatch.setenv("REPRO_TUNE_WORKERS", "3")
        rc = main(["env", "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["flag"] for r in rows} == set(config.FLAGS)
        by_flag = {r["flag"]: r for r in rows}
        assert by_flag["REPRO_TUNE_WORKERS"]["value"] == "3"


class TestSubmitCommand:
    def test_submit_wait_roundtrip(self, capsys):
        import threading

        from repro.service import Scheduler, make_server

        sched = Scheduler(workers=2).start()
        server = make_server(sched, port=0)
        t = threading.Thread(target=server.serve_forever, daemon=True)
        t.start()
        url = f"http://127.0.0.1:{server.server_port}"
        try:
            rc = main(["submit", "--url", url, "--preset", "vacuum",
                       "--grid", "10", "--wavelength", "10", "--tol", "1e-4",
                       "--max-steps", "20", "--threads", "2", "--wait"])
        finally:
            server.shutdown()
            server.server_close()
            sched.stop()
            t.join(timeout=5.0)
        assert rc == 0
        out = capsys.readouterr().out
        assert "done after" in out and "checksum:" in out

    def test_submit_validates_locally(self):
        # An invalid spec never leaves the process (no server needed).
        with pytest.raises(ValueError):
            main(["submit", "--url", "http://127.0.0.1:1", "--grid", "3"])


class TestCampaignCommand:
    def test_in_process_sweep_with_registry_reuse(self, tmp_path, capsys):
        out_path = tmp_path / "campaign.json"
        rc = main(["campaign", "--preset", "absorber", "--grid", "16",
                   "--threads", "2", "--tol", "1e-4", "--max-steps", "20",
                   "--wavelengths", "10,12", "--thicknesses", "0.2",
                   "--workers", "2", "--out", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign:" in out and "registry" in out
        # One tuning for the whole sweep: every job after the first is a
        # plan-registry hit (the compile-once/serve-many contract).
        assert "1 misses" in out
        rows = json.loads(out_path.read_text())
        assert len(rows) == 2
        assert all(r["state"] == "done" for r in rows)
        assert sum(1 for r in rows if r["registry_hit"]) == 1
