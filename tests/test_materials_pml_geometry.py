"""Tests for materials, PML profiles and scene rasterization."""

import numpy as np
import pytest

from repro.fdfd import (
    A_SI_H,
    GLASS,
    MATERIAL_LIBRARY,
    SILVER,
    SIO2,
    VACUUM,
    Grid,
    Layer,
    Material,
    PMLSpec,
    Scene,
    Sphere,
    pml_profile,
    rough_texture,
    sinusoidal_texture,
)


class TestMaterial:
    def test_vacuum(self):
        assert VACUUM.eps_real == 1.0
        assert VACUUM.sigma(2.0) == 0.0
        assert VACUUM.is_lossless
        assert not VACUUM.is_negative_eps

    def test_silver_negative_permittivity(self):
        # The back-iteration trigger of the paper: Re(eps) < 0 for Ag.
        assert SILVER.eps_real < 0
        assert SILVER.is_negative_eps
        assert SILVER.sigma(1.0) > 0

    def test_absorber_lossy(self):
        assert A_SI_H.eps_real > 0
        assert A_SI_H.sigma(1.0) > 0

    def test_complex_eps_consistency(self):
        omega = 2.0
        m = A_SI_H
        ce = m.complex_eps(omega)
        assert ce.real == pytest.approx(m.eps_real)
        assert ce.imag == pytest.approx(-m.sigma(omega) / omega)
        # (n - i kappa)^2 == complex eps
        assert m.complex_index**2 == pytest.approx(ce)

    def test_from_permittivity_roundtrip(self):
        omega = 1.7
        for m in (GLASS, A_SI_H, SILVER):
            m2 = Material.from_permittivity(m.name, m.complex_eps(omega))
            assert m2.n == pytest.approx(m.n, abs=1e-12)
            assert m2.kappa == pytest.approx(m.kappa, abs=1e-12)

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", n=1.0, kappa=-0.1)

    def test_omega_must_be_positive(self):
        with pytest.raises(ValueError):
            VACUUM.sigma(0.0)

    def test_library_contains_fig1_stack(self):
        for name in ("Ag", "a-Si:H", "uc-Si:H", "SiO2", "ZnO", "glass"):
            assert name in MATERIAL_LIBRARY


class TestPML:
    def test_zero_without_spec(self):
        assert not pml_profile(32, 1.0, None).any()

    def test_profile_shape_and_support(self):
        spec = PMLSpec(thickness=6)
        p = pml_profile(40, 1.0, spec)
        assert p.shape == (40,)
        # Nonzero only within the absorber layers.
        assert p[:6].any() and p[-6:].any()
        assert not p[8:-8].any()
        assert np.all(p >= 0)

    def test_profile_monotone_toward_boundary(self):
        p = pml_profile(40, 1.0, PMLSpec(thickness=8))
        assert np.all(np.diff(p[:8]) <= 0)
        assert np.all(np.diff(p[-8:]) >= 0)

    def test_one_sided(self):
        p = pml_profile(40, 1.0, PMLSpec(thickness=6, low=False))
        assert not p[:10].any()
        assert p[-3:].all()

    def test_staggered_samples_differ(self):
        spec = PMLSpec(thickness=6)
        p0 = pml_profile(40, 1.0, spec, staggered=False)
        p1 = pml_profile(40, 1.0, spec, staggered=True)
        assert not np.allclose(p0, p1)

    def test_sigma_max_from_reflection_target(self):
        # Deeper PML -> smaller peak conductivity for the same target.
        s_thin = PMLSpec(thickness=4).resolved_sigma_max(1.0)
        s_thick = PMLSpec(thickness=16).resolved_sigma_max(1.0)
        assert s_thin > s_thick > 0

    def test_explicit_sigma_max_wins(self):
        assert PMLSpec(thickness=4, sigma_max=2.5).resolved_sigma_max(1.0) == 2.5

    def test_does_not_fit_rejected(self):
        with pytest.raises(ValueError):
            pml_profile(10, 1.0, PMLSpec(thickness=5))

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            PMLSpec(thickness=-1)
        with pytest.raises(ValueError):
            PMLSpec(grading_order=0)
        with pytest.raises(ValueError):
            PMLSpec(reflection_target=2.0)


class TestScene:
    def test_background_only(self):
        g = Grid.cube(8)
        eps, sigma = Scene(background=GLASS).rasterize(g, omega=1.0)
        assert np.all(eps == GLASS.eps_real)
        assert np.all(sigma == 0)

    def test_flat_layer_stack(self):
        g = Grid(nz=12, ny=4, nx=4)
        scene = Scene()
        scene.add_layer(A_SI_H, 4, 8)
        scene.add_layer(SILVER, 8, 12)
        eps, sigma = scene.rasterize(g, omega=1.0)
        assert np.all(eps[:4] == 1.0)
        assert np.all(eps[4:8] == A_SI_H.eps_real)
        assert np.all(eps[8:] == SILVER.eps_real)
        assert np.all(sigma[4:8] == A_SI_H.sigma(1.0))

    def test_later_layer_wins(self):
        g = Grid(nz=8, ny=4, nx=4)
        scene = Scene().add_layer(GLASS, 0, 8).add_layer(SILVER, 4, 8)
        eps, _ = scene.rasterize(g, 1.0)
        assert np.all(eps[:4] == GLASS.eps_real)
        assert np.all(eps[4:] == SILVER.eps_real)

    def test_sphere_inclusion(self):
        g = Grid.cube(16)
        scene = Scene(background=SILVER).add_sphere(SIO2, (8, 8, 8), 4)
        eps, _ = scene.rasterize(g, 1.0)
        assert eps[8, 8, 8] == SIO2.eps_real
        assert eps[0, 0, 0] == SILVER.eps_real
        # Volume sanity: within 30% of 4/3 pi r^3.
        count = int(np.sum(eps == SIO2.eps_real))
        expect = 4 / 3 * np.pi * 4**3
        assert abs(count - expect) / expect < 0.3

    def test_textured_interface_varies_laterally(self):
        g = Grid(nz=16, ny=16, nx=16)
        tex = sinusoidal_texture(amplitude=3.0, period_y=16, period_x=16)
        scene = Scene().add_layer(A_SI_H, 8, 16, texture=tex)
        eps, _ = scene.rasterize(g, 1.0)
        boundary_z = np.argmax(eps == A_SI_H.eps_real, axis=0)
        assert boundary_z.min() < boundary_z.max()  # rough interface

    def test_rough_texture_deterministic(self):
        t1 = rough_texture(2.0, correlation=4, seed=9)
        t2 = rough_texture(2.0, correlation=4, seed=9)
        y, x = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        assert np.allclose(t1(y, x), t2(y, x))
        assert t1(y, x).std() > 0

    def test_supersampling_blends_interfaces(self):
        g = Grid(nz=8, ny=4, nx=4)
        # Layer boundary at a half-cell position: supersampled cells at the
        # boundary take intermediate permittivity.
        scene = Scene().add_layer(A_SI_H, 3.5, 8)
        eps1, _ = scene.rasterize(g, 1.0, supersample=1)
        eps2, _ = scene.rasterize(g, 1.0, supersample=2)
        assert set(np.unique(eps1)) == {1.0, A_SI_H.eps_real}
        mid = eps2[3, 0, 0]
        assert 1.0 < mid < A_SI_H.eps_real

    def test_volume_fractions(self):
        g = Grid(nz=10, ny=4, nx=4)
        scene = Scene().add_layer(SILVER, 5, 10)
        frac = scene.material_volume_fractions(g)
        assert frac["Ag"] == pytest.approx(0.5)
        assert frac["vacuum"] == pytest.approx(0.5)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Layer(GLASS, 5, 5)
        with pytest.raises(ValueError):
            Sphere(GLASS, (0, 0, 0), 0)
        with pytest.raises(ValueError):
            Scene().rasterize(Grid.cube(4), 1.0, supersample=0)
