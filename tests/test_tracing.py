"""Tests for the structured trace recorder (Chrome trace + JSONL).

Validates the two serialized schemas, the disabled-mode fast path, the
DES per-simulation process lanes, and the ``REPRO_TRACE`` env-driven CLI
activation the CI observability job relies on.
"""

import json

import pytest

from repro.core import tracing
from repro.core.tracing import (
    WALL_PID,
    TraceRecorder,
    _NULL_SPAN,
    jsonl_path_for,
)


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with tracing disabled."""
    tracing.stop_trace()
    yield
    tracing.stop_trace()


def _clear_measure_caches():
    from repro.machine import measure

    measure._measure_tiled_cached.cache_clear()
    measure._measure_sweep_cached.cache_clear()


class TestDisabledMode:
    def test_span_is_shared_null_singleton(self):
        assert not tracing.enabled()
        s = tracing.span("anything", "cat", args={"k": 1})
        assert s is _NULL_SPAN
        with s as sp:
            sp.set(result=42)  # must be a silent no-op

    def test_instrumented_code_records_nothing(self):
        _clear_measure_caches()
        from repro.machine.measure import measure_tiled_code_balance
        from repro.machine.spec import HASWELL_EP

        measure_tiled_code_balance(HASWELL_EP, nx=32, dw=4, bz=2, n_streams=1)
        assert tracing.active() is None


class TestRecorder:
    def test_span_records_complete_event(self):
        rec = tracing.start_trace()
        with tracing.span("work", "test", args={"n": 3}) as sp:
            sp.set(out=7)
        assert len(rec) == 1
        ev = rec._events[0]
        assert ev["type"] == "span" and ev["name"] == "work"
        assert ev["cat"] == "test" and ev["pid"] == WALL_PID
        assert ev["args"] == {"n": 3, "out": 7}
        assert ev["dur_us"] >= 0

    def test_summary_counts_by_category(self):
        rec = tracing.start_trace()
        with tracing.span("a", "x"):
            pass
        with tracing.span("b", "x"):
            pass
        rec.instant("mark", "y")
        assert rec.summary() == {"x": 2, "y": 1}

    def test_new_process_allocates_distinct_pids(self):
        rec = TraceRecorder()
        p1 = rec.new_process("sim one")
        p2 = rec.new_process("sim two")
        assert WALL_PID < p1 < p2


class TestChromeFormat:
    def _sample_recorder(self):
        rec = tracing.start_trace()
        with tracing.span("wall work", "measure", args={"dw": 4}):
            pass
        pid = rec.new_process("DES test")
        rec.name_thread(pid, 0, "thread group 0")
        rec.complete("tile", "sim.tile", ts_us=0.0, dur_us=5.0, pid=pid, tid=0)
        rec.instant("event", "marks")
        rec.counter("mlups", {"value": 123.0})
        tracing.stop_trace()
        return rec, pid

    def test_chrome_events_schema(self, tmp_path):
        rec, pid = self._sample_recorder()
        path = str(tmp_path / "trace.json")
        rec.dump_chrome(path)
        doc = json.load(open(path))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i", "C"}
        for e in events:
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            if e["ph"] == "X":
                assert isinstance(e["ts"], float) and isinstance(e["dur"], float)
                assert e["cat"]
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert "wall clock" in names and "DES test" in names

    def test_jsonl_schema(self, tmp_path):
        rec, pid = self._sample_recorder()
        path = str(tmp_path / "trace.jsonl")
        rec.dump_jsonl(path)
        lines = [json.loads(l) for l in open(path)]
        types = {l["type"] for l in lines}
        assert types == {"meta", "span", "instant", "counter"}
        for l in lines:
            if l["type"] == "meta":
                assert l["kind"] in ("process_name", "thread_name")
                assert isinstance(l["name"], str)
            elif l["type"] == "counter":
                assert isinstance(l["values"], dict)
            else:
                assert {"name", "cat", "ts_us", "pid", "tid"} <= set(l)
                if l["type"] == "span":
                    assert l["dur_us"] >= 0
        # metas first (wall clock + DES process + thread name), then events
        assert [l["type"] for l in lines[:3]] == ["meta"] * 3

    def test_jsonl_path_for(self):
        assert jsonl_path_for("a/b.json") == "a/b.jsonl"
        assert jsonl_path_for("a/b.trace") == "a/b.trace.jsonl"


class TestDesTimeline:
    def test_simulation_gets_own_process_with_group_lanes(self):
        from repro.core.plan import TilingPlan
        from repro.core.threadgroups import ThreadGroupConfig
        from repro.machine.simulator import simulate_tiled
        from repro.machine.spec import HASWELL_EP

        rec = tracing.start_trace()
        plan = TilingPlan.build(ny=16, nz=24, timesteps=8, dw=4, bz=2)
        cfg = ThreadGroupConfig(wavefront_threads=1, x_threads=3,
                                component_threads=2)
        res = simulate_tiled(HASWELL_EP, plan, nx=48, tg_config=cfg,
                             code_balance=100.0)
        tracing.stop_trace()
        tiles = [e for e in rec._events if e["cat"] == "sim.tile"]
        assert len(tiles) == len(plan.tiles)
        pids = {e["pid"] for e in tiles}
        assert pids and WALL_PID not in pids
        # lanes are thread groups; 18 cores / 6 threads per group = 3 lanes
        assert {e["tid"] for e in tiles} <= set(range(3))
        # simulated timestamps: last tile ends at the simulated makespan
        end = max(e["ts_us"] + e["dur_us"] for e in tiles)
        assert end == pytest.approx(res.seconds * 1e6, rel=1e-9)

    def test_executor_tile_spans(self):
        import numpy as np

        from repro.core.executor import TiledExecutor
        from repro.core.plan import TilingPlan
        from repro.fdfd import FieldState, Grid, random_coefficients

        grid = Grid(nz=8, ny=8, nx=4, periodic=(False, False, True))
        coeffs = random_coefficients(grid, seed=3)
        fields = FieldState(grid).fill_random(np.random.default_rng(4))
        plan = TilingPlan.build(ny=8, nz=8, timesteps=4, dw=4, bz=2)
        rec = tracing.start_trace()
        TiledExecutor(fields, coeffs, plan).run()
        tracing.stop_trace()
        cats = rec.summary()
        assert cats.get("exec.run") == 1
        assert cats.get("exec.tile") == len(plan.tiles)
        total_lups = sum(e["args"]["lups"] for e in rec._events
                        if e["cat"] == "exec.tile")
        assert total_lups > 0


class TestEnvActivation:
    def test_cli_records_and_writes_trace(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        _clear_measure_caches()
        path = tmp_path / "run.json"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        rc = main(["figures", "--which", "fig5", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"trace -> {path}" in out
        doc = json.load(open(path))
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "measure" in cats and "figure" in cats
        jsonl = tmp_path / "run.jsonl"
        assert jsonl.exists()
        for line in open(jsonl):
            json.loads(line)
