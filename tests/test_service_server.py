"""End-to-end tests of the HTTP serving layer (ephemeral port)."""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import JobSpec, Scheduler, make_server, run_job

FAST_SOLVE = dict(kind="solve", preset="vacuum", grid=10, wavelength=10.0,
                  tol=1e-4, max_steps=20)
FAST_TUNE = dict(kind="tune", grid=8, threads=2)


def _request(method, url, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}")


def _poll(base, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while True:
        status, doc = _request("GET", f"{base}/jobs/{job_id}")
        assert status == 200
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        assert time.monotonic() < deadline, f"job stuck {doc['state']}"
        time.sleep(0.05)


@pytest.fixture()
def service():
    """A live server on an ephemeral port, torn down after the test."""
    sched = Scheduler(workers=2, retry_base_s=0.001).start()
    server = make_server(sched, port=0)  # port 0: the OS picks one
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_port}"
    try:
        yield base, sched
    finally:
        server.shutdown()
        server.server_close()
        sched.stop()
        thread.join(timeout=5.0)


class TestSubmission:
    def test_submit_and_complete(self, service):
        base, _ = service
        status, doc = _request("POST", f"{base}/jobs", FAST_SOLVE)
        assert status == 202
        assert doc["state"] == "queued" and "result" not in doc
        done = _poll(base, doc["id"])
        assert done["state"] == "done"
        assert done["result"]["kind"] == "solve"

    def test_served_result_is_bit_identical(self, service):
        base, _ = service
        _, doc = _request("POST", f"{base}/jobs", FAST_SOLVE)
        served = _poll(base, doc["id"])["result"]
        assert served == run_job(JobSpec(**FAST_SOLVE))

    def test_duplicate_submission_coalesces(self, service):
        base, sched = service
        _, first = _request("POST", f"{base}/jobs", FAST_SOLVE)
        _, second = _request("POST", f"{base}/jobs",
                             dict(FAST_SOLVE, priority=3))
        assert second["id"] == first["id"]
        assert second["dedup_count"] == 1
        _poll(base, first["id"])
        assert sched.stats()["executed"] == 1

    def test_invalid_spec_is_400(self, service):
        base, _ = service
        for bad in (dict(FAST_SOLVE, grid=3),
                    dict(FAST_SOLVE, frobnicate=1),
                    dict(FAST_SOLVE, kind="dance")):
            status, doc = _request("POST", f"{base}/jobs", bad)
            assert status == 400
            assert "invalid job spec" in doc["error"]

    def test_empty_body_is_400(self, service):
        base, _ = service
        status, _doc = _request("POST", f"{base}/jobs", None)
        assert status == 400

    def test_backpressure_is_503(self):
        # A scheduler that is never started: queued jobs pile up and the
        # bounded queue rejects with 503 + reason.
        sched = Scheduler(workers=1, queue_size=1)
        server = make_server(sched, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            status, _ = _request("POST", f"{base}/jobs", FAST_TUNE)
            assert status == 202
            status, doc = _request("POST", f"{base}/jobs",
                                   dict(FAST_TUNE, grid=10))
            assert status == 503
            assert doc["rejected"] and "queue full" in doc["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)


class TestQueries:
    def test_job_listing(self, service):
        base, _ = service
        _request("POST", f"{base}/jobs", FAST_TUNE)
        _request("POST", f"{base}/jobs", dict(FAST_TUNE, grid=10))
        status, doc = _request("GET", f"{base}/jobs")
        assert status == 200 and len(doc["jobs"]) == 2
        assert all("result" not in j for j in doc["jobs"])

    def test_unknown_job_is_404(self, service):
        base, _ = service
        status, doc = _request("GET", f"{base}/jobs/ffffffffffffffffffffffff")
        assert status == 404 and "unknown job" in doc["error"]

    def test_unknown_endpoint_is_404(self, service):
        base, _ = service
        assert _request("GET", f"{base}/teapot")[0] == 404
        assert _request("POST", f"{base}/teapot", {})[0] == 404

    def test_healthz(self, service):
        base, _ = service
        status, doc = _request("GET", f"{base}/healthz")
        assert status == 200
        assert doc["ok"] is True
        assert doc["draining"] is False
        assert doc["queue_depth"] >= 0
        assert doc["running"] >= 0
        assert "checkpoint_lag_s" in doc

    def test_healthz_reports_node_identity(self, service):
        base, _ = service
        status, doc = _request("GET", f"{base}/healthz")
        assert status == 200
        # A stable node id (generated when REPRO_NODE_ID is unset) and
        # the last gateway-announced shard-map version (None until a
        # gateway talks to us).
        assert doc["node_id"]
        _, again = _request("GET", f"{base}/healthz")
        assert again["node_id"] == doc["node_id"]
        assert doc["shard_version"] is None

    def test_responses_carry_node_header(self, service):
        base, _ = service
        with urllib.request.urlopen(f"{base}/healthz", timeout=30.0) as resp:
            node_header = resp.headers["X-Repro-Node"]
            doc = json.loads(resp.read())
        assert node_header == doc["node_id"]

    def test_shard_version_adopted_from_gateway_header(self, service):
        base, _ = service
        req = urllib.request.Request(
            f"{base}/healthz", headers={"X-Repro-Shard-Version": "7"})
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            doc = json.loads(resp.read())
            assert doc["shard_version"] == 7
            assert resp.headers["X-Repro-Shard-Version"] == "7"
        # Sticky until the next announcement; malformed headers ignored.
        req = urllib.request.Request(
            f"{base}/healthz", headers={"X-Repro-Shard-Version": "bogus"})
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            assert json.loads(resp.read())["shard_version"] == 7

    def test_submit_adopts_gateway_trace_id(self, service):
        base, _ = service
        trace = "0123456789abcdef"
        data = json.dumps(FAST_TUNE).encode()
        req = urllib.request.Request(
            f"{base}/jobs", data=data, method="POST",
            headers={"Content-Type": "application/json",
                     "X-Repro-Trace-Id": trace})
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            doc = json.loads(resp.read())
        assert doc["trace_id"] == trace
        done = _poll(base, doc["id"])
        assert done["trace_id"] == trace

    def test_metrics_json_rollup(self, service):
        base, _ = service
        _, doc = _request("POST", f"{base}/jobs", FAST_TUNE)
        _poll(base, doc["id"])
        status, m = _request("GET", f"{base}/metrics?format=json")
        assert status == 200
        assert m["scheduler"]["completed"] >= 1
        assert set(m) == {"scheduler", "registry", "store", "substrate",
                          "resilience", "telemetry"}
        assert m["store"]["puts"] >= 1
        assert "states" in m["scheduler"]

    def test_metrics_prometheus_text(self, service):
        base, _ = service
        _, doc = _request("POST", f"{base}/jobs", FAST_TUNE)
        _poll(base, doc["id"])
        req = urllib.request.Request(f"{base}/metrics")
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            assert resp.status == 200
            ctype = resp.headers["Content-Type"]
            text = resp.read().decode()
        assert ctype.startswith("text/plain") and "version=0.0.4" in ctype
        assert "# TYPE repro_jobs_submitted_total counter" in text
        # Every non-comment line is `name{labels} value`.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name and (value == "+Inf" or float(value) is not None)

    def test_registry_endpoint(self, service):
        base, _ = service
        # A tuned job populates the registry through get_or_tune.
        _, doc = _request("POST", f"{base}/jobs",
                          dict(kind="tune", grid=16, threads=2))
        done = _poll(base, doc["id"])
        assert done["result"]["point"]["dw"] >= 4
        status, reg = _request("GET", f"{base}/registry")
        assert status == 200
        assert len(reg["plans"]) == 1
        assert reg["plans"][0]["feasible"]


class TestEventStream:
    def _stream(self, base, job_id, timeout=60.0):
        """Read the chunked NDJSON stream to completion."""
        events = []
        with urllib.request.urlopen(f"{base}/jobs/{job_id}/events",
                                    timeout=timeout) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            for raw in resp:
                line = raw.decode().strip()
                if line:
                    events.append(json.loads(line))
        return events

    def test_stream_follows_job_to_terminal_event(self, service):
        base, _ = service
        _, doc = _request("POST", f"{base}/jobs", FAST_SOLVE)
        events = self._stream(base, doc["id"])
        kinds = [e["kind"] for e in events]
        assert kinds[-1] == "end"
        assert "state" in kinds, f"no lifecycle events in {kinds}"
        assert "progress" in kinds, f"no solver progress in {kinds}"
        residuals = [e["residual"] for e in events if e["kind"] == "progress"]
        assert residuals == sorted(residuals, reverse=True) or residuals

    def test_stream_replays_after_completion(self, service):
        base, _ = service
        _, doc = _request("POST", f"{base}/jobs", FAST_SOLVE)
        _poll(base, doc["id"])
        events = self._stream(base, doc["id"])
        assert events and events[-1]["kind"] == "end"

    def test_stream_unknown_job_is_404(self, service):
        base, _ = service
        status, doc = _request(
            "GET", f"{base}/jobs/ffffffffffffffffffffffff/events")
        assert status == 404 and "unknown job" in doc["error"]


class TestConnectionHygiene:
    def test_stalled_client_is_timed_out(self, monkeypatch):
        """A connection that never sends a request is hung up on after
        the per-request timeout instead of pinning a handler thread."""
        monkeypatch.setenv("REPRO_HTTP_TIMEOUT", "1")
        sched = Scheduler(workers=1, queue_size=4)  # not started
        server = make_server(sched, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert server.request_timeout == 1.0
            with socket.create_connection(
                    ("127.0.0.1", server.server_port),
                    timeout=15.0) as sock:
                sock.settimeout(15.0)
                start = time.monotonic()
                assert sock.recv(1024) == b""  # server closed the socket
                assert time.monotonic() - start < 10.0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_backlog_is_bounded(self, service):
        base, _ = service
        # The listen backlog is finite (kernel-enforced), not the
        # unbounded socketserver default of 5-but-overridable-to-inf.
        from repro.service.server import ServiceServer

        assert ServiceServer.request_queue_size == 32


class TestCancel:
    def test_cancel_queued_job(self):
        sched = Scheduler(workers=1, queue_size=8)  # not started
        server = make_server(sched, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            _, doc = _request("POST", f"{base}/jobs", FAST_TUNE)
            status, out = _request("DELETE", f"{base}/jobs/{doc['id']}")
            assert status == 200 and out["state"] == "cancelled"
            # A second cancel is a conflict: the job is already terminal.
            status, out = _request("DELETE", f"{base}/jobs/{doc['id']}")
            assert status == 409
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_cancel_unknown_job_is_404(self, service):
        base, _ = service
        assert _request("DELETE", f"{base}/jobs/feedface")[0] == 404
