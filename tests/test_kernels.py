"""Kernel correctness: golden scalar reference, blocking equivalence,
boundary handling, periodic wrap-around."""

import numpy as np
import pytest

from repro.fdfd import (
    E_COMPONENTS,
    H_COMPONENTS,
    FieldState,
    Grid,
    clip_region,
    naive_sweep,
    random_coefficients,
    spatial_blocked_sweep,
    update_component,
    update_e,
    update_h,
)
from repro.fdfd.kernels import full_region, region_lups
from repro.fdfd.specs import SPECS

from conftest import random_state


# ---------------------------------------------------------------------------
# Golden reference: the twelve update equations written out longhand with
# explicit python loops, independently of the ComponentSpec table.  The
# differencing convention: H components read the driving E pair at +1 along
# the derivative axis (far - near), E components at -1 (near - far).
# Axis order of arrays is (z, y, x).
# ---------------------------------------------------------------------------

_REFERENCE = {
    # name: (read pair, shifted index offset (dz, dy, dx))
    "Hxy": (("Ezx", "Ezy"), (0, 1, 0)),
    "Hxz": (("Eyx", "Eyz"), (1, 0, 0)),
    "Hyz": (("Exy", "Exz"), (1, 0, 0)),
    "Hyx": (("Ezx", "Ezy"), (0, 0, 1)),
    "Hzx": (("Eyx", "Eyz"), (0, 0, 1)),
    "Hzy": (("Exy", "Exz"), (0, 1, 0)),
    "Exy": (("Hzx", "Hzy"), (0, -1, 0)),
    "Exz": (("Hyx", "Hyz"), (-1, 0, 0)),
    "Eyz": (("Hxy", "Hxz"), (-1, 0, 0)),
    "Eyx": (("Hzx", "Hzy"), (0, 0, -1)),
    "Ezx": (("Hyx", "Hyz"), (0, 0, -1)),
    "Ezy": (("Hxy", "Hxz"), (0, -1, 0)),
}


def _reference_half_step(fields, coeffs, names):
    """Scalar-loop reference for one half step on the interior."""
    grid = fields.grid
    nz, ny, nx = grid.shape
    for name in names:
        (ra, rb), (dz, dy, dx) = _REFERENCE[name]
        a = fields[ra]
        b = fields[rb]
        f = fields[name]
        t = coeffs.t(name)
        c = coeffs.c(name)
        src = coeffs.src(name)
        new = f.copy()
        is_h = name.startswith("H")
        for z in range(max(0, -dz), nz - max(0, dz)):
            for y in range(max(0, -dy), ny - max(0, dy)):
                for x in range(max(0, -dx), nx - max(0, dx)):
                    near = a[z, y, x] + b[z, y, x]
                    far = a[z + dz, y + dy, x + dx] + b[z + dz, y + dy, x + dx]
                    diff = (far - near) if is_h else (near - far)
                    val = t[z, y, x] * diff + c[z, y, x] * f[z, y, x]
                    if src is not None:
                        val += src[z, y, x]
                    new[z, y, x] = val
        f[...] = new


class TestGoldenReference:
    def test_one_step_matches_scalar_reference(self):
        grid = Grid(nz=5, ny=6, nx=4)
        coeffs = random_coefficients(grid, seed=3)
        fields = random_state(grid, seed=4)
        ref = fields.copy()

        update_h(fields, coeffs)
        update_e(fields, coeffs)

        _reference_half_step(ref, coeffs, H_COMPONENTS)
        _reference_half_step(ref, coeffs, E_COMPONENTS)

        assert fields.allclose(ref, rtol=1e-12, atol=1e-14)

    def test_two_steps_match_scalar_reference(self):
        grid = Grid(nz=4, ny=5, nx=4)
        coeffs = random_coefficients(grid, seed=9)
        fields = random_state(grid, seed=10)
        ref = fields.copy()

        naive_sweep(fields, coeffs, 2)
        for _ in range(2):
            _reference_half_step(ref, coeffs, H_COMPONENTS)
            _reference_half_step(ref, coeffs, E_COMPONENTS)

        assert fields.allclose(ref, rtol=1e-12, atol=1e-14)


class TestBoundaryHandling:
    def test_dirichlet_boundary_untouched(self, small_setup):
        fields, coeffs = small_setup
        grid = fields.grid
        # Boundary values along the derivative axis must never be written.
        before = {n: fields[n].copy() for n in fields}
        naive_sweep(fields, coeffs, 2)
        for name in fields:
            spec = SPECS[name]
            a = fields[name]
            b = before[name]
            if spec.shift > 0:  # H: last index along deriv axis is pinned
                idx = [slice(None)] * 3
                idx[spec.deriv_axis] = -1
                assert np.array_equal(a[tuple(idx)], b[tuple(idx)])
            else:  # E: first index pinned
                idx = [slice(None)] * 3
                idx[spec.deriv_axis] = 0
                assert np.array_equal(a[tuple(idx)], b[tuple(idx)])

    def test_clip_region_respects_shifts(self):
        grid = Grid(nz=10, ny=10, nx=10)
        h_spec = SPECS["Hxy"]  # +1 along y
        region = clip_region(grid, h_spec)
        assert region[1] == slice(0, 9)
        e_spec = SPECS["Exy"]  # -1 along y
        region = clip_region(grid, e_spec)
        assert region[1] == slice(1, 10)

    def test_clip_region_empty_returns_none(self):
        grid = Grid(nz=10, ny=10, nx=10)
        spec = SPECS["Hxy"]
        assert clip_region(grid, spec, y=(9, 10)) is None
        assert clip_region(grid, spec, y=(5, 5)) is None
        assert clip_region(grid, spec, y=(-3, 0)) is None

    def test_clip_region_periodic_full_axis(self):
        grid = Grid(nz=10, ny=10, nx=10, periodic=(False, True, False))
        region = clip_region(grid, SPECS["Hxy"])
        assert region[1] == slice(0, 10)

    def test_region_lups(self):
        assert region_lups((slice(0, 3), slice(1, 5), slice(2, 4))) == 3 * 4 * 2


class TestBlockingEquivalence:
    """Any spatial block decomposition must reproduce the naive sweep."""

    @pytest.mark.parametrize("block_y,block_z", [(1, 1), (2, 3), (3, None), (100, 100)])
    def test_spatial_blocking_equals_naive(self, block_y, block_z):
        grid = Grid(nz=7, ny=8, nx=6)
        coeffs = random_coefficients(grid, seed=21)
        f1 = random_state(grid, seed=22)
        f2 = f1.copy()
        naive_sweep(f1, coeffs, 3)
        spatial_blocked_sweep(f2, coeffs, 3, block_y=block_y, block_z=block_z)
        assert f1.allclose(f2, rtol=1e-12, atol=1e-14)

    def test_component_update_order_within_half_step_is_irrelevant(self):
        grid = Grid(nz=6, ny=6, nx=6)
        coeffs = random_coefficients(grid, seed=31)
        f1 = random_state(grid, seed=32)
        f2 = f1.copy()
        update_h(f1, coeffs)
        for name in reversed(H_COMPONENTS):
            region = clip_region(grid, SPECS[name])
            update_component(name, f2, coeffs, region)
        assert f1.allclose(f2, rtol=0, atol=0)

    def test_invalid_block_sizes_rejected(self, small_setup):
        fields, coeffs = small_setup
        with pytest.raises(ValueError):
            spatial_blocked_sweep(fields, coeffs, 1, block_y=0)
        with pytest.raises(ValueError):
            naive_sweep(fields, coeffs, -1)


class TestPeriodicBoundaries:
    def test_periodic_x_wraps(self):
        grid = Grid(nz=6, ny=6, nx=6, periodic=(False, False, True))
        coeffs = random_coefficients(grid, seed=41)
        fields = random_state(grid, seed=42)
        # Hyx differences along x with +1: at x = nx-1 the far read wraps
        # to x = 0.  Compute by hand for one cell.
        spec = SPECS["Hyx"]
        a = fields[spec.reads[0]].copy()
        b = fields[spec.reads[1]].copy()
        f0 = fields["Hyx"][2, 3, 5]
        t = coeffs.t("Hyx")[2, 3, 5]
        c = coeffs.c("Hyx")[2, 3, 5]
        expected = t * ((a[2, 3, 0] + b[2, 3, 0]) - (a[2, 3, 5] + b[2, 3, 5])) + c * f0
        update_component("Hyx", fields, coeffs, full_region(grid))
        assert fields["Hyx"][2, 3, 5] == pytest.approx(expected)

    def test_periodic_equals_manual_ghost_padding(self):
        """A periodic sweep equals a Dirichlet sweep on a domain padded
        with explicitly mirrored ghost planes, compared on the interior."""
        nz, ny, nx = 5, 6, 7
        grid_p = Grid(nz=nz, ny=ny, nx=nx, periodic=(False, False, True))
        coeffs_p = random_coefficients(grid_p, seed=51)
        fp = random_state(grid_p, seed=52)
        before = fp.copy()
        update_h(fp, coeffs_p)
        update_e(fp, coeffs_p)

        # Padded domain: one extra x plane replicating x=0 at the end.
        grid_d = Grid(nz=nz, ny=ny, nx=nx + 1)
        arrays = {}
        for name in before:
            arr = np.zeros(grid_d.shape, dtype=np.complex128)
            arr[:, :, :nx] = before[name]
            arr[:, :, nx] = before[name][:, :, 0]
            arrays[name] = arr
        fd = FieldState(grid_d, arrays)
        coeff_arrays = {}
        for cname, carr in coeffs_p.arrays.items():
            arr = np.zeros(grid_d.shape, dtype=np.complex128)
            arr[:, :, :nx] = carr
            arr[:, :, nx] = carr[:, :, 0]
            coeff_arrays[cname] = arr
        from repro.fdfd.coefficients import CoefficientSet

        coeffs_d = CoefficientSet(grid=grid_d, omega=1.0, tau=0.1, arrays=coeff_arrays)
        update_h(fd, coeffs_d)
        update_e(fd, coeffs_d)

        # x-shifted H components wrap at x = nx-1; compare those cells.
        for name in ("Hyx", "Hzx"):
            assert np.allclose(
                fp[name][:, :, nx - 1], fd[name][:, :, nx - 1], rtol=1e-12
            )
        # Interior away from the pad behaves identically everywhere.
        for name in before:
            assert np.allclose(fp[name][:, :, 1 : nx - 1], fd[name][:, :, 1 : nx - 1], rtol=1e-12)
