"""Tests for the persistent plan registry and the result store."""

import json
import os

from repro.machine import HASWELL_EP
from repro.service import PlanRegistry, ResultStore
from repro.service.registry import REGISTRY_VERSION
from repro.service.store import STORE_VERSION


def _tmp_has_no_tempfiles(root):
    return not [f for f in os.listdir(root) if f.endswith(".tmp")]


class TestRegistryKeys:
    def test_key_is_deterministic(self):
        k1 = PlanRegistry.key(HASWELL_EP, 64, 4)
        k2 = PlanRegistry.key(HASWELL_EP, 64, 4)
        assert k1 == k2

    def test_key_varies_with_inputs(self):
        base = PlanRegistry.key(HASWELL_EP, 64, 4)
        assert PlanRegistry.key(HASWELL_EP, 64, 8) != base
        assert PlanRegistry.key(HASWELL_EP, 96, 4) != base
        assert PlanRegistry.key(HASWELL_EP, 64, 4, tg_size=2) != base
        assert PlanRegistry.key(HASWELL_EP, 64, 4, variant="spatial") != base

    def test_key_varies_with_machine(self):
        slow = HASWELL_EP.with_bandwidth(30.0)
        assert (PlanRegistry.key(slow, 64, 4)
                != PlanRegistry.key(HASWELL_EP, 64, 4))


class TestRegistryGetOrTune:
    def test_miss_tunes_then_hits(self):
        reg = PlanRegistry()
        point, hit = reg.get_or_tune(HASWELL_EP, 16, 2)
        assert not hit and point is not None
        point2, hit2 = reg.get_or_tune(HASWELL_EP, 16, 2)
        assert hit2
        assert (point2.dw, point2.bz) == (point.dw, point.bz)
        c = reg.counters()
        assert c["hits"] == 1 and c["misses"] == 1 and c["stores"] == 1
        assert c["entries"] == 1

    def test_infeasible_point_is_memoized(self):
        # grid 8 < MIN_X_CHUNK: tuner returns None; the negative result
        # must be cached too (no re-tuning on every request).
        reg = PlanRegistry()
        point, hit = reg.get_or_tune(HASWELL_EP, 8, 2)
        assert point is None and not hit
        point2, hit2 = reg.get_or_tune(HASWELL_EP, 8, 2)
        assert point2 is None and hit2
        assert reg.counters()["stores"] == 1

    def test_persistence_across_instances(self, tmp_path):
        root = str(tmp_path)
        reg = PlanRegistry(root)
        point, hit = reg.get_or_tune(HASWELL_EP, 16, 2)
        assert not hit and point is not None
        assert _tmp_has_no_tempfiles(root)

        fresh = PlanRegistry(root)  # a restarted service
        point2, hit2 = fresh.get_or_tune(HASWELL_EP, 16, 2)
        assert hit2 and (point2.dw, point2.bz) == (point.dw, point.bz)
        assert fresh.counters()["misses"] == 0

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        root = str(tmp_path)
        key = PlanRegistry.key(HASWELL_EP, 16, 2)
        with open(os.path.join(root, f"plan-{key}.json"), "w") as f:
            f.write('{"version":')  # torn write from a foreign process
        reg = PlanRegistry(root)
        assert reg.lookup(key) is None

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        root = str(tmp_path)
        key = PlanRegistry.key(HASWELL_EP, 16, 2)
        with open(os.path.join(root, f"plan-{key}.json"), "w") as f:
            json.dump({"version": REGISTRY_VERSION + 1, "key": key,
                       "point": {"bogus": True}, "meta": {}}, f)
        assert PlanRegistry(root).lookup(key) is None

    def test_concurrent_requests_tune_once(self):
        """Single-flight: N workers racing on one fresh key must produce
        exactly one tuning (one miss, one store) -- the campaign's
        'compile once, serve many' guarantee under concurrency."""
        import threading

        reg = PlanRegistry()
        barrier = threading.Barrier(4)
        results = []

        def ask():
            barrier.wait()
            results.append(reg.get_or_tune(HASWELL_EP, 16, 2))

        threads = [threading.Thread(target=ask) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert len(results) == 4
        plans = {(p.dw, p.bz) for p, _hit in results}
        assert len(plans) == 1  # everyone got the same winner
        c = reg.counters()
        assert c["misses"] == 1 and c["stores"] == 1 and c["hits"] == 3

    def test_merge_counters(self):
        reg = PlanRegistry()
        reg.merge_counters({"hits": 3, "misses": 1, "stores": 1})
        c = reg.counters()
        assert c["hits"] == 3 and c["misses"] == 1 and c["stores"] == 1

    def test_entries_listing(self, tmp_path):
        reg = PlanRegistry(str(tmp_path))
        reg.get_or_tune(HASWELL_EP, 16, 2)
        reg.get_or_tune(HASWELL_EP, 8, 2)  # infeasible entry
        entries = PlanRegistry(str(tmp_path)).entries()  # read from disk
        assert len(entries) == 2
        by_grid = {e["meta"]["grid"]: e for e in entries}
        good = by_grid[16]
        assert good["feasible"] and good["point"]["dw"] >= 4
        assert good["point"]["mlups"] > 0
        assert not by_grid[8]["feasible"] and by_grid[8]["point"] is None


class TestResultStore:
    def test_roundtrip_and_counters(self):
        store = ResultStore()
        assert store.get("abc") is None
        store.put("abc", {"kind": "solve", "x": 1.5})
        assert store.get("abc") == {"kind": "solve", "x": 1.5}
        assert "abc" in store and len(store) == 1
        c = store.counters()
        assert c == {"hits": 1, "misses": 1, "puts": 1,
                     "replica_puts": 0, "entries": 1}

    def test_floats_roundtrip_exactly(self, tmp_path):
        # Served results must compare equal to fresh executions; JSON
        # float repr round-trips IEEE doubles exactly.
        store = ResultStore(str(tmp_path))
        payload = {"residual": 1.2345678901234567e-11, "absorbed": 0.1 + 0.2}
        store.put("job", payload)
        assert ResultStore(str(tmp_path)).get("job") == payload

    def test_persistence_across_instances(self, tmp_path):
        root = str(tmp_path)
        ResultStore(root).put("deadbeef", {"ok": True})
        assert _tmp_has_no_tempfiles(root)
        fresh = ResultStore(root)
        assert fresh.get("deadbeef") == {"ok": True}
        assert "deadbeef" in fresh
        assert fresh.ids() == ["deadbeef"]

    def test_corrupt_and_mismatched_files_miss(self, tmp_path):
        root = str(tmp_path)
        with open(os.path.join(root, "result-torn.json"), "w") as f:
            f.write('{"version"')
        with open(os.path.join(root, "result-old.json"), "w") as f:
            json.dump({"version": STORE_VERSION + 1, "id": "old",
                       "result": {}}, f)
        store = ResultStore(root)
        assert store.get("torn") is None
        assert store.get("old") is None
        assert store.counters()["misses"] == 2
