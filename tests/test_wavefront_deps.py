"""Tests for the wavefront traversal and the dependency checker,
including adversarial negative cases (the checker must actually catch
broken schedules)."""

import numpy as np
import pytest

from repro.core import (
    DependencyChecker,
    DependencyError,
    TilingPlan,
    level_offsets,
    tile_row_jobs,
    validate_jobs,
    wavefront_width,
)
from repro.core.diamond import enumerate_tiles
from repro.core.wavefront import RowJob


def naive_jobs(ny, nz, timesteps):
    """The trivially valid schedule: full half-step sweeps in time order."""
    for tau in range(2 * timesteps):
        yield RowJob(tau, 0, ny, 0, nz)


class TestWavefrontTraversal:
    def test_level_offsets_alternate(self):
        tiles = enumerate_tiles(ny=24, timesteps=12, dw=4)
        tile = next(t for t in tiles.values() if t.is_interior)
        offs = level_offsets(tile)
        assert offs[0] == 0
        # Offsets are nondecreasing, step 1 exactly at H levels.
        for k in range(1, len(offs)):
            expected = 1 if tile.rows[k].is_h else 0
            assert offs[k] - offs[k - 1] == expected

    def test_wavefront_width_formula(self):
        # W_w = D_w + B_z - 1 (the paper's example: Dw=4, Bz=4 -> Ww=7).
        assert wavefront_width(4, 4) == 7
        assert wavefront_width(8, 1) == 8
        with pytest.raises(ValueError):
            wavefront_width(4, 0)

    @pytest.mark.parametrize("bz", [1, 2, 3, 5, 100])
    def test_jobs_cover_tile_exactly(self, bz):
        tiles = enumerate_tiles(ny=24, timesteps=12, dw=4)
        tile = next(t for t in tiles.values() if t.is_interior)
        nz = 11
        covered = {}
        for job in tile_row_jobs(tile, nz=nz, bz=bz):
            key = job.tau
            covered.setdefault(key, []).append((job.z_lo, job.z_hi))
        assert set(covered) == {r.tau for r in tile.rows}
        for tau, spans in covered.items():
            spans.sort()
            # Contiguous, non-overlapping, covering [0, nz).
            assert spans[0][0] == 0 and spans[-1][1] == nz
            for (a, b), (c, d) in zip(spans, spans[1:]):
                assert b == c

    def test_jobs_z_chunks_bounded_by_bz(self):
        tiles = enumerate_tiles(ny=24, timesteps=12, dw=4)
        tile = next(t for t in tiles.values() if t.is_interior)
        for job in tile_row_jobs(tile, nz=16, bz=3):
            assert job.z_hi - job.z_lo <= 3

    def test_invalid_args(self):
        tiles = enumerate_tiles(ny=8, timesteps=4, dw=2)
        tile = next(iter(tiles.values()))
        with pytest.raises(ValueError):
            list(tile_row_jobs(tile, nz=8, bz=0))
        with pytest.raises(ValueError):
            list(tile_row_jobs(tile, nz=0, bz=1))


class TestCheckerAcceptsValid:
    def test_naive_schedule_valid(self):
        validate_jobs(naive_jobs(6, 5, 4), 6, 5, timesteps=4)

    def test_row_by_row_schedule_valid(self):
        def jobs():
            for tau in range(8):
                for y in range(6):
                    yield RowJob(tau, y, y + 1, 0, 5)

        validate_jobs(jobs(), 6, 5, timesteps=4)

    @pytest.mark.parametrize("dw,bz", [(2, 1), (4, 1), (4, 3), (6, 2), (8, 5)])
    def test_plan_fifo_valid(self, dw, bz):
        plan = TilingPlan.build(ny=13, nz=9, timesteps=7, dw=dw, bz=bz)
        plan.validate()

    @pytest.mark.parametrize("seed", range(5))
    def test_plan_random_topological_orders_valid(self, seed):
        plan = TilingPlan.build(ny=12, nz=8, timesteps=6, dw=4, bz=2)
        rng = np.random.default_rng(seed)
        plan.validate(plan.random_topological_order(rng))


class TestCheckerRejectsInvalid:
    """Negative tests: every class of violation must be caught."""

    def test_skipping_a_half_step(self):
        checker = DependencyChecker(4, 4)
        checker.execute(RowJob(0, 0, 4, 0, 4))  # H step 0
        with pytest.raises(DependencyError):
            checker.execute(RowJob(2, 0, 4, 0, 4))  # H again without E

    def test_e_before_h(self):
        checker = DependencyChecker(4, 4)
        with pytest.raises(DependencyError):
            checker.execute(RowJob(1, 0, 4, 0, 4))

    def test_y_neighbour_not_ready_for_h(self):
        """H at row y needs E at y+1 from the previous half step."""
        checker = DependencyChecker(4, 4)
        checker.execute(RowJob(0, 0, 4, 0, 4))  # H step 0, all rows
        checker.execute(RowJob(1, 0, 2, 0, 4))  # E step 0, rows 0-1 only
        checker.execute(RowJob(2, 0, 1, 0, 4))  # H row 0: reads E rows 0,1 -- ok
        with pytest.raises(DependencyError):
            checker.execute(RowJob(2, 1, 2, 0, 4))  # H row 1 needs E row 2

    def test_h_row_at_top_boundary_may_advance(self):
        """The topmost H row has no y+1 read and may run flush."""
        checker = DependencyChecker(4, 4)
        checker.execute(RowJob(0, 0, 4, 0, 4))
        checker.execute(RowJob(1, 3, 4, 0, 4))  # E only at the top row
        checker.execute(RowJob(2, 3, 4, 0, 4))  # H at y = ny-1: fine

    def test_e_row_at_bottom_boundary_may_advance(self):
        checker = DependencyChecker(4, 4)
        checker.execute(RowJob(0, 0, 4, 0, 4))
        checker.execute(RowJob(1, 0, 2, 0, 4))
        checker.execute(RowJob(2, 0, 1, 0, 4))
        checker.execute(RowJob(3, 0, 1, 0, 4))  # E at y=0: no y-1 read

    def test_e_row_interior_must_wait_for_h_below(self):
        checker = DependencyChecker(4, 4)
        checker.execute(RowJob(0, 0, 4, 0, 4))
        checker.execute(RowJob(1, 0, 4, 0, 4))
        checker.execute(RowJob(2, 3, 4, 0, 4))
        with pytest.raises(DependencyError):
            checker.execute(RowJob(3, 3, 4, 0, 4))  # needs H(2) at y=2

    def test_z_neighbour_not_ready(self):
        """The wavefront constraint: H may only trail E along z."""
        checker = DependencyChecker(2, 6)
        checker.execute(RowJob(0, 0, 2, 0, 6))
        checker.execute(RowJob(1, 0, 2, 0, 3))  # E of step 1: planes 0-2
        # H of step 1 through plane 2 needs E at plane 3.
        with pytest.raises(DependencyError):
            checker.execute(RowJob(2, 0, 2, 0, 3))
        # Through plane 1 it is fine (far read at plane 2 is ready).
        checker.execute(RowJob(2, 0, 2, 0, 2))

    def test_e_may_run_flush_with_h_along_z(self):
        checker = DependencyChecker(2, 6)
        checker.execute(RowJob(0, 0, 2, 0, 3))  # H step 0 on planes 0-2
        checker.execute(RowJob(1, 0, 2, 0, 3))  # E step 1 flush: reads z-1

    def test_double_execution_rejected(self):
        checker = DependencyChecker(4, 4)
        checker.execute(RowJob(0, 0, 4, 0, 4))
        with pytest.raises(DependencyError):
            checker.execute(RowJob(0, 0, 4, 0, 4))

    def test_out_of_bounds_rejected(self):
        checker = DependencyChecker(4, 4)
        with pytest.raises(DependencyError):
            checker.execute(RowJob(0, 0, 5, 0, 4))
        with pytest.raises(DependencyError):
            checker.execute(RowJob(0, 2, 2, 0, 4))
        with pytest.raises(DependencyError):
            checker.execute(RowJob(-1, 0, 4, 0, 4))

    def test_incomplete_coverage_detected(self):
        with pytest.raises(DependencyError):
            validate_jobs(naive_jobs(4, 4, 2), 4, 4, timesteps=3)

    def test_shuffled_tile_order_violating_dag_caught(self):
        """Executing a band-2 tile before its band-1 predecessor fails."""
        plan = TilingPlan.build(ny=12, nz=6, timesteps=6, dw=4, bz=1)
        order = plan.fifo_order()
        # Swap a dependent pair: find (idx, succ) adjacent in DAG.
        idx = next(i for i in order if plan.succs[i])
        succ = plan.succs[idx][0]
        bad = [succ if o == idx else (idx if o == succ else o) for o in order]
        with pytest.raises(DependencyError):
            plan.validate(bad)
