"""End-to-end wall-clock benchmark of the machine substrate itself.

The substrate optimization contract is "same numbers, much faster": the
batched/native replay engines, stream memoization and plan caching must
leave every measured figure value bit-identical while cutting the time
to produce it.  This benchmark times the *fixed Fig. 6 point* -- a full
MWD auto-tune at 384^3 / 18 threads, the most expensive single point of
the thread-scaling figure -- once through the seed configuration (the
``"reference"`` per-access engine) and once through the optimized path,
asserts the tuned points are identical, and records the speedup as JSON
under ``benchmarks/output/substrate_speed.json``.

Runs standalone (``python benchmarks/bench_substrate_speed.py``) or as a
pytest test; CI runs the pytest form as the speed smoke.
"""

from __future__ import annotations

import json
import os
import time

FIXED_GRID = 384
FIXED_THREADS = 18
#: Acceptance floor for seed/optimized wall-clock on the fixed point
#: (the observed ratio is ~10x; 5x leaves room for machine noise).
MIN_SPEEDUP = 5.0


def clear_substrate_caches() -> None:
    """Drop every memoization layer so a timing run starts cold."""
    from repro.core import autotuner, diamond, plan
    from repro.machine import measure, streams

    autotuner.tune_tiled.cache_clear()
    autotuner.tune_spatial.cache_clear()
    measure._measure_tiled_cached.cache_clear()
    measure._measure_sweep_cached.cache_clear()
    diamond._enumerate_tiles_cached.cache_clear()
    plan._tile_dag.cache_clear()
    streams._RAW_SEGMENT_CACHE.clear()


def time_fixed_point(engine: str):
    """Cold wall-clock of the fixed Fig. 6 point under one replay engine."""
    from repro.core.autotuner import tune_tiled
    from repro.machine import HASWELL_EP, SUBSTRATE_COUNTERS

    clear_substrate_caches()
    SUBSTRATE_COUNTERS.reset()
    prev = {k: os.environ.get(k) for k in ("REPRO_STREAM_ENGINE", "REPRO_TUNE_CACHE")}
    os.environ["REPRO_STREAM_ENGINE"] = engine
    # The persisted tuning cache would satisfy the second run from disk
    # and time nothing; this benchmark measures the replay engines.
    os.environ.pop("REPRO_TUNE_CACHE", None)
    try:
        t0 = time.perf_counter()
        point = tune_tiled(HASWELL_EP, FIXED_GRID, FIXED_THREADS)
        seconds = time.perf_counter() - t0
    finally:
        for k, v in prev.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    return seconds, point, SUBSTRATE_COUNTERS.snapshot()


def collect() -> dict:
    """Seed-vs-optimized timings of the fixed point, plus telemetry."""
    seed_seconds, seed_point, _ = time_fixed_point("reference")
    fast_seconds, fast_point, counters = time_fixed_point("auto")
    return {
        "fixed_point": {"grid_n": FIXED_GRID, "threads": FIXED_THREADS,
                        "variant": "MWD (Fig. 6 rightmost point)"},
        "seed_seconds": seed_seconds,
        "fast_seconds": fast_seconds,
        "speedup": seed_seconds / fast_seconds if fast_seconds else 0.0,
        "identical_result": seed_point == fast_point,
        "tuned": seed_point.describe() if seed_point else None,
        "substrate_counters": counters,
    }


def test_substrate_speed(output_dir):
    rows = collect()
    path = os.path.join(output_dir, "substrate_speed.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(rows, f, indent=2)
    print(f"\n[substrate speed: seed {rows['seed_seconds']:.2f}s -> "
          f"fast {rows['fast_seconds']:.2f}s = {rows['speedup']:.1f}x; "
          f"saved -> {path}]")
    assert rows["identical_result"], "optimized engines changed the tuned point"
    assert rows["speedup"] >= MIN_SPEEDUP, (
        f"substrate speedup {rows['speedup']:.2f}x below the "
        f"{MIN_SPEEDUP:.0f}x acceptance floor"
    )


def main() -> int:
    rows = collect()
    print(json.dumps(rows, indent=2))
    return 0 if rows["identical_result"] and rows["speedup"] >= MIN_SPEEDUP else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
