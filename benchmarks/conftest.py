"""Shared fixtures for the benchmark harness.

Every figure benchmark runs its generator exactly once (the generators
are deterministic simulations, not noisy timings), saves the rows as JSON
under ``benchmarks/output/`` and prints the rendered table so a run of
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
exhibits end to end.
"""

from __future__ import annotations

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

# Persist auto-tuner results between benchmark runs (the figure drivers
# revisit the same tuned points; see "Parallel evaluation and result
# persistence" in repro/core/autotuner.py).  An explicit REPRO_TUNE_CACHE
# setting -- including an empty string to disable -- wins.
os.environ.setdefault(
    "REPRO_TUNE_CACHE", os.path.join(OUTPUT_DIR, "tune_cache")
)
# Fan tuning candidates over all cores; the merged winner is bit-identical
# to the serial search, so the figure JSONs do not depend on this.
os.environ.setdefault("REPRO_TUNE_WORKERS", str(os.cpu_count() or 1))


@pytest.fixture(scope="session")
def output_dir() -> str:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def substrate_telemetry():
    """Reset the substrate counters around a figure run and print what the
    replay engines did (memo hit rate, accesses) once it finishes."""
    from repro.machine import SUBSTRATE_COUNTERS

    SUBSTRATE_COUNTERS.reset()
    yield SUBSTRATE_COUNTERS
    snap = SUBSTRATE_COUNTERS.snapshot()
    if snap["jobs_replayed"]:
        print(f"[substrate: {snap['accesses_replayed']} accesses in "
              f"{snap['jobs_replayed']} job batches, stream memo rate "
              f"{snap['stream_memo_rate']:.1%}]")


@pytest.fixture
def run_once(benchmark):
    """Run a generator exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def by_variant(rows, variant, x_key):
    """Index figure rows: variant -> {x: row}."""
    return {r[x_key]: r for r in rows if r.get("variant") == variant and "MLUPs" in r}
