"""Shared fixtures for the benchmark harness.

Every figure benchmark runs its generator exactly once (the generators
are deterministic simulations, not noisy timings), saves the rows as JSON
under ``benchmarks/output/`` and prints the rendered table so a run of
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
exhibits end to end.
"""

from __future__ import annotations

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def output_dir() -> str:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def run_once(benchmark):
    """Run a generator exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def by_variant(rows, variant, x_key):
    """Index figure rows: variant -> {x: row}."""
    return {r[x_key]: r for r in rows if r.get("variant") == variant and "MLUPs" in r}
