"""Fig. 8 reproduction: impact of the thread-group size (cache block
sharing) on performance (8a), tuned diamond width (8b), memory bandwidth
(8c) and code balance / transfer volume (8d), across grid sizes."""

import os

from conftest import by_variant
from repro.experiments import fig8_tg_size, format_table, save_json
from repro.machine import HASWELL_EP


def test_fig8_tg_size(run_once, output_dir, substrate_telemetry):
    rows = run_once(fig8_tg_size)
    print()
    print(format_table(rows, title="Fig. 8: thread-group size sweep on the full socket"))
    save_json(rows, os.path.join(output_dir, "fig8.json"))

    variants = {s: by_variant(rows, f"{s}WD", "grid") for s in (1, 2, 6, 9, 18)}
    large = [g for g in variants[18] if g >= 256]

    # 8a: the sharing variants (6/9/18WD) decouple at large grids and
    # cluster well above 1WD.
    for g in large:
        for s in (6, 9, 18):
            assert variants[s][g]["MLUPs"] > 1.3 * variants[1][g]["MLUPs"], (s, g)

    # 8b: larger groups afford larger diamonds at large grids.
    for g in large:
        assert variants[18][g]["Dw"] >= variants[6][g]["Dw"] >= variants[1][g]["Dw"], g

    # 8c/8d: larger groups need less bandwidth and move fewer bytes.
    for g in large:
        assert variants[18][g]["GB/s"] < variants[1][g]["GB/s"], g
        assert variants[18][g]["B/LUP"] < variants[1][g]["B/LUP"], g

    # Paper: 18WD saves >= 38% of the available memory bandwidth at all
    # grid sizes (Section IV-D).  Under the strict-LRU cache model the
    # tuner cannot afford the paper's Dw=16 at the largest grids (C_s
    # would approach the whole 45 MiB L3), so the saving there drops to
    # ~17-28%; at small-to-mid grids the >= 38% claim reproduces (51-73%).
    # Recorded as a known deviation in EXPERIMENTS.md.
    savings = {g: 1.0 - r["GB/s"] / HASWELL_EP.bandwidth_gbs
               for g, r in variants[18].items()}
    assert all(s >= 0.15 for s in savings.values()), savings
    strong = [s for s in savings.values() if s >= 0.38]
    assert len(strong) >= len(savings) / 2, savings
