"""CI smoke test for the batched campaign engine, end to end.

Pre-stores one wavelength by running its per-point job, then submits a
batch JobSpec covering that point plus two new wavelengths through a
real :class:`~repro.service.Scheduler`, and asserts the campaign
contract:

* **dedup**: the already-stored point is served from the store
  (``dedup_hits == 1``), only the two missing wavelengths are solved;
* **bit-identity**: every fanned-out per-point document equals a direct
  per-point ``run_job`` of the same spec, field for field (including
  the SHA-256 field checksum);
* **store fan-out**: after the batch, each wavelength's per-point job id
  resolves in the result store, so later per-point submissions never
  re-execute.

Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_campaign.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASE = {"preset": "absorber", "grid": 10, "tol": 1e-4, "max_steps": 60,
        "threads": 2}
WAVELENGTHS = (10.0, 11.0, 12.0)
PRESTORED = WAVELENGTHS[0]


def main() -> int:
    from repro.service import JobSpec, ResultStore, Scheduler, run_job

    batch_spec = JobSpec.from_dict(
        dict(BASE, kind="batch", wavelengths=list(WAVELENGTHS)))
    point_specs = {w: batch_spec.point_spec(w) for w in WAVELENGTHS}

    # Direct per-point runs: the bit-identity reference for every point,
    # and the pre-stored document for the duplicate one.
    direct = {w: run_job(point_specs[w]) for w in WAVELENGTHS}

    store = ResultStore()
    store.put(point_specs[PRESTORED].job_id, direct[PRESTORED])

    sched = Scheduler(workers=2, store=store, mode="thread").start()
    try:
        job = sched.wait(sched.submit(batch_spec).id, timeout=120.0)
    finally:
        sched.stop()
    assert job.state == "done", f"batch job failed: {job.error}"

    result = job.result
    assert result["kind"] == "batch" and result["batch_width"] == 3, result
    assert result["dedup_hits"] == 1, (
        f"expected the pre-stored point to dedup: {result['dedup_hits']}")
    assert result["solved"] == 2 and result["failed"] == 0, result

    for point in result["points"]:
        w = point["wavelength"]
        assert point["from_store"] == (w == PRESTORED), point
        assert point["result"] == direct[w], (
            f"fanned-out result for wavelength {w} is not bit-identical")
        stored = store.get(point["id"])
        assert stored == direct[w], (
            f"store fan-out for wavelength {w} is not bit-identical")

    checksums = {p["wavelength"]: p["result"]["checksum"]
                 for p in result["points"]}
    print("campaign smoke: batch of 3 wavelengths, 1 deduplicated from the "
          "store, 2 solved; all points bit-identical to direct per-point "
          f"runs (checksums {sorted(checksums.values())[0][:12]}..., ...)")
    return 0


def test_campaign_smoke():
    """Pytest entry point for the CI campaign-smoke job."""
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
