"""Fig. 5 reproduction: cache-block-size and code-balance models vs the
measured (LRU-simulated) code balance of single-threaded wavefront
diamond blocking at grid 480^3, for D_w in {4, 8, 12, 16} and
B_z in {1, 6, 9}."""

import os

from repro.experiments import fig5_cache_model, format_table, save_json


def test_fig5_cache_model(run_once, output_dir, substrate_telemetry):
    rows = run_once(fig5_cache_model)
    print()
    print(format_table(rows, title="Fig. 5: cache model vs measured code balance (1WD, 1 thread, 480^3)"))
    save_json(rows, os.path.join(output_dir, "fig5.json"))

    fitting = [r for r in rows if r["fits_usable_L3"]]
    overflowing = [r for r in rows if not r["fits_usable_L3"]]
    assert fitting and overflowing

    # Shape 1: while the tile fits the usable L3, the measurement tracks
    # Eq. 12 (within 15%, typically below it thanks to inter-band reuse).
    for r in fitting:
        assert r["Bc_measured"] <= 1.15 * r["Bc_model"], r

    # Shape 2: once the tile overflows, the measurement diverges upward --
    # gradually near the line, strongly far beyond it (as in Fig. 5).
    budget_mib = 22.5
    for r in overflowing:
        assert r["Bc_measured"] > 1.15 * r["Bc_model"], r
        if r["Cs_model_MiB"] > 1.6 * budget_mib:
            assert r["Bc_measured"] > 1.5 * r["Bc_model"], r

    # Shape 3: smaller B_z admits larger diamonds within the budget
    # (Section III-C's argument for multi-dimensional parallelism).
    max_fitting_dw = {}
    for r in fitting:
        max_fitting_dw[r["Bz"]] = max(max_fitting_dw.get(r["Bz"], 0), r["Dw"])
    assert max_fitting_dw[1] >= max_fitting_dw[6] >= max_fitting_dw[9]

    # Shape 4: C_s grows with both D_w and B_z (Eq. 11 monotonicity).
    for bz in (1, 6, 9):
        series = [r["Cs_model_MiB"] for r in rows if r["Bz"] == bz]
        assert series == sorted(series)
