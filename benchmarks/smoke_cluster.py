"""CI smoke test for the distributed runtime, end to end.

Runs a ``kind="distributed"`` solve across real rank processes at three
layouts and asserts the cluster contract:

* **real processes**: a 2-rank and a 4-rank solve each report as many
  distinct child pids as the layout has ranks;
* **bit-identity**: every distributed result document equals an
  in-process ``run_job`` of the single-domain spec, field for field
  (SHA-256 field checksum included);
* **halo accounting**: the measured per-axis halo bytes equal the
  communication cost model's ``step_bytes_by_axis`` figure exactly;
* **rank-crash resume**: a seeded kill of one rank mid-solve retries
  through a process-mode :class:`~repro.service.Scheduler`, resumes
  from the group checkpoint, and reproduces the clean bytes.

Writes throughput-vs-ranks and halo-traffic numbers to
``benchmarks/output/BENCH_cluster.json``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_cluster.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")
BENCH_PATH = os.path.join(OUT_DIR, "BENCH_cluster.json")

GRID = 10          # Grid(20, 10, 10): small enough for CI, 4-rank feasible
MAX_STEPS = 120    # 6 convergence blocks at the fixed cadence of 20
BASE = {"preset": "absorber", "grid": GRID, "tol": 1e-12,
        "max_steps": MAX_STEPS, "threads": 2}


def check_bit_identity() -> tuple[str, list]:
    from repro.cluster import RankLayout, step_bytes_by_axis
    from repro.cluster.runtime import run_distributed
    from repro.fdfd import Grid, PlaneWaveSource, PMLSpec, THIIMSolver
    from repro.fdfd.presets import preset_scene
    from repro.service import JobSpec, run_job

    single = run_job(JobSpec.from_dict(dict(BASE, kind="solve")))
    rows = []
    for ranks, dims in (("1x1x1", (1, 1, 1)), ("2x1x1", (2, 1, 1)),
                        ("2x2x1", (2, 2, 1))):
        spec = JobSpec.from_dict(dict(BASE, kind="distributed", ranks=ranks))
        t0 = time.perf_counter()
        doc = run_job(spec)
        elapsed = time.perf_counter() - t0
        assert doc == single, f"{ranks}: result differs from single-domain"

        # Re-run through the library API for the pid and halo witnesses
        # (the job path stores the same bytes; ``info`` adds provenance).
        nz = 2 * GRID
        grid = Grid(nz=nz, ny=GRID, nx=GRID, periodic=(False, True, True))
        solver = THIIMSolver(
            grid, 2 * 3.141592653589793 / 12.0,
            scene=preset_scene("absorber", nz),
            source=PlaneWaveSource(z_plane=max(nz // 8, 12), z_width=2.0),
            pml={"z": PMLSpec(thickness=max(nz // 10, 6))},
        )
        layout = RankLayout(grid, *dims)
        result, info = run_distributed(layout, solver, tol=1e-12,
                                       max_steps=MAX_STEPS)
        n_ranks = dims[0] * dims[1] * dims[2]
        assert len(set(info["pids"])) == n_ranks, (
            f"{ranks}: expected {n_ranks} distinct rank pids, "
            f"got {info['pids']}")
        expected = step_bytes_by_axis(layout)
        measured = info["halo"]["bytes_by_axis"]
        assert measured == {str(a): MAX_STEPS * b
                            for a, b in expected.items()}, (
            f"{ranks}: halo bytes {measured} != model x steps")
        points = grid.n_cells * result.iterations
        rows.append({
            "ranks": ranks, "n_ranks": n_ranks,
            "seconds": round(elapsed, 4),
            "points_per_second": round(points / elapsed, 1),
            "halo_bytes_per_step": {str(a): b for a, b in expected.items()},
            "halo_messages": info["halo"]["messages"],
            "transport": info["transport"],
        })
        print(f"cluster smoke: {ranks} bit-identical "
              f"({n_ranks} pid(s), {info['transport']}, "
              f"{elapsed:.2f}s job)", flush=True)
    return ("2-rank and 4-rank solves bit-identical to the "
            "single-domain run"), rows


def check_rank_crash_resume() -> dict:
    from repro.resilience import FaultPlan
    from repro.service import JobSpec, Scheduler, run_job

    spec = JobSpec.from_dict(dict(BASE, kind="distributed", ranks="2x1x1",
                                  max_retries=2))
    clean = run_job(spec)

    plan = FaultPlan.seeded(7, "cluster.rank.1", "crash", max_after=4)
    ckpt_dir = tempfile.mkdtemp(prefix="repro-smoke-cluster-")
    old = {k: os.environ.get(k) for k in
           ("REPRO_FAULTS", "REPRO_CHECKPOINT_EVERY")}
    os.environ["REPRO_FAULTS"] = plan.env_value()
    os.environ["REPRO_CHECKPOINT_EVERY"] = "40"
    try:
        sched = Scheduler(workers=1, mode="process", retry_base_s=0.001,
                          checkpoint_dir=ckpt_dir).start()
        try:
            job = sched.submit(spec)
            sched.wait(job.id, timeout=300.0)
        finally:
            sched.stop()
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    assert job.state == "done", f"rank-crash job ended {job.state}: {job.error}"
    assert sched.n_crashes >= 1, "the seeded rank kill never fired"
    assert job.resumed_from is not None, "retry did not resume mid-solve"
    assert job.result == clean, "resumed result differs from the clean run"
    print(f"cluster smoke: rank crash resumed from sweep "
          f"{job.resumed_from} to identical bytes "
          f"({job.attempts} attempts)", flush=True)
    return {"schedule": plan.env_value(), "crashes": sched.n_crashes,
            "attempts": job.attempts, "resumed_from": job.resumed_from}


def main() -> int:
    summary, rows = check_bit_identity()
    print(f"cluster smoke: {summary}", flush=True)
    resume = check_rank_crash_resume()

    os.makedirs(OUT_DIR, exist_ok=True)
    doc = {"grid": [2 * GRID, GRID, GRID], "max_steps": MAX_STEPS,
           "layouts": rows, "rank_crash": resume}
    with open(BENCH_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    print(f"saved -> {BENCH_PATH}")
    print("cluster smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
