"""CI chaos smoke test: crash/resume and corruption recovery, end to end.

Exercises the resilience layer the way an unlucky production day would:

1. **Crash/resume** -- a seeded fault schedule (``REPRO_FAULTS``) kills a
   forked worker mid-solve; the scheduler retries, the retry resumes
   from the checkpoint, and the result must be bit-identical to an
   undisturbed in-process run of the same spec.
2. **Corrupted registry** -- a tuned-plan cache entry is scribbled over;
   the next lookup must quarantine it to ``*.corrupt`` and retune to the
   identical plan.
3. **Service health under drain** -- a live ``repro serve`` process
   reports the resilience fields on ``/healthz`` and ``/metrics``, and a
   SIGTERM drains it to a zero exit.

Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_chaos.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

CHAOS_SEED = 20260806

SOLVE_SPEC = {"kind": "solve", "preset": "vacuum", "grid": 10,
              "wavelength": 10.0, "tol": 1e-12, "max_steps": 120,
              "max_retries": 2, "threads": 2}


def request(method: str, url: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}")


def check_crash_resume() -> str:
    from repro.resilience import faults
    from repro.service import JobSpec, Scheduler, run_job
    from repro.service.jobs import JobState

    spec = JobSpec.from_dict(SOLVE_SPEC)
    clean = run_job(spec)

    plan = faults.FaultPlan.seeded(CHAOS_SEED, "solver.sweep", "crash",
                                   max_after=6)
    os.environ["REPRO_FAULTS"] = plan.env_value()
    os.environ["REPRO_CHECKPOINT_EVERY"] = "40"
    ckpt_dir = tempfile.mkdtemp(prefix="repro-chaos-ckpt-")
    sched = Scheduler(workers=1, mode="process", retry_base_s=0.001,
                      checkpoint_dir=ckpt_dir).start()
    try:
        job = sched.submit(JobSpec.from_dict(SOLVE_SPEC))
        sched.wait(job.id, timeout=180.0)
        stats = sched.stats()
        assert job.state == JobState.DONE, f"chaos job: {job.error}"
        assert job.result == clean, "resumed result differs from clean run"
        assert stats["worker_crashes"] == 1, stats
        assert job.attempts == 2, f"attempts {job.attempts}"
        assert stats["completed"] == 1 and stats["failed"] == 0, stats
    finally:
        sched.stop()
        os.environ.pop("REPRO_FAULTS", None)
        os.environ.pop("REPRO_CHECKPOINT_EVERY", None)
    resumed = (f"resumed from sweep {job.resumed_from}"
               if job.resumed_from is not None else "restarted from sweep 0")
    return (f"crash/resume: schedule {plan.env_value()}, 1 worker crash, "
            f"{resumed}, result bit-identical")


def check_corrupt_registry() -> str:
    from repro.ioutil import corrupt_file
    from repro.service import JobSpec, PlanRegistry, run_job

    root = tempfile.mkdtemp(prefix="repro-chaos-reg-")
    spec = JobSpec(kind="tune", grid=8, threads=2)
    first = run_job(spec, registry=PlanRegistry(root))

    entry = next(f for f in os.listdir(root) if f.endswith(".json"))
    corrupt_file(os.path.join(root, entry))
    again = run_job(spec, registry=PlanRegistry(root))

    quarantined = [f for f in os.listdir(root) if f.endswith(".corrupt")]
    assert quarantined, "corrupt registry entry was not quarantined"
    assert again == first, "retuned plan differs from the original"
    return (f"corrupt registry: entry quarantined to {quarantined[0]}, "
            "retuned plan identical")


def check_service_health() -> str:
    env = {**os.environ, "PYTHONUNBUFFERED": "1",
           "REPRO_CHECKPOINT_EVERY": "40"}
    queue_file = os.path.join(tempfile.mkdtemp(prefix="repro-chaos-q-"),
                              "queue.json")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--workers", "1", "--mode", "process",
         "--queue-file", queue_file, "--drain-timeout", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline()
        m = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        assert m, f"no port in serve banner: {banner!r}"
        base = f"http://127.0.0.1:{m.group(1)}"

        status, health = request("GET", f"{base}/healthz")
        assert status == 200 and health["ok"] is True, health
        for field in ("draining", "queue_depth", "running",
                      "checkpoint_lag_s"):
            assert field in health, f"/healthz missing {field}: {health}"
        assert health["draining"] is False

        status, doc = request("POST", f"{base}/jobs", SOLVE_SPEC)
        assert status == 202, f"submit -> {status}"
        deadline = time.monotonic() + 120.0
        while True:
            _, job = request("GET", f"{base}/jobs/{doc['id']}")
            if job["state"] in ("done", "failed", "cancelled"):
                break
            assert time.monotonic() < deadline, f"job stuck {job['state']}"
            time.sleep(0.1)
        assert job["state"] == "done", job.get("error")

        status, metrics = request("GET", f"{base}/metrics?format=json")
        assert status == 200
        assert "resilience" in metrics, sorted(metrics)
        counters = metrics["resilience"]["counters"]
        assert counters.get("checkpoints_written", 0) >= 1, counters

        proc.send_signal(signal.SIGTERM)
        out = proc.stdout.read()
        proc.wait(timeout=60.0)
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {out}"
        assert "shutdown: drained" in out, out
    finally:
        if proc.poll() is None:
            proc.kill()
    return ("service: /healthz + /metrics resilience fields present, "
            "SIGTERM drained to exit 0")


def main() -> int:
    for check in (check_crash_resume, check_corrupt_registry,
                  check_service_health):
        print(f"chaos smoke: {check()}", flush=True)
    print("chaos smoke: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
