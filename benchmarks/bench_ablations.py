"""Ablation benchmarks for the design choices DESIGN.md calls out:

* machine balance -- "our approach is immune to even more memory
  bandwidth-starved situations" (Sections IV-C / VI);
* thin domains -- mapping the thin dimension to the leading array
  dimension shrinks the cache block (Section VI outlook);
* multi-dimensional intra-tile parallelization vs wavefront-only
  (Section III-C's central argument).
"""

import os

from repro.experiments import (
    ablation_intra_tile,
    ablation_machine_balance,
    ablation_thin_domain,
    format_table,
    save_json,
)


def test_ablation_machine_balance(run_once, output_dir):
    rows = run_once(ablation_machine_balance)
    print()
    print(format_table(rows, title="Ablation: machine-balance (bandwidth) sweep at 384^3, 18 threads"))
    save_json(rows, os.path.join(output_dir, "ablation_machine_balance.json"))

    by_bw = {r["bandwidth_GB/s"]: r for r in rows}
    # Spatial blocking degrades proportionally with bandwidth...
    assert by_bw[25.0]["spatial_MLUPs"] < 0.6 * by_bw[50.0]["spatial_MLUPs"]
    # ...while MWD barely moves (decoupled), so the speedup grows.
    assert by_bw[25.0]["MWD_MLUPs"] > 0.8 * by_bw[50.0]["MWD_MLUPs"]
    assert by_bw[25.0]["speedup"] > by_bw[50.0]["speedup"]
    # At generous bandwidth the advantage shrinks.
    assert by_bw[75.0]["speedup"] < by_bw[37.5]["speedup"]


def test_ablation_thin_domain(run_once, output_dir):
    rows = run_once(ablation_thin_domain)
    print()
    print(format_table(rows, title="Ablation: thin-domain mapping (Section VI outlook)"))
    save_json(rows, os.path.join(output_dir, "ablation_thin_domain.json"))

    thin = next(r for r in rows if r["Nx"] == 32)
    wide = next(r for r in rows if r["Nx"] == 512)
    # C_s is proportional to N_x: the thin mapping shrinks the block 16x.
    assert thin["Cs_MiB"] < wide["Cs_MiB"] / 10
    assert thin["fits"]
    # ...but short inner loops cost intra-tile efficiency (the paper's
    # "less than about 50 cells are inefficient" warning).
    assert thin["intra_tile_eff"] < wide["intra_tile_eff"]


def test_ablation_intra_tile(run_once, output_dir):
    rows = run_once(ablation_intra_tile)
    print()
    print(format_table(rows, title="Ablation: wavefront-only vs multi-dimensional intra-tile split (TG=18)"))
    save_json(rows, os.path.join(output_dir, "ablation_intra_tile.json"))

    schemes = {str(r["scheme"]).split()[0]: r for r in rows}
    wf_only = schemes["wavefront-only"]
    multi = schemes["multi-dim"]
    # Wavefront-only parallelism forces B_z = 18, so only tiny diamonds
    # (or none) fit; the multi-dimensional split affords a bigger D_w...
    assert multi["max_Dw"] == "none fits" or wf_only["max_Dw"] == "none fits" or (
        multi["max_Dw"] > wf_only["max_Dw"]
    )
    # ...and achieves lower measured code balance when both run.
    if "Bc_measured" in multi and "Bc_measured" in wf_only:
        assert multi["Bc_measured"] < wf_only["Bc_measured"]
