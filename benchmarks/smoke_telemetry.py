"""CI telemetry smoke: metrics, event streaming and the merged trace.

Boots a real ``repro serve`` subprocess (ephemeral port, forked process
workers, ``REPRO_TRACE`` set so the service writes a merged Chrome trace
on shutdown) and asserts the observability contract end to end:

* ``GET /metrics`` serves Prometheus text exposition (0.0.4) that
  parses, and two scrapes around a batch campaign show the native
  counters (submissions, sweeps, progress events) increasing
  monotonically;
* ``GET /jobs/<id>/events`` streams per-convergence-check NDJSON events
  (chunked) for a live batch job down to its terminal ``end`` event,
  with per-lane residuals on every ``batch`` event;
* the Chrome trace written at shutdown contains the submitted job's
  trace id on parent-side spans *and* on spans merged back from the
  forked worker (a second trace process lane);
* the progress hub sustains a healthy publish rate and the disabled
  telemetry hook costs <2% of even a minimal sweep -- written to
  ``benchmarks/output/BENCH_telemetry.json``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_telemetry.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")
TRACE_PATH = os.path.join(OUT_DIR, "telemetry_trace.json")
BENCH_PATH = os.path.join(OUT_DIR, "BENCH_telemetry.json")

BATCH_SPEC = {"kind": "batch", "preset": "absorber", "grid": 12,
              "wavelengths": [10.0, 12.0, 14.0], "tol": 1e-4,
              "max_steps": 120, "threads": 2}

#: Counters the double scrape asserts strictly increase across the job.
MONOTONIC = ("repro_jobs_submitted_total", "repro_solver_sweeps_total",
             "repro_progress_events_total")


def request(method: str, url: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}")


def scrape(base: str) -> dict:
    """Parse the Prometheus text exposition into {series_line: value}."""
    with urllib.request.urlopen(f"{base}/metrics", timeout=30.0) as resp:
        assert resp.status == 200
        ctype = resp.headers["Content-Type"]
        assert ctype.startswith("text/plain") and "version=0.0.4" in ctype, \
            f"wrong exposition content type: {ctype}"
        text = resp.read().decode()
    values = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, raw = line.rpartition(" ")
        assert name, f"unparseable exposition line: {line!r}"
        values[name] = float("inf") if raw == "+Inf" else float(raw)
    assert values, "empty exposition"
    return values


def tail_events(base: str, job_id: str, timeout: float = 300.0) -> list:
    """Follow the chunked NDJSON stream until the terminal event."""
    events = []
    with urllib.request.urlopen(f"{base}/jobs/{job_id}/events",
                                timeout=timeout) as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"] == "application/x-ndjson"
        for raw in resp:
            line = raw.decode().strip()
            if line:
                events.append(json.loads(line))
    return events


def boot_server() -> tuple[subprocess.Popen, str]:
    os.makedirs(OUT_DIR, exist_ok=True)
    if os.path.exists(TRACE_PATH):
        os.unlink(TRACE_PATH)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--workers", "2", "--mode", "process"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1",
             "REPRO_TRACE": TRACE_PATH},
    )
    banner = proc.stdout.readline()
    m = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
    assert m, f"no port in serve banner: {banner!r}"
    return proc, f"http://127.0.0.1:{m.group(1)}"


def check_trace(trace_id: str) -> dict:
    """The merged Chrome trace shows the job under one trace id across
    the parent process and the forked worker's lane."""
    with open(TRACE_PATH) as f:
        doc = json.load(f)
    spans = [e for e in doc["traceEvents"]
             if e.get("ph") == "X"
             and (e.get("args") or {}).get("trace") == trace_id]
    assert spans, f"no spans tagged with trace id {trace_id}"
    names = {s["name"].split()[0] for s in spans}
    pids = {s["pid"] for s in spans}
    assert "queued" in names and "attempt" in names, names
    assert "job" in names, f"worker job span missing: {names}"
    assert len(pids) >= 2, (
        f"expected parent + merged worker lanes, got pids {pids}")
    lanes = [e for e in doc["traceEvents"]
             if e.get("ph") == "M" and e.get("name") == "process_name"
             and e["args"]["name"].startswith("worker")]
    assert lanes, "no labelled forked-worker process lane in the trace"
    return {"tagged_spans": len(spans), "span_names": sorted(names),
            "trace_processes": len(pids)}


def bench_rates() -> dict:
    """Publish throughput (enabled) and the disabled hook's cost."""
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    import numpy as np

    from repro import telemetry
    from repro.fdfd import FieldState, Grid, naive_sweep, random_coefficients

    telemetry.enable(force=True)
    telemetry.set_current(telemetry.JobContext(job_id="bench", trace_id="b"))
    n = 100_000
    t0 = time.perf_counter()
    for i in range(n):
        telemetry.publish("progress", sweeps=i, residual=0.5)
    events_per_sec = n / (time.perf_counter() - t0)
    telemetry.PROGRESS.forget("bench")

    telemetry.disable()
    t0 = time.perf_counter()
    for i in range(n):
        telemetry.publish("progress", sweeps=i, residual=0.5)
    disabled_cost_s = (time.perf_counter() - t0) / n
    telemetry.set_current(None)

    grid = Grid(nz=16, ny=8, nx=8)
    coeffs = random_coefficients(grid, seed=3)
    fields = FieldState(grid).fill_random(np.random.default_rng(4))
    naive_sweep(fields, coeffs, 1)
    t0 = time.perf_counter()
    for _ in range(5):
        naive_sweep(fields, coeffs, 1)
    sweep_cost_s = (time.perf_counter() - t0) / 5

    overhead_pct = 100.0 * disabled_cost_s / sweep_cost_s
    assert overhead_pct < 2.0, (
        f"disabled hook is {overhead_pct:.3f}% of a minimal sweep")
    return {"events_per_sec": round(events_per_sec),
            "disabled_publish_ns": round(disabled_cost_s * 1e9, 1),
            "min_sweep_us": round(sweep_cost_s * 1e6, 1),
            "disabled_overhead_pct": round(overhead_pct, 4)}


def main() -> int:
    proc, base = boot_server()
    try:
        first = scrape(base)
        print(f"scrape 1: {len(first)} series, "
              f"{first.get('repro_jobs_submitted_total', 0):.0f} submissions")

        status, doc = request("POST", f"{base}/jobs", BATCH_SPEC)
        assert status == 202, f"batch submit -> {status}: {doc}"
        job_id, trace_id = doc["id"], doc["trace_id"]
        assert trace_id, "job record carries no trace id"

        events = tail_events(base, job_id)
        kinds = [e["kind"] for e in events]
        assert kinds[-1] == "end", f"stream did not end cleanly: {kinds[-1]}"
        batch_events = [e for e in events if e["kind"] == "batch"]
        assert batch_events, f"no per-check batch events in {kinds}"
        for ev in batch_events:
            assert ev["residuals"], "batch event without per-lane residuals"
            assert "active" in ev and "frozen" in ev
        print(f"tail: {len(events)} events, {len(batch_events)} convergence "
              f"checks, final lanes active={batch_events[-1]['active']}")

        status, done = request("GET", f"{base}/jobs/{job_id}")
        assert done["state"] == "done", f"batch job: {done.get('error')}"

        second = scrape(base)
        for name in MONOTONIC:
            assert second[name] > first.get(name, 0), (
                f"{name} did not increase: "
                f"{first.get(name, 0)} -> {second.get(name)}")
        assert second["repro_job_outcomes_total{outcome=\"done\"}"] >= 1
        print("scrape 2: monotonic counters advanced "
              + ", ".join(f"{n.split('_', 1)[1]}="
                          f"{first.get(n, 0):.0f}->{second[n]:.0f}"
                          for n in MONOTONIC))
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            proc.kill()

    trace_stats = check_trace(trace_id)
    print(f"trace: {trace_stats['tagged_spans']} spans tagged {trace_id} "
          f"across {trace_stats['trace_processes']} process lanes "
          f"({', '.join(trace_stats['span_names'])})")

    rates = bench_rates()
    print(f"rates: {rates['events_per_sec']:,} events/s published; disabled "
          f"hook {rates['disabled_publish_ns']:.0f} ns "
          f"({rates['disabled_overhead_pct']:.4f}% of a minimal sweep)")

    doc = {"batch_spec": BATCH_SPEC, "stream_events": len(events),
           "convergence_checks": len(batch_events), "trace": trace_stats,
           **rates}
    with open(BENCH_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    print(f"saved -> {BENCH_PATH}")
    print("telemetry smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
