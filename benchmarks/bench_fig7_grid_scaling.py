"""Fig. 7 reproduction: full-socket performance at increasing cubic grid
size (64..512) -- performance (7a), auto-tuned intra-tile parameters
(7b), memory bandwidth (7c) and code balance (7d)."""

import os

from conftest import by_variant
from repro.experiments import fig7_grid_scaling, format_table, save_json
from repro.machine import HASWELL_EP


def test_fig7_grid_scaling(run_once, output_dir, substrate_telemetry):
    rows = run_once(fig7_grid_scaling)
    print()
    print(format_table(rows, title="Fig. 7: grid-size scaling on the full socket"))
    save_json(rows, os.path.join(output_dir, "fig7.json"))

    spatial = by_variant(rows, "spatial", "grid")
    owd = by_variant(rows, "1WD", "grid")
    mwd = by_variant(rows, "MWD", "grid")
    large = [g for g in mwd if g >= 256]

    # 7a: MWD delivers 3-4x spatial at the large grid sizes.
    for g in large:
        ratio = mwd[g]["MLUPs"] / spatial[g]["MLUPs"]
        assert 2.8 <= ratio <= 4.5, (g, ratio)

    # 7a: 1WD decays with grid size (growing leading dimension inflates
    # the per-thread cache block).
    assert owd[512]["MLUPs"] < owd[128]["MLUPs"]

    # 7a: MWD stays roughly flat across large grids (decoupled).
    vals = [mwd[g]["MLUPs"] for g in large]
    assert max(vals) / min(vals) < 1.4

    # 7c: MWD bandwidth stays clearly below the socket limit at large
    # grids; 1WD pins the interface.
    for g in large:
        assert mwd[g]["GB/s"] < 0.9 * HASWELL_EP.bandwidth_gbs, g
        assert owd[g]["GB/s"] > 0.9 * HASWELL_EP.bandwidth_gbs, g

    # 7d: 1WD's measured code balance grows with grid size (capacity
    # misses on the growing leading dimension); MWD's stays low.
    assert owd[512]["B/LUP"] > 1.5 * owd[64]["B/LUP"]
    for g in large:
        assert mwd[g]["B/LUP"] < 500, g

    # 7b: the tuner selects sharing (TG > 1) and D_w in 8..16 at large
    # grids; 1WD is pinned at the minimum diamond.
    for g in large:
        assert mwd[g]["TG_size"] > 1, g
        assert 8 <= mwd[g]["Dw"] <= 32, g
        assert owd[g]["Dw"] == 4, g

    # 7b: component parallelism (2 or 3 ways) is selected at large grids
    # ("for all grid sizes, two or three threads are used for the
    # parallel components update").
    comp_ways = {int(mwd[g]["TG"].split(".c")[1]) for g in large}
    assert comp_ways <= {2, 3, 6}
    assert comp_ways & {2, 3}
