"""Microbenchmarks of the actual NumPy kernels and the tiled executor.

These are real timings (pytest-benchmark statistics over repeated runs),
complementing the figure benchmarks which are deterministic simulations.
They document the Python-level throughput of the substrate and that the
tiled traversal's overhead over the naive sweep stays bounded.
"""

import numpy as np
import pytest

from repro.core import TiledExecutor, TilingPlan
from repro.fdfd import (
    FieldState,
    Grid,
    naive_sweep,
    random_coefficients,
    spatial_blocked_sweep,
    update_e,
    update_h,
)

GRID_N = 48
STEPS = 2


@pytest.fixture(scope="module")
def setup():
    grid = Grid.cube(GRID_N)
    coeffs = random_coefficients(grid, seed=1)
    fields = FieldState(grid).fill_random(np.random.default_rng(2))
    return grid, coeffs, fields


def test_bench_h_half_step(benchmark, setup):
    grid, coeffs, fields = setup
    lups = benchmark(update_h, fields, coeffs)
    assert lups > 0


def test_bench_e_half_step(benchmark, setup):
    grid, coeffs, fields = setup
    lups = benchmark(update_e, fields, coeffs)
    assert lups > 0


def test_bench_naive_sweep(benchmark, setup):
    grid, coeffs, fields = setup

    def run():
        return naive_sweep(fields, coeffs, STEPS)

    assert benchmark(run) > 0


def test_bench_spatial_blocked_sweep(benchmark, setup):
    grid, coeffs, fields = setup

    def run():
        return spatial_blocked_sweep(fields, coeffs, STEPS, block_y=16)

    assert benchmark(run) > 0


def test_bench_tiled_executor(benchmark, setup):
    grid, coeffs, fields = setup
    plan = TilingPlan.build(ny=GRID_N, nz=GRID_N, timesteps=STEPS, dw=8, bz=4)

    def run():
        ex = TiledExecutor(fields, coeffs, plan)
        ex.run()
        return ex.lups_done

    assert benchmark(run) > 0


def test_bench_plan_construction(benchmark):
    plan = benchmark(TilingPlan.build, 384, 384, 32, 16, 4)
    assert plan.n_tiles > 0


def test_bench_mlups_reporting(setup, capsys):
    """Report the pure-Python throughput in MLUP/s for the record (the
    paper's units; we are 2-3 orders below the C code, which is exactly
    why the performance results are simulated -- DESIGN.md section 2)."""
    import time

    grid, coeffs, fields = setup
    t0 = time.perf_counter()
    naive_sweep(fields, coeffs, STEPS)
    dt = time.perf_counter() - t0
    mlups = grid.n_cells * STEPS / dt / 1e6
    with capsys.disabled():
        print(f"\n[numpy naive sweep: {mlups:.2f} MLUP/s at {GRID_N}^3]")
    assert mlups > 0.05
