"""Section III reproduction: analytic model numbers vs. cache-simulated
measurements (the paper's table-in-prose of code balances, intensities
and the bandwidth roofline)."""

import os

from repro.experiments import format_table, save_json, section3_table


def test_section3_models(run_once, output_dir):
    rows = run_once(section3_table)
    print()
    print(format_table(rows, title="Section III: analytic models vs simulated measurement"))
    save_json(rows, os.path.join(output_dir, "section3.json"))

    val = {r["quantity"]: r for r in rows}
    # Exact identities.
    assert val["flops/LUP"]["reproduced"] == 248
    assert val["C_s(Dw=4,Bz=4) [B/Nx]"]["reproduced"] == 14912
    assert val["storage [B/cell]"]["reproduced"] == 640
    # Measured counterparts within a few percent of the paper's models.
    assert abs(val["naive B_C [B/LUP]"]["reproduced"] - 1344) / 1344 < 0.03
    assert abs(val["spatial B_C [B/LUP]"]["reproduced"] - 1216) / 1216 < 0.01
    assert abs(val["P_mem spatial [MLUP/s]"]["reproduced"] - 41) < 1.0
