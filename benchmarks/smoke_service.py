"""CI smoke test for the solve service, end to end.

Boots a real ``repro serve`` subprocess (ephemeral port, forked process
workers), submits three jobs -- two unique plus one duplicate -- and
asserts the serving contract:

* the duplicate coalesces: 3 submissions, exactly 2 executions;
* the tiled job gets its plan from the registry (tuned once);
* the served solve is bit-identical to an in-process ``run_job`` of the
  same spec (same SHA-256 field checksum, same every field).

Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_service.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

SOLVE_SPEC = {"kind": "solve", "preset": "vacuum", "grid": 10,
              "wavelength": 10.0, "tol": 1e-4, "max_steps": 30, "threads": 2}
TILED_SPEC = {"kind": "solve", "preset": "absorber", "grid": 16,
              "wavelength": 12.0, "tol": 1e-4, "max_steps": 30,
              "tiled": True, "tuning": "registry", "threads": 2}


def request(method: str, url: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}")


def wait_for(base: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        status, doc = request("GET", f"{base}/jobs/{job_id}")
        assert status == 200, f"GET /jobs/{job_id} -> {status}"
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} stuck in {doc['state']}")
        time.sleep(0.1)


def boot_server() -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--workers", "2", "--mode", "process"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    banner = proc.stdout.readline()
    m = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
    assert m, f"no port in serve banner: {banner!r}"
    return proc, f"http://127.0.0.1:{m.group(1)}"


def main() -> int:
    proc, base = boot_server()
    try:
        status, doc = request("GET", f"{base}/healthz")
        assert status == 200 and doc["ok"] is True, "healthz failed"
        assert doc["draining"] is False and "checkpoint_lag_s" in doc

        # Three submissions: plain solve, tuned tiled solve, duplicate.
        status, a = request("POST", f"{base}/jobs", SOLVE_SPEC)
        assert status == 202, f"submit a -> {status}"
        status, b = request("POST", f"{base}/jobs", TILED_SPEC)
        assert status == 202, f"submit b -> {status}"
        status, dup = request("POST", f"{base}/jobs", dict(SOLVE_SPEC))
        assert status == 202, f"submit dup -> {status}"
        assert dup["id"] == a["id"], "duplicate spec must share the job id"
        assert dup["dedup_count"] == 1, "duplicate must coalesce, not requeue"

        done_a = wait_for(base, a["id"])
        done_b = wait_for(base, b["id"])
        assert done_a["state"] == "done", f"job a: {done_a['error']}"
        assert done_b["state"] == "done", f"job b: {done_b['error']}"
        plan = done_b["result"]["plan"]
        assert plan["source"] == "registry", f"tiled plan came from {plan}"

        status, metrics = request("GET", f"{base}/metrics?format=json")
        assert status == 200
        sched = metrics["scheduler"]
        assert sched["submitted"] == 3, sched
        assert sched["executed"] == 2, f"dedup failed: {sched}"
        assert sched["deduplicated"] == 1, sched
        assert metrics["registry"]["stores"] >= 1, metrics["registry"]

        # Bit-identity: the served result equals a direct in-process run.
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
        from repro.service import JobSpec, run_job

        direct = run_job(JobSpec.from_dict(SOLVE_SPEC))
        served = done_a["result"]
        assert served["checksum"] == direct["checksum"], (
            "served fields differ from a direct solve")
        assert served == direct, "served result is not bit-identical"

        print("service smoke: 3 submissions, 2 executions, 1 dedup; "
              f"registry plan dw={plan['dw']} bz={plan['bz']}; "
              "served result bit-identical to direct run_job")
        return 0
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
