"""Campaign throughput: batched k-wavelength solves vs the per-point path.

The batched campaign engine stacks the twelve THIIM component arrays of
``k`` wavelengths into ``12 x k`` arrays and updates every wavelength on
each tile touch, so the wavefront-diamond traversal's per-tile work is
amortized over the whole batch while the tile working set is hot -- the
multi-dimensional intra-tile parallelization idea applied along a
scenario axis.  This benchmark measures it on the default campaign
configuration (tandem preset, tiled MWD traversal):

* per-point path: k independent ``TiledTHIIM`` solves (the pre-batch
  campaign behaviour);
* batched path: one ``BatchedTiledTHIIM`` solve per k in ``K_SERIES``,
  giving the points/sec-vs-k curve for EXPERIMENTS.md;
* **bit-identity**: every lane of the k=8 batch must equal its
  per-point solve's fields bit for bit (and match iterations/residual
  history) -- the batched engine's absolute contract;
* **acceptance**: batched points/sec at k = ``K_TARGET`` must be at
  least ``MIN_SPEEDUP`` x the per-point path.

Both paths run a fixed number of sweeps (unreachable tolerance), so the
comparison is work-for-work.  Results land in
``benchmarks/output/BENCH_campaign.json``.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_campaign.py``)
or as a pytest test; CI runs the pytest form as the campaign smoke.
"""

from __future__ import annotations

import json
import os
import time

PRESET = "tandem"
GRID = 16
DW, BZ = 4, 2
MAX_STEPS = 80
TOL = 1e-12  # unreachable: both paths deterministically run all sweeps
K_SERIES = (1, 2, 4, 8)
K_TARGET = 8
#: Acceptance floor at k=8 (observed ~4-5x; 3x leaves room for noise).
MIN_SPEEDUP = 3.0

OUT_PATH = os.path.join(os.path.dirname(__file__), "output",
                        "BENCH_campaign.json")


def _setup(k: int):
    import numpy as np

    from repro.fdfd import Grid, PMLSpec, PlaneWaveSource, preset_scene

    nz = 2 * GRID
    grid = Grid(nz=nz, ny=GRID, nx=GRID, periodic=(False, False, False))
    scene = preset_scene(PRESET, nz)
    source = PlaneWaveSource(z_plane=max(nz // 8, 12), z_width=2.0)
    pml = {"z": PMLSpec(thickness=max(nz // 10, 6))}
    wavelengths = [10.0 + 0.5 * i for i in range(k)]
    omegas = [2 * np.pi / w for w in wavelengths]
    return grid, scene, source, pml, omegas


def run_per_point(k: int):
    """k independent tiled solves; returns (seconds, results)."""
    from repro.core.tiled_solver import TiledTHIIM
    from repro.fdfd import THIIMSolver

    grid, scene, source, pml, omegas = _setup(k)
    t0 = time.perf_counter()
    results = []
    for omega in omegas:
        solver = THIIMSolver(grid, omega, scene=scene, source=source, pml=pml)
        driver = TiledTHIIM(solver, dw=DW, bz=BZ)
        results.append(driver.solve(tol=TOL, max_steps=MAX_STEPS))
    return time.perf_counter() - t0, results


def run_batched(k: int):
    """One batched tiled solve over k wavelengths; (seconds, results)."""
    from repro.core.tiled_solver import BatchedTiledTHIIM
    from repro.fdfd import BatchedTHIIMSolver

    grid, scene, source, pml, omegas = _setup(k)
    t0 = time.perf_counter()
    batched = BatchedTHIIMSolver(grid, omegas, scene=scene, source=source,
                                 pml=pml)
    driver = BatchedTiledTHIIM(batched, dw=DW, bz=BZ)
    batch = driver.solve(tol=TOL, max_steps=MAX_STEPS)
    return time.perf_counter() - t0, batch.results


def assert_bit_identical(per_point, batched) -> None:
    import numpy as np

    for lane, (a, b) in enumerate(zip(per_point, batched)):
        assert a.iterations == b.iterations, f"lane {lane}: iteration count"
        assert a.residual_history == b.residual_history, \
            f"lane {lane}: residual history"
        for name in a.fields:
            assert np.array_equal(a.fields[name], b.fields[name]), \
                f"lane {lane}: component {name} differs bit-wise"


def main() -> int:
    t_pp, pp_results = run_per_point(K_TARGET)
    pp_rate = K_TARGET / t_pp
    print(f"per-point  k={K_TARGET}: {t_pp:6.2f} s  {pp_rate:6.3f} points/s")

    series = []
    batched_target = None
    for k in K_SERIES:
        t_b, b_results = run_batched(k)
        rate = k / t_b
        series.append({"k": k, "seconds": round(t_b, 3),
                       "points_per_sec": round(rate, 4)})
        print(f"batched    k={k}: {t_b:6.2f} s  {rate:6.3f} points/s")
        if k == K_TARGET:
            batched_target = (t_b, b_results, rate)

    assert batched_target is not None
    t_b, b_results, b_rate = batched_target
    assert_bit_identical(pp_results, b_results)
    print(f"bit-identity: all {K_TARGET} lanes equal the per-point solves")

    speedup = b_rate / pp_rate
    print(f"speedup at k={K_TARGET}: {speedup:.2f}x (floor {MIN_SPEEDUP}x)")

    doc = {
        "preset": PRESET,
        "grid": GRID,
        "dw": DW,
        "bz": BZ,
        "max_steps": MAX_STEPS,
        "k_target": K_TARGET,
        "per_point": {"k": K_TARGET, "seconds": round(t_pp, 3),
                      "points_per_sec": round(pp_rate, 4)},
        "batched": series,
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "bit_identical": True,
    }
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    print(f"saved -> {OUT_PATH}")

    assert speedup >= MIN_SPEEDUP, (
        f"batched campaign only {speedup:.2f}x the per-point path "
        f"(floor {MIN_SPEEDUP}x)"
    )
    return 0


def test_campaign_throughput():
    """Pytest entry point: the batched campaign engine meets its
    throughput floor with bit-identical per-point results."""
    assert main() == 0


if __name__ == "__main__":
    raise SystemExit(main())
