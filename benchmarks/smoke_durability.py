"""CI smoke test for fleet durability, end to end.

Exercises the three durability mechanisms against a real 2-node fleet
(``repro serve`` subprocesses with per-node ``REPRO_DATA_DIR`` stores)
behind an in-process gateway:

* **warm restart**: solve a campaign through the gateway, SIGKILL one
  node, respawn it over the same data dir and read every point back --
  the rebooted node must answer its shard from the persistent store
  (``from_store`` reads, zero re-solves, bit-identical bytes);
* **write replication**: every completed result is pushed to its ring
  replica on the first done-poll; the replica's ``replica_puts`` counter
  and the gateway's replication metric must agree, and the replicated
  payload bytes are reported;
* **admission control**: a quota-limited gateway on the same fleet
  admits a tenant's burst, answers 429 + ``Retry-After`` past it, and
  leaves a second tenant untouched.

Writes ``benchmarks/output/BENCH_durability.json``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_durability.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")
BENCH_PATH = os.path.join(OUT_DIR, "BENCH_durability.json")

GRID = 10
WAVELENGTHS = (10.0, 11.0, 12.0, 13.0, 14.0, 15.0)
BASE_SPEC = {"kind": "solve", "preset": "vacuum", "grid": GRID,
             "tol": 1e-4, "max_steps": 40}


def _request(method, url, payload=None, headers=None):
    import urllib.error
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(req, timeout=60.0) as resp:
            return resp.status, json.loads(resp.read() or b"{}"), \
                dict(resp.headers)
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}"), dict(e.headers or {})


def _poll(base, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while True:
        status, doc, _ = _request("GET", f"{base}/jobs/{job_id}")
        assert status == 200, f"poll {job_id[:12]}: HTTP {status} {doc}"
        if doc["state"] in ("done", "failed", "cancelled"):
            assert doc["state"] == "done", f"{job_id[:12]} {doc['state']}"
            return doc
        assert time.monotonic() < deadline, f"job stuck {doc['state']}"
        time.sleep(0.1)


def _node_metrics(url):
    status, doc, _ = _request("GET", f"{url}/metrics?format=json")
    assert status == 200, f"metrics {url}: HTTP {status}"
    return doc


def main() -> int:
    from repro import telemetry
    from repro.fleet import (NodeRegistry, make_gateway, respawn_node,
                             spawn_local_fleet)
    from repro.service import JobSpec, run_job

    telemetry.enable()
    telemetry.fleet_replications()  # create the series before reading

    specs = [JobSpec.from_dict(dict(BASE_SPEC, wavelength=w))
             for w in WAVELENGTHS]
    clean = {spec.job_id: run_job(spec) for spec in specs}
    print(f"durability smoke: campaign = {len(specs)} solves on "
          f"grid {GRID}", flush=True)

    data_root = tempfile.mkdtemp(prefix="repro-durability-")
    nodes = spawn_local_fleet(2, workers=2, mode="thread",
                              data_root=data_root)
    registry = NodeRegistry([n.url for n in nodes], dead_after=1,
                            timeout_s=10.0, interval_s=3600.0)
    registry.check_once()
    gateway = make_gateway(registry)
    thread = threading.Thread(target=gateway.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{gateway.server_port}"
    print(f"durability smoke: 2 persistent nodes behind {base} "
          f"(data root {data_root})", flush=True)

    doc = {"grid": GRID, "nodes": 2, "points": len(specs)}
    quota_gateway = None
    try:
        # Phase 1: solve the campaign cold; done-polls replicate.
        t0 = time.perf_counter()
        for spec in specs:
            status, resp, _ = _request("POST", f"{base}/jobs",
                                       spec.to_dict())
            assert status == 202, f"submit: HTTP {status} {resp}"
        for spec in specs:
            done = _poll(base, spec.job_id)
            assert done["result"] == clean[spec.job_id], (
                f"point {spec.wavelength} differs from the direct run")
        cold_s = time.perf_counter() - t0
        print(f"durability smoke: phase 1 solved cold in {cold_s:.2f}s, "
              "bit-identical", flush=True)

        # Phase 2: replication accounting.  With 2 nodes every job's
        # replica is the other node, so both stores hold all points.
        replications = telemetry.METRICS.get_value(
            "fleet_replications_total", labels=("ok",))
        replica_puts = sum(
            _node_metrics(n.url)["store"]["replica_puts"] for n in nodes)
        payload_bytes = sum(
            len(json.dumps(clean[s.job_id]).encode()) for s in specs)
        assert replications == len(specs), (
            f"expected {len(specs)} replications, saw {replications}")
        assert replica_puts == len(specs), (
            f"expected {len(specs)} replica puts, saw {replica_puts}")
        doc["replication"] = {
            "replications": int(replications),
            "replica_puts": int(replica_puts),
            "payload_bytes_total": payload_bytes,
        }
        print(f"durability smoke: phase 2 replicated {int(replications)} "
              f"results ({payload_bytes} payload bytes)", flush=True)

        # Phase 3: warm restart.  SIGKILL one node, respawn it over the
        # same data dir, and read everything back through the gateway.
        smap = registry.shard_map()
        victim = nodes[0]
        victim_points = [s for s in specs
                         if smap.owners(s.job_id)[0] == victim.url]
        victim.kill()
        registry.check_once()
        reborn = respawn_node(victim)
        nodes[0] = reborn
        registry.check_once()
        executed0 = _node_metrics(reborn.url)["scheduler"]["executed"]

        t0 = time.perf_counter()
        warm_reads = 0
        for spec in specs:
            status, got, _ = _request("GET", f"{base}/jobs/{spec.job_id}")
            assert status == 200, f"warm read: HTTP {status} {got}"
            assert got["result"] == clean[spec.job_id], (
                f"warm read of {spec.wavelength} not bit-identical")
            if got.get("from_store"):
                warm_reads += 1
        warm_s = time.perf_counter() - t0
        executed = _node_metrics(reborn.url)["scheduler"]["executed"]
        resolves = executed - executed0
        assert resolves == 0, (
            f"rebooted node re-solved {resolves} committed points")
        assert warm_reads >= len(victim_points), (
            f"{warm_reads} warm reads < {len(victim_points)} victim pts")
        doc["warm_restart"] = {
            "victim_points": len(victim_points),
            "warm_reads": warm_reads,
            "resolves_after_reboot": int(resolves),
            "hit_rate": 1.0,
            "cold_seconds": round(cold_s, 4),
            "warm_read_seconds": round(warm_s, 4),
        }
        print(f"durability smoke: phase 3 reboot warm -- {warm_reads} "
              f"store reads, 0 re-solves ({warm_s:.3f}s vs "
              f"{cold_s:.2f}s cold)", flush=True)

        # Phase 4: admission control on a quota-limited gateway over the
        # same fleet (submits hit admission before dedup).
        quota_gateway = make_gateway(registry, quota=0.001, quota_burst=2)
        qthread = threading.Thread(target=quota_gateway.serve_forever,
                                   daemon=True)
        qthread.start()
        qbase = f"http://127.0.0.1:{quota_gateway.server_port}"
        accepted = rejected = 0
        retry_after = None
        for spec in specs:
            status, resp, headers = _request(
                "POST", f"{qbase}/jobs", spec.to_dict(),
                headers={"X-Repro-Api-Key": "alice"})
            if status == 202:
                accepted += 1
            else:
                assert status == 429, f"HTTP {status} {resp}"
                rejected += 1
                retry_after = int(headers["Retry-After"])
        status, _, _ = _request("POST", f"{qbase}/jobs",
                                specs[0].to_dict(),
                                headers={"X-Repro-Api-Key": "bob"})
        assert status == 202, "in-quota tenant was rejected"
        assert accepted == 2 and rejected == len(specs) - 2, (
            f"burst 2: accepted {accepted}, rejected {rejected}")
        assert retry_after and retry_after >= 1
        doc["admission"] = {
            "quota_per_s": 0.001, "quota_burst": 2,
            "accepted": accepted, "rejected_429": rejected,
            "retry_after_s": retry_after, "other_tenant_accepted": True,
        }
        print(f"durability smoke: phase 4 quota -- {accepted} admitted, "
              f"{rejected} x 429 (Retry-After {retry_after}s), second "
              "tenant unaffected", flush=True)

        doc["shard_version"] = registry.version
    finally:
        if quota_gateway is not None:
            quota_gateway.shutdown()
            quota_gateway.server_close()
        gateway.shutdown()
        gateway.server_close()
        thread.join(timeout=5.0)
        registry.stop()
        for node in nodes:
            node.kill()

    os.makedirs(OUT_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    print(f"saved -> {BENCH_PATH}")
    print("durability smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
