"""Fig. 6 reproduction: thread scaling of spatial blocking, 1WD and MWD
at grid 384^3 -- performance (6a), memory bandwidth (6b), code balance
(6c) and the auto-tuned diamond width (6d)."""

import os

from conftest import by_variant
from repro.experiments import fig6_thread_scaling, format_table, save_json
from repro.machine import HASWELL_EP


def test_fig6_thread_scaling(run_once, output_dir, substrate_telemetry):
    rows = run_once(fig6_thread_scaling)
    print()
    print(format_table(rows, title="Fig. 6: thread scaling at 384^3"))
    save_json(rows, os.path.join(output_dir, "fig6.json"))

    spatial = by_variant(rows, "spatial", "threads")
    owd = by_variant(rows, "1WD", "threads")
    mwd = by_variant(rows, "MWD", "threads")
    full = HASWELL_EP.cores

    # 6a/6b shape: spatial saturates the memory interface by ~6 threads
    # at ~41 MLUP/s.
    assert abs(spatial[6]["MLUPs"] - 41) < 3
    assert abs(spatial[full]["MLUPs"] - 41) < 2
    assert spatial[6]["GB/s"] > 0.95 * HASWELL_EP.bandwidth_gbs

    # 1WD beats spatial at small thread counts (separate cache blocks
    # relieve the bandwidth pressure)...
    assert owd[1]["MLUPs"] > spatial[1]["MLUPs"]
    assert owd[4]["MLUPs"] > spatial[4]["MLUPs"]

    # ...saturates the bandwidth around ten threads (6b)...
    assert owd[10]["GB/s"] > 0.9 * HASWELL_EP.bandwidth_gbs

    # ...and declines beyond its peak (6a).
    peak_1wd = max(r["MLUPs"] for r in owd.values())
    assert owd[full]["MLUPs"] < 0.95 * peak_1wd

    # MWD keeps scaling to the full chip: monotone non-decreasing tail
    # and >= 3x saturated spatial.
    assert mwd[full]["MLUPs"] >= mwd[12]["MLUPs"] >= mwd[6]["MLUPs"]
    assert 3.0 * spatial[full]["MLUPs"] <= mwd[full]["MLUPs"] <= 4.2 * spatial[full]["MLUPs"]

    # 6b: MWD stays decoupled from the bandwidth bottleneck.
    assert mwd[full]["GB/s"] < 0.85 * HASWELL_EP.bandwidth_gbs

    # 6c: MWD code balance stays in the low few-hundreds window at every
    # thread count (the paper's 200-400 B/LUP).
    for r in mwd.values():
        assert 100 <= r["B/LUP"] <= 450, r

    # 6d: at the full chip, 1WD is pinned at the minimum diamond while
    # MWD affords a larger one via cache-block sharing.
    assert owd[full]["Dw"] == 4
    assert mwd[full]["Dw"] >= 2 * owd[full]["Dw"]

    # Parallel efficiency of MWD on the full chip is in the ~75% ballpark
    # (paper: "about 75%").
    eff = mwd[full]["MLUPs"] / (full * mwd[1]["MLUPs"])
    assert 0.55 < eff < 0.95
