"""CI smoke test for the fleet tier, end to end.

Spins up a real 3-node fleet (``repro serve`` subprocesses on ephemeral
ports) behind an in-process consistent-hash gateway and runs a
thickness x wavelength campaign through it, asserting the fleet
contract:

* **bit-identity**: every per-point result fetched through the gateway
  equals an in-process ``run_job`` of the same spec, byte for byte
  (cross-shard batches are scattered per home node and gathered back);
* **node death mid-campaign**: one node is SIGKILLed between campaign
  phases; the remaining points route to replicas (the shard-map version
  bumps, failovers are counted) and the campaign still completes with
  identical bytes;
* **exactly-once results**: resubmitting a served batch is answered
  without a single extra execution (content-hash dedup, fleet-wide),
  and re-running the whole campaign after the node death still returns
  the same canonical bytes for every point.

Writes gateway-routed throughput to
``benchmarks/output/BENCH_fleet.json``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/smoke_fleet.py
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")
BENCH_PATH = os.path.join(OUT_DIR, "BENCH_fleet.json")

GRID = 10
THICKNESSES = (0.1, 0.2)
WAVELENGTHS = (10.0, 11.0, 12.0)
BASE = {"kind": "batch", "preset": "absorber", "grid": GRID, "tol": 1e-4,
        "max_steps": 40, "threads": 2, "wavelengths": WAVELENGTHS}
CELLS = 2 * GRID ** 3  # the served geometry is Grid(2n, n, n)


def _request(method, url, payload=None):
    import urllib.error
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60.0) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}")


def _poll(base, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while True:
        status, doc = _request("GET", f"{base}/jobs/{job_id}")
        assert status == 200, f"poll {job_id[:12]}: HTTP {status} {doc}"
        if doc["state"] in ("done", "failed", "cancelled"):
            assert doc["state"] == "done", f"{job_id[:12]} {doc['state']}"
            return doc
        assert time.monotonic() < deadline, f"job stuck {doc['state']}"
        time.sleep(0.1)


def _fleet_executed(base) -> int:
    """Total jobs executed across every live node (gateway rollup)."""
    status, doc = _request("GET", f"{base}/metrics?format=json")
    assert status == 200, f"metrics: HTTP {status}"
    return sum(rollup["scheduler"]["executed"]
               for rollup in doc["nodes"].values()
               if "scheduler" in rollup)


def _campaign_specs():
    from repro.service import JobSpec

    return [JobSpec.from_dict(dict(BASE, thickness=t)) for t in THICKNESSES]


def _assert_points_identical(got: dict, clean: dict, label: str) -> None:
    assert [p["wavelength"] for p in got["points"]] == \
        [p["wavelength"] for p in clean["points"]], f"{label}: point order"
    for mine, theirs in zip(got["points"], clean["points"]):
        assert mine["id"] == theirs["id"], f"{label}: point ids differ"
        assert mine["result"] == theirs["result"], (
            f"{label}: point {mine['wavelength']} differs from the "
            "direct run")


def main() -> int:
    from repro import telemetry
    from repro.fleet import NodeRegistry, make_gateway, spawn_local_fleet
    from repro.service import run_job

    telemetry.enable()
    telemetry.fleet_failovers()  # create the series before reading it

    specs = _campaign_specs()
    clean = {spec.job_id: run_job(spec) for spec in specs}
    print(f"fleet smoke: campaign = {len(THICKNESSES)} thicknesses x "
          f"{len(WAVELENGTHS)} wavelengths "
          f"({len(THICKNESSES) * len(WAVELENGTHS)} points)", flush=True)

    nodes = spawn_local_fleet(3, workers=2, mode="thread")
    registry = NodeRegistry([n.url for n in nodes], dead_after=1,
                            timeout_s=10.0, interval_s=0.5)
    registry.check_once()
    gateway = make_gateway(registry)
    thread = threading.Thread(target=gateway.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{gateway.server_port}"
    registry.start()
    print(f"fleet smoke: 3 nodes behind gateway {base} "
          f"(shard map v{registry.version})", flush=True)

    rows = []
    try:
        # Phase 1: the first thickness, all nodes healthy.
        first, second = specs
        t0 = time.perf_counter()
        status, doc = _request("POST", f"{base}/jobs", first.to_dict())
        assert status == 202, f"submit: HTTP {status} {doc}"
        scattered = "scatter" in doc
        done = _poll(base, first.job_id)
        elapsed = time.perf_counter() - t0
        _assert_points_identical(done["result"], clean[first.job_id],
                                 "phase 1")
        points = sum(CELLS * p["result"]["iterations"]
                     for p in done["result"]["points"])
        rows.append({"phase": "healthy", "seconds": round(elapsed, 4),
                     "points_per_second": round(points / elapsed, 1),
                     "scattered": scattered})
        print(f"fleet smoke: phase 1 bit-identical through the gateway "
              f"({'scattered' if scattered else 'single-shard'}, "
              f"{elapsed:.2f}s)", flush=True)

        # Exactly-once while healthy: resubmitting the served batch
        # executes nothing new anywhere in the fleet.
        executed0 = _fleet_executed(base)
        status, doc = _request("POST", f"{base}/jobs", first.to_dict())
        assert status == 202, f"resubmit: HTTP {status} {doc}"
        done = _poll(base, first.job_id)
        _assert_points_identical(done["result"], clean[first.job_id],
                                 "dedup")
        assert _fleet_executed(base) == executed0, (
            "resubmitting a completed batch re-executed work")
        print("fleet smoke: resubmission fully dedup'd "
              "(0 extra executions)", flush=True)

        # Phase 2: kill the home of the second batch's first point
        # mid-campaign, then submit the rest of the campaign.
        victim_url = registry.shard_map().owners(
            second.point_spec(WAVELENGTHS[0]).job_id)[0]
        victim = next(n for n in nodes if n.url == victim_url)
        v0 = registry.version
        victim.kill()
        print(f"fleet smoke: killed {victim.node_id} ({victim.url}) "
              "mid-campaign", flush=True)

        t0 = time.perf_counter()
        status, doc = _request("POST", f"{base}/jobs", second.to_dict())
        assert status == 202, f"submit after kill: HTTP {status} {doc}"
        done = _poll(base, second.job_id)
        elapsed = time.perf_counter() - t0
        _assert_points_identical(done["result"], clean[second.job_id],
                                 "phase 2")
        deadline = time.monotonic() + 15.0
        while registry.version == v0 and time.monotonic() < deadline:
            time.sleep(0.1)  # a heartbeat or a routed request notices
        assert registry.version > v0, "node death never bumped the shard map"
        assert registry.node(victim_url).state == "dead"
        points = sum(CELLS * p["result"]["iterations"]
                     for p in done["result"]["points"])
        rows.append({"phase": "one-node-dead", "seconds": round(elapsed, 4),
                     "points_per_second": round(points / elapsed, 1)})
        print(f"fleet smoke: campaign completed after node death "
              f"(shard map v{v0} -> v{registry.version}, {elapsed:.2f}s)",
              flush=True)

        # Phase 3: the whole campaign again on the degraded fleet --
        # points whose shard died may be recomputed on the replica
        # (that is the recovery path), but every byte that comes back
        # is still the canonical result.
        for spec in specs:
            status, doc = _request("POST", f"{base}/jobs", spec.to_dict())
            assert status == 202, f"resubmit: HTTP {status} {doc}"
            done = _poll(base, spec.job_id)
            _assert_points_identical(done["result"], clean[spec.job_id],
                                     "phase 3")
        print("fleet smoke: repeat campaign on the degraded fleet still "
              "canonical", flush=True)

        failovers = telemetry.METRICS.get_value("fleet_failovers_total")
        _, health = _request("GET", f"{base}/healthz")
        assert health["alive"] == 2 and health["ok"], health
    finally:
        gateway.shutdown()
        gateway.server_close()
        thread.join(timeout=5.0)
        registry.stop()
        for node in nodes:
            node.kill()

    os.makedirs(OUT_DIR, exist_ok=True)
    doc = {
        "grid": [2 * GRID, GRID, GRID],
        "campaign": {"thicknesses": list(THICKNESSES),
                     "wavelengths": list(WAVELENGTHS)},
        "nodes": 3,
        "phases": rows,
        "failovers": failovers,
        "shard_version": registry.version,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    print(f"saved -> {BENCH_PATH}")
    print("fleet smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
