"""Regeneration of every table and figure of the paper's evaluation.

One generator per exhibit, returning plain row dicts (rendered by
:mod:`repro.experiments.report`, persisted by the benchmarks):

* :func:`section3_table` -- the analytic numbers of Section III and their
  cache-simulated counterparts;
* :func:`fig5_cache_model`  -- Fig. 5a-c: code balance and cache-size
  model vs. measurement per (D_w, B_z), single-threaded 1WD at 480^3;
* :func:`fig6_thread_scaling` -- Fig. 6a-d at 384^3;
* :func:`fig7_grid_scaling` -- Fig. 7a-d across cubic grids;
* :func:`fig8_tg_size` -- Fig. 8a-d across thread-group sizes;
* :func:`ablation_machine_balance`, :func:`ablation_thin_domain`,
  :func:`ablation_intra_tile` -- the design-choice studies DESIGN.md
  calls out (Sections IV-D and VI of the paper).

All performance numbers come from the simulated machine (see DESIGN.md
section 2); the *shape* criteria these must reproduce are recorded per
experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core import tracing
from ..core.autotuner import TunedPoint, tune_spatial, tune_tiled
from ..core.models import (
    arithmetic_intensity,
    bandwidth_limited_mlups,
    cache_block_size,
    diamond_code_balance,
    naive_code_balance,
    spatial_code_balance,
    usable_cache_bytes,
)
from ..core.plan import TilingPlan
from ..core.threadgroups import ThreadGroupConfig, enumerate_tg_configs
from ..machine.measure import measure_sweep_code_balance, measure_tiled_code_balance
from ..machine.simulator import simulate_sweep, simulate_tiled, tg_efficiency
from ..machine.spec import HASWELL_EP, MachineSpec
from ..fdfd.specs import FLOPS_PER_LUP

__all__ = [
    "section3_table",
    "fig5_cache_model",
    "fig6_thread_scaling",
    "fig7_grid_scaling",
    "fig8_tg_size",
    "ablation_machine_balance",
    "ablation_thin_domain",
    "ablation_intra_tile",
    "GRIDS",
]

Row = Dict[str, object]

#: Fig. 7/8 grid sizes: 64 to 512 in steps of 64 (Section IV-C).
GRIDS: Tuple[int, ...] = tuple(range(64, 513, 64))


def section3_table(spec: MachineSpec = HASWELL_EP) -> List[Row]:
    """Section III: model numbers and their measured counterparts."""
    naive_meas = measure_sweep_code_balance(spec, nx=512, ny=512, block_y=None)
    spatial_meas = measure_sweep_code_balance(spec, nx=512, ny=512, block_y=16)
    rows: List[Row] = [
        {
            "quantity": "flops/LUP",
            "paper": 248,
            "reproduced": FLOPS_PER_LUP,
            "source": "Section III-A",
        },
        {
            "quantity": "naive B_C [B/LUP]",
            "paper": 1344,
            "reproduced": round(naive_meas.bytes_per_lup, 1),
            "source": "Eq. 8 vs LRU sim @512^3",
        },
        {
            "quantity": "spatial B_C [B/LUP]",
            "paper": 1216,
            "reproduced": round(spatial_meas.bytes_per_lup, 1),
            "source": "Eq. 9 vs LRU sim @512^3",
        },
        {
            "quantity": "naive intensity [F/B]",
            "paper": 0.18,
            "reproduced": round(arithmetic_intensity(naive_code_balance()), 3),
            "source": "Section III-A",
        },
        {
            "quantity": "spatial intensity [F/B]",
            "paper": 0.20,
            "reproduced": round(arithmetic_intensity(spatial_code_balance()), 3),
            "source": "Section III-B",
        },
        {
            "quantity": "P_mem spatial [MLUP/s]",
            "paper": 41,
            "reproduced": round(bandwidth_limited_mlups(spec.bandwidth_gbs, spatial_code_balance()), 1),
            "source": "Eq. 10",
        },
        {
            "quantity": "C_s(Dw=4,Bz=4) [B/Nx]",
            "paper": 14912,
            "reproduced": cache_block_size(4, 4, nx=1),
            "source": "Eq. 11 worked example",
        },
        {
            "quantity": "storage [B/cell]",
            "paper": 640,
            "reproduced": 640,
            "source": "40 double-complex arrays",
        },
    ]
    return rows


def fig5_cache_model(
    spec: MachineSpec = HASWELL_EP,
    nx: int = 480,
    dw_values: Sequence[int] = (4, 8, 12, 16),
    bz_values: Sequence[int] = (1, 6, 9),
) -> List[Row]:
    """Fig. 5: cache-block-size model vs measured code balance (1WD, one
    thread, grid 480^3)."""
    budget = usable_cache_bytes(spec.l3_bytes)
    rows: List[Row] = []
    for bz in bz_values:
        for dw in dw_values:
            with tracing.span(f"fig5 point Dw={dw} Bz={bz}", "figure",
                              args={"dw": dw, "bz": bz, "nx": nx}) as sp:
                cs = cache_block_size(dw, bz, nx)
                meas = measure_tiled_code_balance(spec, nx=nx, dw=dw, bz=bz, n_streams=1)
                sp.set(code_balance=round(meas.bytes_per_lup, 3))
            rows.append(
                {
                    "Bz": bz,
                    "Dw": dw,
                    "Cs_model_MiB": round(cs / 2**20, 2),
                    "fits_usable_L3": cs <= budget,
                    "Bc_model": round(diamond_code_balance(dw), 1),
                    "Bc_measured": round(meas.bytes_per_lup, 1),
                }
            )
    return rows


def _variant_rows(point: TunedPoint | None, variant: str, x_key: str, x_val) -> Row:
    if point is None:
        return {x_key: x_val, "variant": variant}
    return {
        x_key: x_val,
        "variant": variant,
        "MLUPs": round(point.mlups, 1),
        "GB/s": round(point.result.bandwidth_gbs, 1),
        "B/LUP": round(point.code_balance, 1),
        "Dw": point.dw if point.dw else "",
        "Bz": point.bz if point.bz else "",
        "TG": point.tg.label() if point.tg else "",
        "TG_size": point.tg_size if point.dw else "",
    }


def fig6_thread_scaling(
    spec: MachineSpec = HASWELL_EP,
    grid: int = 384,
    threads: Sequence[int] | None = None,
) -> List[Row]:
    """Fig. 6: spatial vs 1WD vs MWD at 1..18 threads, grid 384^3."""
    if threads is None:
        threads = tuple(range(1, spec.cores + 1))
    rows: List[Row] = []
    for t in threads:
        rows.append(_variant_rows(tune_spatial(spec, grid, t), "spatial", "threads", t))
        rows.append(_variant_rows(tune_tiled(spec, grid, t, tg_size=1, variant="1WD"), "1WD", "threads", t))
        rows.append(_variant_rows(tune_tiled(spec, grid, t), "MWD", "threads", t))
    return rows


def fig7_grid_scaling(
    spec: MachineSpec = HASWELL_EP,
    grids: Sequence[int] = GRIDS,
) -> List[Row]:
    """Fig. 7: full-socket performance at increasing cubic grid size."""
    t = spec.cores
    rows: List[Row] = []
    for g in grids:
        rows.append(_variant_rows(tune_spatial(spec, g, t), "spatial", "grid", g))
        rows.append(_variant_rows(tune_tiled(spec, g, t, tg_size=1, variant="1WD"), "1WD", "grid", g))
        rows.append(_variant_rows(tune_tiled(spec, g, t), "MWD", "grid", g))
    return rows


def fig8_tg_size(
    spec: MachineSpec = HASWELL_EP,
    tg_sizes: Sequence[int] = (1, 2, 6, 9, 18),
    grids: Sequence[int] = GRIDS,
) -> List[Row]:
    """Fig. 8: impact of the thread-group size (cache block sharing)."""
    rows: List[Row] = []
    for g in grids:
        for s in tg_sizes:
            point = tune_tiled(spec, g, spec.cores, tg_size=s, variant=f"{s}WD")
            rows.append(_variant_rows(point, f"{s}WD", "grid", g))
    return rows


def ablation_machine_balance(
    spec: MachineSpec = HASWELL_EP,
    bandwidths: Sequence[float] = (25.0, 37.5, 50.0, 75.0),
    grid: int = 384,
) -> List[Row]:
    """Section IV-C/VI claim: MWD is "immune to more memory
    bandwidth-starved situations" while spatial blocking degrades
    proportionally."""
    rows: List[Row] = []
    for bw in bandwidths:
        m = spec.with_bandwidth(bw)
        sp = tune_spatial(m, grid, m.cores)
        mwd = tune_tiled(m, grid, m.cores)
        rows.append(
            {
                "bandwidth_GB/s": bw,
                "spatial_MLUPs": round(sp.mlups, 1),
                "MWD_MLUPs": round(mwd.mlups, 1),
                "speedup": round(mwd.mlups / sp.mlups, 2),
                "MWD_BW_used_GB/s": round(mwd.result.bandwidth_gbs, 1),
            }
        )
    return rows


def ablation_thin_domain(
    spec: MachineSpec = HASWELL_EP,
    thin: int = 32,
    wide: int = 512,
    dw: int = 8,
    bz: int = 1,
) -> List[Row]:
    """Section VI outlook: mapping a thin domain dimension to the leading
    (x) array dimension shrinks the cache block (C_s is proportional to
    N_x, Eq. 11), at the cost of short inner loops."""
    rows: List[Row] = []
    for label, nx in (("thin dim on x", thin), ("thin dim on z/y", wide)):
        cs = cache_block_size(dw, bz, nx)
        meas = measure_tiled_code_balance(spec, nx=nx, dw=dw, bz=bz, n_streams=1)
        cfg = ThreadGroupConfig(x_threads=2, component_threads=3)
        eff = tg_efficiency(cfg, nx=nx, nz=wide, bz=bz)
        rows.append(
            {
                "mapping": label,
                "Nx": nx,
                "Cs_MiB": round(cs / 2**20, 2),
                "fits": cs <= spec.usable_l3_bytes,
                "Bc_measured": round(meas.bytes_per_lup, 1),
                "intra_tile_eff": round(eff, 3),
            }
        )
    return rows


def ablation_intra_tile(
    spec: MachineSpec = HASWELL_EP,
    grid: int = 384,
    tg_size: int = 18,
) -> List[Row]:
    """Why multi-dimensional intra-tile parallelization matters (Section
    III-C): wavefront-only parallelism needs B_z >= TG size, inflating the
    cache block; spreading threads over x and components keeps B_z small
    and admits bigger diamonds."""
    rows: List[Row] = []
    budget = spec.usable_l3_bytes
    scenarios: List[Tuple[str, int, ThreadGroupConfig]] = []
    # Wavefront-only: B_z must cover all threads of the group.
    scenarios.append(("wavefront-only", tg_size, ThreadGroupConfig(wavefront_threads=tg_size)))
    # Multi-dimensional splits at small B_z.
    for cfg in enumerate_tg_configs(tg_size, bz=2, nx=grid):
        if cfg.wavefront_threads <= 2 and cfg.component_threads >= 2:
            scenarios.append((f"multi-dim {cfg.label()}", 2, cfg))
            break
    for cfg in enumerate_tg_configs(tg_size, bz=1, nx=grid):
        if cfg.component_threads == 1:
            scenarios.append((f"x-only {cfg.label()}", 1, cfg))
            break
    for label, bz, cfg in scenarios:
        from ..core.models import max_diamond_width

        top = max_diamond_width(bz, grid, budget)
        if top is None:
            rows.append({"scheme": label, "Bz": bz, "max_Dw": "none fits"})
            continue
        meas = measure_tiled_code_balance(spec, nx=grid, dw=top, bz=bz, n_streams=1)
        plan = TilingPlan.build(ny=grid, nz=grid, timesteps=max(2 * top, 8), dw=top, bz=bz)
        res = simulate_tiled(spec, plan, nx=grid, tg_config=cfg,
                             code_balance=meas.bytes_per_lup)
        rows.append(
            {
                "scheme": label,
                "Bz": bz,
                "max_Dw": top,
                "Cs_MiB": round(cache_block_size(top, bz, grid) / 2**20, 1),
                "Bc_measured": round(meas.bytes_per_lup, 1),
                "MLUPs": round(res.mlups, 1),
            }
        )
    return rows
