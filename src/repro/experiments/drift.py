"""Model-vs-measured drift report (the observability regression gate).

The analytic models (Eq. 11/12) and the cache-simulator measurements are
two independent implementations of the same physics; this module compares
them per Fig. 5 point and flags *drift*: a change in the measured value
relative to a pinned expectation.

Raw Eq. 12 is intentionally not the gate.  It assumes a perfectly
fitting cache block, so the measured code balance legitimately deviates
from it by -12% (fitting tiles: the LRU model also reuses across tile
boundaries) up to +676% (thrashing tiles: Eq. 12 simply does not apply
once ``C_s`` exceeds the L3, which is exactly what Fig. 5 demonstrates).
Gating on that deviation would either never fire or always fire.

Instead, ``drift_baseline.json`` pins the *expected measured* code
balance per (D_w, B_z) point, captured from the deterministic LRU
simulation at the time the baseline was pinned.  The drift of a point is
``measured / expected - 1``; the substrate is deterministic, so any
nonzero drift means a behavioural change in the measurement pipeline
(cache model, stream emitters, replay engines, plan construction) and
the gate trips at ``|drift| > budget`` (default 1%).

The raw Eq. 12 deviation and the Eq. 11 cache-block prediction vs the
PMU-measured L3 resident set stay in the report as informational
columns -- they are the *physics* context for the pinned numbers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.models import cache_block_size, diamond_code_balance
from ..machine.measure import measure_tiled_code_balance
from ..machine.spec import HASWELL_EP, MachineSpec

__all__ = [
    "DriftReport",
    "fig5_drift_report",
    "pin_baseline",
    "baseline_path",
    "DRIFT_BUDGET",
    "FIG5_POINTS",
]

#: Relative drift tolerance of the gate (1%).
DRIFT_BUDGET = 0.01

#: The pinned Fig. 5 sweep: (B_z, D_w) per point, grid 480^3, 1WD.
FIG5_POINTS: Tuple[Tuple[int, int], ...] = tuple(
    (bz, dw) for bz in (1, 6, 9) for dw in (4, 8, 12, 16)
)

FIG5_NX = 480


def baseline_path() -> str:
    """The committed baseline next to this module."""
    return os.path.join(os.path.dirname(__file__), "drift_baseline.json")


def _point_key(bz: int, dw: int) -> str:
    return f"bz={bz},dw={dw}"


def _measure_point(spec: MachineSpec, bz: int, dw: int) -> dict:
    """One Fig. 5 point: model predictions and PMU-measured values."""
    meas = measure_tiled_code_balance(spec, nx=FIG5_NX, dw=dw, bz=bz, n_streams=1)
    perf = meas.perf
    measured_bc = perf.code_balance if perf is not None else meas.bytes_per_lup
    resident = perf.resident_bytes if perf is not None else 0.0
    return {
        "Bz": bz,
        "Dw": dw,
        "Bc_model": diamond_code_balance(dw),
        "Bc_measured": measured_bc,
        "Cs_model_bytes": cache_block_size(dw, bz, FIG5_NX),
        "L3_resident_bytes": resident,
    }


def pin_baseline(spec: MachineSpec = HASWELL_EP, path: Optional[str] = None) -> str:
    """(Re)generate the pinned baseline -- run only when a measured change
    is *intended* and reviewed; CI gates against the committed file."""
    doc = {
        "grid_nx": FIG5_NX,
        "budget": DRIFT_BUDGET,
        "points": {
            _point_key(bz, dw): _measure_point(spec, bz, dw)
            for bz, dw in FIG5_POINTS
        },
    }
    out = path or baseline_path()
    with open(out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return out


def load_baseline(path: Optional[str] = None) -> dict:
    with open(path or baseline_path(), "r", encoding="utf-8") as f:
        return json.load(f)


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check."""

    rows: List[dict]
    budget: float

    @property
    def ok(self) -> bool:
        return all(r["within_budget"] for r in self.rows)

    @property
    def worst(self) -> float:
        """Largest absolute per-point drift, in percent."""
        return max((abs(r["drift_pct"]) for r in self.rows), default=0.0)

    def to_json(self) -> dict:
        return {
            "budget_pct": self.budget * 100.0,
            "ok": self.ok,
            "worst_drift_pct": self.worst,
            "rows": self.rows,
        }


def fig5_drift_report(
    spec: MachineSpec = HASWELL_EP,
    budget: float = DRIFT_BUDGET,
    baseline: Optional[dict] = None,
) -> DriftReport:
    """Measure every pinned Fig. 5 point and compare against the baseline.

    Per-point columns:

    * ``Bc_measured`` / ``Bc_expected`` / ``drift_pct`` -- the gate: the
      PMU-measured code balance vs the pinned expectation.
    * ``Bc_model`` / ``model_dev_pct`` -- informational: raw Eq. 12 and
      how far the measurement legitimately sits from it.
    * ``Cs_model_MiB`` / ``L3_resident_MiB`` -- informational: the Eq. 11
      cache-block prediction vs the PMU-observed L3 resident set.
    """
    base = baseline if baseline is not None else load_baseline()
    points: Dict[str, dict] = base["points"]
    rows: List[dict] = []
    for bz, dw in FIG5_POINTS:
        cur = _measure_point(spec, bz, dw)
        exp = points[_point_key(bz, dw)]
        expected = float(exp["Bc_measured"])
        measured = float(cur["Bc_measured"])
        drift = measured / expected - 1.0 if expected else 0.0
        model = float(cur["Bc_model"])
        rows.append(
            {
                "Bz": bz,
                "Dw": dw,
                "Bc_model": round(model, 1),
                "Bc_measured": round(measured, 3),
                "Bc_expected": round(expected, 3),
                "drift_pct": round(drift * 100.0, 4),
                "within_budget": abs(drift) <= budget,
                "model_dev_pct": round((measured / model - 1.0) * 100.0, 1),
                "Cs_model_MiB": round(cur["Cs_model_bytes"] / 2**20, 2),
                "L3_resident_MiB": round(cur["L3_resident_bytes"] / 2**20, 2),
            }
        )
    return DriftReport(rows=rows, budget=budget)
