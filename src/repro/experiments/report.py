"""Rendering and persistence of experiment results.

The figure generators return plain data (lists of dict rows); this module
prints them as aligned ASCII tables / series and writes JSON next to the
benchmark outputs so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "save_json", "print_report"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows of dicts as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.rjust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[tuple]], x_label: str,
                  y_label: str, title: str | None = None) -> str:
    """Render {series name: [(x, y), ...]} as a compact comparison table."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    rows = []
    for x in xs:
        row: dict[str, Any] = {x_label: x}
        for name, pts in series.items():
            val = dict(pts).get(x)
            row[name] = val if val is not None else ""
        rows.append(row)
    head = f"{title}  [{y_label}]" if title else f"[{y_label}]"
    return format_table(rows, title=head)


def save_json(data: Any, path: str) -> str:
    """Persist a result object as JSON (creating parent directories)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True, default=str)
    return path


def print_report(*blocks: str) -> None:
    for b in blocks:
        print()
        print(b)
