"""Experiment harness: regenerates every table and figure of the paper."""

from .drift import DriftReport, fig5_drift_report, pin_baseline
from .figures import (
    GRIDS,
    ablation_intra_tile,
    ablation_machine_balance,
    ablation_thin_domain,
    fig5_cache_model,
    fig6_thread_scaling,
    fig7_grid_scaling,
    fig8_tg_size,
    section3_table,
)
from .report import format_series, format_table, print_report, save_json

__all__ = [
    "DriftReport",
    "GRIDS",
    "ablation_intra_tile",
    "fig5_drift_report",
    "pin_baseline",
    "ablation_machine_balance",
    "ablation_thin_domain",
    "fig5_cache_model",
    "fig6_thread_scaling",
    "fig7_grid_scaling",
    "fig8_tg_size",
    "format_series",
    "format_table",
    "print_report",
    "save_json",
    "section3_table",
]
