"""Live solve-progress events: bounded ring buffers + forked-worker sink.

Solvers publish one event per convergence check (sweep count, per-lane
residuals, frozen/compacted lanes), the scheduler publishes lifecycle
events (queued/running/done), and the checkpoint manager publishes save
and resume events.  Every event lands in a per-job **bounded ring
buffer** (:class:`RingBuffer`): publishing is O(1), takes one small
lock, and when the buffer is full the *oldest* event is dropped -- the
solver is never blocked or slowed by a slow (or absent) reader.  Readers
poll with a sequence cursor and are told how many events they missed.

Forked process workers cannot reach the parent's buffers, so a child
hub is configured with a *sink directory*
(:meth:`ProgressHub.configure_sink`): every publish appends one JSON
line to ``events-<job_id>.jsonl`` (line-buffered, best-effort).  The
parent's hub tails those files on demand (:meth:`ProgressHub.sync_job`),
republishing new lines into its own ring, so the HTTP event stream and
``repro tail`` read one uniform source whether the job ran in a thread
or a forked process.

Event schema: every event is a JSON object with ``seq`` (per-job,
monotonic), ``t`` (unix seconds), ``kind`` (``state`` | ``progress`` |
``checkpoint`` | ``batch`` | ``end``) and kind-specific fields.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = ["RingBuffer", "ProgressHub", "event_file"]

#: Default per-job ring capacity (a 3000-step solve at cadence 20 is 150
#: progress events, so 512 keeps whole solves around with headroom).
DEFAULT_CAPACITY = 512


def event_file(directory: str, job_id: str) -> str:
    """The sink file a forked worker appends a job's events to."""
    return os.path.join(directory, f"events-{job_id}.jsonl")


class RingBuffer:
    """Bounded, seq-numbered event buffer (oldest dropped on overflow)."""

    __slots__ = ("_lock", "_events", "_next_seq", "dropped", "closed")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._next_seq = 0
        #: Events discarded because the ring was full.
        self.dropped = 0
        #: True once a terminal event was appended (readers may stop).
        self.closed = False

    def append(self, event: dict) -> dict:
        """Stamp ``seq`` and store; never blocks beyond the tiny lock."""
        with self._lock:
            event = dict(event)
            event["seq"] = self._next_seq
            self._next_seq += 1
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(event)
            if event.get("kind") == "end":
                self.closed = True
        return event

    def since(self, cursor: int = -1) -> Tuple[List[dict], int, int]:
        """Events with ``seq > cursor``: ``(events, new_cursor, missed)``.

        ``missed`` counts events that fell off the ring before this
        reader saw them (0 for a keeping-up reader).
        """
        with self._lock:
            events = [e for e in self._events if e["seq"] > cursor]
            if events:
                missed = max(events[0]["seq"] - cursor - 1, 0)
                return events, events[-1]["seq"], missed
            return [], max(cursor, self._next_seq - 1), 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class ProgressHub:
    """Job-id keyed ring buffers, with an optional child-process sink."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._buffers: Dict[str, RingBuffer] = {}
        # -- child (sink) side --
        self._sink_dir: Optional[str] = None
        self._sink_files: Dict[str, object] = {}
        # -- parent (tail) side --
        self._tail_dir: Optional[str] = None
        self._tail_offsets: Dict[str, int] = {}
        # -- counters --
        self.published = 0

    # -- buffer plumbing -------------------------------------------------------

    def buffer(self, job_id: str) -> RingBuffer:
        buf = self._buffers.get(job_id)
        if buf is None:
            with self._lock:
                buf = self._buffers.setdefault(job_id,
                                               RingBuffer(self.capacity))
        return buf

    def known(self, job_id: str) -> bool:
        return job_id in self._buffers

    # -- publishing ------------------------------------------------------------

    def publish(self, job_id: str, kind: str, **payload) -> dict:
        """Record one event; O(1), never blocks the caller on readers."""
        event = {"kind": kind, "t": time.time(), **payload}
        event = self.buffer(job_id).append(event)
        self.published += 1
        if self._sink_dir is not None:
            self._sink_write(job_id, event)
        return event

    # -- child-process sink ----------------------------------------------------

    def configure_sink(self, directory: Optional[str]) -> None:
        """Mirror every publish into ``events-<job>.jsonl`` under
        ``directory`` (how forked workers reach the parent's readers)."""
        self._sink_dir = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _sink_write(self, job_id: str, event: dict) -> None:
        try:
            f = self._sink_files.get(job_id)
            if f is None:
                f = open(event_file(self._sink_dir, job_id), "a",
                         encoding="utf-8")
                self._sink_files[job_id] = f
            f.write(json.dumps(event, sort_keys=True) + "\n")
            f.flush()
        except OSError:
            pass  # telemetry is best-effort; the solve must not care

    def close_sink(self) -> None:
        for f in self._sink_files.values():
            try:
                f.close()
            except OSError:
                pass
        self._sink_files.clear()

    # -- parent-side file tailing ----------------------------------------------

    def configure_tail(self, directory: Optional[str]) -> None:
        """Where to look for child-written event files when syncing."""
        self._tail_dir = directory

    def sync_job(self, job_id: str) -> int:
        """Pull any new child-written events for ``job_id`` into the
        parent ring; returns how many lines were ingested."""
        if self._tail_dir is None:
            return 0
        path = event_file(self._tail_dir, job_id)
        try:
            size = os.path.getsize(path)
        except OSError:
            return 0
        offset = self._tail_offsets.get(job_id, 0)
        if size <= offset:
            return 0
        ingested = 0
        try:
            with open(path, "r", encoding="utf-8") as f:
                f.seek(offset)
                for line in f:
                    if not line.endswith("\n"):
                        break  # torn tail: re-read it next sync
                    offset += len(line.encode("utf-8"))
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue
                    event.pop("seq", None)  # parent ring re-stamps
                    kind = event.pop("kind", "progress")
                    self.publish(job_id, kind, **event)
                    ingested += 1
        except OSError:
            return ingested
        self._tail_offsets[job_id] = offset
        return ingested

    # -- reading ---------------------------------------------------------------

    def events_since(self, job_id: str, cursor: int = -1,
                     ) -> Tuple[List[dict], int, int]:
        """Uniform read path: sync any child file, then drain the ring."""
        self.sync_job(job_id)
        return self.buffer(job_id).since(cursor)

    def end(self, job_id: str, **payload) -> None:
        """Publish the terminal event readers stop on."""
        self.publish(job_id, "end", **payload)

    def dropped_total(self) -> int:
        """Events evicted across all rings (the overflow gauge)."""
        with self._lock:
            return sum(b.dropped for b in self._buffers.values())

    def forget(self, job_id: str) -> None:
        with self._lock:
            self._buffers.pop(job_id, None)
            self._tail_offsets.pop(job_id, None)

    def reset(self) -> None:
        self.close_sink()
        with self._lock:
            self._buffers.clear()
            self._tail_offsets.clear()
        self._sink_dir = None
        self._tail_dir = None
        self.published = 0
