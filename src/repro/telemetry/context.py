"""Job-scoped telemetry context: which job (and trace id) is running.

The scheduler sets a :class:`JobContext` around every attempt (thread
workers per-thread, forked workers process-wide after the fork), the
solvers read it to tag progress events and spans, and it travels with
the job id so one Chrome trace shows submit -> queue -> tune -> sweep ->
checkpoint -> store under a single ``trace`` argument.

Thread-local on purpose: concurrent worker threads each run a different
job, and a fork inherits (then overwrites) the parent's value.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

__all__ = ["JobContext", "current", "use", "new_trace_id"]


@dataclass(frozen=True)
class JobContext:
    """Identity of the unit of work the current thread is executing."""

    job_id: str
    trace_id: str
    #: Attempt number (1-based) -- lets events distinguish retries.
    attempt: int = 1


class _Holder(threading.local):
    value: Optional[JobContext] = None


_HOLDER = _Holder()


def new_trace_id() -> str:
    """A fresh 16-hex trace id (one per submitted job)."""
    return uuid.uuid4().hex[:16]


def current() -> Optional[JobContext]:
    return _HOLDER.value


def set_current(ctx: Optional[JobContext]) -> None:
    """Install a context without scoping (forked-worker entry)."""
    _HOLDER.value = ctx


@contextmanager
def use(ctx: JobContext):
    """Scope ``ctx`` to the current thread for the duration."""
    prev = _HOLDER.value
    _HOLDER.value = ctx
    try:
        yield ctx
    finally:
        _HOLDER.value = prev
