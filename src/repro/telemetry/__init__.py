"""End-to-end telemetry: metrics, live progress and job-scoped tracing.

The facade every other layer goes through:

* :func:`enabled` / :func:`enable` / :func:`disable` -- the master gate.
  Default comes from ``REPRO_TELEMETRY`` (unset = off); the serving
  stack (``Scheduler.start`` / ``repro serve``) enables it explicitly
  unless the environment forces it off with ``REPRO_TELEMETRY=0``.
  When off, every hook below is a single attribute load plus a boolean
  check -- the <2%-overhead contract the tests assert.
* :data:`METRICS` -- the process-global :class:`MetricsRegistry`
  rendered by ``GET /metrics`` (Prometheus text) and its JSON fallback.
* :data:`PROGRESS` -- the process-global :class:`ProgressHub` behind
  ``GET /jobs/<id>/events`` and ``repro tail``.
* :func:`publish` -- record a progress event for the current job
  context (no-op without a context or with telemetry off).
* :func:`span_args` -- tag tracing spans with the current trace id.

Solvers, the scheduler and the checkpoint manager never import the
metrics classes directly; they call the helpers here, which keeps the
disabled path out of their hot loops and the bit-identity contract
trivially intact (telemetry only ever *reads* solver state).
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import config
from .context import JobContext, current, new_trace_id, set_current, use
from .metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .progress import ProgressHub, RingBuffer, event_file

__all__ = [
    "METRICS",
    "PROGRESS",
    "PROMETHEUS_CONTENT_TYPE",
    "JobContext",
    "MetricsRegistry",
    "ProgressHub",
    "RingBuffer",
    "current",
    "disable",
    "enable",
    "enabled",
    "event_file",
    "new_trace_id",
    "publish",
    "set_current",
    "span_args",
    "use",
]

#: Process-global registries (children after a fork mutate their own
#: copy-on-write copies; progress crosses back via the file sink).
METRICS = MetricsRegistry()
PROGRESS = ProgressHub()

class _State:
    """One-attribute gate so the disabled hot path is a load + compare."""

    __slots__ = ("on", "forced")

    def __init__(self):
        mode = config.telemetry_mode()
        self.forced = mode is not None
        self.on = bool(mode)


_STATE = _State()


def enabled() -> bool:
    return _STATE.on


def enable(force: bool = False) -> bool:
    """Turn telemetry on (the serving stack calls this at startup).

    An explicit ``REPRO_TELEMETRY=0`` in the environment wins unless
    ``force`` is given -- operators can veto serving-layer telemetry.
    Returns the resulting state.
    """
    if force or not (_STATE.forced and not _env_truthy()):
        _STATE.on = True
    return _STATE.on


def disable() -> None:
    _STATE.on = False


def _env_truthy() -> bool:
    return bool(config.telemetry_mode())


def refresh_from_env() -> None:
    """Re-read ``REPRO_TELEMETRY`` (tests mutate the environment)."""
    global _STATE
    _STATE = _State()


# -- progress ------------------------------------------------------------------


def publish(kind: str, **payload) -> None:
    """Record a progress event for the current job context.

    The disabled path is one attribute load and a ``return``; with no
    job context (direct library use) it is two.
    """
    if not _STATE.on:
        return
    ctx = current()
    if ctx is None:
        return
    PROGRESS.publish(ctx.job_id, kind, **payload)
    events_published().inc()


def publish_for(job_id: str, kind: str, **payload) -> None:
    """Record an event for an explicit job id (scheduler lifecycle)."""
    if not _STATE.on:
        return
    PROGRESS.publish(job_id, kind, **payload)
    events_published().inc()


# -- tracing glue --------------------------------------------------------------


def span_args(args: Optional[Dict] = None) -> Optional[Dict]:
    """Span args plus the current trace id (when a context is set)."""
    ctx = current()
    if ctx is None:
        return args
    out = dict(args) if args else {}
    out["trace"] = ctx.trace_id
    return out


# -- the standard instrument set -----------------------------------------------
# Accessors create-or-return by name, so they survive METRICS.reset() in
# tests and cost one dict lookup on the hot path.


def jobs_submitted() -> Counter:
    return METRICS.counter("jobs_submitted_total",
                           "Job submissions accepted by the scheduler")


def job_outcomes() -> Counter:
    return METRICS.counter(
        "job_outcomes_total",
        "Terminal job outcomes plus coalesced submissions",
        labelnames=("outcome",))


def queue_wait() -> Histogram:
    return METRICS.histogram(
        "queue_wait_seconds",
        "Time jobs spent queued before a worker picked them up")


def solve_latency() -> Histogram:
    return METRICS.histogram(
        "solve_latency_seconds",
        "Wall-clock of one job attempt, by job kind",
        labelnames=("kind",))


def sweeps_total() -> Counter:
    return METRICS.counter("solver_sweeps_total",
                           "THIIM time steps advanced by solver loops")


def solve_rate() -> Gauge:
    return METRICS.gauge(
        "solver_mlups",
        "Lattice updates per second of the last finished solve, in MLUP/s")


def sweep_rate() -> Gauge:
    return METRICS.gauge("solver_sweeps_per_second",
                         "Sweep rate of the last finished solve")


def events_published() -> Counter:
    return METRICS.counter("progress_events_total",
                           "Progress events published into ring buffers")


def checkpoint_writes() -> Counter:
    return METRICS.counter("checkpoints_written_total",
                           "Solver checkpoint snapshots written")


def checkpoint_resumes() -> Counter:
    return METRICS.counter("checkpoints_resumed_total",
                           "Solves resumed from a checkpoint snapshot")


def cluster_ranks() -> Gauge:
    return METRICS.gauge("cluster_ranks",
                         "Rank processes of the most recent distributed solve")


def cluster_halo_bytes() -> Counter:
    return METRICS.counter("cluster_halo_bytes_total",
                           "Halo bytes exchanged by distributed solves",
                           labelnames=("axis",))


def cluster_halo_messages() -> Counter:
    return METRICS.counter("cluster_halo_messages_total",
                           "Halo messages exchanged by distributed solves")


def cluster_rank_failures() -> Counter:
    return METRICS.counter("cluster_rank_failures_total",
                           "Rank processes that died mid-solve")


def fleet_requests() -> Counter:
    return METRICS.counter("fleet_requests_total",
                           "Requests the fleet gateway forwarded to nodes",
                           labelnames=("route", "outcome"))


def fleet_failovers() -> Counter:
    return METRICS.counter(
        "fleet_failovers_total",
        "Requests re-routed to a replica after the home node failed")


def fleet_resubmits() -> Counter:
    return METRICS.counter(
        "fleet_resubmits_total",
        "Jobs the gateway resubmitted to a replica after losing "
        "their home node mid-flight")


def fleet_replications() -> Counter:
    return METRICS.counter(
        "fleet_replications_total",
        "Result documents the gateway pushed to replica stores, by "
        "outcome (ok, dedup, error)",
        labelnames=("outcome",))


def fleet_quota_rejections() -> Counter:
    return METRICS.counter(
        "fleet_quota_rejections_total",
        "Submits the gateway rejected with 429 for an over-quota tenant")


def fleet_retry_budget_spent() -> Counter:
    return METRICS.counter(
        "fleet_retry_budget_spent_total",
        "Failover/resubmit retries that drew from the gateway's global "
        "retry budget")


def fleet_spec_cache_evictions() -> Counter:
    return METRICS.counter(
        "fleet_spec_cache_evictions_total",
        "Specs evicted from the gateway's LRU resubmission cache")


def fleet_nodes() -> Gauge:
    return METRICS.gauge("fleet_nodes",
                         "Fleet nodes by liveness state",
                         labelnames=("state",))


def fleet_shard_version() -> Gauge:
    return METRICS.gauge("fleet_shard_version",
                         "Current shard-map version of the gateway")


def batch_occupancy() -> Gauge:
    return METRICS.gauge(
        "batch_lane_occupancy",
        "Active lanes of the most recent batched convergence check")


def lanes_compacted() -> Counter:
    return METRICS.counter(
        "batch_lanes_compacted_total",
        "Batch lanes frozen (converged/diverged) and compacted away")
