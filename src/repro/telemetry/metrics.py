"""Lock-cheap metrics registry with Prometheus text exposition.

Three instrument kinds, modelled on the Prometheus client data model but
dependency-free:

* :class:`Counter` -- a monotonically increasing float (``inc``);
* :class:`Gauge`   -- a float that goes up and down (``set``/``inc``);
* :class:`Histogram` -- fixed cumulative buckets plus ``_sum``/``_count``
  (``observe``); bucket edges are chosen at creation and never change, so
  scrapes are always comparable.

Instruments are created through a :class:`MetricsRegistry` and support
labels via :meth:`~_Instrument.labels` (one child per label-value tuple).
Mutation takes one small per-instrument lock -- no global lock is ever
held while counting, which is what keeps the solver-side cost down to a
dict lookup and a guarded ``+=``.

Two readouts:

* :meth:`MetricsRegistry.render` -- the Prometheus text exposition
  format (``text/plain; version=0.0.4``): ``# HELP``/``# TYPE`` headers,
  escaped label values, ``_bucket{le="..."}`` series ending in ``+Inf``.
* :meth:`MetricsRegistry.snapshot` -- a plain JSON-able dict (the
  ``/metrics?format=json`` fallback and what the tests assert on).

Scrape-time *collectors* (:meth:`MetricsRegistry.register_collector`)
let subsystems that already keep their own counters (scheduler stats,
plan registry, resilience counters) be reflected into gauges at render
time instead of double-counting on every event.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
]

#: The exposition content type (version 0.0.4 is the text format).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Seconds buckets spanning sub-millisecond checks to multi-minute solves.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0,
)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


class _Child:
    """One labelled series of an instrument."""

    __slots__ = ("_lock", "value", "sum", "count", "buckets")

    def __init__(self, edges: Optional[Tuple[float, ...]] = None):
        self._lock = threading.Lock()
        self.value = 0.0
        self.sum = 0.0
        self.count = 0
        #: Per-edge (non-cumulative) bucket counts; cumulated at render.
        self.buckets = [0] * (len(edges) + 1) if edges is not None else None


class _Instrument:
    """Shared machinery of the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()
        self._edges: Optional[Tuple[float, ...]] = None
        if not self.labelnames:
            # Unlabelled instruments get their single child eagerly so the
            # hot path is one attribute load.
            self._default = self._child(())
        else:
            self._default = None

    def _child(self, key: Tuple[str, ...]) -> _Child:
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, _Child(self._edges))
        return child

    def labels(self, *values, **kv) -> "_Bound":
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name")
            values = tuple(kv[name] for name in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values}")
        return _Bound(self, self._child(tuple(str(v) for v in values)))

    # -- readout ---------------------------------------------------------------

    def _series(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        with self._lock:
            return sorted(self._children.items())

    def _labelstr(self, key: Tuple[str, ...], extra: str = "") -> str:
        parts = [f'{n}="{_escape_label(v)}"'
                 for n, v in zip(self.labelnames, key)]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


class _Bound:
    """An instrument bound to one labelled child."""

    __slots__ = ("_inst", "_child")

    def __init__(self, inst: _Instrument, child: _Child):
        self._inst = inst
        self._child = child

    def inc(self, amount: float = 1.0) -> None:
        self._inst._inc(self._child, amount)

    def set(self, value: float) -> None:
        self._inst._set(self._child, value)

    def observe(self, value: float) -> None:
        self._inst._observe(self._child, value)


class Counter(_Instrument):
    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._inc(self._default, amount)

    def _inc(self, child: _Child, amount: float) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with child._lock:
            child.value += amount

    def _set(self, child, value) -> None:
        raise TypeError("counters cannot be set")

    def _observe(self, child, value) -> None:
        raise TypeError("counters cannot observe")


class Gauge(_Instrument):
    kind = "gauge"

    def set(self, value: float) -> None:
        self._set(self._default, value)

    def inc(self, amount: float = 1.0) -> None:
        self._inc(self._default, amount)

    def _set(self, child: _Child, value: float) -> None:
        with child._lock:
            child.value = float(value)

    def _inc(self, child: _Child, amount: float) -> None:
        with child._lock:
            child.value += amount

    def _observe(self, child, value) -> None:
        raise TypeError("gauges cannot observe")


class Histogram(_Instrument):
    """Fixed-bucket histogram; edges are upper bounds, ``+Inf`` implied."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if len(set(edges)) != len(edges):
            raise ValueError("histogram bucket edges must be unique")
        self._pre_edges = edges
        super().__init__(name, help, labelnames)
        self._edges = edges
        if self._default is not None:
            # The eager default child was built before _edges was set.
            self._default.buckets = [0] * (len(edges) + 1)

    @property
    def edges(self) -> Tuple[float, ...]:
        return self._pre_edges

    def observe(self, value: float) -> None:
        self._observe(self._default, value)

    def _observe(self, child: _Child, value: float) -> None:
        v = float(value)
        idx = len(self._pre_edges)
        for i, edge in enumerate(self._pre_edges):
            if v <= edge:
                idx = i
                break
        with child._lock:
            child.buckets[idx] += 1
            child.sum += v
            child.count += 1

    def _inc(self, child, amount) -> None:
        raise TypeError("histograms cannot inc")

    def _set(self, child, value) -> None:
        raise TypeError("histograms cannot be set")


class MetricsRegistry:
    """Named instruments plus scrape-time collectors."""

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()
        self._collectors: List[Callable[[], None]] = []

    # -- creation (idempotent by name) -----------------------------------------

    def _register(self, cls, name: str, help: str, labelnames=(),
                  **kw) -> _Instrument:
        full = name if name.startswith(self.prefix) else f"{self.prefix}_{name}"
        with self._lock:
            inst = self._instruments.get(full)
            if inst is None:
                inst = cls(full, help, labelnames, **kw)
                self._instruments[full] = inst
            elif not isinstance(inst, cls):
                raise ValueError(f"{full} already registered as {inst.kind}")
            return inst

    def counter(self, name: str, help: str, labelnames=()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames=()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str, labelnames=(),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    # -- collectors ------------------------------------------------------------

    def register_collector(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Run ``fn`` before every render/snapshot (it sets gauges from
        external counter sources).  Returns ``fn`` as the unregister
        handle."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)
        return fn

    def unregister_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            try:
                fn()
            except Exception:  # a broken collector must not break scrapes
                pass

    # -- readout ---------------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text exposition (``version=0.0.4``)."""
        self._collect()
        lines: List[str] = []
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, inst in instruments:
            lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            for key, child in inst._series():
                with child._lock:
                    value = child.value
                    total = child.count
                    vsum = child.sum
                    buckets = list(child.buckets) if child.buckets else None
                if buckets is not None:
                    cum = 0
                    for edge, n in zip(inst.edges + (math.inf,), buckets):
                        cum += n
                        le = inst._labelstr(
                            key, f'le="{_format_value(edge)}"')
                        lines.append(f"{name}_bucket{le} {cum}")
                    lines.append(
                        f"{name}_sum{inst._labelstr(key)} "
                        f"{_format_value(vsum)}")
                    lines.append(
                        f"{name}_count{inst._labelstr(key)} {total}")
                else:
                    lines.append(
                        f"{name}{inst._labelstr(key)} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """JSON-able form: name -> {kind, help, series: [...]}."""
        self._collect()
        out: Dict[str, object] = {}
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, inst in instruments:
            series = []
            for key, child in inst._series():
                with child._lock:
                    entry: Dict[str, object] = {
                        "labels": dict(zip(inst.labelnames, key)),
                    }
                    if child.buckets is not None:
                        cum, cum_counts = 0, []
                        for n in child.buckets:
                            cum += n
                            cum_counts.append(cum)
                        entry["buckets"] = dict(
                            zip([_format_value(e)
                                 for e in inst.edges + (math.inf,)],
                                cum_counts))
                        entry["sum"] = child.sum
                        entry["count"] = child.count
                    else:
                        entry["value"] = child.value
                series.append(entry)
            out[name] = {"kind": inst.kind, "help": inst.help,
                         "series": series}
        return out

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Forked workers reset their (copy-on-write) registry at entry, so
        the snapshot they spool home is a pure delta: counters and
        histogram buckets add, gauges adopt the child's last value --
        the metrics analogue of ``TraceRecorder.merge_child``.
        """
        makers = {"counter": self.counter, "gauge": self.gauge,
                  "histogram": self.histogram}
        for name, doc in snap.items():
            maker = makers.get(doc.get("kind"))
            if maker is None:
                continue
            first = (doc.get("series") or [{}])[0]
            labelnames = tuple(first.get("labels") or {})
            if doc["kind"] == "histogram":
                edges = tuple(float(e) for e in first.get("buckets", {})
                              if e != "+Inf")
                inst = self.histogram(name, doc.get("help", ""), labelnames,
                                      buckets=edges or DEFAULT_LATENCY_BUCKETS)
            else:
                inst = maker(name, doc.get("help", ""), labelnames)
            for series in doc.get("series") or []:
                key = tuple(str(series.get("labels", {}).get(n, ""))
                            for n in labelnames)
                child = inst._child(key)
                with child._lock:
                    if doc["kind"] == "histogram":
                        # Snapshot buckets are cumulative; store per-edge.
                        prev = 0
                        for i, cum in enumerate(series["buckets"].values()):
                            child.buckets[i] += cum - prev
                            prev = cum
                        child.sum += series.get("sum", 0.0)
                        child.count += series.get("count", 0)
                    elif doc["kind"] == "counter":
                        child.value += series.get("value", 0.0)
                    else:  # gauge: the child's latest reading wins
                        child.value = series.get("value", 0.0)

    def get_value(self, name: str, labels: Tuple[str, ...] = ()) -> float:
        """Test helper: current value (or count) of one series."""
        full = name if name.startswith(self.prefix) else f"{self.prefix}_{name}"
        inst = self._instruments[full]
        child = inst._children.get(tuple(str(v) for v in labels))
        if child is None:
            return 0.0
        with child._lock:
            return float(child.count if child.buckets is not None
                         else child.value)

    def reset(self) -> None:
        """Drop every instrument and collector (tests only)."""
        with self._lock:
            self._instruments.clear()
            self._collectors.clear()
