"""Persistence and export of simulation state.

A production optical-simulation campaign (thousands of runs, Section VI
of the paper) needs checkpointing and post-processing hooks:

* :func:`save_state` / :func:`load_state` -- lossless checkpoints of a
  :class:`FieldState` (NumPy ``.npz``, complex128, with grid metadata);
* :func:`save_coefficients` / :func:`load_coefficients` -- the 28
  coefficient arrays plus scheme metadata, so a sweep can resume without
  re-rasterizing the scene;
* :func:`export_vtk` -- legacy-ASCII VTK structured-points export of the
  recombined physical fields (|E|, |H|, per-component real/imag) for
  ParaView-style inspection;
* :func:`cross_section` -- axis-aligned slices of a derived quantity.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping

import numpy as np

from .fdfd.coefficients import CoefficientSet
from .fdfd.fields import FieldState
from .fdfd.grid import Grid
from .fdfd.specs import ALL_COMPONENTS

__all__ = [
    "save_state",
    "load_state",
    "save_coefficients",
    "load_coefficients",
    "export_vtk",
    "cross_section",
]


def _grid_meta(grid: Grid) -> Dict[str, np.ndarray]:
    return {
        "_shape": np.array(grid.shape, dtype=np.int64),
        "_spacing": np.array(grid.spacing, dtype=np.float64),
        "_periodic": np.array(grid.periodic, dtype=np.bool_),
    }


def _grid_from_meta(data: Mapping[str, np.ndarray]) -> Grid:
    nz, ny, nx = (int(v) for v in data["_shape"])
    dz, dy, dx = (float(v) for v in data["_spacing"])
    pz, py, px = (bool(v) for v in data["_periodic"])
    return Grid(nz=nz, ny=ny, nx=nx, dz=dz, dy=dy, dx=dx, periodic=(pz, py, px))


def save_state(fields: FieldState, path: str) -> str:
    """Checkpoint the twelve component arrays plus grid metadata."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    arrays = {name: fields[name] for name in ALL_COMPONENTS}
    np.savez_compressed(path, **arrays, **_grid_meta(fields.grid))
    return path


def load_state(path: str) -> FieldState:
    """Restore a checkpoint written by :func:`save_state`."""
    with np.load(path) as data:
        grid = _grid_from_meta(data)
        arrays = {name: np.ascontiguousarray(data[name]) for name in ALL_COMPONENTS}
    return FieldState(grid, arrays)


def save_coefficients(coeffs: CoefficientSet, path: str) -> str:
    """Checkpoint the 28 coefficient arrays plus scheme metadata."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    meta = _grid_meta(coeffs.grid)
    meta["_omega"] = np.array(coeffs.omega)
    meta["_tau"] = np.array(coeffs.tau)
    if coeffs.back_mask is not None:
        meta["_back_mask"] = coeffs.back_mask
    np.savez_compressed(path, **coeffs.arrays, **meta)
    return path


def load_coefficients(path: str) -> CoefficientSet:
    with np.load(path) as data:
        grid = _grid_from_meta(data)
        arrays = {
            k: np.ascontiguousarray(data[k])
            for k in data.files
            if not k.startswith("_")
        }
        back = data["_back_mask"] if "_back_mask" in data.files else None
        omega = float(data["_omega"])
        tau = float(data["_tau"])
    return CoefficientSet(grid=grid, omega=omega, tau=tau, arrays=arrays,
                          back_mask=back)


def export_vtk(fields: FieldState, path: str, quantities: tuple[str, ...] = ("Emag", "Hmag")) -> str:
    """Write a legacy-ASCII VTK STRUCTURED_POINTS file.

    Supported quantities: ``Emag``/``Hmag`` (field magnitudes) and any
    physical component name like ``Ex``/``Hz`` (exported as real and
    imaginary scalars).  VTK's fastest-varying axis is x, matching the
    array layout, so the data streams out in natural order.
    """
    grid = fields.grid
    nz, ny, nx = grid.shape

    def magnitude(which: str) -> np.ndarray:
        comps = fields.e_vector() if which == "E" else fields.h_vector()
        return np.sqrt(sum(np.abs(c) ** 2 for c in comps))

    scalars: Dict[str, np.ndarray] = {}
    for q in quantities:
        if q == "Emag":
            scalars["Emag"] = magnitude("E")
        elif q == "Hmag":
            scalars["Hmag"] = magnitude("H")
        elif q[0] in "EH" and len(q) == 2:
            c = fields.combined(q)
            scalars[f"{q}_re"] = c.real
            scalars[f"{q}_im"] = c.imag
        else:
            raise ValueError(f"unknown quantity {q!r}")

    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        fh.write("# vtk DataFile Version 3.0\n")
        fh.write("repro THIIM field export\n")
        fh.write("ASCII\n")
        fh.write("DATASET STRUCTURED_POINTS\n")
        fh.write(f"DIMENSIONS {nx} {ny} {nz}\n")
        fh.write("ORIGIN 0 0 0\n")
        fh.write(f"SPACING {grid.dx:g} {grid.dy:g} {grid.dz:g}\n")
        fh.write(f"POINT_DATA {nx * ny * nz}\n")
        for name, arr in scalars.items():
            fh.write(f"SCALARS {name} double 1\n")
            fh.write("LOOKUP_TABLE default\n")
            flat = arr.astype(np.float64).ravel()  # (z, y, x) C-order = x fastest
            np.savetxt(fh, flat, fmt="%.9g")
    return path


def cross_section(fields: FieldState, quantity: str, axis: str, index: int) -> np.ndarray:
    """An axis-aligned slice of |E|, |H| or a physical component magnitude.

    ``axis`` is ``"z"``, ``"y"`` or ``"x"``; returns a 2-D real array.
    """
    if quantity == "Emag":
        comps = fields.e_vector()
        data = np.sqrt(sum(np.abs(c) ** 2 for c in comps))
    elif quantity == "Hmag":
        comps = fields.h_vector()
        data = np.sqrt(sum(np.abs(c) ** 2 for c in comps))
    elif quantity[0] in "EH" and len(quantity) == 2:
        data = np.abs(fields.combined(quantity))
    else:
        raise ValueError(f"unknown quantity {quantity!r}")
    axes = {"z": 0, "y": 1, "x": 2}
    if axis not in axes:
        raise ValueError(f"axis must be one of z/y/x, got {axis!r}")
    a = axes[axis]
    n = fields.grid.axis_len(a)
    if not (0 <= index < n):
        raise IndexError(f"index {index} outside axis of {n} cells")
    return np.take(data, index, axis=a)
