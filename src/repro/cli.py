"""Command-line interface.

Seven subcommands cover the library's workflows::

    repro solve    --preset absorber --grid 48 --wavelength 12 --tol 1e-5
    repro tune     --grid 384 --threads 18 --variant mwd
    repro figures  --which fig6 --out results/
    repro plan     --ny 64 --nz 64 --steps 16 --dw 8 --bz 4
    repro bench    tune --engine reference --top 20
    repro counters --workload tiled --group MEM,CACHE
    repro trace    --out trace.json --grid 192

Observability switches:

* ``--perf-group GROUP[,GROUP]`` on ``solve`` / ``tune`` / ``figures``
  prints the simulated PMU's likwid-style counter tables after the run;
* ``REPRO_TRACE=path.json`` records a structured trace of any command
  and writes Chrome-trace JSON (``chrome://tracing`` / Perfetto) plus a
  JSONL sibling on exit;
* ``repro figures --which drift`` runs the model-vs-measured drift gate
  (exit code 3 when a point drifts beyond the budget).

``repro`` is installed as a console script; :func:`main` accepts an
``argv`` list so the tests can drive it in-process.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="THIIM electromagnetics + multicore wavefront diamond blocking (IPDPS'16 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("solve", help="run a THIIM solve on a preset scene")
    s.add_argument("--preset", choices=("vacuum", "absorber", "mirror", "tandem"),
                   default="absorber")
    s.add_argument("--grid", type=int, default=48, help="cells per axis (z gets 2x)")
    s.add_argument("--wavelength", type=float, default=12.0)
    s.add_argument("--tol", type=float, default=1e-5)
    s.add_argument("--max-steps", type=int, default=3000)
    s.add_argument("--tiled", action="store_true",
                   help="advance through the wavefront-diamond traversal")
    s.add_argument("--dw", type=int, default=4)
    s.add_argument("--bz", type=int, default=2)
    s.add_argument("--save", metavar="FILE.npz", help="checkpoint the final fields")
    s.add_argument("--vtk", metavar="FILE.vtk", help="export |E|,|H| for visualization")
    _add_perf_group(s)

    t = sub.add_parser("tune", help="auto-tune blocking parameters on the machine model")
    t.add_argument("--grid", type=int, default=384)
    t.add_argument("--threads", type=int, default=18)
    t.add_argument("--variant", choices=("spatial", "1wd", "mwd"), default="mwd")
    t.add_argument("--tg-size", type=int, default=None,
                   help="pin the thread-group size (kWD)")
    t.add_argument("--bandwidth", type=float, default=None,
                   help="override the socket bandwidth in GB/s")
    _add_perf_group(t)

    f = sub.add_parser("figures", help="regenerate paper exhibits")
    f.add_argument("--which",
                   choices=("section3", "fig5", "fig6", "fig7", "fig8",
                            "ablations", "drift"),
                   default="section3")
    f.add_argument("--out", default=None, help="directory for JSON artifacts")
    f.add_argument("--quick", action="store_true",
                   help="reduced sweeps (for smoke testing)")
    _add_perf_group(f)

    pl = sub.add_parser("plan", help="build + validate a tiling plan")
    pl.add_argument("--ny", type=int, required=True)
    pl.add_argument("--nz", type=int, required=True)
    pl.add_argument("--steps", type=int, required=True)
    pl.add_argument("--dw", type=int, required=True)
    pl.add_argument("--bz", type=int, default=1)

    b = sub.add_parser(
        "bench", help="profile a named benchmark (cProfile, top cumulative hotspots)"
    )
    b.add_argument("name", choices=("tune", "measure", "sweep-measure", "plan", "kernels"),
                   help="which benchmark to profile")
    b.add_argument("--grid", type=int, default=384)
    b.add_argument("--threads", type=int, default=18)
    b.add_argument("--engine", choices=("reference", "batch", "native", "auto"),
                   default=None, help="replay engine (default: process setting)")
    b.add_argument("--top", type=int, default=20,
                   help="hotspot lines to print (default 20)")

    c = sub.add_parser(
        "counters", help="simulated PMU readout (the likwid-perfctr substitute)"
    )
    c.add_argument("--workload", choices=("tiled", "sweep", "both"), default="both",
                   help="which measurement campaign to run through the marker regions")
    c.add_argument("--grid", type=int, default=384)
    c.add_argument("--group", default="ALL",
                   help="counter groups to print: MEM, CACHE, WORK, or ALL "
                        "(comma-separated)")
    c.add_argument("--engine", choices=("reference", "batch", "native", "auto"),
                   default=None, help="replay engine (default: process setting)")
    c.add_argument("--json", action="store_true",
                   help="emit the raw samples as JSON instead of tables")

    tr = sub.add_parser(
        "trace", help="record a structured trace of a small tuned run"
    )
    tr.add_argument("--out", default="trace.json",
                    help="Chrome-trace output path (JSONL written next to it)")
    tr.add_argument("--grid", type=int, default=192)
    tr.add_argument("--threads", type=int, default=18)
    return p


def _add_perf_group(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--perf-group", default=None, metavar="GROUP[,GROUP]",
                    help="print simulated PMU counter groups after the run "
                         "(MEM, CACHE, WORK, or ALL)")


def _cmd_solve(args) -> int:
    from .core.tiled_solver import TiledTHIIM
    from .fdfd import (
        A_SI_H, SILVER, TCO_ZNO, UC_SI_H, Grid, PMLSpec, PlaneWaveSource,
        Scene, THIIMSolver, absorbed_power, poynting_flux_z,
    )

    n = args.grid
    nz = 2 * n
    # Tiled traversal needs non-periodic y/z.
    periodic = (False, not args.tiled, not args.tiled)
    grid = Grid(nz=nz, ny=n, nx=n, periodic=periodic)
    omega = 2 * np.pi / args.wavelength

    scene = None
    if args.preset == "absorber":
        scene = Scene().add_layer(A_SI_H, nz // 2, nz - nz // 4)
    elif args.preset == "mirror":
        scene = Scene().add_layer(SILVER, nz - nz // 3, nz)
    elif args.preset == "tandem":
        scene = (
            Scene()
            .add_layer(TCO_ZNO, int(0.30 * nz), int(0.36 * nz))
            .add_layer(A_SI_H, int(0.36 * nz), int(0.44 * nz))
            .add_layer(UC_SI_H, int(0.44 * nz), int(0.70 * nz))
            .add_layer(SILVER, int(0.74 * nz), nz)
        )

    solver = THIIMSolver(
        grid, omega, scene=scene,
        source=PlaneWaveSource(z_plane=max(nz // 8, 12), z_width=2.0),
        pml={"z": PMLSpec(thickness=max(nz // 10, 6))},
    )
    print(f"solve: preset={args.preset} grid={grid.shape} omega={omega:.4f} "
          f"tau={solver.tau:.4f} tiled={args.tiled}")

    if args.tiled:
        driver = TiledTHIIM(solver, dw=args.dw, bz=args.bz)
        result = driver.solve(tol=args.tol, max_steps=args.max_steps)
        print(driver.describe())
    else:
        result = solver.solve(tol=args.tol, max_steps=args.max_steps)

    status = "converged" if result.converged else "NOT converged"
    print(f"{status} after {result.iterations} steps (residual {result.residual:.3e})")
    if scene is not None:
        total = absorbed_power(solver.fields, solver.sigma)
        inc = poynting_flux_z(solver.fields, max(nz // 8, 12) + 4)
        print(f"absorbed power: {total:.4f} (incident {inc:.4f})")

    if args.save:
        from .io import save_state
        print(f"checkpoint -> {save_state(solver.fields, args.save)}")
    if args.vtk:
        from .io import export_vtk
        print(f"vtk -> {export_vtk(solver.fields, args.vtk)}")
    if args.perf_group:
        # The solver runs real kernels, not the cache model, so only the
        # WORK group has nonzero events: synthesize it from the step count.
        from .machine.pmu import GLOBAL_PMU, PerfSample

        cells = grid.nz * grid.ny * grid.nx
        GLOBAL_PMU.add_sample("solve", PerfSample(
            cells=2 * result.iterations * cells,
            lups=float(result.iterations) * cells,
        ))
        print()
        print(GLOBAL_PMU.report(args.perf_group, regions=["solve"]))
    return 0 if result.converged else 2


def _cmd_tune(args) -> int:
    from .core.autotuner import tune_spatial, tune_tiled
    from .machine import HASWELL_EP

    spec = HASWELL_EP
    if args.bandwidth:
        spec = spec.with_bandwidth(args.bandwidth)
    print(f"machine: {spec.name} ({spec.cores} cores, {spec.bandwidth_gbs:g} GB/s)")

    if args.variant == "spatial":
        point = tune_spatial(spec, args.grid, args.threads)
    elif args.variant == "1wd":
        point = tune_tiled(spec, args.grid, args.threads, tg_size=1, variant="1WD")
    else:
        point = tune_tiled(spec, args.grid, args.threads, tg_size=args.tg_size)
    if point is None:
        print("no feasible configuration")
        return 2
    print(point.describe())
    _print_perf_groups(args)
    return 0


def _print_perf_groups(args) -> None:
    """Shared ``--perf-group`` epilogue: likwid-style region tables."""
    if getattr(args, "perf_group", None):
        from .machine.pmu import GLOBAL_PMU

        print()
        print(GLOBAL_PMU.report(args.perf_group))


def _save_figure_json(args, name: str, data) -> None:
    import os

    from . import experiments as ex

    path = os.path.join(args.out, f"{name}.json")
    ex.save_json(data, path)
    print(f"saved -> {path}")


def _cmd_drift(args) -> int:
    """The model-vs-measured drift gate (``figures --which drift``)."""
    from . import experiments as ex

    rep = ex.fig5_drift_report()
    print(ex.format_table(
        rep.rows,
        title=f"Fig. 5 drift: PMU-measured vs pinned baseline "
              f"(budget {rep.budget:.1%})",
    ))
    status = "OK" if rep.ok else "FAIL"
    print(f"drift gate: {status} (worst {rep.worst:.2f}%, budget {rep.budget:.1%})")
    if args.out:
        _save_figure_json(args, "drift", rep.to_json())
    return 0 if rep.ok else 3


def _cmd_figures(args) -> int:
    from . import experiments as ex

    quick = args.quick
    if args.which == "drift":
        return _cmd_drift(args)
    if args.which == "section3":
        rows = ex.section3_table()
        title = "Section III"
    elif args.which == "fig5":
        rows = ex.fig5_cache_model(
            dw_values=(4, 8) if quick else (4, 8, 12, 16),
            bz_values=(1,) if quick else (1, 6, 9),
        )
        title = "Fig. 5"
    elif args.which == "fig6":
        rows = ex.fig6_thread_scaling(threads=(1, 6, 18) if quick else None)
        title = "Fig. 6"
    elif args.which == "fig7":
        rows = ex.fig7_grid_scaling(grids=(64, 192) if quick else ex.GRIDS)
        title = "Fig. 7"
    elif args.which == "fig8":
        rows = ex.fig8_tg_size(
            tg_sizes=(1, 18) if quick else (1, 2, 6, 9, 18),
            grids=(64, 192) if quick else ex.GRIDS,
        )
        title = "Fig. 8"
    else:
        rows = ex.ablation_machine_balance(bandwidths=(25.0, 50.0) if quick else (25.0, 37.5, 50.0, 75.0))
        rows += ex.ablation_thin_domain()
        title = "Ablations"
    print(ex.format_table(rows, title=title))
    if args.out:
        _save_figure_json(args, args.which, rows)
    rc = 0
    if args.which == "fig5" and not quick:
        # The fig5 sweep just measured every pinned drift point (and the
        # memoization keeps them warm), so the gate is nearly free here.
        print()
        rc = _cmd_drift(args)
    _print_perf_groups(args)
    return rc


def _cmd_plan(args) -> int:
    from .core import TilingPlan

    plan = TilingPlan.build(ny=args.ny, nz=args.nz, timesteps=args.steps,
                            dw=args.dw, bz=args.bz)
    plan.validate()
    print(plan.describe())
    print("dependency check: OK (every read at the exact time level)")
    interior = plan.interior_tiles()
    if interior:
        t = interior[0]
        print(f"interior diamond: {t.n_nodes} nodes, {t.lups:.0f} LUPs/column, "
              f"rows {t.rows[0].field}...{t.rows[-1].field}")
    return 0


def _bench_cases(args) -> dict:
    """Named benchmark bodies for ``repro bench`` (each runs cold)."""
    from .core.autotuner import tune_tiled
    from .core.plan import TilingPlan
    from .machine import (
        HASWELL_EP,
        measure_sweep_code_balance,
        measure_tiled_code_balance,
    )

    def bench_tune():
        return tune_tiled(HASWELL_EP, args.grid, args.threads)

    def bench_measure():
        return measure_tiled_code_balance(
            HASWELL_EP, nx=args.grid, dw=8, bz=4, n_streams=max(args.threads // 2, 1)
        )

    def bench_sweep_measure():
        return measure_sweep_code_balance(
            HASWELL_EP, nx=args.grid, ny=args.grid, block_y=16, threads=args.threads
        )

    def bench_plan():
        return TilingPlan.build(
            ny=args.grid, nz=args.grid, timesteps=32, dw=16, bz=4
        ).n_tiles

    def bench_kernels():
        import numpy as np

        from .fdfd import FieldState, Grid, naive_sweep, random_coefficients

        n = min(args.grid, 48)
        grid = Grid.cube(n)
        coeffs = random_coefficients(grid, seed=1)
        fields = FieldState(grid).fill_random(np.random.default_rng(2))
        return naive_sweep(fields, coeffs, 2)

    return {
        "tune": bench_tune,
        "measure": bench_measure,
        "sweep-measure": bench_sweep_measure,
        "plan": bench_plan,
        "kernels": bench_kernels,
    }


def _clear_substrate_caches() -> None:
    """Cold-start every memoization layer so the profile reflects real work."""
    from .core import autotuner, diamond, plan
    from .machine import measure, streams

    autotuner.tune_tiled.cache_clear()
    autotuner.tune_spatial.cache_clear()
    measure._measure_tiled_cached.cache_clear()
    measure._measure_sweep_cached.cache_clear()
    diamond._enumerate_tiles_cached.cache_clear()
    plan._tile_dag.cache_clear()
    streams._RAW_SEGMENT_CACHE.clear()


def _cmd_bench(args) -> int:
    import cProfile
    import io
    import os
    import pstats

    from .machine import SUBSTRATE_COUNTERS

    if args.engine:
        os.environ["REPRO_STREAM_ENGINE"] = args.engine
    _clear_substrate_caches()
    SUBSTRATE_COUNTERS.reset()
    fn = _bench_cases(args)[args.name]

    prof = cProfile.Profile()
    result = prof.runcall(fn)
    print(f"bench {args.name}: result = {result!r}")

    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(buf.getvalue())
    snap = SUBSTRATE_COUNTERS.snapshot()
    if snap["jobs_replayed"]:
        print(f"substrate counters: {snap}")
    sections = SUBSTRATE_COUNTERS.sections_by_time()
    if sections:
        print("timed sections (most expensive first):")
        for name, secs in sections:
            print(f"  {name:<24} {secs * 1e3:10.2f} ms")
    return 0


def _cmd_counters(args) -> int:
    import json
    import os

    from .machine import measure
    from .machine.pmu import GLOBAL_PMU
    from .machine.spec import HASWELL_EP

    if args.engine:
        os.environ["REPRO_STREAM_ENGINE"] = args.engine
    # Cold-start so the marker regions actually fire (memoized results
    # skip the replay, and with it the region enter/exit).
    measure._measure_tiled_cached.cache_clear()
    measure._measure_sweep_cached.cache_clear()
    GLOBAL_PMU.reset()

    n = args.grid
    if args.workload in ("tiled", "both"):
        measure.measure_tiled_code_balance(HASWELL_EP, nx=n, dw=8, bz=9, n_streams=1)
    if args.workload in ("sweep", "both"):
        measure.measure_sweep_code_balance(HASWELL_EP, nx=n, ny=n, block_y=16)

    if args.json:
        print(json.dumps(GLOBAL_PMU.to_json(), indent=2, sort_keys=True))
    else:
        print(GLOBAL_PMU.report(args.group))
    return 0


def _cmd_trace(args) -> int:
    from .core import tracing
    from .core.autotuner import tune_tiled
    from .machine import HASWELL_EP

    _clear_substrate_caches()
    tracing.start_trace(args.out)
    point = tune_tiled(HASWELL_EP, args.grid, args.threads)
    rec, written = tracing.stop_trace()
    if point is not None:
        print(point.describe())
    print(f"trace: {len(rec)} events " +
          " ".join(f"{k}={v}" for k, v in rec.summary().items()))
    for w in written:
        print(f"trace -> {w}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    import os

    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "tune": _cmd_tune,
        "figures": _cmd_figures,
        "plan": _cmd_plan,
        "bench": _cmd_bench,
        "counters": _cmd_counters,
        "trace": _cmd_trace,
    }
    trace_path = os.environ.get("REPRO_TRACE")
    rec = None
    if trace_path:
        from .core import tracing
        rec = tracing.start_trace(trace_path)
    try:
        return handlers[args.command](args)
    finally:
        if rec is not None:
            from .core import tracing
            if tracing.active() is rec:
                _, written = tracing.stop_trace()
                for w in written:
                    print(f"trace -> {w}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
