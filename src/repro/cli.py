"""Command-line interface.

Fourteen subcommands cover the library's workflows::

    repro solve    --preset absorber --grid 48 --wavelength 12 --tol 1e-5
    repro tune     --grid 384 --threads 18 --variant mwd
    repro figures  --which fig6 --out results/
    repro plan     --ny 64 --nz 64 --steps 16 --dw 8 --bz 4
    repro bench    tune --engine reference --top 20
    repro counters --workload tiled --group MEM,CACHE
    repro trace    --out trace.json --grid 192
    repro serve    --port 8642 --workers 4 --registry plans/
    repro submit   --url http://127.0.0.1:8642 --preset tandem --wait
    repro campaign --preset tandem --wavelengths 10:16:0.5 --batch
    repro tail     <job-id> --url http://127.0.0.1:8642
    repro top      --url http://127.0.0.1:8642
    repro fleet    serve --spawn 3 --port 8640
    repro chaos    --scenario crash-resume --seed 7
    repro env

``repro fleet`` is the multi-node tier: ``fleet serve`` runs a
consistent-hash gateway over N ``repro serve`` nodes (``--spawn N``
launches a local fleet), ``fleet status`` prints per-node liveness and
the shard-map version, and ``fleet spawn`` just launches nodes.

``serve``/``submit``/``campaign`` are the solve service (see
:mod:`repro.service`): a job scheduler + persistent plan registry behind
a stdlib HTTP JSON API.  ``repro serve`` shuts down gracefully on
SIGTERM/SIGINT: it stops accepting requests, drains in-flight jobs
(bounded by ``REPRO_DRAIN_TIMEOUT``), spools still-queued jobs to
``REPRO_QUEUE_FILE`` for the next process, and exits 0.  ``repro
chaos`` drives the deterministic fault-injection harness
(:mod:`repro.resilience`) end to end: it kills a worker mid-solve and
proves the checkpoint resume is bit-identical, and corrupts persisted
artifacts and proves they quarantine + recompute.  ``repro env``
documents every ``REPRO_*`` environment flag.

Observability switches:

* ``--perf-group GROUP[,GROUP]`` on ``solve`` / ``tune`` / ``figures``
  prints the simulated PMU's likwid-style counter tables after the run;
* ``REPRO_TRACE=path.json`` records a structured trace of any command
  and writes Chrome-trace JSON (``chrome://tracing`` / Perfetto) plus a
  JSONL sibling on exit;
* ``repro figures --which drift`` runs the model-vs-measured drift gate
  (exit code 3 when a point drifts beyond the budget).

``repro`` is installed as a console script; :func:`main` accepts an
``argv`` list so the tests can drive it in-process.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser", "package_version"]


def package_version() -> str:
    """The installed distribution version, falling back to the source
    tree's ``repro.__version__`` when running uninstalled."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="THIIM electromagnetics + multicore wavefront diamond blocking (IPDPS'16 reproduction)",
    )
    p.add_argument("--version", action="version",
                   version=f"repro {package_version()}")
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("solve", help="run a THIIM solve on a preset scene")
    s.add_argument("--preset", choices=("vacuum", "absorber", "mirror", "tandem"),
                   default="absorber")
    s.add_argument("--grid", type=int, default=48, help="cells per axis (z gets 2x)")
    s.add_argument("--wavelength", type=float, default=12.0)
    s.add_argument("--tol", type=float, default=1e-5)
    s.add_argument("--max-steps", type=int, default=3000)
    s.add_argument("--tiled", action="store_true",
                   help="advance through the wavefront-diamond traversal")
    s.add_argument("--dw", type=int, default=4)
    s.add_argument("--bz", type=int, default=2)
    s.add_argument("--save", metavar="FILE.npz", help="checkpoint the final fields")
    s.add_argument("--vtk", metavar="FILE.vtk", help="export |E|,|H| for visualization")
    _add_perf_group(s)

    t = sub.add_parser("tune", help="auto-tune blocking parameters on the machine model")
    t.add_argument("--grid", type=int, default=384)
    t.add_argument("--threads", type=int, default=18)
    t.add_argument("--variant", choices=("spatial", "1wd", "mwd"), default="mwd")
    t.add_argument("--tg-size", type=int, default=None,
                   help="pin the thread-group size (kWD)")
    t.add_argument("--bandwidth", type=float, default=None,
                   help="override the socket bandwidth in GB/s")
    _add_perf_group(t)

    f = sub.add_parser("figures", help="regenerate paper exhibits")
    f.add_argument("--which",
                   choices=("section3", "fig5", "fig6", "fig7", "fig8",
                            "ablations", "drift"),
                   default="section3")
    f.add_argument("--out", default=None, help="directory for JSON artifacts")
    f.add_argument("--quick", action="store_true",
                   help="reduced sweeps (for smoke testing)")
    _add_perf_group(f)

    pl = sub.add_parser("plan", help="build + validate a tiling plan")
    pl.add_argument("--ny", type=int, required=True)
    pl.add_argument("--nz", type=int, required=True)
    pl.add_argument("--steps", type=int, required=True)
    pl.add_argument("--dw", type=int, required=True)
    pl.add_argument("--bz", type=int, default=1)

    b = sub.add_parser(
        "bench", help="profile a named benchmark (cProfile, top cumulative hotspots)"
    )
    b.add_argument("name", choices=("tune", "measure", "sweep-measure", "plan", "kernels"),
                   help="which benchmark to profile")
    b.add_argument("--grid", type=int, default=384)
    b.add_argument("--threads", type=int, default=18)
    b.add_argument("--engine", choices=("reference", "batch", "native", "auto"),
                   default=None, help="replay engine (default: process setting)")
    b.add_argument("--top", type=int, default=20,
                   help="hotspot lines to print (default 20)")

    c = sub.add_parser(
        "counters", help="simulated PMU readout (the likwid-perfctr substitute)"
    )
    c.add_argument("--workload", choices=("tiled", "sweep", "both"), default="both",
                   help="which measurement campaign to run through the marker regions")
    c.add_argument("--grid", type=int, default=384)
    c.add_argument("--group", default="ALL",
                   help="counter groups to print: MEM, CACHE, WORK, or ALL "
                        "(comma-separated)")
    c.add_argument("--engine", choices=("reference", "batch", "native", "auto"),
                   default=None, help="replay engine (default: process setting)")
    c.add_argument("--json", action="store_true",
                   help="emit the raw samples as JSON instead of tables")

    tr = sub.add_parser(
        "trace", help="record a structured trace of a small tuned run"
    )
    tr.add_argument("--out", default="trace.json",
                    help="Chrome-trace output path (JSONL written next to it)")
    tr.add_argument("--grid", type=int, default=192)
    tr.add_argument("--threads", type=int, default=18)

    sv = sub.add_parser("serve", help="run the solve service (HTTP JSON API)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8642,
                    help="listen port (0 = pick an ephemeral port)")
    sv.add_argument("--workers", type=int, default=2)
    sv.add_argument("--queue-size", type=int, default=64,
                    help="bounded queue depth (backpressure beyond this)")
    sv.add_argument("--mode", choices=("thread", "process"), default="process",
                    help="worker isolation (process survives worker crashes)")
    sv.add_argument("--registry", default=None, metavar="DIR",
                    help="plan registry dir (default: REPRO_REGISTRY_DIR)")
    sv.add_argument("--results", default=None, metavar="DIR",
                    help="result store dir (default: REPRO_RESULT_DIR)")
    sv.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                    help="solver checkpoint dir (default: "
                         "REPRO_CHECKPOINT_DIR; needs "
                         "REPRO_CHECKPOINT_EVERY > 0)")
    sv.add_argument("--drain-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="graceful-shutdown drain budget "
                         "(default: REPRO_DRAIN_TIMEOUT)")
    sv.add_argument("--queue-file", default=None, metavar="FILE",
                    help="spool queued jobs here on shutdown and restore "
                         "them on start (default: REPRO_QUEUE_FILE)")
    sv.add_argument("--data-dir", default=None, metavar="DIR",
                    help="one persistent per-node state root: derives the "
                         "registry/results/checkpoint dirs and queue file "
                         "unless given explicitly "
                         "(default: REPRO_DATA_DIR)")
    sv.add_argument("--lease-dir", default=None, metavar="DIR",
                    help="heartbeat a membership lease file here so "
                         "lease-driven gateways discover this node "
                         "(default: REPRO_LEASE_DIR)")

    tl = sub.add_parser(
        "tail", help="stream a job's live progress events (NDJSON follow)")
    tl.add_argument("job_id", help="the job id to follow")
    tl.add_argument("--url", default="http://127.0.0.1:8642")
    tl.add_argument("--raw", action="store_true",
                    help="print the raw JSON event lines instead of the "
                         "human-readable digest")
    tl.add_argument("--timeout", type=float, default=300.0,
                    help="overall read timeout in seconds")

    tp = sub.add_parser(
        "top", help="one-shot service snapshot: queue, rates, live jobs")
    tp.add_argument("--url", default="http://127.0.0.1:8642")
    tp.add_argument("--json", action="store_true",
                    help="emit the raw snapshot JSON instead of the table")

    ch = sub.add_parser(
        "chaos",
        help="drive the fault-injection harness (crash/resume, corruption)",
    )
    ch.add_argument("--scenario",
                    choices=("crash-resume", "batch-resume", "rank-crash",
                             "node-crash", "node-reboot-warm",
                             "replica-promote", "corrupt-registry",
                             "corrupt-store", "all"),
                    default="all")
    ch.add_argument("--seed", type=int, default=0,
                    help="derives the injection point (crash-resume)")
    ch.add_argument("--grid", type=int, default=12,
                    help="solve grid for the crash-resume scenario")
    ch.add_argument("--list-sites", action="store_true",
                    help="print the named injection sites and exit")

    cl = sub.add_parser(
        "cluster",
        help="rank candidate process-grid decompositions (comm cost model)",
    )
    cl.add_argument("--grid", type=int, default=48,
                    help="cells per axis (z gets 2x, same as solve jobs)")
    cl.add_argument("--ranks", type=int, default=4,
                    help="rank processes to factor into a PZxPYxPX grid")
    cl.add_argument("--json", action="store_true",
                    help="emit the ranked table as JSON instead of text")

    fl = sub.add_parser(
        "fleet",
        help="multi-node serving: a consistent-hash gateway over N nodes",
    )
    flsub = fl.add_subparsers(dest="fleet_command", required=True)
    fls = flsub.add_parser(
        "serve", help="run the gateway (optionally spawning local nodes)")
    fls.add_argument("--host", default="127.0.0.1")
    fls.add_argument("--port", type=int, default=8640,
                     help="gateway listen port (0 = ephemeral)")
    fls.add_argument("--nodes", default=None, metavar="URL,URL,...",
                     help="base URLs of running repro serve nodes")
    fls.add_argument("--spawn", type=int, default=0, metavar="N",
                     help="spawn N local serve nodes on ephemeral ports "
                          "(torn down with the gateway)")
    fls.add_argument("--workers", type=int, default=2,
                     help="workers per spawned node")
    fls.add_argument("--mode", choices=("thread", "process"),
                     default="process", help="worker mode of spawned nodes")
    fls.add_argument("--heartbeat", type=float, default=None,
                     metavar="SECONDS",
                     help="node heartbeat cadence "
                          "(default: REPRO_FLEET_HEARTBEAT)")
    fls.add_argument("--node-timeout", type=float, default=60.0,
                     metavar="SECONDS",
                     help="per-request timeout when forwarding to a node")
    fls.add_argument("--lease-dir", default=None, metavar="DIR",
                     help="derive membership from lease files in this "
                          "shared directory instead of (or in addition "
                          "to) --nodes (default: REPRO_LEASE_DIR)")
    fls.add_argument("--data-root", default=None, metavar="DIR",
                     help="with --spawn: give node i a persistent data "
                          "dir DIR/node<i> (registry, results, "
                          "checkpoints, spooled queue)")
    fls.add_argument("--quota", type=float, default=None, metavar="PER_S",
                     help="per-tenant submit quota in requests/second; "
                          "0 disables (default: REPRO_FLEET_QUOTA)")
    fls.add_argument("--quota-burst", type=float, default=None,
                     metavar="TOKENS",
                     help="per-tenant burst depth "
                          "(default: REPRO_FLEET_QUOTA_BURST)")
    fls.add_argument("--retry-budget", type=float, default=None,
                     metavar="PER_MIN",
                     help="global failover/resubmit budget per minute; "
                          "0 disables (default: REPRO_FLEET_RETRY_BUDGET)")
    flst = flsub.add_parser(
        "status", help="one-shot fleet health + shard-map snapshot")
    flst.add_argument("--url", default="http://127.0.0.1:8640",
                      help="gateway base URL")
    flst.add_argument("--json", action="store_true")
    flst.add_argument("--timeout", type=float, default=2.0,
                      metavar="SECONDS",
                      help="per-probe timeout; slow/dead targets degrade "
                           "to DOWN markers instead of hanging the status")
    flsp = flsub.add_parser(
        "spawn", help="spawn N local serve nodes and print their URLs")
    flsp.add_argument("-n", "--count", type=int, default=3)
    flsp.add_argument("--workers", type=int, default=2)
    flsp.add_argument("--mode", choices=("thread", "process"),
                      default="process")
    flsp.add_argument("--data-root", default=None, metavar="DIR",
                      help="give node i the persistent data dir "
                           "<DIR>/node<i> (REPRO_DATA_DIR)")
    flsp.add_argument("--lease-dir", default=None, metavar="DIR",
                      help="nodes heartbeat membership leases here")

    sb = sub.add_parser("submit", help="submit a job to a running service")
    sb.add_argument("--url", default="http://127.0.0.1:8642")
    _add_jobspec_args(sb)
    sb.add_argument("--priority", type=int, default=0,
                    help="larger runs earlier (FIFO within a level)")
    sb.add_argument("--wait", action="store_true",
                    help="poll until the job is terminal and print the result")
    sb.add_argument("--timeout", type=float, default=300.0)

    cp = sub.add_parser(
        "campaign",
        help="parameter sweep (thickness x wavelength) through the scheduler",
    )
    _add_jobspec_args(cp, campaign=True)
    cp.add_argument("--wavelengths", default="10,12,14,16",
                    metavar="L1,L2,... | LO:HI:STEP",
                    help="comma list and/or inclusive ranges, e.g. "
                         "'10:16:0.5' or '10,12:14:1,16'")
    cp.add_argument("--thicknesses", default="0.10,0.16,0.22",
                    metavar="T1,T2,... | LO:HI:STEP",
                    help="absorber thickness fractions (same syntax)")
    cp.add_argument("--batch", action="store_true",
                    help="solve each thickness's wavelengths as ONE batched "
                         "job (12 x k stacked fields, per-point results "
                         "deduplicated against and fanned out to the store)")
    cp.add_argument("--workers", type=int, default=2)
    cp.add_argument("--url", default=None,
                    help="submit to a running service instead of in-process")
    cp.add_argument("--trace", default=None, metavar="FILE.json",
                    help="write one Chrome trace covering the whole campaign")
    cp.add_argument("--out", default=None, metavar="FILE.json",
                    help="save the campaign table as JSON")
    cp.add_argument("--timeout", type=float, default=600.0)

    e = sub.add_parser("env", help="list every REPRO_* environment flag")
    e.add_argument("--json", action="store_true")
    return p


def _add_jobspec_args(sp: argparse.ArgumentParser, campaign: bool = False) -> None:
    """Shared job-spec arguments of ``submit`` and ``campaign``."""
    from .fdfd.presets import PRESETS

    sp.add_argument("--kind", choices=("solve", "tune", "distributed"),
                    default="solve")
    sp.add_argument("--ranks", default=None, metavar="N | PZxPYxPX",
                    help="fan the solve across real rank processes "
                         "(implies kind=distributed; a bare count lets "
                         "the comm cost model pick the grid)")
    sp.add_argument("--preset", choices=PRESETS,
                    default="tandem" if campaign else "absorber")
    sp.add_argument("--grid", type=int, default=16 if campaign else 48)
    if not campaign:
        sp.add_argument("--wavelength", type=float, default=12.0)
        sp.add_argument("--thickness", type=float, default=None)
    sp.add_argument("--tol", type=float, default=1e-4 if campaign else 1e-5)
    sp.add_argument("--max-steps", type=int, default=3000)
    if campaign:
        sp.add_argument("--no-tiled", dest="tiled", action="store_false",
                        help="plain sweeps instead of tuned MWD traversals")
        sp.set_defaults(tiled=True)
    else:
        sp.add_argument("--tiled", action="store_true")
    sp.add_argument("--dw", type=int, default=4)
    sp.add_argument("--bz", type=int, default=2)
    sp.add_argument("--threads", type=int, default=18)
    sp.add_argument("--tuning", choices=("spec", "registry"),
                    default="registry" if campaign else "spec",
                    help="where tiled solves get their (Dw, Bz) plan")
    if campaign:
        sp.add_argument("--registry", default=None, metavar="DIR",
                        help="plan registry dir (default: REPRO_REGISTRY_DIR)")


def _add_perf_group(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--perf-group", default=None, metavar="GROUP[,GROUP]",
                    help="print simulated PMU counter groups after the run "
                         "(MEM, CACHE, WORK, or ALL)")


def _cmd_solve(args) -> int:
    from .core.tiled_solver import TiledTHIIM
    from .fdfd import (
        Grid, PMLSpec, PlaneWaveSource, THIIMSolver, absorbed_power,
        poynting_flux_z, preset_scene,
    )

    n = args.grid
    nz = 2 * n
    # Tiled traversal needs non-periodic y/z.
    periodic = (False, not args.tiled, not args.tiled)
    grid = Grid(nz=nz, ny=n, nx=n, periodic=periodic)
    omega = 2 * np.pi / args.wavelength
    # The same construction path the solve service uses (bit-identical
    # scenes between `repro solve` and served jobs).
    scene = preset_scene(args.preset, nz)

    solver = THIIMSolver(
        grid, omega, scene=scene,
        source=PlaneWaveSource(z_plane=max(nz // 8, 12), z_width=2.0),
        pml={"z": PMLSpec(thickness=max(nz // 10, 6))},
    )
    print(f"solve: preset={args.preset} grid={grid.shape} omega={omega:.4f} "
          f"tau={solver.tau:.4f} tiled={args.tiled}")

    if args.tiled:
        driver = TiledTHIIM(solver, dw=args.dw, bz=args.bz)
        result = driver.solve(tol=args.tol, max_steps=args.max_steps)
        print(driver.describe())
    else:
        result = solver.solve(tol=args.tol, max_steps=args.max_steps)

    status = "converged" if result.converged else "NOT converged"
    print(f"{status} after {result.iterations} steps (residual {result.residual:.3e})")
    if scene is not None:
        total = absorbed_power(solver.fields, solver.sigma)
        inc = poynting_flux_z(solver.fields, max(nz // 8, 12) + 4)
        print(f"absorbed power: {total:.4f} (incident {inc:.4f})")

    if args.save:
        from .io import save_state
        print(f"checkpoint -> {save_state(solver.fields, args.save)}")
    if args.vtk:
        from .io import export_vtk
        print(f"vtk -> {export_vtk(solver.fields, args.vtk)}")
    if args.perf_group:
        # The solver runs real kernels, not the cache model, so only the
        # WORK group has nonzero events: synthesize it from the step count.
        from .machine.pmu import GLOBAL_PMU, PerfSample

        cells = grid.nz * grid.ny * grid.nx
        GLOBAL_PMU.add_sample("solve", PerfSample(
            cells=2 * result.iterations * cells,
            lups=float(result.iterations) * cells,
        ))
        print()
        print(GLOBAL_PMU.report(args.perf_group, regions=["solve"]))
    return 0 if result.converged else 2


def _cmd_tune(args) -> int:
    from .core.autotuner import tune_spatial, tune_tiled
    from .machine import HASWELL_EP

    spec = HASWELL_EP
    if args.bandwidth:
        spec = spec.with_bandwidth(args.bandwidth)
    print(f"machine: {spec.name} ({spec.cores} cores, {spec.bandwidth_gbs:g} GB/s)")

    if args.variant == "spatial":
        point = tune_spatial(spec, args.grid, args.threads)
    elif args.variant == "1wd":
        point = tune_tiled(spec, args.grid, args.threads, tg_size=1, variant="1WD")
    else:
        point = tune_tiled(spec, args.grid, args.threads, tg_size=args.tg_size)
    if point is None:
        print("no feasible configuration")
        return 2
    print(point.describe())
    _print_perf_groups(args)
    return 0


def _print_perf_groups(args) -> None:
    """Shared ``--perf-group`` epilogue: likwid-style region tables."""
    if getattr(args, "perf_group", None):
        from .machine.pmu import GLOBAL_PMU

        print()
        print(GLOBAL_PMU.report(args.perf_group))


def _save_figure_json(args, name: str, data) -> None:
    import os

    from . import experiments as ex

    path = os.path.join(args.out, f"{name}.json")
    ex.save_json(data, path)
    print(f"saved -> {path}")


def _cmd_drift(args) -> int:
    """The model-vs-measured drift gate (``figures --which drift``)."""
    from . import experiments as ex

    rep = ex.fig5_drift_report()
    print(ex.format_table(
        rep.rows,
        title=f"Fig. 5 drift: PMU-measured vs pinned baseline "
              f"(budget {rep.budget:.1%})",
    ))
    status = "OK" if rep.ok else "FAIL"
    print(f"drift gate: {status} (worst {rep.worst:.2f}%, budget {rep.budget:.1%})")
    if args.out:
        _save_figure_json(args, "drift", rep.to_json())
    return 0 if rep.ok else 3


def _cmd_figures(args) -> int:
    from . import experiments as ex

    quick = args.quick
    if args.which == "drift":
        return _cmd_drift(args)
    if args.which == "section3":
        rows = ex.section3_table()
        title = "Section III"
    elif args.which == "fig5":
        rows = ex.fig5_cache_model(
            dw_values=(4, 8) if quick else (4, 8, 12, 16),
            bz_values=(1,) if quick else (1, 6, 9),
        )
        title = "Fig. 5"
    elif args.which == "fig6":
        rows = ex.fig6_thread_scaling(threads=(1, 6, 18) if quick else None)
        title = "Fig. 6"
    elif args.which == "fig7":
        rows = ex.fig7_grid_scaling(grids=(64, 192) if quick else ex.GRIDS)
        title = "Fig. 7"
    elif args.which == "fig8":
        rows = ex.fig8_tg_size(
            tg_sizes=(1, 18) if quick else (1, 2, 6, 9, 18),
            grids=(64, 192) if quick else ex.GRIDS,
        )
        title = "Fig. 8"
    else:
        rows = ex.ablation_machine_balance(bandwidths=(25.0, 50.0) if quick else (25.0, 37.5, 50.0, 75.0))
        rows += ex.ablation_thin_domain()
        title = "Ablations"
    print(ex.format_table(rows, title=title))
    if args.out:
        _save_figure_json(args, args.which, rows)
    rc = 0
    if args.which == "fig5" and not quick:
        # The fig5 sweep just measured every pinned drift point (and the
        # memoization keeps them warm), so the gate is nearly free here.
        print()
        rc = _cmd_drift(args)
    _print_perf_groups(args)
    return rc


def _cmd_plan(args) -> int:
    from .core import TilingPlan

    plan = TilingPlan.build(ny=args.ny, nz=args.nz, timesteps=args.steps,
                            dw=args.dw, bz=args.bz)
    plan.validate()
    print(plan.describe())
    print("dependency check: OK (every read at the exact time level)")
    interior = plan.interior_tiles()
    if interior:
        t = interior[0]
        print(f"interior diamond: {t.n_nodes} nodes, {t.lups:.0f} LUPs/column, "
              f"rows {t.rows[0].field}...{t.rows[-1].field}")
    return 0


def _bench_cases(args) -> dict:
    """Named benchmark bodies for ``repro bench`` (each runs cold)."""
    from .core.autotuner import tune_tiled
    from .core.plan import TilingPlan
    from .machine import (
        HASWELL_EP,
        measure_sweep_code_balance,
        measure_tiled_code_balance,
    )

    def bench_tune():
        return tune_tiled(HASWELL_EP, args.grid, args.threads)

    def bench_measure():
        return measure_tiled_code_balance(
            HASWELL_EP, nx=args.grid, dw=8, bz=4, n_streams=max(args.threads // 2, 1)
        )

    def bench_sweep_measure():
        return measure_sweep_code_balance(
            HASWELL_EP, nx=args.grid, ny=args.grid, block_y=16, threads=args.threads
        )

    def bench_plan():
        return TilingPlan.build(
            ny=args.grid, nz=args.grid, timesteps=32, dw=16, bz=4
        ).n_tiles

    def bench_kernels():
        import numpy as np

        from .fdfd import FieldState, Grid, naive_sweep, random_coefficients

        n = min(args.grid, 48)
        grid = Grid.cube(n)
        coeffs = random_coefficients(grid, seed=1)
        fields = FieldState(grid).fill_random(np.random.default_rng(2))
        return naive_sweep(fields, coeffs, 2)

    return {
        "tune": bench_tune,
        "measure": bench_measure,
        "sweep-measure": bench_sweep_measure,
        "plan": bench_plan,
        "kernels": bench_kernels,
    }


def _clear_substrate_caches() -> None:
    """Cold-start every memoization layer so the profile reflects real work."""
    from .core import autotuner, diamond, plan
    from .machine import measure, streams

    autotuner.tune_tiled.cache_clear()
    autotuner.tune_spatial.cache_clear()
    measure._measure_tiled_cached.cache_clear()
    measure._measure_sweep_cached.cache_clear()
    diamond._enumerate_tiles_cached.cache_clear()
    plan._tile_dag.cache_clear()
    streams._RAW_SEGMENT_CACHE.clear()


def _cmd_bench(args) -> int:
    import cProfile
    import io
    import os
    import pstats

    from .machine import SUBSTRATE_COUNTERS

    if args.engine:
        os.environ["REPRO_STREAM_ENGINE"] = args.engine
    _clear_substrate_caches()
    SUBSTRATE_COUNTERS.reset()
    fn = _bench_cases(args)[args.name]

    prof = cProfile.Profile()
    result = prof.runcall(fn)
    print(f"bench {args.name}: result = {result!r}")

    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(buf.getvalue())
    snap = SUBSTRATE_COUNTERS.snapshot()
    if snap["jobs_replayed"]:
        print(f"substrate counters: {snap}")
    sections = SUBSTRATE_COUNTERS.sections_by_time()
    if sections:
        print("timed sections (most expensive first):")
        for name, secs in sections:
            print(f"  {name:<24} {secs * 1e3:10.2f} ms")
    return 0


def _cmd_counters(args) -> int:
    import json
    import os

    from .machine import measure
    from .machine.pmu import GLOBAL_PMU
    from .machine.spec import HASWELL_EP

    if args.engine:
        os.environ["REPRO_STREAM_ENGINE"] = args.engine
    # Cold-start so the marker regions actually fire (memoized results
    # skip the replay, and with it the region enter/exit).
    measure._measure_tiled_cached.cache_clear()
    measure._measure_sweep_cached.cache_clear()
    GLOBAL_PMU.reset()

    n = args.grid
    if args.workload in ("tiled", "both"):
        measure.measure_tiled_code_balance(HASWELL_EP, nx=n, dw=8, bz=9, n_streams=1)
    if args.workload in ("sweep", "both"):
        measure.measure_sweep_code_balance(HASWELL_EP, nx=n, ny=n, block_y=16)

    if args.json:
        print(json.dumps(GLOBAL_PMU.to_json(), indent=2, sort_keys=True))
    else:
        print(GLOBAL_PMU.report(args.group))
    return 0


def _cmd_trace(args) -> int:
    from .core import tracing
    from .core.autotuner import tune_tiled
    from .machine import HASWELL_EP

    _clear_substrate_caches()
    tracing.start_trace(args.out)
    point = tune_tiled(HASWELL_EP, args.grid, args.threads)
    rec, written = tracing.stop_trace()
    if point is not None:
        print(point.describe())
    print(f"trace: {len(rec)} events " +
          " ".join(f"{k}={v}" for k, v in rec.summary().items()))
    for w in written:
        print(f"trace -> {w}")
    return 0


# -- the solve service ---------------------------------------------------------


def _spec_from_args(args, wavelength=None, thickness=None) -> dict:
    """A JobSpec payload from submit/campaign arguments."""
    spec = {
        "kind": args.kind,
        "preset": args.preset,
        "grid": args.grid,
        "wavelength": wavelength if wavelength is not None else args.wavelength,
        "thickness": thickness if thickness is not None else getattr(args, "thickness", None),
        "tol": args.tol,
        "max_steps": args.max_steps,
        "tiled": args.tiled,
        "dw": args.dw,
        "bz": args.bz,
        "threads": args.threads,
        "tuning": args.tuning,
    }
    ranks = getattr(args, "ranks", None)
    if ranks:
        # ``--ranks`` alone is the ergonomic path: promote a plain solve
        # to a distributed job (which always runs the naive sweep).
        if spec["kind"] == "solve":
            spec["kind"] = "distributed"
        spec["ranks"] = ranks
        spec["tiled"] = False
    return spec


def _http_json(method: str, url: str, payload=None, timeout: float = 30.0):
    """One JSON request/response round trip (stdlib urllib)."""
    import json
    import urllib.error
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read() or b"{}")


def _poll_job(url: str, job_id: str, timeout: float) -> dict:
    import time

    from .service.jobs import JobState

    deadline = time.monotonic() + timeout
    while True:
        status, doc = _http_json("GET", f"{url}/jobs/{job_id}")
        if status == 200 and doc["state"] in JobState.TERMINAL:
            return doc
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} still {doc.get('state')!r}")
        time.sleep(0.15)


def _cmd_serve(args) -> int:
    import os
    import signal
    import threading

    import uuid

    from . import config
    from .service import PlanRegistry, ResultStore, Scheduler, make_server

    # One node identity for the whole process: the HTTP layer reports it
    # (/healthz, X-Repro-Node) and persisted artifacts carry it as
    # provenance, so a fleet's shards stay attributable.
    node_id = config.node_id() or uuid.uuid4().hex[:12]
    # --data-dir (REPRO_DATA_DIR) is one root for every piece of
    # persistent node state; explicit per-piece flags/env still win.
    data_dir = args.data_dir or config.data_dir()

    def _in_data(piece: str):
        return os.path.join(data_dir, piece) if data_dir else None

    registry = PlanRegistry(
        args.registry or config.registry_dir() or _in_data("registry"),
        node_id=node_id)
    store = ResultStore(
        args.results or config.result_dir() or _in_data("results"),
        node_id=node_id)
    sched = Scheduler(
        workers=args.workers, queue_size=args.queue_size,
        registry=registry, store=store, mode=args.mode,
        checkpoint_dir=(args.checkpoint_dir or config.checkpoint_dir()
                        or _in_data("checkpoints")),
    ).start()
    queue_file = (args.queue_file or config.queue_file()
                  or _in_data("queue.json"))
    if queue_file and os.path.exists(queue_file):
        restored = sched.restore_queue(queue_file)
        if restored:
            print(f"restored {restored} queued job(s) from {queue_file}",
                  flush=True)
    server = make_server(sched, host=args.host, port=args.port,
                         node_id=node_id)
    # Lease-file membership: heartbeat our URL into the shared lease
    # directory so lease-driven gateways discover (and expire) this node.
    lease = None
    lease_dir = args.lease_dir or config.lease_dir()
    if lease_dir:
        from .fleet.leases import LeaseHeartbeat

        os.makedirs(lease_dir, exist_ok=True)
        lease = LeaseHeartbeat(
            lease_dir, node_id,
            f"http://{args.host}:{server.server_port}").start()

    def _on_signal(signum, frame):
        # Flip /healthz to draining and unwind serve_forever.  shutdown()
        # blocks until the serve loop exits, so it must run off-thread
        # (the handler fires *inside* that loop's thread).
        server.draining = True
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(f"repro service on http://{args.host}:{server.server_port} "
          f"(node {node_id}, {args.workers} {args.mode} workers, "
          f"queue {args.queue_size}, "
          f"registry {registry.root or 'in-memory'})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    # Graceful shutdown: no new dispatch, bounded wait for in-flight
    # jobs, then spool whatever is still queued for the next process.
    if lease is not None:
        lease.stop(clear=True)  # graceful leave, not a lease expiry
    budget = (args.drain_timeout if args.drain_timeout is not None
              else config.drain_timeout())
    drained = sched.drain(timeout=budget)
    spooled = 0
    if queue_file:
        spooled = sched.persist_queue(queue_file)
    server.server_close()
    sched.stop()
    line = "drained" if drained else f"drain timed out after {budget:g}s"
    if spooled:
        line += f"; spooled {spooled} queued job(s) -> {queue_file}"
    print(f"shutdown: {line}", flush=True)
    return 0


def _cmd_fleet(args) -> int:
    return {
        "serve": _cmd_fleet_serve,
        "status": _cmd_fleet_status,
        "spawn": _cmd_fleet_spawn,
    }[args.fleet_command](args)


def _cmd_fleet_serve(args) -> int:
    import signal
    import threading

    from . import config, telemetry
    from .fleet import NodeRegistry, make_gateway, spawn_local_fleet

    lease_dir = args.lease_dir or config.lease_dir()
    urls = [u.strip().rstrip("/")
            for u in (args.nodes or "").split(",") if u.strip()]
    spawned = []
    if args.spawn:
        spawned = spawn_local_fleet(args.spawn, workers=args.workers,
                                    mode=args.mode, lease_dir=lease_dir,
                                    data_root=args.data_root)
        for node in spawned:
            print(f"spawned {node.node_id} -> {node.url} "
                  f"(pid {node.proc.pid})", flush=True)
        urls += [node.url for node in spawned]
    if not urls and lease_dir is None:
        print("fleet serve: no nodes (use --nodes URL,..., --spawn N "
              "and/or --lease-dir DIR)")
        return 2
    telemetry.enable()
    if lease_dir:
        import os

        os.makedirs(lease_dir, exist_ok=True)
    registry = NodeRegistry(urls, interval_s=args.heartbeat,
                            lease_dir=lease_dir)
    registry.check_once()  # learn node ids before the first request
    registry.start()
    gateway = make_gateway(registry, host=args.host, port=args.port,
                           node_timeout_s=args.node_timeout,
                           quota=args.quota, quota_burst=args.quota_burst,
                           retry_budget=args.retry_budget)

    def _on_signal(signum, frame):
        threading.Thread(target=gateway.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    alive = len(registry.alive_urls())
    lease_note = f", leases {lease_dir}" if lease_dir else ""
    print(f"repro fleet gateway on http://{args.host}:{gateway.server_port} "
          f"({alive}/{len(registry.urls)} node(s) alive, shard map "
          f"v{registry.version}, {registry.replicas} owners/key"
          f"{lease_note})", flush=True)
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    registry.stop()
    gateway.server_close()
    for node in spawned:
        node.terminate()
    line = f"; stopped {len(spawned)} spawned node(s)" if spawned else ""
    print(f"fleet gateway shut down{line}", flush=True)
    return 0


def _cmd_fleet_status(args) -> int:
    """Fleet snapshot that degrades instead of hanging: the gateway and
    every node are probed with a short per-probe timeout, and whatever
    does not answer is shown as DOWN rather than failing the command."""
    import json as _json

    def _probe(url: str):
        try:
            status, doc = _http_json("GET", f"{url}/healthz",
                                     timeout=args.timeout)
        except Exception as exc:  # noqa: BLE001 - a dead probe is data
            return {"ok": False, "error": str(exc) or type(exc).__name__}
        if status != 200:
            return {"ok": False, "error": f"HTTP {status}", **(
                doc if isinstance(doc, dict) else {})}
        return dict(doc, ok=doc.get("ok", True))

    gateway = _probe(args.url)
    nodes = gateway.get("nodes") or []
    probes = {n["url"]: _probe(n["url"]) for n in nodes}
    if args.json:
        print(_json.dumps({"gateway_url": args.url, "gateway": gateway,
                           "probes": probes},
                          indent=2, sort_keys=True))
        return 0 if gateway.get("ok") else 2
    print(f"repro fleet -- {args.url}")
    if "error" in gateway and not nodes:
        print(f"gateway DOWN: {gateway['error']}")
        return 2
    admission = gateway.get("admission") or {}
    quota = admission.get("quota_per_s") or 0
    budget = admission.get("retry_budget_per_min") or 0
    print(f"shard map v{gateway.get('shard_version')}, "
          f"{gateway.get('alive')}/{len(nodes)} "
          f"node(s) alive, {gateway.get('replicas')} owners/key, "
          f"quota {quota:g}/s, retry budget {budget:g}/min"
          + ("" if gateway.get("ok") else "  [NO LIVE NODES]"))
    print(f"{'url':<28} {'node_id':<14} {'state':>6} {'probe':>6} {'flags'}")
    for node in nodes:
        probe = probes.get(node["url"]) or {}
        flags = ",".join(f for f in
                         ("stale" if node.get("stale") else "",
                          "split-brain" if node.get("split_brain") else "")
                         if f) or "-"
        direct = "ok" if probe.get("ok") else "DOWN"
        print(f"{node['url']:<28} {str(node.get('node_id')):<14} "
              f"{node['state']:>6} {direct:>6} {flags}")
    return 0 if gateway.get("ok") else 2


def _cmd_fleet_spawn(args) -> int:
    import time

    from .fleet import spawn_local_fleet

    import os

    if args.lease_dir:
        os.makedirs(args.lease_dir, exist_ok=True)
    nodes = spawn_local_fleet(args.count, workers=args.workers,
                              mode=args.mode,
                              data_root=args.data_root,
                              lease_dir=args.lease_dir)
    for node in nodes:
        print(f"{node.node_id} {node.url} pid {node.proc.pid}", flush=True)
    print("--nodes " + ",".join(node.url for node in nodes), flush=True)
    print("Ctrl-C stops the nodes", flush=True)
    try:
        while any(node.alive for node in nodes):
            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    for node in nodes:
        node.terminate()
    return 0


def _print_job_result(doc: dict) -> None:
    res = doc.get("result") or {}
    if res.get("kind") == "solve":
        line = (f"solve: {res['iterations']} steps, residual "
                f"{res['residual']:.3e}, "
                f"{'converged' if res['converged'] else 'NOT converged'}")
        if "absorbed" in res:
            line += f", absorbed {res['absorbed']:.4f}"
        print(line)
        print(f"checksum: {res['checksum']}")
    elif res.get("kind") == "tune":
        print(res.get("describe") or "no feasible configuration")
        print(f"registry hit: {res.get('registry_hit')}")


def _cmd_submit(args) -> int:
    from .service.jobs import JobSpec, JobState

    spec = dict(_spec_from_args(args), priority=args.priority)
    JobSpec.from_dict(spec)  # validate locally before the round trip
    status, doc = _http_json("POST", f"{args.url}/jobs", payload=spec)
    if status == 503:
        print(f"rejected (backpressure): {doc.get('error')}")
        return 3
    if status != 202:
        print(f"submit failed ({status}): {doc.get('error')}")
        return 2
    dedup = " (deduplicated)" if doc.get("dedup_count") else ""
    cached = " (served from store)" if doc.get("from_store") else ""
    print(f"job {doc['id']} {doc['state']}{dedup}{cached}")
    if not args.wait:
        return 0
    doc = _poll_job(args.url, doc["id"], args.timeout)
    print(f"job {doc['id']} {doc['state']} after {doc['attempts']} attempt(s)")
    _print_job_result(doc)
    return 0 if doc["state"] == JobState.DONE else 2


def _parse_sweep_values(text: str, name: str) -> list:
    """Sweep-axis values from comma lists and/or ``lo:hi:step`` ranges.

    Each comma-separated token is a scalar or an inclusive range
    (``10:16:0.5`` -> 10, 10.5, ..., 16).  Range points are generated as
    ``lo + i * step`` with an epsilon-padded count, so binary-fraction
    endpoints land exactly and a ``15.9999...`` never sneaks past ``16``.
    """
    values: list = []
    for token in (t.strip() for t in text.split(",")):
        if not token:
            continue
        if ":" in token:
            parts = token.split(":")
            if len(parts) != 3:
                raise SystemExit(
                    f"bad {name} range {token!r}: expected LO:HI:STEP")
            lo, hi, step = (float(p) for p in parts)
            if step <= 0 or hi < lo:
                raise SystemExit(
                    f"bad {name} range {token!r}: need HI >= LO and STEP > 0")
            count = int((hi - lo) / step + 1e-9) + 1
            values.extend(lo + i * step for i in range(count))
        else:
            values.append(float(token))
    if not values:
        raise SystemExit(f"no {name} values given")
    return values


def _campaign_specs(args) -> list:
    wavelengths = _parse_sweep_values(args.wavelengths, "wavelength")
    thicknesses = _parse_sweep_values(args.thicknesses, "thickness")
    if getattr(args, "ranks", None) and getattr(args, "batch", False):
        raise SystemExit("--ranks cannot be combined with --batch "
                         "(a distributed job owns its own process grid)")
    if getattr(args, "batch", False):
        # One batch job per thickness, all wavelengths in one sweep loop.
        return [
            dict(_spec_from_args(args, wavelength=wavelengths[0], thickness=t),
                 kind="batch", wavelengths=wavelengths)
            for t in thicknesses
        ]
    return [
        _spec_from_args(args, wavelength=w, thickness=t)
        for t in thicknesses
        for w in wavelengths
    ]


def _cmd_campaign(args) -> int:
    """Run a thickness x wavelength sweep (the paper's solar-cell use
    case) through the scheduler, reusing one tuned plan per machine key."""
    from . import config
    from .core import tracing
    from .service import PlanRegistry, Scheduler
    from .service.jobs import JobSpec, JobState

    specs = _campaign_specs(args)
    rec = tracing.start_trace(args.trace) if args.trace else None

    rows = []
    try:
        with tracing.span(f"campaign {len(specs)} jobs", "service",
                          args={"preset": args.preset, "grid": args.grid}):
            if args.url:
                ids = []
                for spec in specs:
                    status, doc = _http_json("POST", f"{args.url}/jobs",
                                             payload=spec)
                    if status != 202:
                        print(f"submit failed ({status}): {doc.get('error')}")
                        return 2
                    ids.append(doc["id"])
                docs = [_poll_job(args.url, i, args.timeout) for i in ids]
                status_line = f"remote service at {args.url}"
            else:
                registry = PlanRegistry(args.registry or config.registry_dir())
                sched = Scheduler(
                    workers=args.workers,
                    queue_size=max(len(specs), 1),
                    registry=registry, mode="thread",
                ).start()
                try:
                    jobs = [sched.submit(JobSpec.from_dict(s)) for s in specs]
                    sched.join(timeout=args.timeout)
                finally:
                    sched.stop()
                docs = [j.to_dict() for j in jobs]
                st = sched.stats()
                reg = registry.counters()
                hit_rate = reg["hits"] / max(reg["hits"] + reg["misses"], 1)
                status_line = (
                    f"{st['executed']} executions for {st['submitted']} "
                    f"submissions ({st['deduplicated']} deduplicated); "
                    f"registry {reg['hits']} hits / {reg['misses']} misses "
                    f"({100 * hit_rate:.0f}% hit rate)"
                )
            batch_stats = {"dedup": 0, "solved": 0, "failed": 0}
            for spec, doc in zip(specs, docs):
                res = doc.get("result") or {}
                if spec.get("kind") == "batch":
                    batch_stats["dedup"] += res.get("dedup_hits") or 0
                    batch_stats["solved"] += res.get("solved") or 0
                    batch_stats["failed"] += res.get("failed") or 0
                    points = res.get("points")
                    if points is None:  # batch job itself failed
                        points = [{"wavelength": w, "result": None}
                                  for w in spec["wavelengths"]]
                    for p in points:
                        pres = p.get("result") or {}
                        if doc["state"] != JobState.DONE:
                            state = doc["state"]
                        else:
                            state = ("failed" if p.get("error")
                                     else JobState.DONE)
                        rows.append({
                            "wavelength": p["wavelength"],
                            "thickness": spec["thickness"],
                            "state": state,
                            "iterations": pres.get("iterations"),
                            "converged": pres.get("converged"),
                            "absorbed": pres.get("absorbed"),
                            "registry_hit": (pres.get("plan") or {}).get(
                                "registry_hit"),
                            "from_store": p.get("from_store"),
                        })
                    continue
                rows.append({
                    "wavelength": spec["wavelength"],
                    "thickness": spec["thickness"],
                    "state": doc["state"],
                    "iterations": res.get("iterations"),
                    "converged": res.get("converged"),
                    "absorbed": res.get("absorbed"),
                    "registry_hit": (res.get("plan") or {}).get("registry_hit"),
                })
            if getattr(args, "batch", False):
                status_line += (
                    f"; batched points: {batch_stats['dedup']} deduplicated "
                    f"(served from store), {batch_stats['solved']} solved"
                    + (f", {batch_stats['failed']} failed"
                       if batch_stats["failed"] else "")
                )
    finally:
        if rec is not None:
            _, written = tracing.stop_trace()
            for w in written:
                print(f"trace -> {w}")

    print(f"{'lambda':>7s} {'thick':>6s} {'state':>9s} {'steps':>6s} "
          f"{'absorbed':>9s} {'plan':>9s}")
    for r in rows:
        absorbed = "-" if r["absorbed"] is None else f"{r['absorbed']:.4f}"
        steps = "-" if r["iterations"] is None else str(r["iterations"])
        plan = "hit" if r["registry_hit"] else ("miss" if r["registry_hit"] is False else "-")
        print(f"{r['wavelength']:7.1f} {r['thickness']:6.2f} {r['state']:>9s} "
              f"{steps:>6s} {absorbed:>9s} {plan:>9s}")
    print(f"campaign: {status_line}")
    if args.out:
        import json as _json
        import os as _os

        from .ioutil import atomic_write_text

        atomic_write_text(_os.path.abspath(args.out),
                          _json.dumps(rows, indent=2, sort_keys=True))
        print(f"saved -> {args.out}")
    return 0 if all(r["state"] == JobState.DONE for r in rows) else 2


# -- live telemetry (tail / top) -----------------------------------------------


def _format_event(ev: dict) -> str:
    """One human-readable line per progress event (``repro tail``)."""
    kind = ev.get("kind", "?")
    if kind == "progress":
        line = f"sweep {ev.get('sweeps'):>6}  residual {ev.get('residual'):.3e}"
        if ev.get("tiled"):
            line += "  (tiled)"
        return line
    if kind == "batch":
        residuals = ev.get("residuals") or {}
        worst = max(residuals.values()) if residuals else float("nan")
        line = (f"sweep {ev.get('sweeps'):>6}  {ev.get('active')} lane(s) "
                f"active, worst residual {worst:.3e}")
        if ev.get("compacted"):
            line += f", {ev['compacted']} lane(s) compacted"
        return line
    if kind == "cluster":
        phase = ev.get("phase")
        if phase == "start":
            pz, py, px = ev.get("layout") or ("?", "?", "?")
            line = (f"cluster start: {ev.get('ranks')} rank(s) as "
                    f"{pz}x{py}x{px} over {ev.get('transport')}")
            if ev.get("resumed_from") is not None:
                line += f", resumed from sweep {ev['resumed_from']}"
            return line
        if phase == "rank-crash":
            return f"cluster: a rank died ({ev.get('ranks')} rank(s))"
        rank_res = ev.get("rank_residuals") or {}
        worst = max(rank_res.values()) if rank_res else float("nan")
        return (f"sweep {ev.get('sweeps'):>6}  residual "
                f"{ev.get('residual'):.3e}  ({ev.get('ranks')} rank(s), "
                f"worst rank {worst:.3e}, "
                f"halo {ev.get('halo_bytes', 0)} B / "
                f"{ev.get('halo_messages', 0)} msg)")
    if kind == "state":
        line = f"state -> {ev.get('state')}"
        if ev.get("attempt"):
            line += f" (attempt {ev['attempt']})"
        if ev.get("requeued"):
            line += " [requeued after failure]"
        return line
    if kind == "checkpoint":
        if ev.get("resumed_from") is not None:
            return f"checkpoint resume from sweep {ev['resumed_from']}"
        return (f"checkpoint @ sweep {ev.get('sweeps')} "
                f"({ev.get('bytes', 0)} bytes, save #{ev.get('saves')})")
    if kind == "end":
        line = f"end: {ev.get('state', 'done')}"
        if ev.get("error"):
            line += f" ({ev['error']})"
        return line
    if kind == "gap":
        return f"... {ev.get('missed')} event(s) dropped (ring overflow)"
    return str({k: v for k, v in ev.items() if k not in ("seq", "t")})


def _cmd_tail(args) -> int:
    """Follow ``GET /jobs/<id>/events`` until the terminal event."""
    import json as _json
    import urllib.error
    import urllib.request

    url = f"{args.url}/jobs/{args.job_id}/events"
    try:
        resp = urllib.request.urlopen(
            urllib.request.Request(url), timeout=args.timeout)
    except urllib.error.HTTPError as e:
        try:
            doc = _json.loads(e.read() or b"{}")
        except ValueError:
            doc = {}
        print(f"tail failed ({e.code}): {doc.get('error')}")
        return 2
    state = None
    with resp:
        for raw in resp:
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                continue
            try:
                ev = _json.loads(line)
            except ValueError:
                continue
            print(line if args.raw else _format_event(ev), flush=True)
            if ev.get("kind") == "end":
                state = ev.get("state", "done")
    return 0 if state in (None, "done") else 2


def _telemetry_value(snapshot: dict, name: str, labels=None):
    """One series value out of a ``/metrics?format=json`` telemetry
    snapshot (``None`` when the instrument or series is absent)."""
    inst = snapshot.get(f"repro_{name}") or {}
    for series in inst.get("series") or []:
        if labels is None or series.get("labels") == labels:
            return series.get("value", series.get("count"))
    return None


def _cmd_top(args) -> int:
    """One-shot snapshot of a running service (queue, rates, jobs)."""
    import json as _json

    status, metrics = _http_json("GET", f"{args.url}/metrics?format=json")
    if status != 200:
        print(f"top failed ({status}): {metrics.get('error')}")
        return 2
    _, jobs_doc = _http_json("GET", f"{args.url}/jobs")
    jobs = jobs_doc.get("jobs") or []
    health_status, health = _http_json("GET", f"{args.url}/healthz")
    if health_status != 200:
        health = {}
    if args.json:
        print(_json.dumps({"metrics": metrics, "jobs": jobs,
                           "healthz": health},
                          indent=2, sort_keys=True))
        return 0
    print(f"repro top -- {args.url}")
    if health.get("role") == "gateway":
        # A fleet gateway: per-node rollups instead of one scheduler.
        print(f"fleet gateway: shard map v{health.get('shard_version')}, "
              f"{health.get('alive')}/{len(health.get('nodes') or [])} "
              f"node(s) alive")
        flags = {n["url"]: n for n in health.get("nodes") or []}
        for url, rollup in (metrics.get("nodes") or {}).items():
            sched = rollup.get("scheduler") or {}
            states = sched.get("states") or {}
            node = flags.get(url, {})
            marks = [m for m in ("stale", "split_brain") if node.get(m)]
            print(f"  {node.get('node_id') or url}: "
                  f"workers {sched.get('workers')} ({sched.get('mode')}), "
                  f"{states.get('queued', 0)} queued / "
                  f"{states.get('running', 0)} running / "
                  f"{states.get('done', 0)} done / "
                  f"{states.get('failed', 0)} failed"
                  + (f" [{', '.join(marks)}]" if marks else ""))
        for url in (health.get("stale") or []):
            if url not in (metrics.get("nodes") or {}):
                print(f"  {url}: stale (no rollup)")
    else:
        sched = metrics.get("scheduler") or {}
        states = sched.get("states") or {}
        tele = metrics.get("telemetry") or {}
        if health.get("node_id"):
            version = health.get("shard_version")
            print(f"node {health['node_id']}"
                  + (f", shard map v{version}" if version is not None
                     else " (no fleet gateway seen)"))
        print(f"workers {sched.get('workers')} ({sched.get('mode')}), "
              f"queue {states.get('queued', 0)} queued / "
              f"{states.get('running', 0)} running / "
              f"{states.get('done', 0)} done / "
              f"{states.get('failed', 0)} failed"
              + (" [draining]" if sched.get("draining") else ""))
        sweeps = _telemetry_value(tele, "solver_sweeps_per_second")
        mlups = _telemetry_value(tele, "solver_mlups")
        if sweeps is not None or mlups is not None:
            print(f"last solve: {sweeps or 0:.1f} sweeps/s, "
                  f"{mlups or 0:.2f} MLUP/s")
        reg = metrics.get("registry") or {}
        lookups = reg.get("hits", 0) + reg.get("misses", 0)
        ratio = reg.get("hits", 0) / lookups if lookups else 0.0
        print(f"plan registry: {reg.get('hits', 0)} hits / "
              f"{reg.get('misses', 0)} misses ({100 * ratio:.0f}% hit "
              f"rate); store {metrics.get('store', {}).get('entries', 0)} "
              f"result(s)")
        events = _telemetry_value(tele, "progress_events_total")
        if events is not None:
            print(f"progress events published: {events:.0f}")
    if jobs:
        print(f"{'job':<26} {'state':>9} {'attempts':>8}  trace")
        for j in jobs[-10:]:
            print(f"{j['id'][:24]:<26} {j['state']:>9} "
                  f"{j['attempts']:>8}  {j.get('trace_id', '-')}")
    return 0


def _cmd_cluster(args) -> int:
    """Rank every feasible process-grid decomposition of a solve-shaped
    grid by the communication cost model (the table behind the model's
    pick when ``--ranks`` is a bare count)."""
    from .cluster import candidate_layouts, step_bytes_by_axis
    from .fdfd import Grid

    n = args.grid
    # Same geometry as an untiled served solve (distributed jobs always
    # run the naive sweep): z gets 2x and stays non-periodic.
    grid = Grid(nz=2 * n, ny=n, nx=n, periodic=(False, True, True))
    try:
        ranked = candidate_layouts(grid, args.ranks)
    except ValueError as e:
        print(f"cluster: {e}")
        return 2
    rows = []
    for cost, layout in ranked:
        bba = step_bytes_by_axis(layout)
        rows.append({
            "layout": f"{layout.pz}x{layout.py}x{layout.px}",
            "ranks": layout.n_ranks,
            "step_cost_us": cost,
            "bytes_z": bba[0], "bytes_y": bba[1], "bytes_x": bba[2],
            "bytes_total": bba[0] + bba[1] + bba[2],
        })
    if args.json:
        import json

        print(json.dumps({"grid": list(grid.shape), "ranks": args.ranks,
                          "candidates": rows}, indent=2, sort_keys=True))
        return 0
    print(f"cluster: grid={grid.shape} ranks={args.ranks} "
          f"({len(rows)} feasible decomposition(s), halo bytes per sweep)")
    print(f"{'layout':>8s} {'cost us':>9s} {'z bytes':>10s} "
          f"{'y bytes':>10s} {'x bytes':>10s} {'total':>10s}")
    for i, r in enumerate(rows):
        mark = "  <- model pick" if i == 0 else ""
        print(f"{r['layout']:>8s} {r['step_cost_us']:9.1f} "
              f"{r['bytes_z']:>10d} {r['bytes_y']:>10d} "
              f"{r['bytes_x']:>10d} {r['bytes_total']:>10d}{mark}")
    return 0


def _patched_env(**updates):
    """Context manager: set/unset env vars (None = unset), restoring on
    exit -- the chaos scenarios must not leak schedules into the shell."""
    import os
    from contextlib import contextmanager

    @contextmanager
    def _cm():
        old = {k: os.environ.get(k) for k in updates}
        try:
            for k, v in updates.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
            yield
        finally:
            for k, v in old.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v

    return _cm()


def _chaos_crash_resume(seed: int, grid: int):
    """Kill a forked worker at a seeded sweep; prove the retry resumes
    from the checkpoint and lands on a bit-identical result."""
    import tempfile

    from .resilience import FaultPlan
    from .service import Scheduler
    from .service.jobs import JobSpec, JobState, run_job

    # tol is unreachably tight, so the solve deterministically runs all
    # 240 sweeps: 12 convergence checks at the fixed cadence of 20.
    spec = JobSpec(kind="solve", preset="absorber", grid=grid, tol=1e-12,
                   max_steps=240, max_retries=2)
    neutral = dict(REPRO_FAULTS=None, REPRO_CHECKPOINT_EVERY=None,
                   REPRO_CHECKPOINT_DIR=None)
    with _patched_env(**neutral):
        clean = run_job(spec)

    plan = FaultPlan.seeded(seed, "solver.sweep", "crash", max_after=12)
    ckpt_dir = tempfile.mkdtemp(prefix="repro-chaos-ckpt-")
    print(f"  fault schedule: {plan.env_value()} (seed {seed})")
    with _patched_env(REPRO_FAULTS=plan.env_value(),
                      REPRO_CHECKPOINT_EVERY="40",
                      REPRO_CHECKPOINT_DIR=None):
        sched = Scheduler(workers=1, mode="process",
                          checkpoint_dir=ckpt_dir).start()
        try:
            job = sched.submit(spec)
            sched.wait(job.id, timeout=300.0)
        finally:
            sched.stop()
    crashed = sched.n_crashes
    detail = {"seed": seed, "schedule": plan.env_value(), "crashes": crashed,
              "attempts": job.attempts, "resumed_from": job.resumed_from,
              "state": job.state}
    print(f"  worker crashes: {crashed}, attempts: {job.attempts}, "
          f"resumed from sweep: {job.resumed_from}")
    if job.state != JobState.DONE:
        print(f"  job ended {job.state}: {job.error}")
        return False, dict(detail, error=job.error)
    if job.result != clean:
        print("  MISMATCH: resumed result differs from the clean run")
        return False, dict(detail, bit_identical=False)
    print("  resumed result is bit-identical to the uninterrupted run "
          f"(checksum {clean['checksum'][:16]}...)")
    return crashed >= 1, dict(detail, bit_identical=True,
                              checksum=clean["checksum"])


def _chaos_batch_resume(seed: int, grid: int):
    """Kill a forked worker mid-way through a batched campaign job; prove
    the retry resumes the whole batch (per-point convergence state
    included) from its checkpoint and every per-point result fans out
    bit-identically to an uninterrupted run."""
    import tempfile

    from .resilience import FaultPlan
    from .service import Scheduler
    from .service.jobs import JobSpec, JobState, run_job

    # Same unreachable-tol setup as crash-resume: all three lanes
    # deterministically run the full 240 sweeps (12 checks at cadence 20).
    spec = JobSpec(kind="batch", preset="absorber", grid=grid, tol=1e-12,
                   max_steps=240, max_retries=2,
                   wavelengths=(10.0, 12.0, 14.0))
    neutral = dict(REPRO_FAULTS=None, REPRO_CHECKPOINT_EVERY=None,
                   REPRO_CHECKPOINT_DIR=None)
    with _patched_env(**neutral):
        clean = run_job(spec)

    plan = FaultPlan.seeded(seed, "solver.sweep", "crash", max_after=12)
    ckpt_dir = tempfile.mkdtemp(prefix="repro-chaos-ckpt-")
    print(f"  fault schedule: {plan.env_value()} (seed {seed})")
    with _patched_env(REPRO_FAULTS=plan.env_value(),
                      REPRO_CHECKPOINT_EVERY="40",
                      REPRO_CHECKPOINT_DIR=None):
        sched = Scheduler(workers=1, mode="process",
                          checkpoint_dir=ckpt_dir).start()
        try:
            job = sched.submit(spec)
            sched.wait(job.id, timeout=600.0)
        finally:
            sched.stop()
    crashed = sched.n_crashes
    detail = {"seed": seed, "schedule": plan.env_value(), "crashes": crashed,
              "attempts": job.attempts, "resumed_from": job.resumed_from,
              "state": job.state}
    print(f"  worker crashes: {crashed}, attempts: {job.attempts}, "
          f"resumed from sweep: {job.resumed_from}")
    if job.state != JobState.DONE:
        print(f"  job ended {job.state}: {job.error}")
        return False, dict(detail, error=job.error)
    if job.result != clean:
        print("  MISMATCH: resumed batch result differs from the clean run")
        return False, dict(detail, bit_identical=False)
    for point in job.result["points"]:
        if sched.store.get(point["id"]) != point["result"]:
            print(f"  MISMATCH: fanned-out point {point['wavelength']} "
                  f"differs from the batch result")
            return False, dict(detail, bit_identical=False,
                               bad_point=point["wavelength"])
    print(f"  all {len(job.result['points'])} per-point results fanned out "
          "bit-identically after the resume")
    return crashed >= 1, dict(detail, bit_identical=True,
                              points=len(job.result["points"]))


def _chaos_rank_crash(seed: int, grid: int):
    """Kill ONE rank process of a distributed solve at a seeded sweep
    block; prove the scheduler retry restores every rank's slab from the
    group checkpoint and lands on a result bit-identical to both the
    uninterrupted distributed run and the single-domain solve."""
    import tempfile

    from .resilience import FaultPlan
    from .service import Scheduler
    from .service.jobs import JobSpec, JobState, run_job

    # Unreachable tol again: deterministically 240 sweeps in 12 blocks.
    spec = JobSpec(kind="distributed", preset="absorber", grid=grid,
                   tol=1e-12, max_steps=240, max_retries=2, ranks="2x1x1",
                   tiled=False)
    target = seed % 2  # which of the two ranks the fault kills
    neutral = dict(REPRO_FAULTS=None, REPRO_CHECKPOINT_EVERY=None,
                   REPRO_CHECKPOINT_DIR=None)
    with _patched_env(**neutral):
        clean = run_job(spec)
        scalar = run_job(spec.single_domain_spec())
    if clean != scalar:
        print("  MISMATCH: distributed result differs from the "
              "single-domain solve before any fault was injected")
        return False, {"seed": seed, "distributed_matches_scalar": False}

    plan = FaultPlan.seeded(seed, f"cluster.rank.{target}", "crash",
                            max_after=12)
    ckpt_dir = tempfile.mkdtemp(prefix="repro-chaos-ckpt-")
    print(f"  fault schedule: {plan.env_value()} (seed {seed}, "
          f"kills rank {target})")
    with _patched_env(REPRO_FAULTS=plan.env_value(),
                      REPRO_CHECKPOINT_EVERY="40",
                      REPRO_CHECKPOINT_DIR=None):
        sched = Scheduler(workers=1, mode="process",
                          checkpoint_dir=ckpt_dir).start()
        try:
            job = sched.submit(spec)
            sched.wait(job.id, timeout=600.0)
        finally:
            sched.stop()
    crashed = sched.n_crashes
    detail = {"seed": seed, "schedule": plan.env_value(), "rank": target,
              "crashes": crashed, "attempts": job.attempts,
              "resumed_from": job.resumed_from, "state": job.state}
    print(f"  rank crashes: {crashed}, attempts: {job.attempts}, "
          f"resumed from sweep: {job.resumed_from}")
    if job.state != JobState.DONE:
        print(f"  job ended {job.state}: {job.error}")
        return False, dict(detail, error=job.error)
    if job.result != clean:
        print("  MISMATCH: resumed result differs from the clean run")
        return False, dict(detail, bit_identical=False)
    print("  resumed result is bit-identical to the uninterrupted "
          "distributed run AND the single-domain solve "
          f"(checksum {clean['checksum'][:16]}...)")
    return crashed >= 1, dict(detail, bit_identical=True,
                              distributed_matches_scalar=True,
                              checksum=clean["checksum"])


def _chaos_node_crash(seed: int, grid: int):
    """SIGKILL one node of a live 3-node fleet mid-campaign; prove the
    gateway fails the victim's shard over to the replica, bumps the
    shard-map version, and every point of the campaign completes with a
    result bit-identical to a direct single-node run -- exactly once per
    unique spec (content-addressed ids + store dedup)."""
    import threading
    import time

    from . import telemetry
    from .fleet import DEAD, NodeRegistry, make_gateway, spawn_local_fleet
    from .service.jobs import JobSpec, run_job

    telemetry.enable()
    wavelengths = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
    base = dict(kind="solve", preset="vacuum", grid=grid, tol=1e-4,
                max_steps=20)
    specs = [JobSpec.from_dict(dict(base, wavelength=w))
             for w in wavelengths]
    neutral = dict(REPRO_FAULTS=None, REPRO_CHECKPOINT_EVERY=None,
                   REPRO_CHECKPOINT_DIR=None)
    with _patched_env(**neutral):
        clean = {s.job_id: run_job(s) for s in specs}
        nodes = spawn_local_fleet(3, workers=1, mode="thread")
    registry = NodeRegistry([n.url for n in nodes], dead_after=1,
                            timeout_s=10.0, interval_s=0.5)
    registry.check_once()
    gateway = make_gateway(registry, port=0, node_timeout_s=60.0)
    gw_thread = threading.Thread(target=gateway.serve_forever, daemon=True)
    gw_thread.start()
    base_url = f"http://127.0.0.1:{gateway.server_port}"
    try:
        # The victim is the home node of a seeded campaign point, so the
        # kill provably lands on a shard with in-flight ownership.
        chosen = specs[seed % len(specs)]
        victim_url = gateway.router.home(chosen.job_id)
        victim = next(n for n in nodes if n.url == victim_url)
        v0 = registry.version
        telemetry.fleet_failovers()  # create the series before reading it
        failovers0 = telemetry.METRICS.get_value("fleet_failovers_total")

        # First half of the campaign lands while all 3 nodes are up.
        first, second = specs[: len(specs) // 2], specs[len(specs) // 2:]
        for s in first:
            status, doc = _http_json("POST", f"{base_url}/jobs",
                                     payload=s.to_dict())
            assert status == 202, f"submit failed: {status} {doc}"
        for s in first:
            _poll_job(base_url, s.job_id, timeout=120.0)

        victim.kill()  # SIGKILL mid-campaign: no drain, state gone
        print(f"  killed {victim.node_id} ({victim_url}) "
              f"mid-campaign (seed {seed})")

        for s in second:
            status, doc = _http_json("POST", f"{base_url}/jobs",
                                     payload=s.to_dict())
            assert status == 202, f"submit failed: {status} {doc}"
        docs = {s.job_id: _poll_job(base_url, s.job_id, timeout=120.0)
                for s in specs}
    finally:
        gateway.shutdown()
        gateway.server_close()
        registry.stop()
        for n in nodes:
            n.kill()

    mismatched = [jid for jid, doc in docs.items()
                  if doc.get("result") != clean[jid]]
    failovers = (telemetry.METRICS.get_value("fleet_failovers_total")
                 - failovers0)
    v1 = registry.version
    victim_state = registry.node(victim_url).state
    detail = {"seed": seed, "victim": victim.node_id,
              "points": len(specs), "failovers": failovers,
              "shard_version": [v0, v1], "victim_state": victim_state,
              "mismatched": len(mismatched)}
    if mismatched:
        print(f"  MISMATCH: {len(mismatched)} point(s) differ from the "
              "direct single-node run")
        return False, dict(detail, bit_identical=False)
    if victim_state != DEAD or v1 <= v0:
        print("  the kill never bumped the shard map "
              f"(v{v0} -> v{v1}, victim {victim_state})")
        return False, dict(detail, bit_identical=True)
    if failovers < 1:
        print("  no failover was recorded despite the dead home node")
        return False, dict(detail, bit_identical=True)
    print(f"  all {len(specs)} campaign points bit-identical through the "
          f"gateway; {failovers} failover(s), shard map v{v0} -> v{v1}")
    return True, dict(detail, bit_identical=True)


def _node_metrics(url: str) -> dict:
    """One node's JSON metrics rollup (scheduler/store counters)."""
    status, doc = _http_json("GET", f"{url}/metrics?format=json")
    assert status == 200, f"metrics probe failed: {status} {doc}"
    return doc


def _chaos_node_reboot_warm(seed: int, grid: int):
    """SIGKILL a node mid-campaign, restart it against the same
    ``REPRO_DATA_DIR``; prove the campaign completes with ZERO re-solves
    of already-committed points (the reboot is warm: the persistent
    store answers them) and every result stays bit-identical."""
    import tempfile
    import threading

    from . import telemetry
    from .fleet import (ALIVE, DEAD, NodeRegistry, make_gateway,
                        respawn_node, spawn_local_fleet)
    from .service.jobs import JobSpec, run_job

    telemetry.enable()
    wavelengths = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
    base = dict(kind="solve", preset="vacuum", grid=grid, tol=1e-4,
                max_steps=20)
    specs = [JobSpec.from_dict(dict(base, wavelength=w))
             for w in wavelengths]
    first, second = specs[: len(specs) // 2], specs[len(specs) // 2:]
    data_root = tempfile.mkdtemp(prefix="repro-chaos-data-")
    neutral = dict(REPRO_FAULTS=None, REPRO_CHECKPOINT_EVERY=None,
                   REPRO_CHECKPOINT_DIR=None)
    with _patched_env(**neutral):
        clean = {s.job_id: run_job(s) for s in specs}
        nodes = spawn_local_fleet(2, workers=1, mode="thread",
                                  data_root=data_root)
    registry = NodeRegistry([n.url for n in nodes], dead_after=1,
                            timeout_s=10.0, interval_s=3600.0)
    registry.check_once()
    gateway = make_gateway(registry, port=0, node_timeout_s=60.0)
    gw_thread = threading.Thread(target=gateway.serve_forever, daemon=True)
    gw_thread.start()
    base_url = f"http://127.0.0.1:{gateway.server_port}"
    try:
        # The victim is the home of a seeded FIRST-half point, so the
        # reboot provably lands on a node holding committed state.
        chosen = first[seed % len(first)]
        victim_url = gateway.router.home(chosen.job_id)
        victim = next(n for n in nodes if n.url == victim_url)

        for s in first:
            status, doc = _http_json("POST", f"{base_url}/jobs",
                                     payload=s.to_dict())
            assert status == 202, f"submit failed: {status} {doc}"
        for s in first:
            _poll_job(base_url, s.job_id, timeout=120.0)

        victim.kill()  # SIGKILL: no drain, in-memory state gone
        registry.check_once()
        dead_state = registry.node(victim_url).state
        print(f"  killed {victim.node_id} ({victim_url}) after "
              f"{len(first)} committed point(s) (seed {seed})")

        with _patched_env(**neutral):
            reborn = respawn_node(victim)
        nodes = [reborn if n is victim else n for n in nodes]
        registry.check_once()
        revived_state = registry.node(victim_url).state
        print(f"  respawned {reborn.node_id} on the same port against "
              f"{data_root}")

        for s in second:
            status, doc = _http_json("POST", f"{base_url}/jobs",
                                     payload=s.to_dict())
            assert status == 202, f"submit failed: {status} {doc}"
        docs = {s.job_id: _poll_job(base_url, s.job_id, timeout=120.0)
                for s in specs}
        victim_metrics = _node_metrics(victim_url)
        executed = victim_metrics["scheduler"]["executed"]
        store_counters = victim_metrics["store"]
    finally:
        gateway.shutdown()
        gateway.server_close()
        registry.stop()
        for n in nodes:
            n.kill()

    mismatched = [jid for jid, doc in docs.items()
                  if doc.get("result") != clean[jid]]
    # The respawned node may only ever execute SECOND-half points homed
    # on it: every committed first-half point must come back warm.
    expected_executed = sum(
        1 for s in second
        if gateway.router.home(s.job_id) == victim_url)
    warm = [jid for jid, doc in docs.items()
            if doc.get("from_store")
            and gateway.router.home(jid) == victim_url]
    detail = {"seed": seed, "victim": victim.node_id,
              "points": len(specs), "mismatched": len(mismatched),
              "dead_state": dead_state, "revived_state": revived_state,
              "executed_after_reboot": executed,
              "expected_executed": expected_executed,
              "warm_reads": len(warm),
              "store_hits": store_counters.get("hits")}
    if mismatched:
        print(f"  MISMATCH: {len(mismatched)} point(s) differ from the "
              "direct single-node run")
        return False, dict(detail, bit_identical=False)
    if dead_state != DEAD or revived_state != ALIVE:
        print(f"  membership never tracked the reboot "
              f"(kill -> {dead_state}, respawn -> {revived_state})")
        return False, dict(detail, bit_identical=True)
    if executed > expected_executed:
        print(f"  RE-SOLVE: the rebooted node executed {executed} job(s), "
              f"expected {expected_executed} (committed points must come "
              "back from its persistent store)")
        return False, dict(detail, bit_identical=True)
    print(f"  all {len(specs)} points bit-identical; rebooted node "
          f"re-solved nothing ({executed}/{expected_executed} fresh "
          f"second-half job(s) executed, {len(warm)} warm read(s))")
    return True, dict(detail, bit_identical=True)


def _chaos_replica_promote(seed: int, grid: int):
    """Kill the owner AFTER its result was replicated; prove the gateway
    serves the read from the replica's store -- no recompute, witnessed
    by the replica's solve counters -- and the shard-map version bumps
    exactly once for the death."""
    import threading

    from . import telemetry
    from .fleet import NodeRegistry, make_gateway, spawn_local_fleet
    from .service.jobs import JobSpec, run_job

    telemetry.enable()
    wavelengths = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
    spec = JobSpec(kind="solve", preset="vacuum", grid=grid,
                   wavelength=wavelengths[seed % len(wavelengths)],
                   tol=1e-4, max_steps=20)
    neutral = dict(REPRO_FAULTS=None, REPRO_CHECKPOINT_EVERY=None,
                   REPRO_CHECKPOINT_DIR=None)
    with _patched_env(**neutral):
        clean = run_job(spec)
        nodes = spawn_local_fleet(3, workers=1, mode="thread")
    registry = NodeRegistry([n.url for n in nodes], dead_after=1,
                            timeout_s=10.0, interval_s=3600.0)
    registry.check_once()
    gateway = make_gateway(registry, port=0, node_timeout_s=60.0)
    gw_thread = threading.Thread(target=gateway.serve_forever, daemon=True)
    gw_thread.start()
    base_url = f"http://127.0.0.1:{gateway.server_port}"
    try:
        owner_url, replica_url = gateway.router.candidates(spec.job_id)[:2]
        owner = next(n for n in nodes if n.url == owner_url)
        telemetry.fleet_replications()  # create the series before reading
        repl0 = telemetry.METRICS.get_value(
            "fleet_replications_total", labels=("ok",))

        status, doc = _http_json("POST", f"{base_url}/jobs",
                                 payload=spec.to_dict())
        assert status == 202, f"submit failed: {status} {doc}"
        _poll_job(base_url, spec.job_id, timeout=120.0)
        # The done-poll above pushed the result to the replica.
        replications = telemetry.METRICS.get_value(
            "fleet_replications_total", labels=("ok",)) - repl0
        replica_before = _node_metrics(replica_url)
        v0 = registry.version

        owner.kill()  # the computing node dies AFTER replication
        print(f"  killed owner {owner.node_id} ({owner_url}) after "
              f"{replications:g} replication(s) (seed {seed})")

        status, doc = _http_json("GET", f"{base_url}/jobs/{spec.job_id}")
        replica_after = _node_metrics(replica_url)
        v1 = registry.version
    finally:
        gateway.shutdown()
        gateway.server_close()
        registry.stop()
        for n in nodes:
            n.kill()

    executed_delta = (replica_after["scheduler"]["executed"]
                      - replica_before["scheduler"]["executed"])
    detail = {"seed": seed, "owner": owner.node_id,
              "replications": replications,
              "replica_puts": replica_before["store"].get("replica_puts"),
              "status_after_kill": status,
              "replica_executed_delta": executed_delta,
              "shard_version": [v0, v1]}
    if replications < 1 or not replica_before["store"].get("replica_puts"):
        print("  the result was never replicated to the ring's replica")
        return False, dict(detail, replicated=False)
    if status != 200 or doc.get("result") != clean:
        print(f"  promoted read failed: HTTP {status}, "
              f"bit_identical={doc.get('result') == clean}")
        return False, dict(detail, replicated=True, bit_identical=False)
    if executed_delta != 0:
        print(f"  RECOMPUTE: the replica executed {executed_delta} job(s) "
              "serving the promoted read")
        return False, dict(detail, replicated=True, bit_identical=True)
    if v1 != v0 + 1:
        print(f"  expected exactly one shard-map bump for the death "
              f"(v{v0} -> v{v1})")
        return False, dict(detail, replicated=True, bit_identical=True)
    print(f"  replica served the read from its store bit-identically "
          f"(0 re-solves, from_store={doc.get('from_store')}, "
          f"shard map v{v0} -> v{v1})")
    return True, dict(detail, replicated=True, bit_identical=True,
                      from_store=bool(doc.get("from_store")))


def _chaos_corrupt(which: str):
    """Scribble over a persisted artifact; prove it quarantines to
    ``*.corrupt`` and the recomputed result is identical."""
    import glob
    import os
    import tempfile

    from .ioutil import corrupt_file
    from .service import PlanRegistry, ResultStore
    from .service.jobs import JobSpec, run_job

    root = tempfile.mkdtemp(prefix=f"repro-chaos-{which}-")
    with _patched_env(REPRO_FAULTS=None):
        if which == "registry":
            spec = JobSpec(kind="tune", grid=8, threads=2)
            first = run_job(spec, registry=PlanRegistry(root))
            [path] = glob.glob(os.path.join(root, "plan-*.json"))
            corrupt_file(path)
            again = run_job(spec, registry=PlanRegistry(root))
        else:
            spec = JobSpec(kind="solve", preset="vacuum", grid=10,
                           wavelength=10.0, tol=1e-4, max_steps=20)
            first = run_job(spec)
            ResultStore(root).put(spec.job_id, first)
            [path] = glob.glob(os.path.join(root, "result-*.json"))
            corrupt_file(path)
            fresh = ResultStore(root)
            if fresh.get(spec.job_id) is not None:
                print("  corrupt entry was served instead of quarantined")
                return False, {"which": which, "quarantined": False,
                               "served_corrupt": True}
            again = run_job(spec)
    detail = {"which": which, "artifact": os.path.basename(path)}
    if not os.path.exists(path + ".corrupt"):
        print(f"  {os.path.basename(path)} was not quarantined")
        return False, dict(detail, quarantined=False)
    if first != again:
        print("  MISMATCH: recomputed result differs")
        return False, dict(detail, quarantined=True, bit_identical=False)
    print(f"  {os.path.basename(path)} quarantined -> *.corrupt; "
          f"recomputed result identical")
    return True, dict(detail, quarantined=True, bit_identical=True)


def _cmd_chaos(args) -> int:
    import json

    from .resilience import faults

    if args.list_sites:
        for site in faults.SITES:
            print(site)
        return 0
    scenarios = {
        "crash-resume": lambda: _chaos_crash_resume(args.seed, args.grid),
        "batch-resume": lambda: _chaos_batch_resume(args.seed, args.grid),
        "rank-crash": lambda: _chaos_rank_crash(args.seed, args.grid),
        "node-crash": lambda: _chaos_node_crash(args.seed, args.grid),
        "node-reboot-warm": lambda: _chaos_node_reboot_warm(args.seed,
                                                            args.grid),
        "replica-promote": lambda: _chaos_replica_promote(args.seed,
                                                          args.grid),
        "corrupt-registry": lambda: _chaos_corrupt("registry"),
        "corrupt-store": lambda: _chaos_corrupt("store"),
    }
    names = list(scenarios) if args.scenario == "all" else [args.scenario]
    failed = []
    for name in names:
        print(f"chaos: {name}")
        ok, detail = scenarios[name]()
        print(f"  {'PASS' if ok else 'FAIL'}")
        # One machine-readable summary line per scenario (CI greps these).
        print("CHAOS " + json.dumps(
            dict({"scenario": name, "ok": ok}, **detail), sort_keys=True))
        if not ok:
            failed.append(name)
    print("CHAOS-SUMMARY " + json.dumps(
        {"scenarios": len(names), "failed": failed, "ok": not failed},
        sort_keys=True))
    if failed:
        print(f"chaos: {len(failed)}/{len(names)} scenario(s) failed: "
              f"{', '.join(failed)}")
        return 1
    print(f"chaos: all {len(names)} scenario(s) passed")
    return 0


def _cmd_env(args) -> int:
    from . import config

    rows = config.describe()
    if args.json:
        import json

        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    wf = max(len(r["flag"]) for r in rows)
    wv = max(len("current"), max(len(r["value"]) for r in rows))
    wd = max(len("default"), max(len(r["default"]) for r in rows))
    print(f"{'flag'.ljust(wf)}  {'current'.ljust(wv)}  "
          f"{'default'.ljust(wd)}  description")
    for r in rows:
        print(f"{r['flag'].ljust(wf)}  {r['value'].ljust(wv)}  "
              f"{r['default'].ljust(wd)}  {r['description']}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    from . import config

    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "tune": _cmd_tune,
        "figures": _cmd_figures,
        "plan": _cmd_plan,
        "bench": _cmd_bench,
        "counters": _cmd_counters,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "campaign": _cmd_campaign,
        "tail": _cmd_tail,
        "top": _cmd_top,
        "chaos": _cmd_chaos,
        "cluster": _cmd_cluster,
        "fleet": _cmd_fleet,
        "env": _cmd_env,
    }
    trace_path = config.trace_path()
    rec = None
    if trace_path:
        from .core import tracing
        rec = tracing.start_trace(trace_path)
    try:
        return handlers[args.command](args)
    finally:
        if rec is not None:
            from .core import tracing
            if tracing.active() is rec:
                _, written = tracing.stop_trace()
                for w in written:
                    print(f"trace -> {w}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
