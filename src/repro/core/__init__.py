"""Multicore wavefront diamond (MWD) temporal blocking -- the paper's
primary contribution.

The pieces:

* :mod:`repro.core.diamond` -- exact diamond tessellation of the
  (time, y) plane for the split H/E dependency structure;
* :mod:`repro.core.wavefront` -- extrusion along z as a multi-level
  wavefront with block width ``B_z``;
* :mod:`repro.core.deps` -- node-level dependency rules + schedule
  validity checker (the correctness oracle);
* :mod:`repro.core.plan` -- tile sets, dependency DAG, job streams;
* :mod:`repro.core.queue` -- the FIFO dynamic tile scheduler;
* :mod:`repro.core.executor` -- dependency-ordered execution of the real
  kernels (must equal the naive sweep);
* :mod:`repro.core.threadgroups` -- thread groups and multi-dimensional
  intra-tile parallelization;
* :mod:`repro.core.models` -- the analytic cache-block-size and
  code-balance models (Eqs. 8-12 of the paper);
* :mod:`repro.core.autotuner` -- parameter search pruned by the cache
  model and scored on the machine simulator.
"""

from .autotuner import TunedPoint, tune_spatial, tune_tiled
from .deps import DependencyChecker, DependencyError, validate_jobs
from .diamond import DiamondTile, RowSpan, enumerate_tiles, node_tile_index
from .executor import TiledExecutor
from .models import (
    arithmetic_intensity,
    bandwidth_limited_mlups,
    cache_block_size,
    diamond_code_balance,
    max_diamond_width,
    naive_code_balance,
    spatial_code_balance,
    usable_cache_bytes,
    wavefront_tile_width,
)
from .plan import TilingPlan
from .queue import TileQueue
from .threadgroups import (
    ThreadGroupConfig,
    WorkItem,
    divisors,
    enumerate_tg_configs,
    work_assignment,
)
from .tiled_solver import BatchedTiledTHIIM, TiledTHIIM
from .wavefront import RowJob, level_offsets, tile_row_jobs, wavefront_width

__all__ = [
    "DependencyChecker",
    "DependencyError",
    "DiamondTile",
    "RowJob",
    "RowSpan",
    "ThreadGroupConfig",
    "TileQueue",
    "BatchedTiledTHIIM",
    "TiledTHIIM",
    "TiledExecutor",
    "TilingPlan",
    "TunedPoint",
    "WorkItem",
    "arithmetic_intensity",
    "bandwidth_limited_mlups",
    "cache_block_size",
    "diamond_code_balance",
    "divisors",
    "enumerate_tg_configs",
    "enumerate_tiles",
    "level_offsets",
    "max_diamond_width",
    "naive_code_balance",
    "node_tile_index",
    "spatial_code_balance",
    "tile_row_jobs",
    "tune_spatial",
    "tune_tiled",
    "usable_cache_bytes",
    "validate_jobs",
    "wavefront_tile_width",
    "work_assignment",
]
