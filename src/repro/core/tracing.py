"""Structured trace recorder (Chrome tracing / Perfetto + JSONL).

Records spans for wavefront steps, diamond tiles, measurement phases,
auto-tuner candidates and the DES thread-group schedule, and writes them
in two formats at once:

* **Chrome trace format** -- a ``{"traceEvents": [...]}`` JSON loadable
  in ``chrome://tracing`` or https://ui.perfetto.dev; wall-clock spans
  live in the "wall clock" process, each discrete-event simulation gets
  its own process whose thread lanes are the simulated thread groups.
* **JSONL** -- one structured event object per line (schema below), the
  machine-readable form CI archives and tests validate.

Activation
----------
Tracing is off by default and costs one module-attribute load plus a
``None`` check per instrumentation site when disabled.  Enable either
programmatically::

    from repro.core import tracing
    tracing.start_trace("run.json")
    ...             # instrumented code records spans
    tracing.stop_trace()   # writes run.json (Chrome) + run.jsonl

or by environment: ``REPRO_TRACE=path.json`` makes the ``repro`` CLI
trace the whole command and write both files on exit.

JSONL schema
------------
Every line is one JSON object with a ``type`` key:

* ``{"type": "meta", "kind": "process_name"|"thread_name", "pid": int,
  "tid": int, "name": str}``
* ``{"type": "span", "name": str, "cat": str, "ts_us": float,
  "dur_us": float, "pid": int, "tid": int, "args": {...}}``
* ``{"type": "instant", "name": str, "cat": str, "ts_us": float,
  "pid": int, "tid": int, "args": {...}}``
* ``{"type": "counter", "name": str, "ts_us": float, "pid": int,
  "values": {series: number}}``

Timestamps are microseconds; wall-clock events are relative to recorder
start, simulated events to their simulation's t=0.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TraceRecorder",
    "active",
    "enabled",
    "start_trace",
    "stop_trace",
    "span",
    "WALL_PID",
]

#: The wall-clock process id in the trace (simulations allocate from 2).
WALL_PID = 1


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """An open wall-clock span; appended to the recorder on exit."""

    __slots__ = ("_rec", "name", "cat", "tid", "args", "_t0")

    def __init__(self, rec: "TraceRecorder", name: str, cat: str, tid: int, args):
        self._rec = rec
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = dict(args) if args else {}
        self._t0 = rec.now_us()

    def set(self, **args) -> None:
        """Attach result arguments discovered while the span is open."""
        self.args.update(args)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        rec = self._rec
        rec.complete(self.name, self.cat, self._t0, rec.now_us() - self._t0,
                     pid=WALL_PID, tid=self.tid, args=self.args or None)
        return False


class TraceRecorder:
    """In-memory event buffer with Chrome-trace and JSONL writers."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._wall0 = time.perf_counter()
        #: Unix time of recorder start -- what lets a forked child's
        #: events (relative to *its* start) be re-based onto this
        #: recorder's timeline in :meth:`merge_child`.
        self.epoch = time.time()
        self._events: List[dict] = []
        self._meta: List[dict] = []
        self._next_pid = WALL_PID + 1
        self._set_name("process_name", WALL_PID, 0, "wall clock")

    # -- clocks / processes ----------------------------------------------------

    def now_us(self) -> float:
        return (time.perf_counter() - self._wall0) * 1e6

    def _set_name(self, kind: str, pid: int, tid: int, name: str) -> None:
        self._meta.append({"kind": kind, "pid": pid, "tid": tid, "name": name})

    def new_process(self, name: str) -> int:
        """Allocate a trace process (one per DES run) and label it."""
        pid = self._next_pid
        self._next_pid += 1
        self._set_name("process_name", pid, 0, name)
        return pid

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        self._set_name("thread_name", pid, tid, name)

    # -- event emission --------------------------------------------------------

    def span(self, name: str, cat: str = "", tid: int = 0, args=None) -> _Span:
        """Open a wall-clock span (use as a context manager)."""
        return _Span(self, name, cat, tid, args)

    def complete(self, name: str, cat: str, ts_us: float, dur_us: float,
                 pid: int = WALL_PID, tid: int = 0, args=None) -> None:
        """Record a finished span at explicit timestamps (DES spans pass
        simulated time here)."""
        ev = {"type": "span", "name": name, "cat": cat, "ts_us": ts_us,
              "dur_us": dur_us, "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        self._events.append(ev)

    def instant(self, name: str, cat: str = "", ts_us: Optional[float] = None,
                pid: int = WALL_PID, tid: int = 0, args=None) -> None:
        ev = {"type": "instant", "name": name, "cat": cat,
              "ts_us": self.now_us() if ts_us is None else ts_us,
              "pid": pid, "tid": tid}
        if args:
            ev["args"] = args
        self._events.append(ev)

    def counter(self, name: str, values: Dict[str, float],
                ts_us: Optional[float] = None, pid: int = WALL_PID) -> None:
        self._events.append({"type": "counter", "name": name,
                             "ts_us": self.now_us() if ts_us is None else ts_us,
                             "pid": pid, "values": dict(values)})

    # -- cross-process merge ---------------------------------------------------

    def export(self) -> dict:
        """Everything a parent needs to merge this recorder's events:
        the epoch plus raw meta/event lists (forked workers ship this
        through their spool file, like ``SubstrateCounters`` snapshots)."""
        return {"epoch": self.epoch, "meta": list(self._meta),
                "events": list(self._events)}

    def merge_child(self, payload: dict, label: str = "forked worker") -> int:
        """Fold an :meth:`export` payload from a child process into this
        recorder.  Child timestamps are re-based via the epoch delta and
        every child pid is remapped to a fresh process here (the child's
        wall-clock process is renamed ``label``), so the merged Chrome
        trace shows the worker's spans on their own lane with correct
        absolute placement.  Returns the pid the child's wall clock got.
        """
        offset_us = (float(payload.get("epoch", self.epoch)) - self.epoch) * 1e6
        names = {m["pid"]: m["name"]
                 for m in payload.get("meta") or []
                 if m.get("kind") == "process_name"}
        pid_map: Dict[int, int] = {}

        def mapped(pid: int) -> int:
            new = pid_map.get(pid)
            if new is None:
                name = label if pid == WALL_PID else (
                    names.get(pid) or f"{label} pid {pid}")
                new = pid_map[pid] = self.new_process(name)
            return new

        wall_pid = mapped(WALL_PID)
        for m in payload.get("meta") or []:
            if m.get("kind") == "thread_name":
                self._set_name("thread_name", mapped(m["pid"]),
                               m["tid"], m["name"])
        for ev in payload.get("events") or []:
            ev = dict(ev)
            ev["pid"] = mapped(ev.get("pid", WALL_PID))
            ev["ts_us"] = float(ev.get("ts_us", 0.0)) + offset_us
            self._events.append(ev)
        return wall_pid

    # -- readout ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def summary(self) -> Dict[str, int]:
        """Event counts per category (spans/instants) -- the CLI digest."""
        out: Dict[str, int] = {}
        for ev in self._events:
            key = ev.get("cat") or ev["type"]
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))

    def chrome_events(self) -> List[dict]:
        out: List[dict] = []
        for m in self._meta:
            out.append({"name": m["kind"], "ph": "M", "pid": m["pid"],
                        "tid": m["tid"], "args": {"name": m["name"]}})
        for ev in self._events:
            if ev["type"] == "span":
                ch = {"name": ev["name"], "cat": ev["cat"] or "default",
                      "ph": "X", "ts": ev["ts_us"], "dur": ev["dur_us"],
                      "pid": ev["pid"], "tid": ev["tid"]}
            elif ev["type"] == "instant":
                ch = {"name": ev["name"], "cat": ev["cat"] or "default",
                      "ph": "i", "ts": ev["ts_us"], "s": "t",
                      "pid": ev["pid"], "tid": ev["tid"]}
            else:  # counter
                ch = {"name": ev["name"], "ph": "C", "ts": ev["ts_us"],
                      "pid": ev["pid"], "tid": 0, "args": ev["values"]}
            if "args" in ev and ev["type"] != "counter":
                ch["args"] = ev["args"]
            out.append(ch)
        return out

    def dump_chrome(self, path: str) -> str:
        """Write Chrome trace format (open in chrome://tracing / Perfetto)."""
        doc = {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}
        _ensure_parent(path)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def dump_jsonl(self, path: str) -> str:
        """Write the structured JSONL form (one event object per line)."""
        _ensure_parent(path)
        with open(path, "w", encoding="utf-8") as f:
            for m in self._meta:
                f.write(json.dumps({"type": "meta", **m}) + "\n")
            for ev in self._events:
                f.write(json.dumps(ev) + "\n")
        return path


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def jsonl_path_for(path: str) -> str:
    """The JSONL sibling of a Chrome-trace path (.json -> .jsonl)."""
    root, ext = os.path.splitext(path)
    return f"{root}.jsonl" if ext.lower() == ".json" else f"{path}.jsonl"


#: The active recorder, or None.  Instrumentation sites go through
#: :func:`active` / :func:`span`, which cost a None check when disabled.
_RECORDER: Optional[TraceRecorder] = None


def active() -> Optional[TraceRecorder]:
    return _RECORDER


def enabled() -> bool:
    return _RECORDER is not None


def span(name: str, cat: str = "", tid: int = 0, args=None):
    """A wall-clock span on the active recorder, or a shared no-op."""
    rec = _RECORDER
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, cat, tid=tid, args=args)


def start_trace(path: Optional[str] = None) -> TraceRecorder:
    """Install a fresh recorder (replacing any active one)."""
    global _RECORDER
    _RECORDER = TraceRecorder(path)
    return _RECORDER


def stop_trace() -> Tuple[Optional[TraceRecorder], List[str]]:
    """Deactivate tracing; if the recorder was given a path, write the
    Chrome trace there and the JSONL next to it.  Returns the recorder
    and the list of files written."""
    global _RECORDER
    rec, _RECORDER = _RECORDER, None
    written: List[str] = []
    if rec is not None and rec.path:
        written.append(rec.dump_chrome(rec.path))
        written.append(rec.dump_jsonl(jsonl_path_for(rec.path)))
    return rec, written
