"""Temporally blocked THIIM driver: the production integration.

:class:`TiledTHIIM` is what the paper's users actually run: the THIIM
inverse iteration advanced through the wavefront-diamond traversal,
chunk of steps by chunk of steps, with the same convergence monitoring
as the naive driver.  A single :class:`TilingPlan` covering ``chunk``
time steps is built once and re-executed -- every execution advances the
fields exactly ``chunk`` steps, so temporal blocking composes cleanly
with the fixed-point iteration.

It also exposes the executed job statistics (tiles, row jobs, LUPs), the
numbers a performance engineer feeds to the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..fdfd.observables import relative_change
from ..fdfd.thiim import (
    BatchedTHIIMSolver,
    BatchSolveResult,
    SolveResult,
    THIIMSolver,
    divergence_reason,
    run_batched_loop,
)
from ..resilience import faults
from ..resilience.errors import SolverDiverged
from .executor import TiledExecutor
from .plan import TilingPlan

__all__ = ["TiledTHIIM", "BatchedTiledTHIIM"]


class TiledTHIIM:
    """Wavefront-diamond-blocked THIIM solve.

    Parameters
    ----------
    solver:
        A configured :class:`THIIMSolver` (grid must be non-periodic in
        y and z -- the benchmark/Dirichlet configuration).
    dw, bz:
        Diamond width and wavefront block width.
    chunk:
        Time steps per plan execution; convergence is checked between
        chunks.  Defaults to one full diamond height (``dw`` steps), the
        natural granule of the tessellation.
    """

    def __init__(self, solver: THIIMSolver, dw: int, bz: int = 1, chunk: int | None = None):
        self.solver = solver
        grid = solver.grid
        self.chunk = chunk if chunk is not None else max(dw, 1)
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.plan = TilingPlan.build(
            ny=grid.ny, nz=grid.nz, timesteps=self.chunk, dw=dw, bz=bz
        )
        # Fails fast on periodic y/z.
        self.executor = TiledExecutor(solver.fields, solver.coefficients, self.plan)
        self.steps_done = 0

    def run(self, nsteps: int) -> None:
        """Advance ``nsteps`` time steps (rounded up to whole chunks)."""
        if nsteps < 0:
            raise ValueError("nsteps must be >= 0")
        chunks = -(-nsteps // self.chunk)
        for _ in range(chunks):
            self.executor.run()
            self.steps_done += self.chunk

    def solve(
        self,
        tol: float = 1e-6,
        max_steps: int = 5000,
        checkpoint=None,
        on_divergence: str = "return",
    ) -> SolveResult:
        """Iterate to the time-harmonic state through the tiled traversal.

        ``checkpoint``/``on_divergence`` mirror
        :meth:`repro.fdfd.thiim.THIIMSolver.solve`.  Checkpoints land at
        chunk boundaries and also carry the executed-work counters
        (``steps_done``, ``lups_done``, ``jobs_done``), so a resumed run
        reports the same traffic statistics as an uninterrupted one.
        """
        if tol <= 0:
            raise ValueError("tol must be positive")
        if on_divergence not in ("return", "raise"):
            raise ValueError("on_divergence must be 'return' or 'raise'")
        history: list[float] = []
        steps = 0
        if checkpoint is not None:
            restored = checkpoint.resume(self.solver.fields)
            if restored is not None:
                steps = restored.steps
                history = list(restored.history)
                extras = restored.extras
                self.steps_done = int(extras.get("steps_done", self.steps_done))
                self.executor.lups_done = int(
                    extras.get("lups_done", self.executor.lups_done))
                self.executor.jobs_done = int(
                    extras.get("jobs_done", self.executor.jobs_done))
        previous = self.solver.fields.copy()
        while steps < max_steps:
            faults.hit("solver.sweep")
            self.executor.run()
            steps += self.chunk
            self.steps_done += self.chunk
            res = relative_change(self.solver.fields, previous) / self.chunk
            history.append(res)
            telemetry.publish("progress", sweeps=steps, residual=float(res),
                              tiled=True)
            reason = divergence_reason(res, history)
            if reason is not None:
                if on_divergence == "raise":
                    raise SolverDiverged(
                        f"tiled THIIM iteration diverged after {steps} steps: "
                        f"{reason}",
                        steps=steps, residual=float(res),
                        history_tail=[float(r) for r in history[-6:]])
                return SolveResult(self.solver.fields, steps, res, False, history)
            if res < tol:
                return SolveResult(self.solver.fields, steps, res, True, history)
            previous = self.solver.fields.copy()
            if checkpoint is not None and checkpoint.due(steps):
                checkpoint.save(
                    self.solver.fields, steps, history,
                    extras={"steps_done": self.steps_done,
                            "lups_done": self.executor.lups_done,
                            "jobs_done": self.executor.jobs_done})
        return SolveResult(
            self.solver.fields, steps, history[-1] if history else np.inf, False, history
        )

    @property
    def lups_done(self) -> int:
        return self.executor.lups_done

    @property
    def jobs_done(self) -> int:
        return self.executor.jobs_done

    def describe(self) -> str:
        return (
            f"TiledTHIIM(chunk={self.chunk}, {self.plan.describe()}, "
            f"steps_done={self.steps_done})"
        )


class BatchedTiledTHIIM:
    """Wavefront-diamond-blocked solve of a whole wavelength batch.

    One :class:`TilingPlan` (built exactly as for a scalar solve of the
    same grid -- the plan is spatial/temporal, not per-lane, which is why
    one autotuned plan serves the whole campaign batch) drives the tiled
    executor over the ``12 x k`` stacked fields; every tile touch updates
    all ``k`` wavelengths while the stencil working set is hot.
    Convergence is monitored per point between chunks, finished lanes are
    compacted away, and checkpoints carry the batch axis plus per-point
    loop state (see :func:`repro.fdfd.thiim.run_batched_loop`).
    """

    def __init__(self, batched: BatchedTHIIMSolver, dw: int, bz: int = 1,
                 chunk: int | None = None):
        self.batched = batched
        grid = batched.grid
        self.chunk = chunk if chunk is not None else max(dw, 1)
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.plan = TilingPlan.build(
            ny=grid.ny, nz=grid.nz, timesteps=self.chunk, dw=dw, bz=bz
        )
        # The executor duck-types the field/coefficient protocol, so the
        # batched stacks drop straight in (and compaction keeps object
        # identity, so the references below stay live).
        self.executor = TiledExecutor(batched.fields, batched.coefficients, self.plan)
        self.steps_done = 0

    def _counters(self) -> dict:
        return {"steps_done": self.steps_done,
                "lups_done": self.executor.lups_done,
                "jobs_done": self.executor.jobs_done}

    def _restore_counters(self, extras: dict) -> None:
        self.steps_done = int(extras.get("steps_done", self.steps_done))
        self.executor.lups_done = int(
            extras.get("lups_done", self.executor.lups_done))
        self.executor.jobs_done = int(
            extras.get("jobs_done", self.executor.jobs_done))

    def run(self, nsteps: int) -> None:
        """Advance all active lanes ``nsteps`` steps (whole chunks)."""
        if nsteps < 0:
            raise ValueError("nsteps must be >= 0")
        chunks = -(-nsteps // self.chunk)
        for _ in range(chunks):
            self.executor.run()
            self.steps_done += self.chunk

    def solve(self, tol: float = 1e-6, max_steps: int = 5000,
              checkpoint=None) -> BatchSolveResult:
        """Iterate the batch to convergence; every lane bit-identical to
        a scalar :meth:`TiledTHIIM.solve` of that point."""

        def advance(n: int) -> None:
            # step_size always hands back one chunk; the plan advances
            # exactly that many steps per execution.
            self.executor.run()
            self.steps_done += self.chunk

        return run_batched_loop(
            self.batched.fields,
            self.batched.coefficients,
            advance=advance,
            step_size=lambda steps: self.chunk,
            tol=tol,
            max_steps=max_steps,
            checkpoint=checkpoint,
            extras_get=self._counters,
            extras_set=self._restore_counters,
        )

    @property
    def lups_done(self) -> int:
        return self.executor.lups_done

    @property
    def jobs_done(self) -> int:
        return self.executor.jobs_done

    def describe(self) -> str:
        return (
            f"BatchedTiledTHIIM(k={self.batched.batch_width}, "
            f"chunk={self.chunk}, {self.plan.describe()}, "
            f"steps_done={self.steps_done})"
        )
