"""Thread groups and multi-dimensional intra-tile parallelization.

The paper's key optimization beyond plain wavefront-diamond blocking: the
threads of a *thread group* (TG) cooperate on one cache block instead of
each owning a private one, and they are spread over **three** intra-tile
dimensions (Section II-B):

* the **wavefront** (z) dimension -- up to ``B_z`` threads, each advancing
  part of the moving window; more wavefront threads need a wider window
  and therefore a bigger cache block (Eq. 11);
* the **inner** (x) dimension -- splitting the contiguous rows costs no
  extra cache but hurts once per-thread chunks drop below ~50 cells
  (hardware-prefetch/pipeline argument of Section VI);
* the **component** dimension -- 1/2/3/6-way parallelism over the six
  independent component updates of a half step (Fig. 3 shows 3-way).

The diamond (y) dimension is deliberately *not* parallelized: the odd row
widths at every other sub-step make it impossible to balance (Section
II-B).

This module enumerates and validates the configurations; their
performance consequences (fill/drain, imbalance, cache footprint) are
evaluated by :mod:`repro.machine.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..fdfd.specs import component_groups

__all__ = [
    "ThreadGroupConfig",
    "WorkItem",
    "enumerate_tg_configs",
    "divisors",
    "work_assignment",
]

#: Legal component-parallelism fan-outs (divisors of the 6 updates).
COMPONENT_WAYS = (1, 2, 3, 6)

#: Below roughly this many contiguous cells per thread the paper expects
#: pipeline/SIMD efficiency to collapse (Section VI: "thin domains with
#: less than about 50 cells are inefficient").
MIN_X_CHUNK = 16


def divisors(n: int) -> List[int]:
    """Positive divisors of ``n`` in ascending order."""
    if n < 1:
        raise ValueError("n must be >= 1")
    out = [d for d in range(1, n + 1) if n % d == 0]
    return out


@dataclass(frozen=True)
class ThreadGroupConfig:
    """One intra-tile parallelization: ``(wavefront, x, component)`` ways.

    ``size = wavefront_threads * x_threads * component_threads`` is the
    thread-group size; ``threads // size`` groups run concurrently on
    different diamond tiles.
    """

    wavefront_threads: int = 1
    x_threads: int = 1
    component_threads: int = 1

    def __post_init__(self) -> None:
        if self.wavefront_threads < 1 or self.x_threads < 1:
            raise ValueError("thread counts must be >= 1")
        if self.component_threads not in COMPONENT_WAYS:
            raise ValueError(
                f"component parallelism must be one of {COMPONENT_WAYS}, "
                f"got {self.component_threads}"
            )

    @property
    def size(self) -> int:
        return self.wavefront_threads * self.x_threads * self.component_threads

    def is_feasible(self, bz: int, nx: int, min_x_chunk: int = MIN_X_CHUNK) -> bool:
        """Whether this split fits a tile with wavefront width ``bz`` on a
        grid with ``nx`` inner cells.

        Wavefront threads cannot exceed the window width (each must own at
        least one plane of the moving block), and x-chunks should not drop
        below the efficiency threshold.
        """
        if self.wavefront_threads > bz:
            return False
        if nx // self.x_threads < min_x_chunk:
            return False
        return True

    def x_chunk(self, nx: int) -> int:
        """Per-thread inner-dimension chunk (ceiling division)."""
        return -(-nx // self.x_threads)

    def imbalance(self, nx: int) -> float:
        """Load-imbalance factor >= 1 of the x split.

        The slowest thread does ``ceil(nx / x_threads)`` cells while the
        average is ``nx / x_threads``; component and wavefront splits are
        balanced by construction.
        """
        ideal = nx / self.x_threads
        return self.x_chunk(nx) / ideal

    def label(self) -> str:
        return f"wf{self.wavefront_threads}.x{self.x_threads}.c{self.component_threads}"


@dataclass(frozen=True)
class WorkItem:
    """The static share of one thread of a thread group.

    The paper's Fixed-Execution-to-Data (FED) strategy: each thread is
    permanently bound to the same x-chunk, the same component subset and
    the same slot of the moving wavefront window, so only tile-boundary
    data ever migrates between private caches as the wavefront sweeps.
    """

    thread: int
    wavefront_slot: int
    x_lo: int
    x_hi: int
    components: Tuple[int, ...]

    @property
    def x_cells(self) -> int:
        return self.x_hi - self.x_lo


def work_assignment(cfg: ThreadGroupConfig, nx: int) -> List[WorkItem]:
    """The FED work map of a thread-group configuration.

    Enumerates the ``wavefront x x x component`` lattice; every grid cell
    of every half-step level is covered exactly once per wavefront slot
    (the slots partition the z window, the x chunks partition the row,
    the component groups partition the six updates).
    """
    if nx < cfg.x_threads:
        raise ValueError(f"nx={nx} cannot feed {cfg.x_threads} x-threads")
    groups = component_groups(cfg.component_threads)
    chunk = -(-nx // cfg.x_threads)
    items: List[WorkItem] = []
    tid = 0
    for slot in range(cfg.wavefront_threads):
        for xi in range(cfg.x_threads):
            x_lo = xi * chunk
            x_hi = min(x_lo + chunk, nx)
            for group in groups:
                items.append(
                    WorkItem(
                        thread=tid,
                        wavefront_slot=slot,
                        x_lo=x_lo,
                        x_hi=x_hi,
                        components=tuple(group),
                    )
                )
                tid += 1
    return items


def enumerate_tg_configs(
    tg_size: int,
    bz: int,
    nx: int,
    min_x_chunk: int = MIN_X_CHUNK,
) -> Iterator[ThreadGroupConfig]:
    """All feasible intra-tile splits of ``tg_size`` threads.

    The auto-tuner iterates these per (D_w, B_z) candidate; for TG size 1
    the only config is the 1WD-style serial tile update.
    """
    if tg_size < 1:
        raise ValueError("tg_size must be >= 1")
    for nc in COMPONENT_WAYS:
        if tg_size % nc:
            continue
        rest = tg_size // nc
        for nwf in divisors(rest):
            nx_threads = rest // nwf
            cfg = ThreadGroupConfig(
                wavefront_threads=nwf, x_threads=nx_threads, component_threads=nc
            )
            if cfg.is_feasible(bz, nx, min_x_chunk):
                yield cfg
