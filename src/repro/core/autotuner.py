"""Auto-tuner for the blocking parameters (Section II-A of the paper).

"We use the auto-tuner in the Girih system to select the diamond tile
size, the wavefront tile width, and the TG size in all dimensions to
achieve the best performance.  To shorten the auto-tuning process, the
parameter search space is narrowed down to diamond tiles that fit within
a predefined cache size range using a cache block size model."

The search space per variant:

* **spatial** -- the y block size of the spatially blocked sweep;
* **1WD** -- thread-group size fixed at 1 (each thread owns a tile);
  diamond width and wavefront width searched under the per-thread cache
  budget;
* **kWD / MWD** -- thread-group sizes among the divisors of the thread
  count (MWD searches all; kWD pins one), wavefront width, diamond width
  and the multi-dimensional intra-tile split.

Pruning: for each (TG size, B_z) only diamond widths whose *total*
concurrent footprint ``n_groups * C_s(D_w, B_z)`` stays within a slack
factor of the usable L3 are evaluated (Eq. 11); the slack lets the
measured cache behaviour decide borderline cases.  Scoring runs the
measured code balance through the execution simulator.

Parallel evaluation and result persistence
------------------------------------------
Candidate points are *enumerated* first (in the canonical nested-loop
order) and *scored* as independent pure function calls, so they can fan
out across a ``multiprocessing`` pool: set ``REPRO_TUNE_WORKERS=<n>`` to
score with ``n`` forked workers.  Results are merged back in enumeration
order with a strict ``>`` comparison, which makes the winning
configuration identical to the serial search bit for bit regardless of
worker count or completion order.

Tuning a point is deterministic in its inputs, so results can also be
reused across processes: set ``REPRO_TUNE_CACHE=<dir>`` to keep a JSON
result file per tuned point, keyed by a hash of the full machine spec and
every search argument plus a format version.  Delete the directory (or
bump ``TUNE_CACHE_VERSION``) to invalidate; floats round-trip exactly
through the JSON files, so cached and freshly computed points compare
equal.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Sequence, Tuple

from .. import config
from ..ioutil import atomic_write_json, corrupt_file, read_json_checked
from ..resilience import faults
from ..machine.counters import SUBSTRATE_COUNTERS, timed_section
from ..machine.measure import measure_sweep_code_balance, measure_tiled_code_balance
from ..machine.simulator import SimResult, simulate_sweep, simulate_tiled, tg_efficiency
from ..machine.spec import MachineSpec
from . import tracing
from .models import cache_block_size, max_diamond_width
from .plan import TilingPlan
from .threadgroups import ThreadGroupConfig, divisors, enumerate_tg_configs

__all__ = [
    "TunedPoint",
    "point_from_json",
    "point_to_json",
    "simulate_grid_lups",
    "tune_spatial",
    "tune_tiled",
]

#: Bump to invalidate every persisted tuning result (format or model change).
TUNE_CACHE_VERSION = 1

#: Wavefront widths explored by the tuner (the paper's Fig. 5 uses 1/6/9).
BZ_CANDIDATES: Tuple[int, ...] = (1, 2, 4, 6, 9)
#: Diamond widths explored.  Girih's minimum is 4 (Section III-C: "the
#: minimum diamond width D_w = 4"); when not even that fits the cache
#: budget the code still runs D_w = 4 and thrashes -- which is exactly the
#: 1WD performance drop beyond ~12 cores in Fig. 6.
DW_MIN = 4
DW_CAP = 32
#: Cache-model pruning slack: candidates up to this factor above the
#: usable-cache budget are still measured (the LRU decides).
CACHE_SLACK = 1.1
#: Per-(TG size, B_z) only the largest fitting widths are scored.
TOP_DW_PER_BZ = 2


@dataclass(frozen=True)
class TunedPoint:
    """One tuned configuration and its simulated performance."""

    variant: str
    threads: int
    result: SimResult
    code_balance: float
    dw: int | None = None
    bz: int | None = None
    tg: ThreadGroupConfig | None = None
    block_y: int | None = None

    @property
    def mlups(self) -> float:
        return self.result.mlups

    @property
    def tg_size(self) -> int:
        return self.tg.size if self.tg else 1

    def describe(self) -> str:
        bits = [f"{self.variant}@{self.threads}t: {self.mlups:.1f} MLUP/s",
                f"{self.result.bandwidth_gbs:.1f} GB/s",
                f"{self.code_balance:.0f} B/LUP"]
        if self.dw is not None:
            bits.append(f"Dw={self.dw} Bz={self.bz} TG={self.tg.label() if self.tg else '1'}")
        if self.block_y is not None:
            bits.append(f"block_y={self.block_y}")
        return "  ".join(bits)


def grid_lups(n: int, timesteps: int = 100) -> float:
    return float(n) ** 3 * timesteps


# -- parallel candidate scoring ----------------------------------------------


def _tune_workers() -> int:
    return config.tune_workers()


def _score_with_counters(item):
    """Worker-side wrapper: score one candidate and ship the substrate
    telemetry it generated back with the result.  The fork child counts
    in its copy-on-write :data:`SUBSTRATE_COUNTERS`; resetting before the
    call makes the snapshot a per-candidate delta the parent can merge."""
    fn, cand = item
    SUBSTRATE_COUNTERS.reset()
    point = fn(cand)
    return point, SUBSTRATE_COUNTERS.snapshot()


def _pmap(fn: Callable, candidates: Sequence) -> List:
    """Score candidates, fanning out over a fork pool when configured.

    ``Pool.map`` returns results in submission order, and the callers
    merge with a strict ``>`` in that order, so the selected winner is
    identical to the serial search no matter how many workers run.
    Worker telemetry (replayed jobs, memo hits, section times) rides back
    with each result and is merged into the parent's counters.
    """
    workers = _tune_workers()
    if workers <= 1 or len(candidates) < 4:
        return [fn(c) for c in candidates]
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    with ctx.Pool(min(workers, len(candidates))) as pool:
        scored = pool.map(_score_with_counters, [(fn, c) for c in candidates])
    for _, snap in scored:
        SUBSTRATE_COUNTERS.merge(snap)
    return [point for point, _ in scored]


# -- persistent result cache --------------------------------------------------


def _tg_to_json(tg: ThreadGroupConfig | None):
    return None if tg is None else dataclasses.asdict(tg)


def _point_to_json(point: TunedPoint | None):
    if point is None:
        return None
    return {
        "variant": point.variant,
        "threads": point.threads,
        "result": dataclasses.asdict(point.result),
        "code_balance": point.code_balance,
        "dw": point.dw,
        "bz": point.bz,
        "tg": _tg_to_json(point.tg),
        "block_y": point.block_y,
    }


def _point_from_json(d) -> TunedPoint | None:
    if d is None:
        return None
    return TunedPoint(
        variant=d["variant"],
        threads=d["threads"],
        result=SimResult(**d["result"]),
        code_balance=d["code_balance"],
        dw=d["dw"],
        bz=d["bz"],
        tg=None if d["tg"] is None else ThreadGroupConfig(**d["tg"]),
        block_y=d["block_y"],
    )


def _cache_path(kind: str, spec: MachineSpec, args: tuple) -> str | None:
    root = config.tune_cache_dir()
    if not root:
        return None
    payload = json.dumps(
        [TUNE_CACHE_VERSION, kind, dataclasses.asdict(spec), list(args)],
        sort_keys=True,
    )
    digest = hashlib.sha1(payload.encode()).hexdigest()[:20]
    return os.path.join(root, f"{kind}-{digest}.json")


def _cache_get(path: str | None) -> tuple | None:
    """Returns ``(point,)`` on a hit (the point itself may be None).

    Malformed or checksum-mismatched entries are quarantined to
    ``<path>.corrupt`` (via :func:`~repro.ioutil.read_json_checked`) and
    read as a miss, so a scribbled-over cache file costs one re-tune
    instead of a crash.
    """
    if path is None or not os.path.exists(path):
        return None
    if faults.hit("tune_cache.read") == "corrupt":
        corrupt_file(path)
    d = read_json_checked(path)
    if d is None:
        return None
    try:
        if d.get("version") != TUNE_CACHE_VERSION:
            return None
        return (_point_from_json(d["point"]),)
    except (ValueError, KeyError, TypeError, AttributeError):
        return None  # schema drift: recompute


def _cache_put(path: str | None, point: TunedPoint | None) -> None:
    if path is None:
        return
    try:
        kind = faults.hit("tune_cache.write")
        # Unique-temp + rename: concurrent tuners (including two *threads*
        # of one process, which a pid-suffixed temp name would collide on)
        # can never interleave a torn cache file.
        atomic_write_json(
            path,
            {"version": TUNE_CACHE_VERSION, "point": _point_to_json(point)},
            checksum=True,
        )
        if kind == "corrupt":
            corrupt_file(path)
    except OSError:
        pass  # read-only or full disk: persistence is best-effort


#: Public (de)serializers for a tuned point -- the service plan registry
#: persists winners in exactly the tune-cache payload format.
point_to_json = _point_to_json
point_from_json = _point_from_json


# -- the tuners ---------------------------------------------------------------


def _score_spatial(cand) -> TunedPoint:
    spec, machine, grid_n, threads, block_y = cand
    with timed_section("tune.score"), tracing.span(
        f"candidate spatial by={block_y}", "autotune",
        args={"variant": "spatial", "grid": grid_n, "threads": threads,
              "block_y": block_y},
    ) as sp:
        traffic = measure_sweep_code_balance(
            spec, nx=grid_n, ny=grid_n, block_y=block_y, threads=threads
        )
        res = simulate_sweep(
            machine, threads, traffic.bytes_per_lup, lups=grid_lups(grid_n),
            label=f"spatial by={block_y}",
        )
        sp.set(mlups=round(res.mlups, 1), code_balance=round(traffic.bytes_per_lup, 1))
    return TunedPoint(
        variant="spatial", threads=threads, result=res,
        code_balance=traffic.bytes_per_lup, block_y=block_y,
    )


@lru_cache(maxsize=512)
def tune_spatial(spec: MachineSpec, grid_n: int, threads: int) -> TunedPoint:
    """Best spatially blocked configuration at a thread count."""
    path = _cache_path("spatial", spec, (grid_n, threads))
    hit = _cache_get(path)
    if hit is not None and hit[0] is not None:
        return hit[0]
    m = spec.with_cores(threads) if threads != spec.cores else spec
    candidates = [
        (spec, m, grid_n, threads, block_y)
        for block_y in (4, 8, 16, 32, 64)
        if block_y <= grid_n
    ]
    best: TunedPoint | None = None
    with tracing.span(f"tune_spatial g={grid_n} t={threads}", "autotune",
                      args={"grid": grid_n, "threads": threads,
                            "candidates": len(candidates)}):
        for point in _pmap(_score_spatial, candidates):
            if best is None or point.mlups > best.mlups:
                best = point
    assert best is not None
    _cache_put(path, best)
    return best


def _dw_candidates(
    n_groups: int, bz: int, nx: int, budget: float, dw_cap: int = DW_CAP
) -> List[int]:
    """Largest diamond widths whose total footprint fits the budget.

    Falls back to the implementation minimum ``D_w = 4`` when nothing
    fits: the code then runs with an overflowing cache block, and the
    *measured* code balance (not the model) prices the thrashing.

    ``dw_cap`` is lowered to the domain width for thin domains (service
    jobs tune small grids); production grids all exceed :data:`DW_CAP`,
    so their search space is unchanged.
    """
    per_tile = budget * CACHE_SLACK / n_groups
    top = max_diamond_width(bz, nx, per_tile, dw_cap=dw_cap)
    if top is None or top < DW_MIN:
        return [DW_MIN]
    out = [top]
    for k in range(1, TOP_DW_PER_BZ):
        if top - 2 * k >= DW_MIN:
            out.append(top - 2 * k)
    return out


def _score_tiled(cand) -> TunedPoint:
    (spec, machine, grid_n, threads, label, s, n_groups, bz, dw, cfg,
     sim_steps_factor) = cand
    nx = ny = nz = grid_n
    with timed_section("tune.score"), tracing.span(
        f"candidate {label} Dw={dw} Bz={bz} TG={cfg.label()}", "autotune",
        args={"variant": label, "grid": grid_n, "threads": threads,
              "tg_size": s, "n_groups": n_groups, "dw": dw, "bz": bz,
              "tg": cfg.label()},
    ) as sp:
        traffic = measure_tiled_code_balance(
            spec, nx=nx, dw=dw, bz=bz, n_streams=n_groups
        )
        plan = TilingPlan.build(
            ny=ny, nz=nz, timesteps=max(sim_steps_factor * dw, 8), dw=dw, bz=bz
        )
        res = simulate_tiled(
            machine, plan, nx=nx, tg_config=cfg,
            code_balance=traffic.bytes_per_lup,
        )
        sp.set(mlups=round(res.mlups, 1), code_balance=round(traffic.bytes_per_lup, 1))
    return TunedPoint(
        variant=label, threads=threads, result=res,
        code_balance=traffic.bytes_per_lup,
        dw=dw, bz=bz, tg=cfg,
    )


def _tiled_candidates(
    spec: MachineSpec,
    grid_n: int,
    threads: int,
    tg_size: int | None,
    variant: str | None,
    sim_steps_factor: int,
) -> List[tuple]:
    """The full (TG size, B_z, D_w, intra-tile split) search space, in the
    canonical nested-loop order the winner selection depends on."""
    nx = ny = nz = grid_n
    machine = spec.with_cores(threads) if threads != spec.cores else spec
    if tg_size:
        sizes = [tg_size]
    else:
        # Group sizes need not divide the thread count: the scheduler may
        # leave `threads mod s` cores idle (important at prime counts,
        # where the only exact divisors force degenerate splits).
        nice = {1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 14, 16, 18}
        sizes = sorted(s for s in nice | set(divisors(threads)) if s <= threads)
    budget = spec.usable_l3_bytes
    out: List[tuple] = []
    for s in sizes:
        n_groups = threads // s
        if n_groups < 1:
            continue
        label = variant or (f"{s}WD" if tg_size else "MWD")
        for bz in BZ_CANDIDATES:
            if bz > nz:
                continue
            configs = list(enumerate_tg_configs(s, bz, nx))
            if not configs:
                continue
            cfg = max(configs, key=lambda c: tg_efficiency(c, nx=nx, nz=nz, bz=bz))
            dw_cap = min(DW_CAP, ny - (ny % 2))  # diamonds must fit the domain
            for dw in _dw_candidates(n_groups, bz, nx, budget, dw_cap=dw_cap):
                if dw > ny:
                    continue
                out.append((spec, machine, grid_n, threads, label, s,
                            n_groups, bz, dw, cfg, sim_steps_factor))
    return out


@lru_cache(maxsize=2048)
def tune_tiled(
    spec: MachineSpec,
    grid_n: int,
    threads: int,
    tg_size: int | None = None,
    variant: str | None = None,
    sim_steps_factor: int = 2,
) -> TunedPoint | None:
    """Best wavefront-diamond configuration at a thread count.

    ``tg_size=None`` searches all divisors of ``threads`` (MWD);
    ``tg_size=1`` is 1WD; a fixed k gives the paper's kWD variants.
    Returns ``None`` when no diamond fits the cache at all.
    """
    path = _cache_path(
        "tiled", spec, (grid_n, threads, tg_size, variant, sim_steps_factor)
    )
    hit = _cache_get(path)
    if hit is not None:
        return hit[0]
    candidates = _tiled_candidates(
        spec, grid_n, threads, tg_size, variant, sim_steps_factor
    )
    best: TunedPoint | None = None
    with tracing.span(
        f"tune_tiled g={grid_n} t={threads} tg={tg_size or 'MWD'}", "autotune",
        args={"grid": grid_n, "threads": threads, "tg_size": tg_size,
              "variant": variant, "candidates": len(candidates)},
    ):
        for point in _pmap(_score_tiled, candidates):
            if best is None or point.mlups > best.mlups:
                best = point
    _cache_put(path, best)
    return best


def simulate_grid_lups(point: TunedPoint, grid_n: int, timesteps: int = 100) -> SimResult:
    """Rescale a tuned point's steady-state rates to a full problem."""
    return point.result.scaled_to(grid_lups(grid_n, timesteps))
