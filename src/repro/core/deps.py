"""Node-level dependency rules and the schedule validity checker.

The correctness of any temporally blocked traversal of the THIIM stencil
reduces to one statement: *every half-step update reads each of its inputs
at exactly the right time level*.  Because the kernels update in place,
reading too-early data (a flow violation) and reading already-overwritten
data (an anti-dependency violation) are both "wrong time level" errors --
and for this stencil the two coincide: the set of nodes that overwrite an
input of node ``n`` equals the set of nodes that flow-depend on ``n``
(worked out in DESIGN.md section 5).

:class:`DependencyChecker` replays a stream of :class:`RowJob` s against
per-cell sub-step clocks and raises on the first violation.  It is the
oracle used by the property tests to validate arbitrary tiling plans and
arbitrary topological interleavings of the tile DAG, independently of the
numerics.

Dependency rule (Fig. 3 of the paper, at row/plane granularity):

* magnetic node ``(tau, y, z)`` (``tau`` even) requires
  ``C_H[y, z] == tau - 2``, ``C_E[y, z] == tau - 1``,
  ``C_E[y + 1, z] == tau - 1`` and ``C_E[y, z + 1] == tau - 1``
  (the out-of-domain reads are Dirichlet constants and impose nothing);
* electric node ``(tau, y, z)`` (``tau`` odd) requires
  ``C_E[y, z] == tau - 2``, ``C_H[y, z] == tau - 1``,
  ``C_H[y - 1, z] == tau - 1`` and ``C_H[y, z - 1] == tau - 1``.

Initial clocks are ``C_H = -2`` (state ``H^{-1/2}``) and ``C_E = -1``
(state ``E^0``).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .wavefront import RowJob

__all__ = ["DependencyError", "DependencyChecker", "validate_jobs"]


class DependencyError(AssertionError):
    """A schedule violated the stencil's data dependencies."""


class DependencyChecker:
    """Replays row jobs against per-cell sub-step clocks."""

    def __init__(self, ny: int, nz: int):
        if ny < 1 or nz < 1:
            raise ValueError("ny and nz must be >= 1")
        self.ny = ny
        self.nz = nz
        self.clock_h = np.full((ny, nz), -2, dtype=np.int64)
        self.clock_e = np.full((ny, nz), -1, dtype=np.int64)
        self.jobs_executed = 0
        self.nodes_executed = 0

    # -- internal helpers ---------------------------------------------------

    def _require(self, cond: np.ndarray | bool, job: RowJob, what: str) -> None:
        if not np.all(cond):
            raise DependencyError(f"{what} violated by {job}")

    def _check_bounds(self, job: RowJob) -> None:
        if not (0 <= job.y_lo < job.y_hi <= self.ny):
            raise DependencyError(f"y range out of bounds in {job}")
        if not (0 <= job.z_lo < job.z_hi <= self.nz):
            raise DependencyError(f"z range out of bounds in {job}")
        if job.tau < 0:
            raise DependencyError(f"negative sub-step in {job}")

    # -- execution ----------------------------------------------------------

    def execute(self, job: RowJob) -> None:
        """Validate and apply one row job."""
        self._check_bounds(job)
        ys = slice(job.y_lo, job.y_hi)
        zs = slice(job.z_lo, job.z_hi)
        tau = job.tau
        if job.is_h:
            own, other = self.clock_h, self.clock_e
            self._require(own[ys, zs] == tau - 2, job, "in-order H self-update")
            self._require(other[ys, zs] == tau - 1, job, "H near read of E")
            y_far = slice(job.y_lo + 1, min(job.y_hi + 1, self.ny))
            if y_far.start < y_far.stop:
                self._require(other[y_far, zs] == tau - 1, job, "H read of E at y+1")
            z_far = slice(job.z_lo + 1, min(job.z_hi + 1, self.nz))
            if z_far.start < z_far.stop:
                self._require(other[ys, z_far] == tau - 1, job, "H read of E at z+1")
        else:
            own, other = self.clock_e, self.clock_h
            self._require(own[ys, zs] == tau - 2, job, "in-order E self-update")
            self._require(other[ys, zs] == tau - 1, job, "E near read of H")
            y_far = slice(max(job.y_lo - 1, 0), job.y_hi - 1)
            if y_far.start < y_far.stop:
                self._require(other[y_far, zs] == tau - 1, job, "E read of H at y-1")
            z_far = slice(max(job.z_lo - 1, 0), job.z_hi - 1)
            if z_far.start < z_far.stop:
                self._require(other[ys, z_far] == tau - 1, job, "E read of H at z-1")
        own[ys, zs] = tau
        self.jobs_executed += 1
        self.nodes_executed += job.cells_per_x

    def assert_complete(self, timesteps: int) -> None:
        """Assert every cell finished exactly ``timesteps`` full steps."""
        want_h = 2 * timesteps - 2
        want_e = 2 * timesteps - 1
        if not np.all(self.clock_h == want_h):
            done = int(np.min(self.clock_h))
            raise DependencyError(
                f"incomplete H coverage: min clock {done}, expected {want_h}"
            )
        if not np.all(self.clock_e == want_e):
            done = int(np.min(self.clock_e))
            raise DependencyError(
                f"incomplete E coverage: min clock {done}, expected {want_e}"
            )


def validate_jobs(jobs: Iterable[RowJob], ny: int, nz: int, timesteps: int | None = None) -> DependencyChecker:
    """Validate a full job stream; returns the checker for inspection."""
    checker = DependencyChecker(ny, nz)
    for job in jobs:
        checker.execute(job)
    if timesteps is not None:
        checker.assert_complete(timesteps)
    return checker
