"""Tiling plans: the full tile set + dependency DAG for a grid and horizon.

A :class:`TilingPlan` assembles the diamond tessellation of
:mod:`repro.core.diamond` over a concrete grid and number of time steps,
derives the inter-tile dependency DAG, and serializes tiles into row-job
streams (via the wavefront traversal) for the executor, the dependency
checker and the machine simulator's access-stream generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .diamond import DiamondTile, enumerate_tiles
from .wavefront import RowJob, tile_row_jobs

__all__ = ["TilingPlan"]

TileIndex = Tuple[int, int]


@lru_cache(maxsize=256)
def _tile_dag(ny: int, timesteps: int, dw: int):
    """Tessellation + dependency DAG, shared across plans (the DAG does
    not depend on nz or bz; builders get shallow dict copies)."""
    tiles = enumerate_tiles(ny, timesteps, dw)
    preds: Dict[TileIndex, Tuple[TileIndex, ...]] = {}
    succs_mut: Dict[TileIndex, List[TileIndex]] = {idx: [] for idx in tiles}
    for idx, tile in tiles.items():
        ps = tuple(p for p in tile.predecessors() if p in tiles)
        preds[idx] = ps
        for p in ps:
            succs_mut[p].append(idx)
    succs = {idx: tuple(s) for idx, s in succs_mut.items()}
    return tiles, preds, succs


@dataclass
class TilingPlan:
    """All diamond tiles + dependencies for ``timesteps`` steps of a grid.

    Parameters
    ----------
    ny, nz:
        Grid extents along the diamond (middle) and wavefront (outer)
        dimensions.  The inner dimension x never affects scheduling.
    timesteps:
        Full THIIM time steps covered by the plan.
    dw:
        Diamond width (even, >= 2).
    bz:
        Wavefront block width ``B_z`` used when serializing tiles.
    """

    ny: int
    nz: int
    timesteps: int
    dw: int
    bz: int
    tiles: Dict[TileIndex, DiamondTile] = field(repr=False, default_factory=dict)
    preds: Dict[TileIndex, Tuple[TileIndex, ...]] = field(repr=False, default_factory=dict)
    succs: Dict[TileIndex, Tuple[TileIndex, ...]] = field(repr=False, default_factory=dict)

    @classmethod
    def build(cls, ny: int, nz: int, timesteps: int, dw: int, bz: int = 1) -> "TilingPlan":
        if nz < 1:
            raise ValueError("nz must be >= 1")
        if bz < 1:
            raise ValueError("bz must be >= 1")
        tiles, preds, succs = _tile_dag(ny, timesteps, dw)
        return cls(ny=ny, nz=nz, timesteps=timesteps, dw=dw, bz=bz,
                   tiles=dict(tiles), preds=dict(preds), succs=dict(succs))

    # -- inspection ------------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_nodes(self) -> int:
        return sum(t.n_nodes for t in self.tiles.values())

    @property
    def bands(self) -> List[int]:
        return sorted({t.band for t in self.tiles.values()})

    def band_tiles(self, band: int) -> List[DiamondTile]:
        return [t for t in self.tiles.values() if t.band == band]

    def max_band_concurrency(self) -> int:
        """Upper bound on simultaneously executable tiles (tiles of one
        band are mutually independent)."""
        counts: Dict[int, int] = {}
        for t in self.tiles.values():
            counts[t.band] = counts.get(t.band, 0) + 1
        return max(counts.values())

    def interior_tiles(self) -> List[DiamondTile]:
        return [t for t in self.tiles.values() if t.is_interior]

    # -- ordering ------------------------------------------------------------

    def fifo_order(self) -> List[TileIndex]:
        """The canonical FIFO schedule: by band, then by position."""
        return sorted(self.tiles, key=lambda idx: (idx[0] + idx[1], idx[1]))

    def random_topological_order(self, rng: np.random.Generator) -> List[TileIndex]:
        """A random linear extension of the tile DAG.

        Emulates an arbitrary interleaving of concurrent thread groups;
        used by the property tests to show that any DAG-respecting
        execution order yields the same fields.
        """
        remaining = {idx: len(self.preds[idx]) for idx in self.tiles}
        ready = [idx for idx, n in remaining.items() if n == 0]
        order: List[TileIndex] = []
        while ready:
            k = int(rng.integers(len(ready)))
            idx = ready.pop(k)
            order.append(idx)
            for s in self.succs[idx]:
                remaining[s] -= 1
                if remaining[s] == 0:
                    ready.append(s)
        if len(order) != len(self.tiles):
            raise RuntimeError("tile DAG has a cycle (bug)")
        return order

    # -- serialization ------------------------------------------------------------

    def row_jobs(self, order: Sequence[TileIndex] | None = None) -> Iterator[RowJob]:
        """Row jobs of the whole plan in a given (or the FIFO) tile order."""
        if order is None:
            order = self.fifo_order()
        for idx in order:
            yield from tile_row_jobs(self.tiles[idx], self.nz, self.bz)

    def tile_jobs(self, idx: TileIndex) -> Iterator[RowJob]:
        return tile_row_jobs(self.tiles[idx], self.nz, self.bz)

    def validate(self, order: Sequence[TileIndex] | None = None) -> None:
        """Replay the plan through the dependency checker (raises on error)."""
        from .deps import validate_jobs

        validate_jobs(self.row_jobs(order), self.ny, self.nz, self.timesteps)

    def describe(self) -> str:
        interior = len(self.interior_tiles())
        return (
            f"TilingPlan(ny={self.ny}, nz={self.nz}, T={self.timesteps}, "
            f"Dw={self.dw}, Bz={self.bz}): {self.n_tiles} tiles "
            f"({interior} interior), {len(self.bands)} bands, "
            f"max concurrency {self.max_band_concurrency()}"
        )
