"""Diamond tile geometry for the THIIM stencil.

The paper tiles the (y, time) plane with diamonds (Fig. 2), splitting the
H and E updates because their dependencies point in opposite directions
(Fig. 3).  This module gives that construction an exact integer
formulation.

Sub-step lattice
----------------
Time is refined to *sub-steps* ``tau = 0, 1, 2, ...``: even ``tau`` is a
magnetic half step (producing ``H^{tau/2 + 1/2}``), odd ``tau`` an
electric half step (producing ``E^{(tau+1)/2}``).  A *node* ``(tau, y)``
is the update of all six components of that class at grid row ``y`` (the
z and x extents of a node are handled by the wavefront traversal and the
vectorized kernels respectively).

Physical coordinates
--------------------
On the staggered grid the H rows physically sit half a cell above the E
rows.  Writing ``p = y`` for E nodes and ``p = y + 1/2`` for H nodes, the
dependency rule of Fig. 3 becomes *symmetric*: node ``(tau, p)`` reads the
other field class at ``(tau - 1, p - 1/2)`` and ``(tau - 1, p + 1/2)``
and itself at ``(tau - 2, p)``.

Diamond tessellation
--------------------
In the sheared coordinates ``u = tau/2 + p`` and ``v = tau/2 - p`` every
dependency points in the non-increasing ``(u, v)`` direction, and the
plane tiles exactly into squares of side ``Dw``::

    tile(i, j) = { (tau, p) : i*Dw <= u < (i+1)*Dw,  j*Dw <= v < (j+1)*Dw }

which in the (tau, y) plane is precisely the paper's diamond: height
``Dw`` full time steps, footprint ``Dw`` rows for H and ``Dw - 1`` rows
for E (the counts of Eq. 12), first and last row an E update (Fig. 2),
area ``Dw^2 / 2`` lattice-site updates.  Tile ``(i, j)`` depends only on
``(i-1, j)``, ``(i, j-1)`` and ``(i-1, j-1)``.

All arithmetic below is integer-exact: with ``P = 2p`` the tile
membership test is ``2*i*Dw <= tau + P < 2*(i+1)*Dw`` and
``2*j*Dw <= tau - P < 2*(j+1)*Dw``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property, lru_cache
from typing import Dict, Iterator, List, Tuple

__all__ = ["RowSpan", "DiamondTile", "enumerate_tiles", "node_tile_index"]


@dataclass(frozen=True)
class RowSpan:
    """The nodes of one sub-step inside a tile: rows ``y in [y_lo, y_hi)``.

    ``tau`` even -> magnetic half step, odd -> electric half step.
    """

    tau: int
    y_lo: int
    y_hi: int

    @property
    def is_h(self) -> bool:
        return self.tau % 2 == 0

    @property
    def field(self) -> str:
        return "H" if self.is_h else "E"

    @property
    def width(self) -> int:
        return self.y_hi - self.y_lo

    @property
    def time_step(self) -> int:
        """The full time-step index this sub-step belongs to."""
        return self.tau // 2


@dataclass(frozen=True)
class DiamondTile:
    """One (possibly clipped) diamond tile of the tessellation."""

    i: int
    j: int
    dw: int
    rows: Tuple[RowSpan, ...]

    @property
    def index(self) -> Tuple[int, int]:
        return (self.i, self.j)

    @property
    def band(self) -> int:
        """Execution band ``i + j``: tiles of equal band are mutually
        independent; band ``b`` tiles depend only on bands ``< b``."""
        return self.i + self.j

    @property
    def tau_lo(self) -> int:
        return self.rows[0].tau

    @property
    def tau_hi(self) -> int:
        return self.rows[-1].tau

    @cached_property
    def n_nodes(self) -> int:
        return sum(r.width for r in self.rows)

    @property
    def lups(self) -> float:
        """Full lattice-site updates in the tile (a LUP = one E plus one H
        node at a cell, so each node contributes half a LUP)."""
        return self.n_nodes / 2.0

    @property
    def y_footprint(self) -> Tuple[int, int]:
        """Row range ``[lo, hi)`` touched by any sub-step of the tile."""
        return (min(r.y_lo for r in self.rows), max(r.y_hi for r in self.rows))

    @property
    def is_interior(self) -> bool:
        """True for an unclipped diamond (full height, full waist)."""
        return (
            self.rows[0].tau % 2 == 1
            and len(self.rows) == 2 * self.dw - 1
            and max(r.width for r in self.rows) == self.dw
        )

    def predecessors(self) -> Tuple[Tuple[int, int], ...]:
        """Tile indices this tile may depend on (before clipping)."""
        return ((self.i - 1, self.j), (self.i, self.j - 1), (self.i - 1, self.j - 1))


def _tile_rows(i: int, j: int, dw: int, ny: int, total_substeps: int) -> List[RowSpan]:
    """Enumerate the row spans of tile (i, j), clipped to the domain."""
    rows: List[RowSpan] = []
    two_dw = 2 * dw
    tau_lo = max((i + j) * dw, 0)
    tau_hi = min((i + j + 2) * dw - 1, total_substeps - 1)
    for tau in range(tau_lo, tau_hi + 1):
        # P = 2p constraints: closed/open bounds from u, open/closed from v.
        p_lo = max(two_dw * i - tau, tau - two_dw * (j + 1) + 1)
        p_hi = min(two_dw * (i + 1) - tau - 1, tau - two_dw * j)
        if p_lo > p_hi:
            continue
        parity = 1 if tau % 2 == 0 else 0  # H rows have odd P = 2y + 1
        # Smallest P >= p_lo with the right parity.
        first = p_lo + ((parity - p_lo) % 2)
        if first > p_hi:
            continue
        if parity:  # H: y = (P - 1) / 2
            y_lo = (first - 1) // 2
            y_hi = (p_hi - 1) // 2 + 1
        else:  # E: y = P / 2
            y_lo = first // 2
            y_hi = p_hi // 2 + 1
        y_lo = max(y_lo, 0)
        y_hi = min(y_hi, ny)
        if y_lo < y_hi:
            rows.append(RowSpan(tau, y_lo, y_hi))
    return rows


def enumerate_tiles(ny: int, timesteps: int, dw: int) -> Dict[Tuple[int, int], DiamondTile]:
    """All non-empty (clipped) diamond tiles for ``timesteps`` full steps.

    Parameters
    ----------
    ny:
        Rows along the diamond (middle) dimension.
    timesteps:
        Full time steps to cover; the sub-step range is ``[0, 2*timesteps)``.
    dw:
        Diamond width; must be an even integer >= 2 (the paper uses 4, 8,
        12, 16).

    Returns
    -------
    dict
        ``(i, j) -> DiamondTile`` containing every node exactly once.
    """
    return dict(_enumerate_tiles_cached(ny, timesteps, dw))


@lru_cache(maxsize=512)
def _enumerate_tiles_cached(
    ny: int, timesteps: int, dw: int
) -> Dict[Tuple[int, int], DiamondTile]:
    # The tessellation depends only on (ny, timesteps, dw) -- not on bz or
    # nz -- so every B_z candidate of an auto-tuning sweep shares one
    # enumeration.  Tiles are frozen; the public wrapper hands each caller
    # its own shallow dict copy.
    if dw < 2 or dw % 2:
        raise ValueError(f"diamond width must be an even integer >= 2, got {dw}")
    if ny < 1:
        raise ValueError("ny must be >= 1")
    if timesteps < 1:
        raise ValueError("timesteps must be >= 1")
    total_substeps = 2 * timesteps

    # Index bounds: u = (tau + P)/2 in [0, timesteps + ny), and
    # v = (tau - P)/2 in (-ny, timesteps).
    i_lo = 0
    i_hi = (timesteps + ny) // dw + 1
    j_lo = -((ny + dw - 1) // dw) - 1
    j_hi = timesteps // dw + 1

    tiles: Dict[Tuple[int, int], DiamondTile] = {}
    for i in range(i_lo, i_hi + 1):
        for j in range(j_lo, j_hi + 1):
            rows = _tile_rows(i, j, dw, ny, total_substeps)
            if rows:
                tiles[(i, j)] = DiamondTile(i=i, j=j, dw=dw, rows=tuple(rows))
    return tiles


def node_tile_index(tau: int, y: int, is_h: bool, dw: int) -> Tuple[int, int]:
    """The tile owning node ``(tau, y)`` (for tests and diagnostics)."""
    p2 = 2 * y + (1 if is_h else 0)
    return ((tau + p2) // (2 * dw), (tau - p2) // (2 * dw))
