"""The FIFO dynamic tile scheduler of the paper (Section II-A).

"Diamond tiles are dynamically scheduled to the available TGs.  A First In
First Out (FIFO) queue keeps track of the available diamond tiles for
updating.  TGs pop tiles from this queue to update them.  When a TG
completes a tile update, it pushes to the queue its dependent diamond
tile, if that has no other dependencies."

:class:`TileQueue` is that protocol, decoupled from what "executing a
tile" means: the correctness executor, the discrete-event machine
simulator and the tests all drive it.  The paper implements the queue
update in an OpenMP critical region; here the (simulated) critical-region
cost is accounted by the machine simulator, not this class.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Set

from .plan import TileIndex, TilingPlan

__all__ = ["TileQueue"]


class TileQueue:
    """Dependency-counting FIFO queue over a plan's tile DAG."""

    def __init__(self, plan: TilingPlan):
        self.plan = plan
        self._remaining: Dict[TileIndex, int] = {
            idx: len(plan.preds[idx]) for idx in plan.tiles
        }
        self._ready: Deque[TileIndex] = deque(
            sorted(idx for idx, n in self._remaining.items() if n == 0)
        )
        self._in_flight: Set[TileIndex] = set()
        self._done: Set[TileIndex] = set()

    # -- protocol ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ready)

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    @property
    def done_count(self) -> int:
        return len(self._done)

    @property
    def exhausted(self) -> bool:
        """True once every tile has completed."""
        return len(self._done) == len(self.plan.tiles)

    def pop(self) -> TileIndex | None:
        """Take the next ready tile (None if the queue is momentarily
        empty -- a TG would then spin-wait, which the machine simulator
        models as idle time)."""
        if not self._ready:
            return None
        idx = self._ready.popleft()
        self._in_flight.add(idx)
        return idx

    def complete(self, idx: TileIndex) -> List[TileIndex]:
        """Mark a tile finished; enqueue and return newly ready tiles."""
        if idx not in self._in_flight:
            raise ValueError(f"tile {idx} was not in flight")
        self._in_flight.remove(idx)
        self._done.add(idx)
        newly: List[TileIndex] = []
        for s in self.plan.succs[idx]:
            self._remaining[s] -= 1
            if self._remaining[s] == 0:
                self._ready.append(s)
                newly.append(s)
            elif self._remaining[s] < 0:
                raise RuntimeError(f"tile {s} completed more predecessors than it has")
        return newly

    def drain_serial(self) -> List[TileIndex]:
        """Run the protocol with a single worker; returns the pop order."""
        order: List[TileIndex] = []
        while not self.exhausted:
            idx = self.pop()
            if idx is None:
                raise RuntimeError("queue empty before all tiles completed (deadlock)")
            order.append(idx)
            self.complete(idx)
        return order
