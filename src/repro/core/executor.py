"""Tiled execution of the THIIM kernels.

:class:`TiledExecutor` drives the very same kernels as the naive sweep,
but in the wavefront-diamond order of a :class:`TilingPlan`.  Its contract
-- asserted extensively by the test suite -- is bit-for-bit-order-tolerant
equality with :func:`repro.fdfd.kernels.naive_sweep` for *any* valid plan
and *any* topological order of the tile DAG.

This is the functional counterpart of the paper's MWD code: the paper's
threads pop tiles from a FIFO queue and update them concurrently; here a
single Python thread executes the same job stream in an equivalent order
(inter-tile concurrency is validated through randomized topological
orders, and modelled for performance purposes by
:mod:`repro.machine.simulator`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..fdfd.coefficients import CoefficientSet
from ..fdfd.fields import FieldState
from ..fdfd.kernels import update_e, update_h
from ..resilience import faults
from . import tracing
from .plan import TileIndex, TilingPlan
from .wavefront import RowJob

__all__ = ["TiledExecutor"]


class TiledExecutor:
    """Executes a tiling plan against real field data."""

    def __init__(self, fields: FieldState, coeffs: CoefficientSet, plan: TilingPlan):
        grid = fields.grid
        if coeffs.grid.shape != grid.shape:
            raise ValueError("fields and coefficients live on different grids")
        if plan.ny != grid.ny or plan.nz != grid.nz:
            raise ValueError(
                f"plan is for (ny={plan.ny}, nz={plan.nz}), grid is "
                f"(ny={grid.ny}, nz={grid.nz})"
            )
        if grid.periodic[0] or grid.periodic[1]:
            raise ValueError(
                "diamond tiling requires non-periodic y and z axes "
                "(periodic x is fine -- the inner dimension is never tiled)"
            )
        self.fields = fields
        self.coeffs = coeffs
        self.plan = plan
        self.lups_done = 0
        self.jobs_done = 0

    def execute_job(self, job: RowJob) -> None:
        """Run one row job through the kernels."""
        span_y = (job.y_lo, job.y_hi)
        span_z = (job.z_lo, job.z_hi)
        if job.is_h:
            self.lups_done += update_h(self.fields, self.coeffs, z=span_z, y=span_y)
        else:
            self.lups_done += update_e(self.fields, self.coeffs, z=span_z, y=span_y)
        self.jobs_done += 1

    def execute_tile(self, idx: TileIndex) -> None:
        faults.hit("tile.execute")
        lups0 = self.lups_done
        with tracing.span(f"tile t={idx[0]} r={idx[1]}", "exec.tile") as sp:
            for job in self.plan.tile_jobs(idx):
                self.execute_job(job)
            sp.set(lups=self.lups_done - lups0)

    def run(self, order: Sequence[TileIndex] | None = None) -> FieldState:
        """Execute the whole plan (optionally in a custom tile order)."""
        if order is None:
            order = self.plan.fifo_order()
        p = self.plan
        with tracing.span(
            f"tiled run ny={p.ny} nz={p.nz} T={p.timesteps}", "exec.run",
            args={"ny": p.ny, "nz": p.nz, "timesteps": p.timesteps,
                  "dw": p.dw, "bz": p.bz, "tiles": len(p.tiles)},
        ):
            for idx in order:
                self.execute_tile(idx)
        return self.fields

    def run_interleaved(self, rng: np.random.Generator) -> FieldState:
        """Execute in a random linear extension of the tile DAG.

        Emulates the nondeterministic completion order of concurrent
        thread groups popping from the FIFO queue.
        """
        return self.run(self.plan.random_topological_order(rng))
