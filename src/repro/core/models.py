"""Analytic performance models of the paper (Section III).

Implements, exactly as printed:

* Eq. 8  -- naive code balance (1344 bytes/LUP at large problem sizes);
* Eq. 9  -- spatially blocked code balance (1216 bytes/LUP);
* Eq. 10 -- bandwidth-limited performance ``P_mem = b_S / B_C``
  (41 MLUP/s on the 50 GB/s Haswell);
* Eq. 11 -- cache block size of an extruded wavefront-diamond tile
  (``C_s = 14912 * N_x`` bytes at ``D_w = 4, B_z = 4``);
* Eq. 12 -- diamond-tiled code balance as a function of ``D_w``;

plus the derived quantities used by the auto-tuner: arithmetic
intensities, the usable-cache rule of thumb (half the L3), and the
largest diamond width that fits a cache budget.

Unit conventions follow the paper: a LUP is one full lattice-site update
(all 12 component updates at one cell); a "number" in Eqs. 8/9 is one
double-precision word (8 bytes), and the factor 16 in Eqs. 11/12 is the
size of one double-complex value.
"""

from __future__ import annotations

import math

from ..fdfd.specs import FLOPS_PER_LUP

__all__ = [
    "naive_code_balance",
    "spatial_code_balance",
    "arithmetic_intensity",
    "bandwidth_limited_mlups",
    "diamond_code_balance",
    "cache_block_size",
    "usable_cache_bytes",
    "max_diamond_width",
    "diamond_lups",
    "wavefront_tile_width",
]

#: Double-precision word (Eqs. 8/9 count DP numbers).
_DP = 8
#: Double-complex value (Eqs. 11/12 count double-complex numbers).
_DC = 16


def naive_code_balance() -> float:
    """Eq. 8: ``4 * (18 + 12 + 12) * 8 = 1344`` bytes/LUP.

    The four outer-dimension-shifted kernels (Listing 1) move 18 DP
    numbers each when no layer condition holds; the other eight kernels
    (Listing 2) move 12 each.
    """
    return 4 * (18 + 12 + 12) * _DP


def spatial_code_balance() -> float:
    """Eq. 9: ``4 * ((18 - 4) + 12 + 12) * 8 = 1216`` bytes/LUP.

    Spatial blocking establishes the layer condition for the four
    z-shifted kernels, saving four DP numbers in each: the shifted reads
    of the two field arrays hit cache.  The coefficient arrays have no
    temporal locality, which is why the gain is a mere 10%.
    """
    return 4 * ((18 - 4) + 12 + 12) * _DP


def arithmetic_intensity(code_balance: float) -> float:
    """Flops per byte at a given code balance (0.18 naive, 0.20 spatial)."""
    if code_balance <= 0:
        raise ValueError("code balance must be positive")
    return FLOPS_PER_LUP / code_balance


def bandwidth_limited_mlups(bandwidth_gbs: float, code_balance: float) -> float:
    """Eq. 10: ``P_mem = b_S / B_C`` in MLUP/s.

    ``bandwidth_gbs`` is in GB/s (1e9 bytes/s), the result in 1e6 LUP/s;
    the paper's example: 50 GB/s / 1216 B/LUP = 41 MLUP/s.
    """
    if bandwidth_gbs <= 0:
        raise ValueError("bandwidth must be positive")
    if code_balance <= 0:
        raise ValueError("code balance must be positive")
    return bandwidth_gbs * 1e9 / code_balance / 1e6


def diamond_code_balance(dw: int) -> float:
    """Eq. 12: memory traffic per LUP of a cache-resident diamond tile.

    Per unit footprint the diamond writes ``6 * (2 Dw - 1)`` numbers (six
    H components across Dw columns + six E components across Dw - 1),
    reads ``40 Dw`` (12 fields + 28 coefficients per column) plus 12
    neighbour accesses, and performs ``Dw^2 / 2`` LUPs::

        B_C = 16 * [6 (2 Dw - 1) + 40 Dw + 12] / (Dw^2 / 2)
    """
    if dw < 2:
        raise ValueError("diamond width must be >= 2")
    writes = 6 * (2 * dw - 1)
    reads = 40 * dw + 12
    return _DC * (writes + reads) / (dw**2 / 2.0)


def wavefront_tile_width(dw: int, bz: int) -> int:
    """``W_w = D_w + B_z - 1`` (Section III-C)."""
    if bz < 1:
        raise ValueError("bz must be >= 1")
    return dw + bz - 1


def cache_block_size(dw: int, bz: int, nx: int) -> int:
    """Eq. 11: bytes of cache one extruded wavefront-diamond tile needs.

    ``C_s = 16 * N_x * [40 * (Dw^2/2 + Dw*(Bz - 1)) + 12 * (Dw + Ww)]``

    The paper's example: ``D_w = 4, B_z = 4 -> C_s = 14912 * N_x``.
    """
    if dw < 2 or dw % 2:
        raise ValueError("diamond width must be an even integer >= 2")
    if bz < 1:
        raise ValueError("bz must be >= 1")
    if nx < 1:
        raise ValueError("nx must be >= 1")
    ww = wavefront_tile_width(dw, bz)
    area = dw * dw // 2 + dw * (bz - 1)
    return _DC * nx * (40 * area + 12 * (dw + ww))


def usable_cache_bytes(l3_bytes: int, fraction: float = 0.5) -> float:
    """The paper's rule of thumb: half the shared L3 is usable for tile
    data (22.5 MiB of the Haswell's 45 MiB)."""
    if not (0 < fraction <= 1):
        raise ValueError("fraction must be in (0, 1]")
    return l3_bytes * fraction


def max_diamond_width(bz: int, nx: int, cache_budget: float, dw_cap: int = 64) -> int | None:
    """Largest even ``D_w`` whose tile fits ``cache_budget`` bytes.

    Returns ``None`` if even the minimum ``D_w = 2`` does not fit -- the
    regime where 1WD collapses at high thread counts (each thread's
    private tile must fit in its shard of the L3).
    """
    best = None
    for dw in range(2, dw_cap + 1, 2):
        if cache_block_size(dw, bz, nx) <= cache_budget:
            best = dw
        else:
            break
    return best


def diamond_lups(dw: int) -> float:
    """LUPs per unit footprint of one diamond: ``D_w^2 / 2``."""
    if dw < 2:
        raise ValueError("diamond width must be >= 2")
    return dw**2 / 2.0
