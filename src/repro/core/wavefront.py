"""Wavefront traversal of an extruded diamond tile.

A diamond tile of :mod:`repro.core.diamond` lives in the (time, y) plane;
the third dimension z (the outer array dimension) is covered by *extruding*
the diamond and traversing it as a multi-level wavefront (Fig. 4 of the
paper): each sub-step level of the diamond sweeps along z, trailing the
level below it so that all z-dependencies are honoured while the moving
window of ``B_z`` planes per level stays cache resident.

Offsets
-------
Along z the dependency rule mirrors the y rule: a magnetic node reads the
electric field at ``z`` and ``z + 1``, an electric node at ``z`` and
``z - 1``.  Hence a magnetic level must trail the level below it by one
plane, while an electric level may run flush with it.  The cumulative
trailing offset of level ``l`` is::

    off(0) = 0,   off(l) = off(l-1) + (1 if level l is magnetic else 0)

Advancing the levels bottom-up within each front step keeps every level
exactly at its offset, which is the tightest valid pipeline -- and the
wavefront tile width of the paper, ``W_w = D_w + B_z - 1``, is exactly the
z-extent such a pipeline occupies for an interior diamond (``D_w - 1``
cumulative offsets + a ``B_z`` window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .diamond import DiamondTile, RowSpan

__all__ = ["RowJob", "level_offsets", "tile_row_jobs", "wavefront_width"]


@dataclass(frozen=True)
class RowJob:
    """One kernel invocation: a half-step update of rows ``[y_lo, y_hi)``
    over planes ``[z_lo, z_hi)``."""

    tau: int
    y_lo: int
    y_hi: int
    z_lo: int
    z_hi: int

    @property
    def is_h(self) -> bool:
        return self.tau % 2 == 0

    @property
    def field(self) -> str:
        return "H" if self.is_h else "E"

    @property
    def cells_per_x(self) -> int:
        """Node-cells covered (multiply by nx for grid cells)."""
        return (self.y_hi - self.y_lo) * (self.z_hi - self.z_lo)

    def shape_key(self, ny: int, nz: int) -> tuple:
        """Canonical shape-class signature of the job on an (ny, nz) domain.

        Two jobs with equal signatures produce identical chunk-access
        streams up to a translation by their ``(y_lo, z_lo)`` anchor: the
        stencil offsets are all in {-1, 0, +1}, so besides the half-step
        class and the box extents only adjacency to the four domain edges
        can change the clipped access pattern.  This is what lets the
        stream generator pay for each congruent diamond job class once
        (see :mod:`repro.machine.streams`).
        """
        return (
            self.tau & 1,
            self.y_hi - self.y_lo,
            self.z_hi - self.z_lo,
            self.y_lo == 0,
            self.y_hi == ny,
            self.z_lo == 0,
            self.z_hi == nz,
        )


def level_offsets(tile: DiamondTile) -> List[int]:
    """Cumulative z-trailing offset of each sub-step level of the tile."""
    offsets: List[int] = []
    off = 0
    for idx, row in enumerate(tile.rows):
        if idx > 0 and row.is_h:
            off += 1
        offsets.append(off)
    return offsets


def wavefront_width(dw: int, bz: int) -> int:
    """The paper's wavefront tile width ``W_w = D_w + B_z - 1``."""
    if bz < 1:
        raise ValueError("bz must be >= 1")
    return dw + bz - 1


def tile_row_jobs(tile: DiamondTile, nz: int, bz: int) -> Iterator[RowJob]:
    """Serialize one tile into dependency-ordered row jobs.

    Parameters
    ----------
    tile:
        The diamond tile to traverse.
    nz:
        z-extent of the grid.
    bz:
        Wavefront block width: planes advanced per level per front step
        (``B_z`` of the paper).

    Yields
    ------
    RowJob
        Jobs in a valid execution order: per front step the levels are
        advanced bottom-up, each to ``bz * front - off(level)``, so every
        z-read of a level lands in the already-updated span of the level
        below.
    """
    if bz < 1:
        raise ValueError("bz must be >= 1")
    if nz < 1:
        raise ValueError("nz must be >= 1")
    offsets = level_offsets(tile)
    progress = [0] * len(tile.rows)
    front = 1
    while progress[-1] < nz:
        for lvl, row in enumerate(tile.rows):
            target = bz * front - offsets[lvl]
            target = 0 if target < 0 else (nz if target > nz else target)
            if target > progress[lvl]:
                yield RowJob(row.tau, row.y_lo, row.y_hi, progress[lvl], target)
                progress[lvl] = target
        front += 1
