"""Content-addressed result store with dedup semantics.

Results are keyed by the content-addressed job id (a hash of the spec's
computational fields), so *identical* job specs map to one stored
result: the scheduler consults the store before executing and serves
repeats from it bit-identically -- ``run_job`` is deterministic and the
stored JSON round-trips floats exactly, so a cached response compares
equal to a fresh execution.

With a ``root`` directory (see ``REPRO_RESULT_DIR``) results persist
across restarts, written atomically; without one the store is a
process-local dict with the same interface.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional

from ..ioutil import atomic_write_json, corrupt_file, read_json_checked
from ..resilience import faults

__all__ = ["ResultStore", "STORE_VERSION"]

#: Bump to invalidate persisted results (payload format change).
STORE_VERSION = 1


class ResultStore:
    """Job-id -> result-dict map, optionally persisted one file per id.

    ``node_id`` (optional) stamps every persisted document with the
    serving node that computed it -- provenance for sharded fleets.  The
    stamp lives *next to* the ``result`` payload, never inside it, so
    results stay bit-identical no matter which node produced them.
    """

    def __init__(self, root: Optional[str] = None,
                 node_id: Optional[str] = None):
        self.root = root
        self.node_id = node_id
        self._mem: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.replica_puts = 0
        if root:
            os.makedirs(root, exist_ok=True)

    def _path(self, job_id: str) -> Optional[str]:
        return os.path.join(self.root, f"result-{job_id}.json") if self.root else None

    def _load(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Load one full document (memory, then disk) without touching
        the hit/miss counters -- the shared machinery of :meth:`get`,
        :meth:`get_doc` and the idempotence check of
        :meth:`put_replica`."""
        with self._lock:
            doc = self._mem.get(job_id)
        if doc is None:
            path = self._path(job_id)
            if path is not None:
                if os.path.exists(path) and \
                        faults.hit("store.read") == "corrupt":
                    corrupt_file(path)
                # Corrupt entries quarantine to ``<path>.corrupt`` and
                # read as a miss: the job simply re-executes (run_job is
                # deterministic, so the recomputed result is identical).
                disk = read_json_checked(path)
                if disk and disk.get("version") == STORE_VERSION:
                    doc = disk
                    with self._lock:
                        self._mem[job_id] = doc
        return doc

    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The stored result, counting the lookup as a hit or miss."""
        doc = self._load(job_id)
        with self._lock:
            if doc is None:
                self.misses += 1
            else:
                self.hits += 1
        return None if doc is None else doc["result"]

    def get_doc(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The full stored document (result + provenance: ``node``,
        ``replicated_from``), counting the lookup like :meth:`get`.
        Serving layers use this to answer warm reads after a reboot or a
        replica promotion without losing the provenance trail."""
        doc = self._load(job_id)
        with self._lock:
            if doc is None:
                self.misses += 1
            else:
                self.hits += 1
        return doc

    def _commit(self, job_id: str, doc: Dict[str, Any]) -> None:
        path = self._path(job_id)
        if path is not None:
            try:
                kind = faults.hit("store.write")
                atomic_write_json(path, doc, checksum=True)
                if kind == "corrupt":
                    corrupt_file(path)
            except OSError:
                pass  # persistence is best-effort

    def put(self, job_id: str, result: Dict[str, Any]) -> None:
        doc = {"version": STORE_VERSION, "id": job_id, "result": result}
        if self.node_id:
            doc["node"] = self.node_id
        with self._lock:
            self._mem[job_id] = doc
            self.puts += 1
        self._commit(job_id, doc)

    def put_replica(self, job_id: str, result: Dict[str, Any],
                    replicated_from: Optional[str] = None) -> bool:
        """Accept a replicated copy of a result computed elsewhere.

        Idempotent and dedup-respecting: a document already present
        (computed here, or already replicated) wins -- results are
        content-addressed, so the bytes are the same either way.
        Returns ``True`` when the copy was actually stored.
        """
        if self._load(job_id) is not None:
            return False
        doc = {"version": STORE_VERSION, "id": job_id, "result": result}
        if self.node_id:
            doc["node"] = self.node_id
        if replicated_from:
            doc["replicated_from"] = replicated_from
        with self._lock:
            self._mem[job_id] = doc
            self.replica_puts += 1
        self._commit(job_id, doc)
        return True

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            if job_id in self._mem:
                return True
        path = self._path(job_id)
        return path is not None and os.path.exists(path)

    def __len__(self) -> int:
        with self._lock:
            ids = set(self._mem)
        if self.root and os.path.isdir(self.root):
            for fname in os.listdir(self.root):
                if fname.startswith("result-") and fname.endswith(".json"):
                    ids.add(fname[len("result-"):-len(".json")])
        return len(ids)

    def ids(self) -> List[str]:
        with self._lock:
            ids = set(self._mem)
        if self.root and os.path.isdir(self.root):
            for fname in os.listdir(self.root):
                if fname.startswith("result-") and fname.endswith(".json"):
                    ids.add(fname[len("result-"):-len(".json")])
        return sorted(ids)

    def counters(self) -> Dict[str, int]:
        entries = len(self)
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "puts": self.puts, "replica_puts": self.replica_puts,
                    "entries": entries}
