"""Solve service: job scheduling, plan registry, result store, HTTP API.

The paper's economics are compile-once/serve-many: an autotuned MWD plan
is expensive to find (a full candidate sweep through the machine model)
but cheap to reuse.  This subsystem gives that shape a serving layer:

``jobs``
    Declarative :class:`~repro.service.jobs.JobSpec` (scene, grid,
    machine, tuning policy) with content-addressed job ids, the job
    lifecycle (queued/running/done/failed/cancelled) and bounded retry.
``registry``
    Persistent plan registry memoizing autotuner winners keyed by
    (grid, machine-spec hash, thread count) -- repeat jobs skip tuning.
``store``
    Content-addressed result store: identical job specs dedup to one
    execution and serve cached results bit-identically.
``scheduler``
    Priority-FIFO scheduler over thread or process workers with a
    bounded queue (backpressure), crash recovery (crashed solves resume
    from their latest checkpoint), retry backoff that fails fast on
    non-retryable :class:`~repro.resilience.errors.ReproError` kinds,
    and graceful drain + queue spooling for zero-loss restarts.
``server``
    Stdlib ``ThreadingHTTPServer`` JSON API: ``POST /jobs``,
    ``GET /jobs/<id>``, ``GET /metrics``, ``GET /registry``,
    ``GET /healthz`` -- typed failures map to their HTTP status.

Everything is stdlib + the existing repro stack; no new dependencies.
"""

from .jobs import Job, JobSpec, JobState, run_job
from .registry import PlanRegistry
from .scheduler import QueueFullError, Scheduler
from .server import make_server
from .store import ResultStore

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "PlanRegistry",
    "QueueFullError",
    "ResultStore",
    "Scheduler",
    "make_server",
    "run_job",
]
