"""Declarative job specs and the job lifecycle.

A :class:`JobSpec` is everything needed to reproduce one unit of work --
a THIIM solve on a preset scene or an autotuner run -- as plain data.
Its identity is *content-addressed*: the job id is a SHA-256 over the
canonical JSON of the computational fields (execution policy such as
priority and retry budget is excluded), so two submissions of the same
computation share one id, one execution, and one stored result.

:class:`Job` is the runtime record: lifecycle state (QUEUED -> RUNNING
-> DONE | FAILED | CANCELLED, with RUNNING -> QUEUED requeues on worker
crash), attempt counter and timestamps.  :func:`run_job` executes a spec
deterministically -- it is the *same* code path for direct CLI solves,
thread workers and forked process workers, which is what makes the
bit-identical serving guarantee testable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .. import telemetry
from ..core import tracing
from ..resilience import faults

__all__ = ["JobSpec", "Job", "JobState", "run_job", "FAULTS"]

KINDS = ("solve", "tune", "batch", "distributed")
TUNING_POLICIES = ("spec", "registry")
VARIANTS = ("spatial", "1wd", "mwd")
#: Test hooks for the retry machinery.  ``fail_once`` raises on the first
#: attempt; ``crash_once`` kills the worker *process* on the first
#: attempt (simulating a mid-job worker death); ``always_fail`` raises on
#: every attempt (exhausts the retry budget).
FAULTS = ("fail_once", "crash_once", "always_fail")

#: Fields that define *what* is computed (hashed into the job id).
#: Everything else on JobSpec is execution policy.
_IDENTITY_FIELDS = (
    "kind", "preset", "grid", "wavelength", "thickness", "tol", "max_steps",
    "tiled", "dw", "bz", "threads", "variant", "tg_size", "bandwidth",
    "tuning", "fault",
)


def _parse_ranks(ranks: str):
    """Parse a spec's ranks request: ``("dims", (pz, py, px))`` for an
    explicit layout, ``("count", n)`` when the cost model factorizes."""
    s = str(ranks).strip().lower()
    if "x" in s:
        parts = s.split("x")
        try:
            dims = tuple(int(p) for p in parts)
        except ValueError:
            raise ValueError(
                f"ranks must be 'N' or 'PZxPYxPX', got {ranks!r}") from None
        if len(dims) != 3:
            raise ValueError(
                f"ranks must be 'N' or 'PZxPYxPX', got {ranks!r}")
        if any(d < 1 for d in dims):
            raise ValueError("every ranks dimension must be >= 1")
        return "dims", dims
    try:
        n = int(s)
    except ValueError:
        raise ValueError(
            f"ranks must be 'N' or 'PZxPYxPX', got {ranks!r}") from None
    if n < 1:
        raise ValueError("ranks count must be >= 1")
    return "count", n


class JobState:
    """The JOB lifecycle states (plain strings for JSON friendliness)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One declarative unit of work for the solve service."""

    kind: str = "solve"
    # -- scene ---------------------------------------------------------------
    preset: str = "absorber"
    grid: int = 48
    wavelength: float = 12.0
    thickness: Optional[float] = None
    #: Batch jobs only: the k wavelengths solved in one batched sweep
    #: (``kind="batch"``; ``wavelength`` is ignored for identity purposes
    #: and each point inherits every other field).
    wavelengths: Optional[Tuple[float, ...]] = None
    # -- solve numerics ------------------------------------------------------
    tol: float = 1e-5
    max_steps: int = 3000
    tiled: bool = False
    dw: int = 4
    bz: int = 2
    #: Distributed jobs only: the process-grid request, either an
    #: explicit ``"PZxPYxPX"`` layout or a rank count ``"N"`` the
    #: communication cost model factorizes (``kind="distributed"``).
    ranks: Optional[str] = None
    # -- machine / tuning ----------------------------------------------------
    threads: int = 18
    variant: str = "mwd"
    tg_size: Optional[int] = None
    bandwidth: Optional[float] = None
    tuning: str = "spec"
    # -- execution policy (excluded from the job id) -------------------------
    priority: int = 0
    max_retries: int = 2
    timeout_s: Optional[float] = None
    # -- test hook (part of the identity: it changes behaviour) --------------
    fault: Optional[str] = None

    def __post_init__(self) -> None:
        from ..fdfd.presets import PRESETS

        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.preset not in PRESETS:
            raise ValueError(f"preset must be one of {PRESETS}, got {self.preset!r}")
        if self.grid < 8 or (self.kind in ("solve", "distributed")
                             and self.grid < 10):
            # Solves need nz = 2*grid to clear the source plane at
            # max(nz//8, 12) and the incident-flux plane 4 cells below it.
            raise ValueError("grid must be >= 10 for solves (>= 8 for tune)")
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.kind == "batch":
            if not self.wavelengths:
                raise ValueError("batch jobs need a non-empty wavelengths tuple")
            ws = tuple(float(w) for w in self.wavelengths)
            if any(w <= 0 for w in ws):
                raise ValueError("every batch wavelength must be positive")
            if len(set(ws)) != len(ws):
                raise ValueError("batch wavelengths must be unique")
            # Normalize (lists from JSON -> tuple) so identity hashing and
            # frozen-dataclass equality are canonical.
            object.__setattr__(self, "wavelengths", ws)
        elif self.wavelengths is not None:
            raise ValueError("wavelengths is only valid for kind='batch'")
        if self.kind == "distributed":
            if self.ranks is None:
                raise ValueError(
                    "distributed jobs need a ranks field ('N' or 'PZxPYxPX')")
            mode, value = _parse_ranks(self.ranks)
            if self.tiled:
                raise ValueError(
                    "distributed jobs run the naive sweep (tiled=False)")
            # Canonical form so identity hashing is whitespace/case-proof.
            canonical = ("x".join(str(d) for d in value)
                         if mode == "dims" else str(value))
            object.__setattr__(self, "ranks", canonical)
        elif self.ranks is not None:
            raise ValueError("ranks is only valid for kind='distributed'")
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.dw < 4 or self.dw % 2:
            raise ValueError("dw must be an even integer >= 4")
        if self.bz < 1:
            raise ValueError("bz must be >= 1")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}")
        if self.tuning not in TUNING_POLICIES:
            raise ValueError(f"tuning must be one of {TUNING_POLICIES}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.fault is not None and self.fault not in FAULTS:
            raise ValueError(f"fault must be one of {FAULTS} or None")

    # -- identity --------------------------------------------------------------

    def identity(self) -> Dict[str, Any]:
        """The computational fields, canonically ordered."""
        d = {f: getattr(self, f) for f in _IDENTITY_FIELDS}
        if self.wavelengths is not None:
            # Included only for batch jobs so per-point job ids predating
            # the batch axis are unchanged.
            d["wavelengths"] = list(self.wavelengths)
            # A batch's identity is its wavelength *set*; the scalar
            # wavelength field is inert for batch jobs.
            d["wavelength"] = None
        if self.ranks is not None:
            # Included only for distributed jobs (the layout namespaces
            # registry/store tokens) so pre-existing job ids are
            # unchanged.
            d["ranks"] = self.ranks
        return d

    def point_spec(self, wavelength: float) -> "JobSpec":
        """The per-point solve spec of one batch lane: identical in every
        computational field, so its job id is exactly the id a direct
        per-point submission of that wavelength would get -- the handle
        the batch path dedups and fans out through."""
        if self.kind != "batch":
            raise ValueError("point_spec is only meaningful on batch jobs")
        return dataclasses.replace(
            self, kind="solve", wavelength=float(wavelength), wavelengths=None
        )

    def subset_spec(self, wavelengths) -> "JobSpec":
        """A batch over a subset of this batch's wavelength set.

        The fleet gateway scatters one campaign batch across shards by
        splitting its wavelengths by the home node of each
        :meth:`point_spec` id; every sub-batch keeps the parent's
        computational fields, so the per-point job ids (and therefore
        the per-point result documents) are exactly those the parent
        batch -- or a direct per-point submission -- would produce.
        """
        if self.kind != "batch":
            raise ValueError("subset_spec is only meaningful on batch jobs")
        ws = tuple(float(w) for w in wavelengths)
        if not ws:
            raise ValueError("subset_spec needs at least one wavelength")
        have = set(self.wavelengths or ())
        missing = [w for w in ws if w not in have]
        if missing:
            raise ValueError(
                f"wavelengths {missing} are not in this batch")
        return dataclasses.replace(self, wavelengths=ws)

    def single_domain_spec(self) -> "JobSpec":
        """The scalar solve of the same computation: identical in every
        numeric field, so its result document is the bytes a distributed
        run must reproduce (stored under the scalar job id)."""
        if self.kind != "distributed":
            raise ValueError(
                "single_domain_spec is only meaningful on distributed jobs")
        return dataclasses.replace(self, kind="solve", ranks=None)

    @property
    def job_id(self) -> str:
        payload = json.dumps(self.identity(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobSpec":
        """Build a spec from client JSON; unknown keys are an error."""
        if not isinstance(d, dict):
            raise ValueError("job spec must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown job spec fields: {sorted(unknown)}")
        return cls(**d)


@dataclass
class Job:
    """Runtime record of one submitted spec."""

    spec: JobSpec
    state: str = JobState.QUEUED
    attempts: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Result served straight from the persistent store (no execution).
    from_store: bool = False
    #: Extra submissions that coalesced onto this job.
    dedup_count: int = 0
    #: Typed taxonomy name of the failure (``SolverDiverged``, ...).
    error_kind: Optional[str] = None
    #: Sweep count the last attempt resumed from (checkpoint provenance;
    #: kept off the result dict to preserve bit-identical serving).
    resumed_from: Optional[int] = None
    #: Last checkpoint report: ``{"path", "saves", "resumed_from"}``.
    checkpoint: Optional[Dict[str, Any]] = None
    #: Trace id threaded through every span/event of this job's life
    #: (submit -> queue -> tune -> sweep -> checkpoint -> store), across
    #: thread and forked-process workers alike.
    trace_id: str = field(default_factory=telemetry.new_trace_id)
    #: When the job last entered the queue: monotonic clock (queue-wait
    #: histogram) and trace timestamp (the ``queued`` span); reset on
    #: every dispatch so crash requeues measure each wait separately.
    queued_mono: Optional[float] = None
    queued_ts_us: Optional[float] = None

    #: Legal lifecycle transitions (RUNNING -> QUEUED is the crash requeue).
    _TRANSITIONS = {
        JobState.QUEUED: (JobState.RUNNING, JobState.CANCELLED),
        JobState.RUNNING: (JobState.DONE, JobState.FAILED, JobState.QUEUED),
        JobState.DONE: (),
        JobState.FAILED: (),
        JobState.CANCELLED: (),
    }

    @property
    def id(self) -> str:
        return self.spec.job_id

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def transition(self, new: str) -> None:
        if new not in self._TRANSITIONS[self.state]:
            raise ValueError(f"illegal job transition {self.state} -> {new}")
        self.state = new
        if new == JobState.RUNNING and self.started_at is None:
            self.started_at = time.time()
        if new in JobState.TERMINAL:
            self.finished_at = time.time()

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        d = {
            "id": self.id,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "from_store": self.from_store,
            "dedup_count": self.dedup_count,
            "error_kind": self.error_kind,
            "resumed_from": self.resumed_from,
            "checkpoint": self.checkpoint,
            "trace_id": self.trace_id,
            "spec": self.spec.to_dict(),
        }
        if include_result:
            d["result"] = self.result
        return d


# -- execution -----------------------------------------------------------------


def machine_spec_for(spec: JobSpec):
    """The machine model a spec tunes/solves against."""
    from ..machine import HASWELL_EP

    m = HASWELL_EP
    if spec.bandwidth:
        m = m.with_bandwidth(spec.bandwidth)
    return m


def _inject_fault(spec: JobSpec, attempt: int, in_child: bool) -> None:
    """Apply a spec-level legacy fault flag through the one shared
    mechanism (:func:`repro.resilience.faults.trigger`); the reason keeps
    the legacy flag name in the message for backward compatibility."""
    if spec.fault is None:
        return
    if spec.fault == "always_fail":
        faults.trigger("job.fault", "raise", reason="always_fail",
                       in_child=in_child)
    if attempt == 1 and spec.fault == "fail_once":
        faults.trigger("job.fault", "raise", reason="fail_once",
                       in_child=in_child)
    if attempt == 1 and spec.fault == "crash_once":
        # In a forked worker this dies like a SIGKILLed process: no
        # cleanup, no spool file.  Inline it degrades to an exception.
        faults.trigger("job.fault", "crash", reason="crash_once",
                       in_child=in_child)


def _field_checksum(fields) -> str:
    """SHA-256 over the raw bytes of all twelve components, in canonical
    order -- the bit-identity witness for served results."""
    from ..fdfd.specs import ALL_COMPONENTS

    h = hashlib.sha256()
    for name in ALL_COMPONENTS:
        h.update(fields[name].tobytes())
    return h.hexdigest()


def _run_tune(spec: JobSpec, registry) -> Dict[str, Any]:
    from ..core.autotuner import point_to_json, tune_spatial, tune_tiled

    m = machine_spec_for(spec)
    hit = False
    if registry is not None:
        with tracing.span("tune", "service", args=telemetry.span_args(
                {"grid": spec.grid, "variant": spec.variant})) as sp:
            point, hit = registry.get_or_tune(
                m, spec.grid, spec.threads, tg_size=spec.tg_size,
                variant=spec.variant
            )
            sp.set(registry_hit=hit)
    elif spec.variant == "spatial":
        point = tune_spatial(m, spec.grid, spec.threads)
    elif spec.variant == "1wd":
        point = tune_tiled(m, spec.grid, spec.threads, tg_size=1, variant="1WD")
    else:
        point = tune_tiled(m, spec.grid, spec.threads, tg_size=spec.tg_size)
    return {
        "kind": "tune",
        "registry_hit": hit,
        "point": point_to_json(point),
        "describe": None if point is None else point.describe(),
    }


def _resolve_plan(spec: JobSpec, registry) -> Dict[str, Any]:
    """The (dw, bz) a tiled solve runs with, per the tuning policy."""
    if not spec.tiled:
        return {"tiled": False}
    if spec.tuning == "spec" or registry is None:
        return {"tiled": True, "dw": spec.dw, "bz": spec.bz,
                "source": "spec", "registry_hit": False}
    with tracing.span("tune", "service", args=telemetry.span_args(
            {"grid": spec.grid, "variant": spec.variant})) as sp:
        point, hit = registry.get_or_tune(
            machine_spec_for(spec), spec.grid, spec.threads,
            tg_size=spec.tg_size, variant=spec.variant,
        )
        sp.set(registry_hit=hit)
    if point is None:  # no feasible tuned plan: fall back to the spec's
        return {"tiled": True, "dw": spec.dw, "bz": spec.bz,
                "source": "fallback", "registry_hit": hit}
    return {"tiled": True, "dw": point.dw, "bz": point.bz,
            "source": "registry", "registry_hit": hit}


def _checkpoint_for(spec: JobSpec, solver, checkpoint_dir, **cadence):
    """A :class:`CheckpointManager` for this solve, or ``None`` when
    checkpointing is off (no directory, or ``REPRO_CHECKPOINT_EVERY=0``)."""
    from .. import config
    from ..resilience.checkpoint import CheckpointManager, solver_token

    directory = checkpoint_dir or config.checkpoint_dir()
    every = config.checkpoint_every()
    if not directory or every < 1:
        return None
    return CheckpointManager(
        directory, name=spec.job_id,
        token=solver_token(solver, tol=spec.tol, max_steps=spec.max_steps,
                           **cadence),
        every=every,
    )


def _solve_geometry(spec: JobSpec):
    """The solve-service geometry of a spec: grid, scene, source and PML
    (identical for every wavelength of a batch -- the shared-structure
    property the batched engine exploits)."""
    from ..fdfd import Grid, PMLSpec, PlaneWaveSource
    from ..fdfd.presets import preset_scene

    n = spec.grid
    nz = 2 * n
    # Same geometry as ``repro solve``: tiled traversal needs
    # non-periodic y/z.
    periodic = (False, not spec.tiled, not spec.tiled)
    grid = Grid(nz=nz, ny=n, nx=n, periodic=periodic)
    scene = preset_scene(spec.preset, nz, thickness=spec.thickness)
    source_plane = max(nz // 8, 12)
    source = PlaneWaveSource(z_plane=source_plane, z_width=2.0)
    pml = {"z": PMLSpec(thickness=max(nz // 10, 6))}
    return grid, scene, source_plane, source, pml


def _point_doc(grid, omega: float, plan: Dict[str, Any], result,
               sigma, scene, source_plane: int) -> Dict[str, Any]:
    """The per-point result document -- one assembly path for scalar and
    batched solves, so fan-out results are field-for-field the dicts a
    per-point execution would store."""
    from ..fdfd import absorbed_power, poynting_flux_z

    out: Dict[str, Any] = {
        "kind": "solve",
        "grid": list(grid.shape),
        "omega": omega,
        "plan": plan,
        "iterations": result.iterations,
        "residual": float(result.residual),
        "converged": bool(result.converged),
        "checksum": _field_checksum(result.fields),
    }
    if scene is not None:
        out["absorbed"] = float(absorbed_power(result.fields, sigma))
        out["incident"] = float(poynting_flux_z(result.fields, source_plane + 4))
    return out


def _note_solve_rates(grid, sweeps: int, elapsed: float,
                      lanes: int = 1) -> None:
    """Reflect a finished solve into the sweeps/MLUP/s instruments
    (single cheap gate; metrics never touch the solver state)."""
    if not telemetry.enabled() or sweeps <= 0:
        return
    telemetry.sweeps_total().inc(sweeps * lanes)
    if elapsed > 0:
        cells = grid.nz * grid.ny * grid.nx
        telemetry.sweep_rate().set(sweeps * lanes / elapsed)
        telemetry.solve_rate().set(sweeps * lanes * cells / elapsed / 1e6)


def _run_solve(spec: JobSpec, registry,
               checkpoint_dir: Optional[str] = None) -> Dict[str, Any]:
    import numpy as np

    from ..core.tiled_solver import TiledTHIIM
    from ..fdfd import THIIMSolver

    grid, scene, source_plane, source, pml = _solve_geometry(spec)
    omega = 2 * np.pi / spec.wavelength
    solver = THIIMSolver(grid, omega, scene=scene, source=source, pml=pml)
    plan = _resolve_plan(spec, registry)
    t0 = time.perf_counter()
    if plan["tiled"]:
        driver = TiledTHIIM(solver, dw=plan["dw"], bz=plan["bz"])
        ckpt = _checkpoint_for(spec, solver, checkpoint_dir, chunk=driver.chunk)
        result = driver.solve(tol=spec.tol, max_steps=spec.max_steps,
                              checkpoint=ckpt, on_divergence="raise")
    else:
        ckpt = _checkpoint_for(spec, solver, checkpoint_dir, check_every=20)
        result = solver.solve(tol=spec.tol, max_steps=spec.max_steps,
                              checkpoint=ckpt, on_divergence="raise")
    _note_solve_rates(grid, result.iterations, time.perf_counter() - t0)
    if ckpt is not None:
        # The solve is complete; its result is about to be stored.  The
        # snapshot has served its purpose (a crash after this point
        # requeues the job, which the result store then serves).
        ckpt.clear()
    return _point_doc(grid, omega, plan, result, solver.sigma, scene,
                      source_plane)


def _run_distributed_solve(spec: JobSpec, registry,
                           checkpoint_dir: Optional[str] = None,
                           attempt: int = 1) -> Dict[str, Any]:
    """Solve a spec across real rank processes (``kind="distributed"``).

    The parent builds the same global solver a scalar solve would, cuts
    it into the requested :class:`~repro.cluster.RankLayout` (explicit
    ``"PZxPYxPX"``, or a count the communication cost model factorizes),
    and drives :func:`~repro.cluster.runtime.run_distributed`.  The
    result document is assembled by the same :func:`_point_doc` path as
    a scalar solve -- byte-identical, stored under the layout-namespaced
    job id.
    """
    import numpy as np

    from .. import config
    from ..cluster import RankLayout, choose_decomposition
    from ..cluster.runtime import clear_checkpoints, run_distributed
    from ..fdfd import THIIMSolver

    grid, scene, source_plane, source, pml = _solve_geometry(spec)
    omega = 2 * np.pi / spec.wavelength
    solver = THIIMSolver(grid, omega, scene=scene, source=source, pml=pml)
    mode, value = _parse_ranks(spec.ranks)
    if mode == "dims":
        layout = RankLayout(grid, *value)
    else:
        layout = choose_decomposition(grid, value)
    plan = _resolve_plan(spec, registry)
    directory = checkpoint_dir or config.checkpoint_dir()
    every = config.checkpoint_every()
    if not directory or every < 1:
        directory, every = None, 0
    t0 = time.perf_counter()
    with tracing.span(f"cluster {layout.pz}x{layout.py}x{layout.px}",
                      "cluster", args=telemetry.span_args(
                          {"ranks": layout.n_ranks, "grid": spec.grid})):
        result, _info = run_distributed(
            layout, solver, tol=spec.tol, max_steps=spec.max_steps,
            check_every=20, name=spec.job_id, checkpoint_dir=directory,
            every=every, attempt=attempt)
    _note_solve_rates(grid, result.iterations, time.perf_counter() - t0)
    if directory:
        # The solve is complete; its result is about to be stored (same
        # reasoning as the scalar path's ckpt.clear()).
        clear_checkpoints(layout, directory, spec.job_id)
    return _point_doc(grid, omega, plan, result, solver.sigma, scene,
                      source_plane)


def _batch_checkpoint_for(spec: JobSpec, batched, checkpoint_dir, **cadence):
    """Checkpoint manager for a batch job.  The token is the *batched*
    one (batch width + every lane's scalar token), so a batch snapshot
    can never resume from -- or be resumed by -- a per-point solve's
    artifact, even though both are named by content-addressed job ids."""
    from .. import config
    from ..resilience.checkpoint import CheckpointManager, batched_solver_token

    directory = checkpoint_dir or config.checkpoint_dir()
    every = config.checkpoint_every()
    if not directory or every < 1:
        return None
    return CheckpointManager(
        directory, name=spec.job_id,
        token=batched_solver_token(batched, tol=spec.tol,
                                   max_steps=spec.max_steps, **cadence),
        every=every,
    )


def _run_batch_solve(spec: JobSpec, registry, store=None,
                     checkpoint_dir: Optional[str] = None) -> Dict[str, Any]:
    """Solve a wavelength batch: dedup stored points, run the remainder
    as ONE batched sweep loop, fan per-point results back out.

    Every solved point's document is assembled by the same
    :func:`_point_doc` path as a scalar solve and is stored under the
    per-point job id, so later per-point submissions are served from the
    store bit-identically.  The tuned plan is resolved once and shared
    (the tiling plan depends on grid/machine/threads, not wavelength).
    Lanes that diverge become failed points (reported, never stored);
    they do not fail the batch.
    """
    import numpy as np

    from ..core.tiled_solver import BatchedTiledTHIIM
    from ..fdfd import BatchedTHIIMSolver

    wavelengths = list(spec.wavelengths or ())
    point_specs = [spec.point_spec(w) for w in wavelengths]
    docs: Dict[int, Optional[Dict[str, Any]]] = {}
    errors: Dict[int, str] = {}
    from_store = [False] * len(wavelengths)
    todo = []
    for i, ps in enumerate(point_specs):
        cached = store.get(ps.job_id) if store is not None else None
        if cached is not None:
            docs[i] = cached
            from_store[i] = True
        else:
            todo.append(i)

    plan = _resolve_plan(spec, registry)
    if todo:
        grid, scene, source_plane, source, pml = _solve_geometry(spec)
        omegas = [2 * np.pi / wavelengths[i] for i in todo]
        batched = BatchedTHIIMSolver(grid, omegas, scene=scene,
                                     source=source, pml=pml)
        t0 = time.perf_counter()
        if plan["tiled"]:
            driver = BatchedTiledTHIIM(batched, dw=plan["dw"], bz=plan["bz"])
            ckpt = _batch_checkpoint_for(spec, batched, checkpoint_dir,
                                         chunk=driver.chunk)
            batch_result = driver.solve(tol=spec.tol, max_steps=spec.max_steps,
                                        checkpoint=ckpt)
        else:
            ckpt = _batch_checkpoint_for(spec, batched, checkpoint_dir,
                                         check_every=20)
            batch_result = batched.solve(tol=spec.tol, max_steps=spec.max_steps,
                                         check_every=20, checkpoint=ckpt)
        _note_solve_rates(
            grid, sum(r.iterations for r in batch_result.results),
            time.perf_counter() - t0)
        if ckpt is not None:
            ckpt.clear()
        for lane, i in enumerate(todo):
            reason = batch_result.diverged[lane]
            if reason is not None:
                errors[i] = f"SolverDiverged: {reason}"
                docs[i] = None
                continue
            result = batch_result.results[lane]
            doc = _point_doc(grid, omegas[lane], plan, result,
                             batched.lanes[lane].sigma, scene, source_plane)
            docs[i] = doc
            if store is not None:
                store.put(point_specs[i].job_id, doc)

    points = []
    for i, w in enumerate(wavelengths):
        entry: Dict[str, Any] = {
            "wavelength": w,
            "id": point_specs[i].job_id,
            "from_store": from_store[i],
            "result": docs.get(i),
        }
        if i in errors:
            entry["error"] = errors[i]
        points.append(entry)
    return {
        "kind": "batch",
        "batch_width": len(wavelengths),
        "plan": plan,
        "dedup_hits": sum(from_store),
        "solved": len(todo),
        "failed": len(errors),
        "points": points,
    }


def run_job(
    spec: JobSpec,
    registry=None,
    attempt: int = 1,
    in_child: bool = False,
    checkpoint_dir: Optional[str] = None,
    store=None,
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Execute a spec and return its JSON-serializable result.

    Deterministic in ``spec`` (and ``registry`` contents for tuned
    plans): repeat runs return equal dicts bit for bit, which is the
    contract the result store's dedup relies on.  Checkpoint/resume
    preserves this: a run resumed from a snapshot replays the identical
    sweep sequence, and resume provenance travels on the Job record
    (never in this result dict).

    ``store`` is only consulted by batch jobs: already-stored points are
    deduplicated away and freshly solved points are fanned back out
    under their per-point job ids.

    ``trace_id`` scopes a telemetry :class:`~repro.telemetry.JobContext`
    for the duration, so solver progress events and every nested span
    carry the submitting job's trace id (progress/metrics stay off the
    result dict -- bit-identity is untouched).
    """
    faults.set_attempt(attempt)
    ctx = telemetry.JobContext(
        job_id=spec.job_id,
        trace_id=trace_id or telemetry.new_trace_id(),
        attempt=attempt,
    )
    with telemetry.use(ctx), tracing.span(
        f"job {spec.job_id[:12]}", "service",
        args=telemetry.span_args(
            {"kind": spec.kind, "attempt": attempt, "grid": spec.grid}),
    ):
        faults.hit("job.run")
        _inject_fault(spec, attempt, in_child)
        if spec.kind == "tune":
            return _run_tune(spec, registry)
        if spec.kind == "batch":
            return _run_batch_solve(spec, registry, store=store,
                                    checkpoint_dir=checkpoint_dir)
        if spec.kind == "distributed":
            return _run_distributed_solve(spec, registry,
                                          checkpoint_dir=checkpoint_dir,
                                          attempt=attempt)
        return _run_solve(spec, registry, checkpoint_dir=checkpoint_dir)
