"""Declarative job specs and the job lifecycle.

A :class:`JobSpec` is everything needed to reproduce one unit of work --
a THIIM solve on a preset scene or an autotuner run -- as plain data.
Its identity is *content-addressed*: the job id is a SHA-256 over the
canonical JSON of the computational fields (execution policy such as
priority and retry budget is excluded), so two submissions of the same
computation share one id, one execution, and one stored result.

:class:`Job` is the runtime record: lifecycle state (QUEUED -> RUNNING
-> DONE | FAILED | CANCELLED, with RUNNING -> QUEUED requeues on worker
crash), attempt counter and timestamps.  :func:`run_job` executes a spec
deterministically -- it is the *same* code path for direct CLI solves,
thread workers and forked process workers, which is what makes the
bit-identical serving guarantee testable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core import tracing
from ..resilience import faults

__all__ = ["JobSpec", "Job", "JobState", "run_job", "FAULTS"]

KINDS = ("solve", "tune")
TUNING_POLICIES = ("spec", "registry")
VARIANTS = ("spatial", "1wd", "mwd")
#: Test hooks for the retry machinery.  ``fail_once`` raises on the first
#: attempt; ``crash_once`` kills the worker *process* on the first
#: attempt (simulating a mid-job worker death); ``always_fail`` raises on
#: every attempt (exhausts the retry budget).
FAULTS = ("fail_once", "crash_once", "always_fail")

#: Fields that define *what* is computed (hashed into the job id).
#: Everything else on JobSpec is execution policy.
_IDENTITY_FIELDS = (
    "kind", "preset", "grid", "wavelength", "thickness", "tol", "max_steps",
    "tiled", "dw", "bz", "threads", "variant", "tg_size", "bandwidth",
    "tuning", "fault",
)


class JobState:
    """The JOB lifecycle states (plain strings for JSON friendliness)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One declarative unit of work for the solve service."""

    kind: str = "solve"
    # -- scene ---------------------------------------------------------------
    preset: str = "absorber"
    grid: int = 48
    wavelength: float = 12.0
    thickness: Optional[float] = None
    # -- solve numerics ------------------------------------------------------
    tol: float = 1e-5
    max_steps: int = 3000
    tiled: bool = False
    dw: int = 4
    bz: int = 2
    # -- machine / tuning ----------------------------------------------------
    threads: int = 18
    variant: str = "mwd"
    tg_size: Optional[int] = None
    bandwidth: Optional[float] = None
    tuning: str = "spec"
    # -- execution policy (excluded from the job id) -------------------------
    priority: int = 0
    max_retries: int = 2
    timeout_s: Optional[float] = None
    # -- test hook (part of the identity: it changes behaviour) --------------
    fault: Optional[str] = None

    def __post_init__(self) -> None:
        from ..fdfd.presets import PRESETS

        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.preset not in PRESETS:
            raise ValueError(f"preset must be one of {PRESETS}, got {self.preset!r}")
        if self.grid < 8 or (self.kind == "solve" and self.grid < 10):
            # Solves need nz = 2*grid to clear the source plane at
            # max(nz//8, 12) and the incident-flux plane 4 cells below it.
            raise ValueError("grid must be >= 10 for solves (>= 8 for tune)")
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.dw < 4 or self.dw % 2:
            raise ValueError("dw must be an even integer >= 4")
        if self.bz < 1:
            raise ValueError("bz must be >= 1")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}")
        if self.tuning not in TUNING_POLICIES:
            raise ValueError(f"tuning must be one of {TUNING_POLICIES}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.fault is not None and self.fault not in FAULTS:
            raise ValueError(f"fault must be one of {FAULTS} or None")

    # -- identity --------------------------------------------------------------

    def identity(self) -> Dict[str, Any]:
        """The computational fields, canonically ordered."""
        return {f: getattr(self, f) for f in _IDENTITY_FIELDS}

    @property
    def job_id(self) -> str:
        payload = json.dumps(self.identity(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobSpec":
        """Build a spec from client JSON; unknown keys are an error."""
        if not isinstance(d, dict):
            raise ValueError("job spec must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown job spec fields: {sorted(unknown)}")
        return cls(**d)


@dataclass
class Job:
    """Runtime record of one submitted spec."""

    spec: JobSpec
    state: str = JobState.QUEUED
    attempts: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Result served straight from the persistent store (no execution).
    from_store: bool = False
    #: Extra submissions that coalesced onto this job.
    dedup_count: int = 0
    #: Typed taxonomy name of the failure (``SolverDiverged``, ...).
    error_kind: Optional[str] = None
    #: Sweep count the last attempt resumed from (checkpoint provenance;
    #: kept off the result dict to preserve bit-identical serving).
    resumed_from: Optional[int] = None
    #: Last checkpoint report: ``{"path", "saves", "resumed_from"}``.
    checkpoint: Optional[Dict[str, Any]] = None

    #: Legal lifecycle transitions (RUNNING -> QUEUED is the crash requeue).
    _TRANSITIONS = {
        JobState.QUEUED: (JobState.RUNNING, JobState.CANCELLED),
        JobState.RUNNING: (JobState.DONE, JobState.FAILED, JobState.QUEUED),
        JobState.DONE: (),
        JobState.FAILED: (),
        JobState.CANCELLED: (),
    }

    @property
    def id(self) -> str:
        return self.spec.job_id

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def transition(self, new: str) -> None:
        if new not in self._TRANSITIONS[self.state]:
            raise ValueError(f"illegal job transition {self.state} -> {new}")
        self.state = new
        if new == JobState.RUNNING and self.started_at is None:
            self.started_at = time.time()
        if new in JobState.TERMINAL:
            self.finished_at = time.time()

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        d = {
            "id": self.id,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "from_store": self.from_store,
            "dedup_count": self.dedup_count,
            "error_kind": self.error_kind,
            "resumed_from": self.resumed_from,
            "checkpoint": self.checkpoint,
            "spec": self.spec.to_dict(),
        }
        if include_result:
            d["result"] = self.result
        return d


# -- execution -----------------------------------------------------------------


def machine_spec_for(spec: JobSpec):
    """The machine model a spec tunes/solves against."""
    from ..machine import HASWELL_EP

    m = HASWELL_EP
    if spec.bandwidth:
        m = m.with_bandwidth(spec.bandwidth)
    return m


def _inject_fault(spec: JobSpec, attempt: int, in_child: bool) -> None:
    """Apply a spec-level legacy fault flag through the one shared
    mechanism (:func:`repro.resilience.faults.trigger`); the reason keeps
    the legacy flag name in the message for backward compatibility."""
    if spec.fault is None:
        return
    if spec.fault == "always_fail":
        faults.trigger("job.fault", "raise", reason="always_fail",
                       in_child=in_child)
    if attempt == 1 and spec.fault == "fail_once":
        faults.trigger("job.fault", "raise", reason="fail_once",
                       in_child=in_child)
    if attempt == 1 and spec.fault == "crash_once":
        # In a forked worker this dies like a SIGKILLed process: no
        # cleanup, no spool file.  Inline it degrades to an exception.
        faults.trigger("job.fault", "crash", reason="crash_once",
                       in_child=in_child)


def _field_checksum(fields) -> str:
    """SHA-256 over the raw bytes of all twelve components, in canonical
    order -- the bit-identity witness for served results."""
    from ..fdfd.specs import ALL_COMPONENTS

    h = hashlib.sha256()
    for name in ALL_COMPONENTS:
        h.update(fields[name].tobytes())
    return h.hexdigest()


def _run_tune(spec: JobSpec, registry) -> Dict[str, Any]:
    from ..core.autotuner import point_to_json, tune_spatial, tune_tiled

    m = machine_spec_for(spec)
    hit = False
    if registry is not None:
        point, hit = registry.get_or_tune(
            m, spec.grid, spec.threads, tg_size=spec.tg_size, variant=spec.variant
        )
    elif spec.variant == "spatial":
        point = tune_spatial(m, spec.grid, spec.threads)
    elif spec.variant == "1wd":
        point = tune_tiled(m, spec.grid, spec.threads, tg_size=1, variant="1WD")
    else:
        point = tune_tiled(m, spec.grid, spec.threads, tg_size=spec.tg_size)
    return {
        "kind": "tune",
        "registry_hit": hit,
        "point": point_to_json(point),
        "describe": None if point is None else point.describe(),
    }


def _resolve_plan(spec: JobSpec, registry) -> Dict[str, Any]:
    """The (dw, bz) a tiled solve runs with, per the tuning policy."""
    if not spec.tiled:
        return {"tiled": False}
    if spec.tuning == "spec" or registry is None:
        return {"tiled": True, "dw": spec.dw, "bz": spec.bz,
                "source": "spec", "registry_hit": False}
    point, hit = registry.get_or_tune(
        machine_spec_for(spec), spec.grid, spec.threads,
        tg_size=spec.tg_size, variant=spec.variant,
    )
    if point is None:  # no feasible tuned plan: fall back to the spec's
        return {"tiled": True, "dw": spec.dw, "bz": spec.bz,
                "source": "fallback", "registry_hit": hit}
    return {"tiled": True, "dw": point.dw, "bz": point.bz,
            "source": "registry", "registry_hit": hit}


def _checkpoint_for(spec: JobSpec, solver, checkpoint_dir, **cadence):
    """A :class:`CheckpointManager` for this solve, or ``None`` when
    checkpointing is off (no directory, or ``REPRO_CHECKPOINT_EVERY=0``)."""
    from .. import config
    from ..resilience.checkpoint import CheckpointManager, solver_token

    directory = checkpoint_dir or config.checkpoint_dir()
    every = config.checkpoint_every()
    if not directory or every < 1:
        return None
    return CheckpointManager(
        directory, name=spec.job_id,
        token=solver_token(solver, tol=spec.tol, max_steps=spec.max_steps,
                           **cadence),
        every=every,
    )


def _run_solve(spec: JobSpec, registry,
               checkpoint_dir: Optional[str] = None) -> Dict[str, Any]:
    import numpy as np

    from ..core.tiled_solver import TiledTHIIM
    from ..fdfd import (
        Grid, PMLSpec, PlaneWaveSource, THIIMSolver,
        absorbed_power, poynting_flux_z,
    )
    from ..fdfd.presets import preset_scene

    n = spec.grid
    nz = 2 * n
    # Same geometry as ``repro solve``: tiled traversal needs
    # non-periodic y/z.
    periodic = (False, not spec.tiled, not spec.tiled)
    grid = Grid(nz=nz, ny=n, nx=n, periodic=periodic)
    omega = 2 * np.pi / spec.wavelength
    scene = preset_scene(spec.preset, nz, thickness=spec.thickness)
    source_plane = max(nz // 8, 12)
    solver = THIIMSolver(
        grid, omega, scene=scene,
        source=PlaneWaveSource(z_plane=source_plane, z_width=2.0),
        pml={"z": PMLSpec(thickness=max(nz // 10, 6))},
    )
    plan = _resolve_plan(spec, registry)
    if plan["tiled"]:
        driver = TiledTHIIM(solver, dw=plan["dw"], bz=plan["bz"])
        ckpt = _checkpoint_for(spec, solver, checkpoint_dir, chunk=driver.chunk)
        result = driver.solve(tol=spec.tol, max_steps=spec.max_steps,
                              checkpoint=ckpt, on_divergence="raise")
    else:
        ckpt = _checkpoint_for(spec, solver, checkpoint_dir, check_every=20)
        result = solver.solve(tol=spec.tol, max_steps=spec.max_steps,
                              checkpoint=ckpt, on_divergence="raise")
    if ckpt is not None:
        # The solve is complete; its result is about to be stored.  The
        # snapshot has served its purpose (a crash after this point
        # requeues the job, which the result store then serves).
        ckpt.clear()

    out: Dict[str, Any] = {
        "kind": "solve",
        "grid": list(grid.shape),
        "omega": omega,
        "plan": plan,
        "iterations": result.iterations,
        "residual": float(result.residual),
        "converged": bool(result.converged),
        "checksum": _field_checksum(solver.fields),
    }
    if scene is not None:
        out["absorbed"] = float(absorbed_power(solver.fields, solver.sigma))
        out["incident"] = float(poynting_flux_z(solver.fields, source_plane + 4))
    return out


def run_job(
    spec: JobSpec,
    registry=None,
    attempt: int = 1,
    in_child: bool = False,
    checkpoint_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Execute a spec and return its JSON-serializable result.

    Deterministic in ``spec`` (and ``registry`` contents for tuned
    plans): repeat runs return equal dicts bit for bit, which is the
    contract the result store's dedup relies on.  Checkpoint/resume
    preserves this: a run resumed from a snapshot replays the identical
    sweep sequence, and resume provenance travels on the Job record
    (never in this result dict).
    """
    faults.set_attempt(attempt)
    with tracing.span(
        f"job {spec.job_id[:12]}", "service",
        args={"kind": spec.kind, "attempt": attempt, "grid": spec.grid},
    ):
        faults.hit("job.run")
        _inject_fault(spec, attempt, in_child)
        if spec.kind == "tune":
            return _run_tune(spec, registry)
        return _run_solve(spec, registry, checkpoint_dir=checkpoint_dir)
