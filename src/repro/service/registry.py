"""Persistent plan registry: memoized autotuner winners.

The autotuner is the expensive half of the compile-once/serve-many
split: a full MWD candidate sweep through the machine model per (grid,
machine, thread count).  The registry memoizes its winners under a key
of (variant kind, grid shape, machine-spec hash, thread count, TG size)
so every later job with the same key skips tuning entirely.

Entries persist as one JSON file per key under ``root`` (see
``REPRO_REGISTRY_DIR``), written atomically so concurrent service
workers and external tuners can never interleave a torn file.  Without a
root the registry is a process-local dict with the same interface.

Hit/miss/store counters feed the observability layer: every lookup runs
inside a :func:`~repro.machine.counters.timed_section` (visible in
``repro bench``'s section table) and emits tracing counter events when a
trace is active, so a campaign's Chrome trace shows the hit rate
climbing as plans get reused.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..core import tracing
from ..core.autotuner import point_from_json, point_to_json
from ..ioutil import atomic_write_json, corrupt_file, read_json, read_json_checked
from ..machine.counters import timed_section
from ..machine.spec import MachineSpec
from ..resilience import faults

__all__ = ["PlanRegistry", "REGISTRY_VERSION"]

#: Bump to invalidate persisted plans (key or payload format change).
REGISTRY_VERSION = 1


class PlanRegistry:
    """Keyed, optionally persistent store of tuned points.

    ``node_id`` (optional) stamps stored plans' ``meta`` with the node
    that tuned them, so a sharded fleet's registries stay auditable
    (``GET /registry`` shows which shard paid for which tune).
    """

    def __init__(self, root: Optional[str] = None,
                 node_id: Optional[str] = None):
        self.root = root
        self.node_id = node_id
        self._mem: Dict[str, Optional[dict]] = {}
        self._lock = threading.Lock()
        #: Single-flight guard: key -> Event while a tuner is in flight,
        #: so N concurrent workers asking for one key tune it once.
        self._inflight: Dict[str, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if root:
            os.makedirs(root, exist_ok=True)

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def key(
        spec: MachineSpec,
        grid: int,
        threads: int,
        tg_size: Optional[int] = None,
        variant: str = "mwd",
        batch: Optional[int] = None,
    ) -> str:
        """Content key: variant, grid shape, machine-spec hash, threads, TG.

        ``batch`` (a batch width) extends the key for entries whose
        payload depends on the width; ``None`` (the default, and what
        the solve path uses -- the tiling plan depends only on grid,
        machine and threads, so one tuned plan serves a whole campaign
        batch) preserves every pre-batch key unchanged.  Keeping the two
        namespaces disjoint guarantees a width-tagged entry can never
        shadow or poison a per-point one.
        """
        machine_hash = hashlib.sha1(
            json.dumps(dataclasses.asdict(spec), sort_keys=True).encode()
        ).hexdigest()[:16]
        fields = [REGISTRY_VERSION, variant, grid, machine_hash, threads, tg_size]
        if batch is not None:
            fields.append(["batch", int(batch)])
        payload = json.dumps(fields)
        return hashlib.sha1(payload.encode()).hexdigest()[:20]

    def _path(self, key: str) -> Optional[str]:
        return os.path.join(self.root, f"plan-{key}.json") if self.root else None

    # -- lookup / store --------------------------------------------------------

    def lookup(self, key: str):
        """The memoized point for ``key`` -> ``(point,)`` or ``None``.

        A hit may carry ``point=None`` (the tuner proved no feasible
        configuration); that negative result is memoized too.
        """
        with timed_section("registry.lookup"):
            with self._lock:
                if key in self._mem:
                    return (point_from_json(self._mem[key]["point"]),)
            path = self._path(key)
            if path is None:
                return None
            if faults.hit("registry.read") == "corrupt":
                corrupt_file(path)
            # Malformed or checksum-mismatched entries are quarantined to
            # ``<path>.corrupt`` and read as a miss, so the tuner simply
            # recomputes the plan instead of the service crashing.
            doc = read_json_checked(path)
            if not doc or doc.get("version") != REGISTRY_VERSION:
                return None
            with self._lock:
                self._mem[key] = doc
            try:
                return (point_from_json(doc["point"]),)
            except (KeyError, TypeError):
                return None  # foreign/corrupt payload: treat as a miss

    def store(self, key: str, point, meta: Optional[Dict[str, Any]] = None) -> None:
        meta = dict(meta or {})
        if self.node_id and "node" not in meta:
            meta["node"] = self.node_id
        doc = {
            "version": REGISTRY_VERSION,
            "key": key,
            "point": point_to_json(point),
            "meta": meta,
        }
        with self._lock:
            self._mem[key] = doc
            self.stores += 1
        path = self._path(key)
        if path is not None:
            try:
                kind = faults.hit("registry.write")
                atomic_write_json(path, doc, checksum=True)
                if kind == "corrupt":
                    corrupt_file(path)
            except OSError:
                pass  # read-only/full disk: persistence is best-effort

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
            hits, misses = self.hits, self.misses
        rec = tracing.active()
        if rec is not None:
            rec.instant("registry.hit" if hit else "registry.miss", "service")
            rec.counter("plan registry", {"hits": hits, "misses": misses})

    def get_or_tune(
        self,
        spec: MachineSpec,
        grid: int,
        threads: int,
        tg_size: Optional[int] = None,
        variant: str = "mwd",
    ) -> Tuple[Any, bool]:
        """The tuned point for a key, tuning on a miss.

        Returns ``(point, hit)``; ``point`` may be ``None`` when no
        configuration is feasible (also memoized).
        """
        from ..core.autotuner import tune_spatial, tune_tiled

        key = self.key(spec, grid, threads, tg_size=tg_size, variant=variant)
        while True:
            found = self.lookup(key)
            if found is not None:
                self._count(hit=True)
                return found[0], True
            with self._lock:
                done = self._inflight.get(key)
                if done is None:
                    done = self._inflight[key] = threading.Event()
                    break  # this caller tunes; everyone else waits on it
            done.wait()  # the winner's store() lands before its set()
        self._count(hit=False)
        try:
            with tracing.span(f"registry.tune {key[:8]}", "service",
                              args={"grid": grid, "threads": threads,
                                    "variant": variant}):
                if variant == "spatial":
                    point = tune_spatial(spec, grid, threads)
                elif variant == "1wd":
                    point = tune_tiled(spec, grid, threads,
                                       tg_size=1, variant="1WD")
                else:
                    point = tune_tiled(spec, grid, threads, tg_size=tg_size)
            self.store(key, point, meta={"grid": grid, "threads": threads,
                                         "variant": variant, "tg_size": tg_size,
                                         "machine": spec.name})
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            done.set()
        return point, False

    # -- readout ---------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "stores": self.stores, "entries": len(self._entries_mem())}

    def merge_counters(self, d: Dict[str, int]) -> None:
        """Fold a child worker's counter deltas into this registry."""
        with self._lock:
            self.hits += int(d.get("hits", 0))
            self.misses += int(d.get("misses", 0))
            self.stores += int(d.get("stores", 0))

    def _entries_mem(self) -> Dict[str, dict]:
        docs = dict(self._mem)
        if self.root and os.path.isdir(self.root):
            for fname in os.listdir(self.root):
                if fname.startswith("plan-") and fname.endswith(".json"):
                    key = fname[len("plan-"):-len(".json")]
                    if key not in docs:
                        doc = read_json(os.path.join(self.root, fname))
                        if doc:
                            docs[key] = doc
        return docs

    def entries(self) -> List[Dict[str, Any]]:
        """Registry listing for ``GET /registry`` (summaries, no fields)."""
        out: List[Dict[str, Any]] = []
        with self._lock:
            docs = self._entries_mem()
        for key, doc in sorted(docs.items()):
            point = doc.get("point")
            summary = None
            if point:
                summary = {k: point.get(k) for k in
                           ("variant", "threads", "dw", "bz", "block_y")}
                result = point.get("result") or {}
                summary["mlups"] = result.get("mlups")
            out.append({"key": key, "meta": doc.get("meta", {}),
                        "point": summary, "feasible": point is not None})
        return out
