"""Priority-FIFO job scheduler with worker pool, backpressure and retry.

Submission path
---------------
``submit(spec)`` coalesces aggressively before any work happens:

1. an in-flight or completed job with the same content-addressed id
   absorbs the submission (dedup -- one execution per unique spec);
2. a result already in the persistent store completes the job instantly
   (served bit-identically, no execution);
3. otherwise the job enters a *bounded* priority queue -- when full the
   submission is rejected with a reason (:class:`QueueFullError`), which
   the HTTP layer surfaces as 503 backpressure.

Ordering is (higher ``priority`` first, FIFO within a priority level),
implemented as a heap keyed ``(-priority, seq)``.

Execution path
--------------
``workers`` dispatcher threads pop jobs and execute them either inline
(``mode="thread"``) or in a forked child process (``mode="process"``).
A process worker writes its result atomically into a spool file and
exits 0; a child that dies mid-job (nonzero exit, signal, timeout)
leaves no result, the dispatcher counts it as a crash and *requeues* the
job with exponential backoff until the spec's retry budget is spent --
the crash-recovery contract.  Deterministic job failures (exceptions)
consume the same budget.

Telemetry: every attempt runs in a tracing span, retries/rejections emit
instants, and ``stats()`` exposes the counter set ``GET /metrics``
serves.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional

from .. import telemetry
from ..core import tracing
from ..ioutil import atomic_write_json, read_json, read_json_checked
from ..resilience import faults
from ..resilience.checkpoint import latest_lag_s, take_report
from ..resilience.errors import (
    RESILIENCE_COUNTERS,
    RankCrash,
    ReproError,
    error_from_kind,
)
from .jobs import Job, JobSpec, JobState, run_job
from .registry import PlanRegistry
from .store import ResultStore

__all__ = ["Scheduler", "QueueFullError", "WorkerCrash"]

#: Queue-spool payload format (graceful-restart persistence).
QUEUE_SPOOL_VERSION = 1


class QueueFullError(RuntimeError):
    """Backpressure: the bounded queue rejected a submission."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class WorkerCrash(RuntimeError):
    """A worker process died mid-job (no result produced)."""


def _child_entry(spec_dict: dict, attempt: int, registry_root: Optional[str],
                 out_path: str, checkpoint_dir: Optional[str] = None,
                 store_root: Optional[str] = None,
                 trace_id: Optional[str] = None,
                 trace_active: bool = False,
                 telemetry_on: bool = False,
                 events_dir: Optional[str] = None) -> None:
    """Forked worker body: run the job, spool the outcome atomically.

    Exits 0 with an ``{"ok": ...}`` envelope for both success and
    deterministic failure; only a genuine crash (or an injected ``crash``
    fault) leaves no file behind.  The envelope carries everything the
    parent needs to reconstruct what happened: the typed error kind
    (rehydrated via :func:`~repro.resilience.errors.error_from_kind`),
    the checkpoint report (path / saves / resume point -- how crashed
    jobs get resumed), and the child's resilience-counter deltas.

    ``store_root`` gives batch jobs a root-backed result store for
    per-point dedup/fan-out inside the child; the parent additionally
    replays the fan-out puts from the returned batch result, which is
    what covers in-memory stores.
    """
    faults.set_in_child(True)
    # The fork inherited the parent's counters; reset so the spooled
    # snapshot is this child's delta, merged back additively.
    RESILIENCE_COUNTERS.reset()
    # Telemetry after a fork: the child publishes progress into its own
    # (copy-on-write) hub, mirrored to the events dir so the parent's
    # readers can tail a *live* forked solve; spans go into a private
    # recorder whose export rides the spool file home (merged back like
    # SubstrateCounters.merge()).
    if telemetry_on:
        telemetry.enable(force=True)
        telemetry.PROGRESS.reset()
        telemetry.PROGRESS.configure_sink(events_dir)
        # Like the resilience counters: drop the inherited values so the
        # spooled snapshot is this child's pure delta.
        telemetry.METRICS.reset()
    child_rec = tracing.start_trace(None) if trace_active else None
    spec = JobSpec.from_dict(spec_dict)
    registry = PlanRegistry(registry_root)
    store = ResultStore(store_root) if store_root else None
    try:
        result = run_job(spec, registry=registry, attempt=attempt,
                         in_child=True, checkpoint_dir=checkpoint_dir,
                         store=store, trace_id=trace_id)
        payload = {"ok": True, "result": result}
    except BaseException as exc:  # noqa: BLE001 - the envelope is the report
        payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}",
                   "error_kind": type(exc).__name__}
    payload["registry_counters"] = registry.counters()
    payload["checkpoint"] = take_report()
    payload["resilience_counters"] = RESILIENCE_COUNTERS.snapshot()
    if child_rec is not None:
        payload["trace"] = child_rec.export()
    if telemetry_on:
        payload["metrics"] = telemetry.METRICS.snapshot()
        telemetry.PROGRESS.close_sink()
    atomic_write_json(out_path, payload)
    os._exit(0)


class Scheduler:
    """Bounded priority-FIFO scheduler over a pool of workers."""

    def __init__(
        self,
        workers: int = 2,
        queue_size: int = 64,
        registry: Optional[PlanRegistry] = None,
        store: Optional[ResultStore] = None,
        mode: str = "thread",
        retry_base_s: float = 0.05,
        spool_dir: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if mode not in ("thread", "process"):
            raise ValueError("mode must be 'thread' or 'process'")
        self.registry = registry if registry is not None else PlanRegistry()
        self.store = store if store is not None else ResultStore()
        self.workers = workers
        self.queue_size = queue_size
        self.mode = mode
        self.retry_base_s = retry_base_s
        self._spool_dir = spool_dir
        self.checkpoint_dir = checkpoint_dir
        self._heap: List[tuple] = []  # (-priority, seq, job_id)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # submission order (listing)
        self._cv = threading.Condition()
        self._seq = 0
        self._stopping = False
        self._draining = False
        self._threads: List[threading.Thread] = []
        self._events_dir: Optional[str] = None
        self._collector = None
        # -- counters (all guarded by _cv) --
        self.n_submitted = 0
        self.n_dedup = 0
        self.n_store_hits = 0
        self.n_rejected = 0
        self.n_executed = 0
        self.n_retries = 0
        self.n_crashes = 0
        self.n_completed = 0
        self.n_failed = 0
        self.n_cancelled = 0
        self.n_resumed = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Scheduler":
        from .. import config

        if self._threads:
            return self
        # Serving implies telemetry (REPRO_TELEMETRY=0 still vetoes).
        telemetry.enable()
        if self.mode == "process" and self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
        if self.mode == "process" and telemetry.enabled():
            self._events_dir = os.path.join(self._spool_dir, "events")
            os.makedirs(self._events_dir, exist_ok=True)
            telemetry.PROGRESS.configure_tail(self._events_dir)
        if telemetry.enabled():
            self._register_metrics()
        if self.checkpoint_dir is None and config.checkpoint_every() > 0:
            self.checkpoint_dir = (
                config.checkpoint_dir()
                or tempfile.mkdtemp(prefix="repro-ckpt-")
            )
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []
        if self._collector is not None:
            telemetry.METRICS.unregister_collector(self._collector)
            self._collector = None

    def _register_metrics(self) -> None:
        """Reflect existing counter sources into gauges at scrape time.

        The scheduler, registry, store, resilience layer and fault
        injector already keep their own counters; rather than double-
        counting on the hot path, a collector mirrors them into the
        metrics registry whenever ``/metrics`` renders.
        """
        m = telemetry.METRICS
        queue_depth = m.gauge(
            "queue_depth", "Jobs waiting in the bounded priority queue")
        running = m.gauge("jobs_running", "Jobs currently executing")
        by_state = m.gauge("jobs_by_state",
                           "Jobs known to the scheduler, by lifecycle state",
                           labelnames=("state",))
        workers_g = m.gauge("scheduler_workers",
                            "Dispatcher threads in the worker pool")
        hit_ratio = m.gauge(
            "plan_registry_hit_ratio",
            "Fraction of plan lookups served without re-tuning")
        lookups = m.gauge("plan_registry_lookups",
                          "Plan-registry lookup counters, by outcome",
                          labelnames=("outcome",))
        store_ops = m.gauge("result_store_ops",
                            "Result-store counters, by operation",
                            labelnames=("op",))
        resilience_g = m.gauge("resilience_events",
                               "Resilience-layer counter snapshot, by event",
                               labelnames=("event",))
        faults_g = m.gauge("faults_fired",
                           "Injected faults that have fired so far")
        ckpt_lag = m.gauge(
            "checkpoint_lag_seconds",
            "Age of the newest checkpoint snapshot (-1 when none exists)")
        dropped = m.gauge(
            "progress_events_dropped",
            "Progress events evicted from full ring buffers (oldest first)")

        def collect() -> None:
            stats = self.stats()
            states = stats["states"]
            queue_depth.set(states.get(JobState.QUEUED, 0))
            running.set(states.get(JobState.RUNNING, 0))
            for state, n in states.items():
                by_state.labels(state=state).set(n)
            workers_g.set(self.workers)
            reg = self.registry.counters()
            total = reg.get("hits", 0) + reg.get("misses", 0)
            hit_ratio.set(reg.get("hits", 0) / total if total else 0.0)
            for outcome in ("hits", "misses", "stores"):
                lookups.labels(outcome=outcome).set(reg.get(outcome, 0))
            sto = self.store.counters()
            for op in ("hits", "misses", "puts"):
                store_ops.labels(op=op).set(sto.get(op, 0))
            store_ops.labels(op="entries").set(sto.get("entries", 0))
            for event, n in RESILIENCE_COUNTERS.snapshot().items():
                resilience_g.labels(event=event).set(n)
            faults_g.set(len(faults.fired_summary().get("fired") or []))
            lag = latest_lag_s(self.checkpoint_dir)
            ckpt_lag.set(-1.0 if lag is None else lag)
            dropped.set(telemetry.PROGRESS.dropped_total())

        self._collector = collect
        m.register_collector(collect)

    # -- graceful shutdown -------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def queue_depth(self) -> int:
        with self._cv:
            return sum(1 for j in self._jobs.values()
                       if j.state == JobState.QUEUED)

    def running_count(self) -> int:
        with self._cv:
            return sum(1 for j in self._jobs.values()
                       if j.state == JobState.RUNNING)

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop dispatching queued jobs, wait for the running ones.

        Returns True when every in-flight job reached a terminal or
        queued (requeued-on-failure) state within ``timeout``; queued
        jobs are left queued, for :meth:`persist_queue`.
        """
        with self._cv:
            self._draining = True
            self._cv.notify_all()
        rec = tracing.active()
        if rec is not None:
            rec.instant("scheduler.drain", "service",
                        args={"queued": self.queue_depth()})
        deadline = time.monotonic() + timeout
        with self._cv:
            while any(j.state == JobState.RUNNING
                      for j in self._jobs.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(timeout=min(remaining, 0.2))
        return True

    def persist_queue(self, path: str) -> int:
        """Spool the still-queued specs to ``path`` (atomic, checksummed)
        so a graceful restart can resubmit them; returns how many."""
        with self._cv:
            queued = [self._jobs[job_id]
                      for _, _, job_id in sorted(self._heap)
                      if self._jobs[job_id].state == JobState.QUEUED]
        docs = [{"spec": j.spec.to_dict(), "attempts": j.attempts}
                for j in queued]
        atomic_write_json(
            path, {"version": QUEUE_SPOOL_VERSION, "jobs": docs},
            checksum=True)
        return len(docs)

    def restore_queue(self, path: str) -> int:
        """Resubmit the specs a previous process spooled at ``path``
        (corrupt spools quarantine and restore nothing); returns how
        many were accepted."""
        doc = read_json_checked(path)
        if not doc or doc.get("version") != QUEUE_SPOOL_VERSION:
            return 0
        restored = 0
        for entry in doc.get("jobs") or []:
            try:
                self.submit(JobSpec.from_dict(entry["spec"]))
                restored += 1
            except (QueueFullError, ValueError, KeyError, TypeError):
                continue  # a full queue or foreign entry drops the job
        try:
            os.unlink(path)
        except OSError:
            pass
        return restored

    # -- submission ------------------------------------------------------------

    def submit(self, spec: JobSpec,
               trace_id: Optional[str] = None) -> Job:
        """Queue a spec; dedups, serves from store, or rejects when full.

        ``trace_id`` (optional) adopts a caller-minted trace id -- the
        fleet gateway forwards its span's id over the HTTP hop so one
        trace covers gateway routing and node-side execution.
        """
        with self._cv:
            self.n_submitted += 1
            if telemetry.enabled():
                telemetry.jobs_submitted().inc()
            existing = self._jobs.get(spec.job_id)
            if existing is not None and existing.state != JobState.FAILED:
                existing.dedup_count += 1
                self.n_dedup += 1
                if telemetry.enabled():
                    telemetry.job_outcomes().labels(outcome="dedup").inc()
                return existing
            cached = self.store.get(spec.job_id)
            job = Job(spec)
            if trace_id:
                job.trace_id = trace_id
            if cached is not None:
                job.state = JobState.DONE
                job.result = cached
                job.from_store = True
                job.finished_at = time.time()
                self.n_store_hits += 1
                self.n_completed += 1
                self._register(job)
                if telemetry.enabled():
                    telemetry.job_outcomes().labels(outcome="store_hit").inc()
                telemetry.publish_for(job.id, "end", state=JobState.DONE,
                                      from_store=True)
                return job
            queued = sum(
                1 for j in self._jobs.values() if j.state == JobState.QUEUED
            )
            if queued >= self.queue_size:
                self.n_rejected += 1
                if telemetry.enabled():
                    telemetry.job_outcomes().labels(outcome="rejected").inc()
                reason = (
                    f"queue full ({queued}/{self.queue_size} jobs queued); "
                    f"retry after in-flight jobs drain"
                )
                rec = tracing.active()
                if rec is not None:
                    rec.instant("job.rejected", "service",
                                args={"id": spec.job_id[:12]})
                raise QueueFullError(reason)
            self._register(job)
            self._push(job)
            self._mark_queued(job)
            # Job ids are content hashes, so a fresh submission of a spec
            # an earlier scheduler ran still keys the old ring: reset it,
            # or event streams would replay the previous run first.
            telemetry.PROGRESS.forget(job.id)
            telemetry.publish_for(job.id, "state", state=JobState.QUEUED,
                                  trace_id=job.trace_id)
            self._cv.notify()
            return job

    def _mark_queued(self, job: Job) -> None:
        """Remember when a job entered the queue, for the queue-wait
        histogram and the ``queued`` span in the merged trace."""
        job.queued_mono = time.monotonic()
        rec = tracing.active()
        job.queued_ts_us = rec.now_us() if rec is not None else None

    def _register(self, job: Job) -> None:
        if job.id not in self._jobs:  # a FAILED job may be resubmitted
            self._order.append(job.id)
        self._jobs[job.id] = job

    def _push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.spec.priority, self._seq, job.id))
        self._seq += 1

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running/terminal jobs are not cancellable)."""
        with self._cv:
            job = self._jobs[job_id]
            if job.state != JobState.QUEUED:
                raise ValueError(f"job {job_id} is {job.state}, not cancellable")
            job.transition(JobState.CANCELLED)
            self.n_cancelled += 1
            return job

    # -- queries ---------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._cv:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._cv:
            return [self._jobs[i] for i in self._order]

    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until a job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while True:
                job = self._jobs[job_id]
                if job.terminal:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(f"job {job_id} still {job.state}")
                self._cv.wait(timeout=min(remaining, 0.5))

    def join(self, timeout: float = 120.0) -> None:
        """Block until every submitted job is terminal."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while any(not j.terminal for j in self._jobs.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("jobs still in flight")
                self._cv.wait(timeout=min(remaining, 0.5))

    def stats(self) -> Dict[str, object]:
        with self._cv:
            states: Dict[str, int] = {s: 0 for s in JobState.ALL}
            for j in self._jobs.values():
                states[j.state] += 1
            return {
                "mode": self.mode,
                "workers": self.workers,
                "queue_size": self.queue_size,
                "submitted": self.n_submitted,
                "deduplicated": self.n_dedup,
                "store_hits": self.n_store_hits,
                "rejected": self.n_rejected,
                "executed": self.n_executed,
                "retries": self.n_retries,
                "worker_crashes": self.n_crashes,
                "completed": self.n_completed,
                "failed": self.n_failed,
                "cancelled": self.n_cancelled,
                "resumed": self.n_resumed,
                "draining": self._draining,
                "states": states,
            }

    # -- execution -------------------------------------------------------------

    def _next_job(self) -> Optional[Job]:
        """Pop the highest-priority queued job (caller holds the lock)."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            if job.state == JobState.QUEUED:
                return job
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                # While draining, queued jobs stay queued (they get
                # spooled for the next process) and workers retire.
                job = None if self._draining else self._next_job()
                while job is None and not (self._stopping or self._draining):
                    self._cv.wait(timeout=0.2)
                    job = self._next_job()
                if job is None:  # stopping/draining and nothing popped
                    return
                job.transition(JobState.RUNNING)
                job.attempts += 1
                attempt = job.attempts
                self.n_executed += 1
                queued_mono, queued_ts = job.queued_mono, job.queued_ts_us
                job.queued_mono = job.queued_ts_us = None
            if telemetry.enabled() and queued_mono is not None:
                telemetry.queue_wait().observe(
                    time.monotonic() - queued_mono)
            rec = tracing.active()
            if rec is not None and queued_ts is not None:
                # Retroactive span covering the time spent queued, so
                # the merged trace shows submit -> queue -> attempt.
                rec.complete(f"queued {job.id[:12]}", "service", queued_ts,
                             rec.now_us() - queued_ts,
                             args={"trace": job.trace_id,
                                   "attempt": attempt})
            telemetry.publish_for(job.id, "state", state=JobState.RUNNING,
                                  attempt=attempt)
            self._run_attempt(job, attempt)

    def _run_attempt(self, job: Job, attempt: int) -> None:
        report: Optional[dict] = None
        t0 = time.perf_counter()
        try:
            with tracing.span(
                f"attempt {job.id[:12]}#{attempt}", "service",
                args={"kind": job.spec.kind, "mode": self.mode,
                      "trace": job.trace_id},
            ):
                if self.mode == "process":
                    result, report = self._execute_in_child(
                        job.spec, attempt, trace_id=job.trace_id)
                else:
                    try:
                        result = run_job(job.spec, registry=self.registry,
                                         attempt=attempt,
                                         checkpoint_dir=self.checkpoint_dir,
                                         store=self.store,
                                         trace_id=job.trace_id)
                    finally:
                        report = take_report()
        except Exception as exc:  # noqa: BLE001 - converted to job outcome
            if telemetry.enabled():
                telemetry.solve_latency().labels(kind=job.spec.kind).observe(
                    time.perf_counter() - t0)
            self._note_checkpoint(
                job, report or getattr(exc, "checkpoint_report", None))
            self._on_failure(job, attempt, exc)
            return
        if telemetry.enabled():
            telemetry.solve_latency().labels(kind=job.spec.kind).observe(
                time.perf_counter() - t0)
        if self.mode == "process" and result.get("kind") == "batch":
            # Replay the batch's per-point fan-out into this scheduler's
            # store: the child only shares root-backed stores, so this is
            # what covers in-memory stores (and is idempotent -- the docs
            # are the exact ones a root-backed child already wrote).
            for point in result.get("points") or []:
                if not point.get("from_store") and point.get("result"):
                    self.store.put(point["id"], point["result"])
        with tracing.span(f"store {job.id[:12]}", "service",
                          args={"trace": job.trace_id}):
            self.store.put(job.id, result)
        with self._cv:
            job.result = result
            job.transition(JobState.DONE)
            self.n_completed += 1
            self._note_checkpoint_locked(job, report)
            self._cv.notify_all()
        if telemetry.enabled():
            telemetry.job_outcomes().labels(outcome="done").inc()
            # Pull any events a forked worker wrote before the terminal
            # event, so readers that stop on "end" see the whole stream.
            telemetry.PROGRESS.sync_job(job.id)
        telemetry.publish_for(job.id, "end", state=JobState.DONE,
                              attempts=attempt,
                              resumed_from=job.resumed_from)

    def _note_checkpoint(self, job: Job, report: Optional[dict]) -> None:
        with self._cv:
            self._note_checkpoint_locked(job, report)

    def _note_checkpoint_locked(self, job: Job, report: Optional[dict]) -> None:
        """Record an attempt's checkpoint provenance on the Job (caller
        holds the lock)."""
        if not report:
            return
        job.checkpoint = report
        if report.get("resumed_from") is not None:
            job.resumed_from = report["resumed_from"]
            self.n_resumed += 1

    def _execute_in_child(self, spec: JobSpec, attempt: int,
                          trace_id: Optional[str] = None):
        import multiprocessing as mp

        assert self._spool_dir is not None
        out_path = os.path.join(
            self._spool_dir, f"{spec.job_id}.{attempt}.{os.getpid()}.json"
        )
        rec = tracing.active()
        ctx = mp.get_context("fork")
        proc = ctx.Process(
            target=_child_entry,
            args=(spec.to_dict(), attempt, self.registry.root, out_path,
                  self.checkpoint_dir, self.store.root, trace_id,
                  rec is not None, telemetry.enabled(), self._events_dir),
        )
        proc.start()
        proc.join(timeout=spec.timeout_s)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            raise WorkerCrash(f"worker timed out after {spec.timeout_s}s")
        payload = read_json(out_path)
        try:
            os.unlink(out_path)
        except OSError:
            pass
        if payload is None:
            raise WorkerCrash(
                f"worker died mid-job (exit code {proc.exitcode}, no result)"
            )
        self.registry.merge_counters(payload.get("registry_counters") or {})
        RESILIENCE_COUNTERS.merge(payload.get("resilience_counters") or {})
        if telemetry.enabled() and payload.get("metrics"):
            telemetry.METRICS.merge_snapshot(payload["metrics"])
        if rec is not None and payload.get("trace"):
            # Fold the worker's private recorder into this one: the
            # merged Chrome trace shows the forked solve on its own
            # process lane, re-based onto the parent timeline.
            rec.merge_child(payload["trace"],
                            label=f"worker {spec.job_id[:12]}#{attempt}")
        report = payload.get("checkpoint")
        if not payload.get("ok"):
            # Rehydrate the typed error so retryability survives the
            # process boundary (a diverged solve must not burn retries).
            exc = error_from_kind(payload.get("error_kind"),
                                  payload.get("error") or "job failed in worker")
            exc.checkpoint_report = report
            raise exc
        return payload["result"], report

    def _on_failure(self, job: Job, attempt: int, exc: Exception) -> None:
        # A dead rank process is a crash like a dead worker: the retry
        # resumes the surviving ranks' checkpoints through the marker.
        crashed = isinstance(exc, (WorkerCrash, RankCrash))
        retryable = attempt <= job.spec.max_retries
        if isinstance(exc, ReproError) and not exc.retryable:
            # Deterministic failures (diverged solve, checkpoint token
            # mismatch) reproduce on every attempt -- fail fast instead
            # of burning the retry budget.
            retryable = False
        rec = tracing.active()
        if rec is not None:
            rec.instant("job.crash" if crashed else "job.error", "service",
                        args={"id": job.id[:12], "attempt": attempt,
                              "retry": retryable})
        with self._cv:
            job.error_kind = type(exc).__name__
        if retryable:
            # Exponential backoff before the requeue; sleeping outside the
            # lock keeps the other workers dispatching.
            time.sleep(self.retry_base_s * (2 ** (attempt - 1)))
        with self._cv:
            if crashed:
                self.n_crashes += 1
            if retryable:
                self.n_retries += 1
                job.error = f"attempt {attempt}: {exc}"
                job.transition(JobState.QUEUED)
                self._push(job)
                self._mark_queued(job)
                self._cv.notify()
            else:
                if isinstance(exc, ReproError) and not exc.retryable:
                    why = "not retryable"
                else:
                    why = f"retry budget {job.spec.max_retries} exhausted"
                job.error = f"attempt {attempt}: {exc} ({why})"
                job.transition(JobState.FAILED)
                self.n_failed += 1
                self._cv.notify_all()
        if retryable:
            telemetry.publish_for(job.id, "state", state=JobState.QUEUED,
                                  requeued=True, attempt=attempt,
                                  crashed=crashed, error=str(exc))
        else:
            if telemetry.enabled():
                telemetry.job_outcomes().labels(outcome="failed").inc()
                telemetry.PROGRESS.sync_job(job.id)
            telemetry.publish_for(job.id, "end", state=JobState.FAILED,
                                  attempts=attempt, error=job.error)
