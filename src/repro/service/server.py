"""Stdlib HTTP serving layer for the solve service.

A ``ThreadingHTTPServer`` JSON API over a :class:`~repro.service.
scheduler.Scheduler` -- no dependencies beyond the standard library:

========  ====================  =========================================
Method    Path                  Meaning
========  ====================  =========================================
POST      ``/jobs``             submit a JobSpec (JSON body); 202 with
                                the job record, 400 on an invalid spec,
                                503 + reason under backpressure
GET       ``/jobs``             list submitted jobs (summaries)
GET       ``/jobs/<id>``        one job, including its result when done
DELETE    ``/jobs/<id>``        cancel a queued job (409 if not queued)
GET       ``/metrics``          scheduler + registry + store + substrate
                                + resilience counters (the observability
                                rollup)
GET       ``/registry``         persistent plan-registry listing
GET       ``/healthz``          liveness probe: ``ok``, ``draining``,
                                ``queue_depth``, ``running``,
                                ``checkpoint_lag_s``
========  ====================  =========================================

Typed failures (:class:`~repro.resilience.errors.ReproError`) escaping a
handler map to their ``http_status`` with the error's JSON ``payload()``
as the body, so a diverged solve reads as 422, an unavailable engine as
503, a checkpoint token mismatch as 409 -- uniformly, without each
route hand-rolling status codes.

``make_server(scheduler, host, port)`` binds (port 0 picks an ephemeral
port -- used by tests and the CI smoke job) and returns the server; the
caller drives ``serve_forever``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..resilience import faults
from ..resilience.checkpoint import latest_lag_s
from ..resilience.errors import RESILIENCE_COUNTERS, ReproError
from .jobs import JobSpec
from .scheduler import QueueFullError, Scheduler

__all__ = ["ServiceServer", "make_server"]


class ServiceServer(ThreadingHTTPServer):
    """HTTP server carrying its scheduler (handlers reach it via
    ``self.server.scheduler``)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, addr: Tuple[str, int], scheduler: Scheduler):
        super().__init__(addr, _Handler)
        self.scheduler = scheduler
        #: Flipped by the graceful-shutdown path (``repro serve`` on
        #: SIGTERM/SIGINT) so ``/healthz`` reports the drain.
        self.draining = False


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default; tracing covers it
        pass

    def _send(self, code: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw)

    @property
    def _sched(self) -> Scheduler:
        return self.server.scheduler

    def _job_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1]
        return None

    def _guard(self, handler) -> None:
        """Run a route with the uniform failure mapping: any
        :class:`ReproError` becomes its ``http_status`` + ``payload()``
        (the graceful-degradation chain's HTTP face)."""
        try:
            faults.hit("http.request")
            handler()
        except ReproError as exc:
            self._send(exc.http_status, exc.payload())

    # -- routes ----------------------------------------------------------------

    def do_POST(self) -> None:
        self._guard(self._post)

    def do_GET(self) -> None:
        self._guard(self._get)

    def do_DELETE(self) -> None:
        self._guard(self._delete)

    def _post(self) -> None:
        if self.path.split("?")[0] != "/jobs":
            self._send(404, {"error": f"no such endpoint: POST {self.path}"})
            return
        try:
            spec = JobSpec.from_dict(self._read_body())
        except (ValueError, TypeError) as exc:
            self._send(400, {"error": f"invalid job spec: {exc}"})
            return
        try:
            job = self._sched.submit(spec)
        except QueueFullError as exc:
            self._send(503, {"error": exc.reason, "rejected": True})
            return
        self._send(202, job.to_dict(include_result=False))

    def _get(self) -> None:
        path = self.path.split("?")[0]
        job_id = self._job_path_id()
        if job_id is not None:
            job = self._sched.get(job_id)
            if job is None:
                self._send(404, {"error": f"unknown job {job_id}"})
            else:
                self._send(200, job.to_dict())
            return
        if path == "/jobs":
            self._send(200, {
                "jobs": [j.to_dict(include_result=False)
                         for j in self._sched.jobs()],
            })
        elif path == "/metrics":
            from ..machine.counters import SUBSTRATE_COUNTERS

            self._send(200, {
                "scheduler": self._sched.stats(),
                "registry": self._sched.registry.counters(),
                "store": self._sched.store.counters(),
                "substrate": SUBSTRATE_COUNTERS.snapshot(),
                "resilience": {
                    "counters": RESILIENCE_COUNTERS.snapshot(),
                    "faults": faults.fired_summary(),
                },
            })
        elif path == "/registry":
            self._send(200, {"plans": self._sched.registry.entries()})
        elif path == "/healthz":
            draining = self.server.draining or self._sched.draining
            self._send(200, {
                "ok": True,
                "draining": draining,
                "queue_depth": self._sched.queue_depth(),
                "running": self._sched.running_count(),
                "checkpoint_lag_s": latest_lag_s(self._sched.checkpoint_dir),
            })
        else:
            self._send(404, {"error": f"no such endpoint: GET {path}"})

    def _delete(self) -> None:
        job_id = self._job_path_id()
        if job_id is None:
            self._send(404, {"error": f"no such endpoint: DELETE {self.path}"})
            return
        job = self._sched.get(job_id)
        if job is None:
            self._send(404, {"error": f"unknown job {job_id}"})
            return
        try:
            self._sched.cancel(job_id)
        except ValueError as exc:
            self._send(409, {"error": str(exc)})
            return
        self._send(200, job.to_dict(include_result=False))


def make_server(scheduler: Scheduler, host: str = "127.0.0.1",
                port: int = 0) -> ServiceServer:
    """Bind the JSON API (port 0 = ephemeral; read ``server_port``)."""
    return ServiceServer((host, port), scheduler)
