"""Stdlib HTTP serving layer for the solve service.

A ``ThreadingHTTPServer`` JSON API over a :class:`~repro.service.
scheduler.Scheduler` -- no dependencies beyond the standard library:

========  ======================  =========================================
Method    Path                    Meaning
========  ======================  =========================================
POST      ``/jobs``               submit a JobSpec (JSON body); 202 with
                                  the job record, 400 on an invalid spec,
                                  503 + ``Retry-After`` under backpressure
GET       ``/jobs``               list submitted jobs (summaries)
GET       ``/jobs/<id>``          one job, including its result when done;
                                  a job this process never ran but whose
                                  result is in the persistent store (a
                                  pre-reboot commit, or a replicated copy)
                                  answers as a synthesized ``done``
                                  document served from the store
PUT       ``/results/<id>``       accept a replicated result document
                                  (requires the ``X-Repro-Replicate``
                                  header; idempotent -- an existing
                                  document wins)
GET       ``/jobs/<id>/events``   live progress stream: one JSON event per
                                  line, chunked transfer, ends on the
                                  job's terminal event (``repro tail``)
DELETE    ``/jobs/<id>``          cancel a queued job (409 if not queued)
GET       ``/metrics``            Prometheus text exposition (format
                                  0.0.4) of the telemetry registry;
                                  ``?format=json`` returns the legacy
                                  JSON rollup plus a telemetry snapshot
GET       ``/registry``           persistent plan-registry listing
GET       ``/healthz``            liveness probe: ``ok``, ``draining``,
                                  ``queue_depth``, ``running``,
                                  ``checkpoint_lag_s``, plus the stable
                                  ``node_id`` and last-seen
                                  ``shard_version`` (fleet membership)
========  ======================  =========================================

Fleet plumbing: every response carries an ``X-Repro-Node`` header with
the node's stable identity; a gateway's ``X-Repro-Shard-Version``
request header is remembered and echoed through ``/healthz`` so the
gateway (and ``repro top``) can spot stale or split-brain nodes, and an
``X-Repro-Trace-Id`` header on submits threads the gateway's trace id
into the job so one trace spans the HTTP hop.

Each accepted connection gets a per-request socket timeout
(``REPRO_HTTP_TIMEOUT``, default 30s) and the listen backlog is bounded,
so a stalled or malicious client can neither wedge a handler thread
forever nor queue unbounded connections.

Typed failures (:class:`~repro.resilience.errors.ReproError`) escaping a
handler map to their ``http_status`` with the error's JSON ``payload()``
as the body, so a diverged solve reads as 422, an unavailable engine as
503, a checkpoint token mismatch as 409 -- uniformly, without each
route hand-rolling status codes.

``make_server(scheduler, host, port)`` binds (port 0 picks an ephemeral
port -- used by tests and the CI smoke job) and returns the server; the
caller drives ``serve_forever``.
"""

from __future__ import annotations

import json
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import uuid

from .. import config, telemetry
from ..resilience import faults
from ..resilience.checkpoint import latest_lag_s
from ..resilience.errors import RESILIENCE_COUNTERS, ReproError
from .jobs import JobSpec
from .scheduler import QueueFullError, Scheduler

__all__ = ["ServiceServer", "make_server"]

#: The event stream gives up after this long with no new events (the job
#: is live but silent -- a solver between convergence checks).
EVENTS_IDLE_TIMEOUT_S = 60.0

#: Retry-After hint on backpressure 503s: a queue slot usually frees up
#: within a couple of seconds on the workloads this service runs.
BACKPRESSURE_RETRY_AFTER_S = 2


class ServiceServer(ThreadingHTTPServer):
    """HTTP server carrying its scheduler (handlers reach it via
    ``self.server.scheduler``)."""

    daemon_threads = True
    allow_reuse_address = True
    #: Bounded listen backlog: beyond this many un-accepted connections
    #: the kernel refuses, instead of queueing clients without limit.
    request_queue_size = 32

    def __init__(self, addr: Tuple[str, int], scheduler: Scheduler,
                 node_id: Optional[str] = None):
        super().__init__(addr, _Handler)
        self.scheduler = scheduler
        #: Flipped by the graceful-shutdown path (``repro serve`` on
        #: SIGTERM/SIGINT) so ``/healthz`` reports the drain.
        self.draining = False
        #: Stable identity of this node (``REPRO_NODE_ID`` or random):
        #: reported by ``/healthz`` and every ``X-Repro-Node`` header so
        #: a gateway can tell a restarted process from a live one.
        self.node_id = node_id or config.node_id() or uuid.uuid4().hex[:12]
        #: Last shard-map version a gateway announced to us (``None``
        #: until a gateway speaks); echoed through ``/healthz``.
        self.shard_version: Optional[int] = None
        #: Per-request socket timeout: a client that stops reading or
        #: writing is disconnected after this many idle seconds.
        self.request_timeout = config.http_timeout()


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def setup(self) -> None:
        # Per-request socket timeout *before* the stream wrappers exist:
        # ``StreamRequestHandler.setup`` applies ``self.timeout`` to the
        # connection, and ``handle_one_request`` treats a timed-out read
        # as end-of-connection -- a stalled client frees its thread.
        self.timeout = self.server.request_timeout
        super().setup()

    def log_message(self, fmt, *args):  # quiet by default; tracing covers it
        pass

    def _node_headers(self) -> None:
        """Identity headers on every response (fleet membership probes)."""
        self.send_header("X-Repro-Node", self.server.node_id)
        if self.server.shard_version is not None:
            self.send_header("X-Repro-Shard-Version",
                             str(self.server.shard_version))

    def _send(self, code: int, payload,
              headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self._node_headers()
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw)

    @property
    def _sched(self) -> Scheduler:
        return self.server.scheduler

    def _job_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1]
        return None

    def _events_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            return parts[1]
        return None

    def _query(self) -> dict:
        return urllib.parse.parse_qs(
            urllib.parse.urlsplit(self.path).query)

    def _guard(self, handler) -> None:
        """Run a route with the uniform failure mapping: any
        :class:`ReproError` becomes its ``http_status`` + ``payload()``
        (the graceful-degradation chain's HTTP face)."""
        try:
            announced = self.headers.get("X-Repro-Shard-Version")
            if announced is not None:
                try:
                    self.server.shard_version = int(announced)
                except ValueError:
                    pass  # a malformed header never breaks the request
            faults.hit("http.request")
            handler()
        except ReproError as exc:
            self._send(exc.http_status, exc.payload())

    # -- routes ----------------------------------------------------------------

    def do_POST(self) -> None:
        self._guard(self._post)

    def do_GET(self) -> None:
        self._guard(self._get)

    def do_DELETE(self) -> None:
        self._guard(self._delete)

    def do_PUT(self) -> None:
        self._guard(self._put)

    def _post(self) -> None:
        if self.path.split("?")[0] != "/jobs":
            self._send(404, {"error": f"no such endpoint: POST {self.path}"})
            return
        try:
            spec = JobSpec.from_dict(self._read_body())
        except (ValueError, TypeError) as exc:
            self._send(400, {"error": f"invalid job spec: {exc}"})
            return
        try:
            job = self._sched.submit(
                spec, trace_id=self.headers.get("X-Repro-Trace-Id") or None)
        except QueueFullError as exc:
            self._send(503, {"error": exc.reason, "rejected": True},
                       headers={"Retry-After":
                                str(BACKPRESSURE_RETRY_AFTER_S)})
            return
        self._send(202, job.to_dict(include_result=False))

    def _result_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "results":
            return parts[1]
        return None

    def _put(self) -> None:
        """``PUT /results/<id>``: accept a replicated result document.

        Gated on the ``X-Repro-Replicate`` header so a stray PUT cannot
        quietly seed the store.  Idempotent: an existing document (this
        node computed it, or an earlier replication landed it) wins --
        ids are content hashes, so the bytes are identical either way.
        """
        job_id = self._result_path_id()
        if job_id is None:
            self._send(404, {"error": f"no such endpoint: PUT {self.path}"})
            return
        if not self.headers.get("X-Repro-Replicate"):
            self._send(403, {"error": "replica writes require the "
                                      "X-Repro-Replicate header"})
            return
        try:
            body = self._read_body()
            result = body["result"]
        except (ValueError, TypeError, KeyError) as exc:
            self._send(400, {"error": f"invalid replica document: {exc}"})
            return
        stored = self._sched.store.put_replica(
            job_id, result, replicated_from=body.get("node") or None)
        self._send(200, {"id": job_id, "stored": stored,
                         "dedup": not stored})

    def _get(self) -> None:
        path = self.path.split("?")[0]
        events_id = self._events_path_id()
        if events_id is not None:
            self._stream_events(events_id)
            return
        job_id = self._job_path_id()
        if job_id is not None:
            job = self._sched.get(job_id)
            if job is None:
                doc = self._store_fallback(job_id)
                if doc is None:
                    self._send(404, {"error": f"unknown job {job_id}"})
                else:
                    self._send(200, doc)
            else:
                self._send(200, job.to_dict())
            return
        if path == "/jobs":
            self._send(200, {
                "jobs": [j.to_dict(include_result=False)
                         for j in self._sched.jobs()],
            })
        elif path == "/metrics":
            if (self._query().get("format") or [""])[0] == "json":
                self._send(200, self._metrics_json())
            else:
                body = telemetry.METRICS.render().encode()
                self.send_response(200)
                self.send_header("Content-Type",
                                 telemetry.PROMETHEUS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self._node_headers()
                self.end_headers()
                self.wfile.write(body)
        elif path == "/registry":
            self._send(200, {"plans": self._sched.registry.entries()})
        elif path == "/healthz":
            draining = self.server.draining or self._sched.draining
            self._send(200, {
                "ok": True,
                "draining": draining,
                "queue_depth": self._sched.queue_depth(),
                "running": self._sched.running_count(),
                "checkpoint_lag_s": latest_lag_s(self._sched.checkpoint_dir),
                "node_id": self.server.node_id,
                "shard_version": self.server.shard_version,
            })
        else:
            self._send(404, {"error": f"no such endpoint: GET {path}"})

    def _store_fallback(self, job_id: str) -> Optional[dict]:
        """A job this process never ran, served from the persistent
        store: the warm-reboot and replica-promotion read path.  The
        ``result`` payload is the stored bytes verbatim; only the
        envelope is synthesized (``from_store`` marks it, provenance
        rides alongside)."""
        stored = self._sched.store.get_doc(job_id)
        if stored is None:
            return None
        doc = {
            "id": job_id,
            "state": "done",
            "from_store": True,
            "attempts": 0,
            "dedup_count": 0,
            "error": None,
            "result": stored["result"],
        }
        if stored.get("node"):
            doc["computed_by"] = stored["node"]
        if stored.get("replicated_from"):
            doc["replicated_from"] = stored["replicated_from"]
        return doc

    def _metrics_json(self) -> dict:
        """The legacy JSON rollup (every subsystem's native counters)
        plus a flat snapshot of the telemetry registry."""
        from ..machine.counters import SUBSTRATE_COUNTERS

        return {
            "scheduler": self._sched.stats(),
            "registry": self._sched.registry.counters(),
            "store": self._sched.store.counters(),
            "substrate": SUBSTRATE_COUNTERS.snapshot(),
            "resilience": {
                "counters": RESILIENCE_COUNTERS.snapshot(),
                "faults": faults.fired_summary(),
            },
            "telemetry": telemetry.METRICS.snapshot(),
        }

    # -- live progress streaming -----------------------------------------------

    def _write_chunk(self, data: bytes) -> None:
        """One HTTP/1.1 chunk (an empty chunk terminates the stream)."""
        self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()

    def _write_event(self, event: dict) -> None:
        self._write_chunk(json.dumps(event, sort_keys=True).encode() + b"\n")

    def _stream_events(self, job_id: str) -> None:
        """Chunked NDJSON stream of a job's progress events; follows the
        ring (and any forked worker's event file) until the terminal
        ``end`` event, then closes."""
        if not telemetry.enabled():
            self._send(503, {"error": "telemetry is disabled "
                                      "(REPRO_TELEMETRY=0)"})
            return
        job = self._sched.get(job_id)
        if job is None:
            self._send(404, {"error": f"unknown job {job_id}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self._node_headers()
        self.end_headers()
        hub = telemetry.PROGRESS
        cursor = -1
        deadline = time.monotonic() + EVENTS_IDLE_TIMEOUT_S
        try:
            while True:
                events, cursor, missed = hub.events_since(job_id, cursor)
                if missed:
                    self._write_event({"kind": "gap", "missed": missed})
                ended = False
                for ev in events:
                    self._write_event(ev)
                    ended = ended or ev.get("kind") == "end"
                if ended:
                    break
                if events:
                    deadline = time.monotonic() + EVENTS_IDLE_TIMEOUT_S
                    continue
                job = self._sched.get(job_id)
                if job is not None and job.terminal:
                    # Drain stragglers (a forked worker's last lines),
                    # then synthesize the terminal event if none came.
                    events, cursor, _ = hub.events_since(job_id, cursor)
                    for ev in events:
                        self._write_event(ev)
                        ended = ended or ev.get("kind") == "end"
                    if not ended:
                        self._write_event({"kind": "end", "state": job.state,
                                           "synthetic": True})
                    break
                if time.monotonic() > deadline:
                    self._write_event({"kind": "timeout",
                                       "idle_s": EVENTS_IDLE_TIMEOUT_S})
                    break
                time.sleep(0.05)
            self._write_chunk(b"")
        except (BrokenPipeError, ConnectionResetError, TimeoutError, OSError):
            pass  # reader went away or stalled out; nothing to clean up

    def _delete(self) -> None:
        job_id = self._job_path_id()
        if job_id is None:
            self._send(404, {"error": f"no such endpoint: DELETE {self.path}"})
            return
        job = self._sched.get(job_id)
        if job is None:
            self._send(404, {"error": f"unknown job {job_id}"})
            return
        try:
            self._sched.cancel(job_id)
        except ValueError as exc:
            self._send(409, {"error": str(exc)})
            return
        self._send(200, job.to_dict(include_result=False))


def make_server(scheduler: Scheduler, host: str = "127.0.0.1",
                port: int = 0,
                node_id: Optional[str] = None) -> ServiceServer:
    """Bind the JSON API (port 0 = ephemeral; read ``server_port``)."""
    return ServiceServer((host, port), scheduler, node_id=node_id)
