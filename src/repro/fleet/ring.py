"""Consistent-hash ring assigning content-addressed keys to nodes.

The fleet shards the plan registry and result store by the *job id* --
already a SHA-256 content hash of a spec's computational fields -- so
placement needs no extra bookkeeping: hashing the id onto a ring of
virtual nodes gives every key a deterministic home node plus a replica,
and adding or removing one node moves only ``~1/N`` of the key space
(the classic consistent-hashing property, which is what keeps node-local
plan registries and result stores warm across membership changes).

The ring is deliberately tiny and immutable: membership changes build a
new ring (the :class:`~repro.fleet.nodes.NodeRegistry` versions each
rebuild as a shard-map bump).  Keys and member names are opaque strings;
the fleet uses node base URLs as members because they are stable before
a node's ``node_id`` has been learned from its first heartbeat.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence, Tuple

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per member: enough to keep the keyspace split within a
#: few percent of even for single-digit fleets, small enough that ring
#: construction stays microseconds.
DEFAULT_VNODES = 64


def _point(data: str) -> int:
    """A ring position in [0, 2^64): the first 8 bytes of SHA-256."""
    return int.from_bytes(
        hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over a set of member names."""

    def __init__(self, members: Iterable[str], vnodes: int = DEFAULT_VNODES):
        self.members: Tuple[str, ...] = tuple(dict.fromkeys(members))
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for member in self.members:
            for i in range(vnodes):
                points.append((_point(f"{member}#{i}"), member))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [m for _, m in points]

    def __len__(self) -> int:
        return len(self.members)

    def owners(self, key: str, n: int = 2) -> Tuple[str, ...]:
        """The first ``n`` distinct members clockwise of ``key``.

        ``owners(key)[0]`` is the home node, the rest are replicas in
        preference order.  With fewer than ``n`` members every member is
        returned (a 1-node fleet simply has no replica).
        """
        if not self.members:
            return ()
        n = min(n, len(self.members))
        start = bisect.bisect_right(self._points, _point(key))
        out: List[str] = []
        for i in range(len(self._owners)):
            member = self._owners[(start + i) % len(self._owners)]
            if member not in out:
                out.append(member)
                if len(out) == n:
                    break
        return tuple(out)

    def home(self, key: str) -> str:
        """The home member of ``key`` (ring must be non-empty)."""
        owners = self.owners(key, n=1)
        if not owners:
            raise ValueError("hash ring has no members")
        return owners[0]

    def assignment_counts(self, keys: Sequence[str]) -> dict:
        """member -> how many of ``keys`` it homes (balance probes)."""
        counts = {m: 0 for m in self.members}
        for key in keys:
            counts[self.home(key)] += 1
        return counts
