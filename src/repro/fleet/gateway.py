"""The fleet gateway: one HTTP front door over N ``repro serve`` nodes.

Clients speak the exact single-node JSON API to the gateway; the gateway
routes each request to the node that owns the job's content hash (home
first, replica on node death -- :mod:`repro.fleet.router`) and the
answer comes back verbatim, so **a result fetched through the gateway is
bit-identical to a direct single-node run** (the gateway annotates job
*envelopes* with routing provenance, never the ``result`` payload).

========  ======================  =========================================
Method    Path                    Meaning
========  ======================  =========================================
POST      ``/jobs``               route a submit to the owning node; a
                                  batch whose points span shards is
                                  scattered as per-shard sub-batches
GET       ``/jobs``               scatter-gather job listings of every
                                  live node
GET       ``/jobs/<id>``          routed lookup (tries the replica on 404
                                  after a failover; resubmits a job the
                                  gateway saw if its home died holding it)
GET       ``/jobs/<id>/events``   proxied NDJSON progress stream
DELETE    ``/jobs/<id>``          routed cancel
GET       ``/metrics``            the gateway's own ``repro_fleet_*``
                                  series (Prometheus text);
                                  ``?format=json`` adds every node's JSON
                                  rollup under ``nodes``
GET       ``/healthz``            fleet health: per-node liveness,
                                  ``node_id``, staleness/split-brain
                                  flags and the shard-map version
GET       ``/fleet``              the versioned shard map itself
========  ======================  =========================================

Failure contract: connection-dead nodes fail over to the replica (and
are marked dead, bumping the shard-map version); when home *and* replica
are gone the request answers **503** with a ``Retry-After`` hint and a
``NodeUnavailable`` payload.  HTTP-level node answers (backpressure 503,
validation 400, cancel 409) pass through untouched.

Admission control (:mod:`repro.fleet.admission`): every submit draws one
token from its tenant's bucket (the ``X-Repro-Api-Key`` header; absent
keys share the anonymous bucket).  An empty bucket answers **429** with
a ``Retry-After`` sized to the refill time, while other tenants on the
same fleet proceed untouched.  Failover hops and loss-resubmissions draw
from one global :class:`~repro.fleet.admission.RetryBudget`, so a
flapping node cannot amplify load without bound -- past the budget the
gateway answers 503 instead of hammering the survivors.  Both default
off (``REPRO_FLEET_QUOTA`` / ``REPRO_FLEET_RETRY_BUDGET``).

Write replication: when a poll through the gateway first sees a job
``done``, the gateway pushes the result document to the job's other ring
owners (``PUT /results/<id>`` with ``X-Repro-Replicate``), so a later
death of the computing node leaves a warm copy the replica serves from
its own store -- failover reads become store hits, bit-identical, no
recompute.  Replication is best-effort, idempotent (content-addressed
ids; an existing document wins) and observable as
``repro_fleet_replications_total`` by outcome.

Exactly-once results: job ids are content hashes and every node's store
dedups on them, so no matter how many times a spec is submitted or
failed over, there is one result document per unique spec -- and it is
the same bytes on whichever node computed it (``run_job`` is
deterministic).  The gateway keeps a bounded cache of specs it has
routed so a job lost with its node (in-memory store, no replica copy)
is transparently *resubmitted* to a surviving owner when polled.

Tracing: each forwarded submit runs in a gateway span whose fresh trace
id crosses the HTTP hop as ``X-Repro-Trace-Id``; the node adopts it for
the job, so one trace covers routing and execution.
"""

from __future__ import annotations

import collections
import json
import math
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .. import config, telemetry
from ..core import tracing
from ..resilience import faults
from ..resilience.errors import NodeUnavailable, QuotaExceeded, ReproError
from ..service.jobs import JobSpec
from .admission import ANONYMOUS_TENANT, TENANT_HEADER, RetryBudget, \
    TenantQuotas
from .nodes import ALIVE, NodeRegistry
from .router import Router, http_request

__all__ = ["FleetServer", "make_gateway", "RETRY_AFTER_S"]

#: Retry-After hint on 503s: one heartbeat is enough to revive a node.
RETRY_AFTER_S = 2


class FleetServer(ThreadingHTTPServer):
    """The gateway HTTP server; handlers reach the fleet via
    ``self.server``."""

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 32

    def __init__(self, addr: Tuple[str, int], registry: NodeRegistry,
                 node_timeout_s: float = 60.0,
                 quota: Optional[float] = None,
                 quota_burst: Optional[float] = None,
                 retry_budget: Optional[float] = None,
                 spec_cache_size: Optional[int] = None):
        super().__init__(addr, _GatewayHandler)
        self.registry = registry
        self.quotas = TenantQuotas(
            config.fleet_quota() if quota is None else quota,
            config.fleet_quota_burst() if quota_burst is None else quota_burst)
        self.retry_budget = RetryBudget(
            config.fleet_retry_budget() if retry_budget is None
            else retry_budget)
        self.router = Router(registry, timeout_s=node_timeout_s,
                             budget=self.retry_budget)
        self.node_timeout_s = node_timeout_s
        self.request_timeout = config.http_timeout()
        self.spec_cache_size = max(1, (
            config.fleet_spec_cache() if spec_cache_size is None
            else int(spec_cache_size)))
        self._lock = threading.Lock()
        #: job id -> spec dict of submits this gateway routed, so a job
        #: that died with its node can be resubmitted to a replica
        #: (LRU-bounded at ``spec_cache_size``; evictions are counted).
        self.spec_cache: "collections.OrderedDict[str, dict]" = \
            collections.OrderedDict()
        #: batch id -> scatter record for batches split across shards.
        self.scatter: Dict[str, dict] = {}
        #: job ids whose results this gateway already replicated to every
        #: live co-owner (LRU-bounded alongside the spec cache).
        self._replicated: "collections.OrderedDict[str, None]" = \
            collections.OrderedDict()

    # -- shared state helpers (handler threads) --------------------------------

    def remember_spec(self, job_id: str, spec_dict: dict) -> None:
        with self._lock:
            self.spec_cache[job_id] = spec_dict
            self.spec_cache.move_to_end(job_id)
            evicted = 0
            while len(self.spec_cache) > self.spec_cache_size:
                self.spec_cache.popitem(last=False)
                evicted += 1
        if evicted and telemetry.enabled():
            telemetry.fleet_spec_cache_evictions().inc(evicted)

    def recall_spec(self, job_id: str) -> Optional[dict]:
        with self._lock:
            spec = self.spec_cache.get(job_id)
            if spec is not None:
                # True LRU: a recalled spec is a *live* job the gateway
                # may yet have to resubmit -- keep it over cold entries.
                self.spec_cache.move_to_end(job_id)
            return spec

    def forget_spec(self, job_id: str) -> None:
        with self._lock:
            self.spec_cache.pop(job_id, None)

    def remember_scatter(self, batch_id: str, record: dict) -> None:
        with self._lock:
            self.scatter[batch_id] = record

    def recall_scatter(self, batch_id: str) -> Optional[dict]:
        with self._lock:
            return self.scatter.get(batch_id)

    # -- write replication -----------------------------------------------------

    def maybe_replicate(self, job_id: str, result: dict,
                        from_url: str) -> None:
        """Push a completed result to the job's other live ring owners.

        Best-effort and idempotent: the replica's ``put_replica`` keeps
        any document it already holds (results are content-addressed, so
        the bytes match either way), and a failed push just leaves the
        job eligible for another attempt on the next done-poll.  The
        ``fleet.replicate`` fault site covers each push; a ``corrupt``
        kind drops the push on the floor (a garbled copy the replica's
        checksum would refuse anyway).
        """
        with self._lock:
            if job_id in self._replicated:
                return
        smap = self.registry.shard_map()
        states = {n["url"]: n["state"] for n in smap.nodes}
        targets = [u for u in smap.owners(job_id)
                   if u != from_url and states.get(u) == ALIVE]
        if not targets:
            return
        all_ok = True
        for target in targets:
            outcome = "ok"
            try:
                if faults.hit("fleet.replicate") == "corrupt":
                    raise OSError("injected: replication payload lost")
                status, body, _ = http_request(
                    "PUT", f"{target}/results/{job_id}",
                    payload={"result": result, "node": from_url},
                    headers={"X-Repro-Replicate": "1",
                             "X-Repro-Shard-Version":
                                 str(self.registry.version)},
                    timeout=self.node_timeout_s)
                if status != 200:
                    outcome = "error"
                elif body.get("dedup"):
                    outcome = "dedup"
            except Exception:  # noqa: BLE001 - replication is best-effort
                outcome = "error"
            if outcome == "error":
                all_ok = False
            if telemetry.enabled():
                telemetry.fleet_replications().labels(outcome=outcome).inc()
        if all_ok:
            with self._lock:
                self._replicated[job_id] = None
                self._replicated.move_to_end(job_id)
                while len(self._replicated) > self.spec_cache_size:
                    self._replicated.popitem(last=False)


class _GatewayHandler(BaseHTTPRequestHandler):
    server: FleetServer
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def setup(self) -> None:
        self.timeout = self.server.request_timeout
        super().setup()

    def log_message(self, fmt, *args):
        pass

    def _send(self, code: int, payload,
              headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Gateway", "1")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw)

    def _query(self) -> dict:
        return urllib.parse.parse_qs(urllib.parse.urlsplit(self.path).query)

    def _job_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1]
        return None

    def _events_path_id(self) -> Optional[str]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            return parts[1]
        return None

    @property
    def _router(self) -> Router:
        return self.server.router

    @property
    def _registry(self) -> NodeRegistry:
        return self.server.registry

    def _count(self, route: str, outcome) -> None:
        if telemetry.enabled():
            telemetry.fleet_requests().labels(
                route=route, outcome=str(outcome)).inc()

    def _guard(self, handler) -> None:
        try:
            handler()
        except QuotaExceeded as exc:
            retry_after = math.ceil(
                float(exc.details.get("retry_after_s") or 0) or 1)
            self._send(exc.http_status, exc.payload(),
                       headers={"Retry-After": str(max(1, retry_after))})
        except NodeUnavailable as exc:
            self._send(exc.http_status, exc.payload(),
                       headers={"Retry-After": str(RETRY_AFTER_S)})
        except ReproError as exc:
            self._send(exc.http_status, exc.payload())

    def do_POST(self) -> None:
        self._guard(self._post)

    def do_GET(self) -> None:
        self._guard(self._get)

    def do_DELETE(self) -> None:
        self._guard(self._delete)

    # -- submits ---------------------------------------------------------------

    def _post(self) -> None:
        if self.path.split("?")[0] != "/jobs":
            self._send(404, {"error": f"no such endpoint: POST {self.path}"})
            return
        try:
            body = self._read_body()
            spec = JobSpec.from_dict(body)
        except (ValueError, TypeError) as exc:
            self._send(400, {"error": f"invalid job spec: {exc}"})
            self._count("submit", 400)
            return
        self._admit(spec)
        if spec.kind == "batch":
            groups = self._scatter_groups(spec)
            if len(groups) > 1:
                self._scatter_submit(spec, groups)
                return
        status, doc, url = self._submit_to_owner(spec)
        self._count("submit", status)
        if status == 202:
            doc["node"] = url
        self._send(status, doc)

    def _admit(self, spec: JobSpec) -> None:
        """Charge this submit to its tenant's quota bucket (no-op when
        quotas are disabled); over quota raises
        :class:`~repro.resilience.errors.QuotaExceeded` -> 429 +
        ``Retry-After``, leaving other tenants untouched."""
        quotas = self.server.quotas
        if not quotas.enabled:
            return
        tenant = self.headers.get(TENANT_HEADER) or ANONYMOUS_TENANT
        ok, retry_after_s = quotas.try_take(tenant)
        if ok:
            return
        if telemetry.enabled():
            telemetry.fleet_quota_rejections().inc()
        self._count("submit", 429)
        raise QuotaExceeded(
            f"tenant {tenant!r} is over its submit quota "
            f"({quotas.rate:g}/s)", tenant=tenant,
            retry_after_s=retry_after_s, rate_per_s=quotas.rate,
            job_id=spec.job_id)

    def _submit_to_owner(self, spec: JobSpec) -> Tuple[int, dict, str]:
        """Route one spec to its owning node inside a gateway span whose
        trace id crosses the hop."""
        trace_id = telemetry.new_trace_id()
        self.server.remember_spec(spec.job_id, spec.to_dict())
        with tracing.span(f"gateway.submit {spec.job_id[:8]}", "fleet",
                          args={"trace": trace_id,
                                "shard_version": self._registry.version}):
            return self._router.forward(
                "POST", "/jobs", spec.job_id, payload=spec.to_dict(),
                headers={"X-Repro-Trace-Id": trace_id})

    # -- batch scatter-gather --------------------------------------------------

    def _scatter_groups(self, spec: JobSpec) -> "collections.OrderedDict":
        """home URL -> wavelengths of this batch, in batch order."""
        smap = self._registry.shard_map()
        groups: "collections.OrderedDict[str, list]" = \
            collections.OrderedDict()
        for w in spec.wavelengths or ():
            home = smap.owners(spec.point_spec(w).job_id)[0]
            groups.setdefault(home, []).append(w)
        return groups

    def _scatter_submit(self, spec: JobSpec, groups) -> None:
        """Split a cross-shard batch into per-shard sub-batches.

        Each sub-batch keeps the parent's computational fields, so its
        per-point job ids -- and therefore the per-point result
        documents -- are exactly what the unsplit batch would produce;
        only the batch *envelope* (which the gateway reassembles) is
        gateway-specific.
        """
        parts: List[dict] = []
        for home, ws in groups.items():
            sub = spec.subset_spec(ws)
            status, doc, url = self._submit_to_owner(sub)
            if status not in (200, 202):
                # One shard refused (e.g. backpressure): surface its
                # answer; already-submitted parts are harmless -- their
                # ids are content hashes a retry will dedup against.
                self._count("submit", status)
                self._send(status, dict(doc, scatter_part=home))
                return
            parts.append({"id": sub.job_id, "wavelengths": list(ws),
                          "node": url})
        record = {"spec": spec.to_dict(), "parts": parts,
                  "created_at": time.time()}
        self.server.remember_scatter(spec.job_id, record)
        self._count("submit", 202)
        self._send(202, {
            "id": spec.job_id,
            "state": "queued",
            "spec": spec.to_dict(),
            "scatter": {"parts": parts,
                        "shards": len(parts)},
        })

    def _scatter_get(self, batch_id: str, record: dict) -> None:
        """Gather a scattered batch: poll every part, assemble the batch
        document once all are terminal (per-point docs untouched)."""
        spec = JobSpec.from_dict(record["spec"])
        part_docs: List[dict] = []
        for part in record["parts"]:
            status, doc, url = self._lookup_job(part["id"])
            if status != 200:
                self._send(status, dict(doc, scatter_part=part["id"]))
                return
            part_docs.append(doc)
        states = [d.get("state") for d in part_docs]
        out = {
            "id": batch_id,
            "state": "done" if all(s == "done" for s in states) else (
                "failed" if "failed" in states else "running"),
            "spec": record["spec"],
            "scatter": {
                "parts": [
                    {"id": p["id"], "node": p["node"], "state": s}
                    for p, s in zip(record["parts"], states)],
                "shards": len(part_docs),
            },
        }
        if out["state"] == "done":
            out["result"] = self._assemble_batch(spec, record, part_docs)
        self._send(200, out)

    @staticmethod
    def _assemble_batch(spec: JobSpec, record: dict,
                        part_docs: List[dict]) -> dict:
        """The parent batch's result document from its parts' results.

        Points come back in the parent's wavelength order and each
        point entry is taken verbatim from its shard; the envelope
        counters are summed across shards (``plan`` is shared -- the
        tiling plan does not depend on wavelength).
        """
        by_wavelength: Dict[float, dict] = {}
        results = [d.get("result") or {} for d in part_docs]
        for res in results:
            for point in res.get("points", ()):
                by_wavelength[point["wavelength"]] = point
        return {
            "kind": "batch",
            "batch_width": len(spec.wavelengths or ()),
            "plan": results[0].get("plan") if results else None,
            "dedup_hits": sum(r.get("dedup_hits", 0) for r in results),
            "solved": sum(r.get("solved", 0) for r in results),
            "failed": sum(r.get("failed", 0) for r in results),
            "points": [by_wavelength[w]
                       for w in (spec.wavelengths or ())],
        }

    # -- lookups ---------------------------------------------------------------

    def _lookup_job(self, job_id: str) -> Tuple[int, dict, str]:
        """Routed GET with loss recovery: when no owner knows a job this
        gateway submitted, resubmit it to a surviving owner (content-
        addressed ids + store dedup keep this exactly-once in results).
        Resubmissions draw from the global retry budget, and a job first
        seen ``done`` has its result replicated to the other owners."""
        status, doc, url = self._router.forward(
            "GET", f"/jobs/{job_id}", job_id, retry_404=True)
        if status == 404:
            spec_dict = self.server.recall_spec(job_id)
            if spec_dict is not None:
                self._take_resubmit_budget(job_id)
                if telemetry.enabled():
                    telemetry.fleet_resubmits().inc()
                trace_id = telemetry.new_trace_id()
                with tracing.span(f"gateway.resubmit {job_id[:8]}", "fleet",
                                  args={"trace": trace_id}):
                    status, doc, url = self._router.forward(
                        "POST", "/jobs", job_id, payload=spec_dict,
                        headers={"X-Repro-Trace-Id": trace_id})
                if status == 202:
                    status = 200  # poll answer: the job exists again
        if (status == 200 and doc.get("state") == "done"
                and doc.get("result") is not None):
            self.server.maybe_replicate(job_id, doc["result"], from_url=url)
        return status, doc, url

    def _take_resubmit_budget(self, job_id: str) -> None:
        """A loss-resubmission is a retry too: draw from the global
        budget (or answer 503 instead of re-entering a failover storm)."""
        budget = self.server.retry_budget
        if not budget.enabled:
            return
        if not budget.try_take():
            raise NodeUnavailable(
                f"retry budget exhausted; not resubmitting job "
                f"{job_id[:12]}", budget_exhausted=True)
        if telemetry.enabled():
            telemetry.fleet_retry_budget_spent().inc()

    def _get(self) -> None:
        path = self.path.split("?")[0]
        events_id = self._events_path_id()
        if events_id is not None:
            self._proxy_events(events_id)
            return
        job_id = self._job_path_id()
        if job_id is not None:
            record = self.server.recall_scatter(job_id)
            if record is not None:
                self._scatter_get(job_id, record)
                return
            status, doc, url = self._lookup_job(job_id)
            self._count("get", status)
            if status == 200:
                doc["node"] = url
            self._send(status, doc)
            return
        if path == "/jobs":
            self._list_jobs()
        elif path == "/metrics":
            self._metrics()
        elif path == "/healthz":
            self._healthz()
        elif path == "/fleet":
            self._registry._export_metrics()
            self._send(200, self._registry.shard_map().to_dict())
        else:
            self._send(404, {"error": f"no such endpoint: GET {path}"})

    def _list_jobs(self) -> None:
        """Scatter-gather the job listings of every live node."""
        jobs: List[dict] = []
        errors: Dict[str, str] = {}
        for url in self._registry.alive_urls():
            try:
                status, doc, _ = http_request(
                    "GET", f"{url}/jobs", timeout=self.server.node_timeout_s,
                    headers={"X-Repro-Shard-Version":
                             str(self._registry.version)})
            except Exception as exc:  # noqa: BLE001 - listing is best-effort
                self._registry.mark_failure(url)
                errors[url] = str(exc)
                continue
            if status != 200:
                errors[url] = f"HTTP {status}"
                continue
            for job in doc.get("jobs", ()):
                job["node"] = url
                jobs.append(job)
        jobs.sort(key=lambda j: j.get("created_at") or 0)
        out = {"jobs": jobs}
        if errors:
            out["node_errors"] = errors
        self._count("list", 200)
        self._send(200, out)

    # -- fleet health + metrics ------------------------------------------------

    def _healthz(self) -> None:
        smap = self._registry.shard_map()
        alive = [n for n in smap.nodes if n["state"] == ALIVE]
        self._send(200, {
            "ok": bool(alive),
            "role": "gateway",
            "shard_version": smap.version,
            "replicas": smap.replicas,
            "nodes": list(smap.nodes),
            "alive": len(alive),
            "stale": [n["url"] for n in smap.nodes if n["stale"]],
            "split_brain": [n["url"] for n in smap.nodes
                            if n["split_brain"]],
            "admission": {
                "quota_per_s": self.server.quotas.rate,
                "quota_burst": (self.server.quotas.burst
                                if self.server.quotas.enabled else 0.0),
                "retry_budget_per_min": self.server.retry_budget.per_minute,
                "retry_budget_available": (
                    self.server.retry_budget.available()
                    if self.server.retry_budget.enabled else None),
            },
        })

    def _metrics(self) -> None:
        self._registry._export_metrics()
        if (self._query().get("format") or [""])[0] == "json":
            nodes: Dict[str, dict] = {}
            for url in self._registry.alive_urls():
                try:
                    status, doc, _ = http_request(
                        "GET", f"{url}/metrics?format=json",
                        timeout=self.server.node_timeout_s)
                    nodes[url] = doc if status == 200 else {
                        "error": f"HTTP {status}"}
                except Exception as exc:  # noqa: BLE001
                    nodes[url] = {"error": str(exc)}
            self._send(200, {
                "gateway": telemetry.METRICS.snapshot(),
                "shard_version": self._registry.version,
                "nodes": nodes,
            })
            return
        body = telemetry.METRICS.render().encode()
        self.send_response(200)
        self.send_header("Content-Type", telemetry.PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Gateway", "1")
        self.end_headers()
        self.wfile.write(body)

    # -- event-stream proxy ----------------------------------------------------

    def _proxy_events(self, job_id: str) -> None:
        if self.server.recall_scatter(job_id) is not None:
            self._send(404, {
                "error": "a scattered batch has no single event stream; "
                         "tail its parts (see GET /jobs/<id> .scatter)"})
            return
        query = self.path.split("?", 1)
        suffix = f"?{query[1]}" if len(query) > 1 else ""
        resp, url = self._router.open_stream(
            f"/jobs/{job_id}/events{suffix}", job_id,
            timeout=max(self.server.node_timeout_s, 90.0))
        try:
            status = getattr(resp, "status", None) or resp.code
            if status != 200:
                body = resp.read()
                try:
                    payload = json.loads(body or b"{}")
                except ValueError:
                    payload = {"error": f"HTTP {status} from {url}"}
                self._send(status, payload)
                return
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("X-Repro-Gateway", "1")
            self.send_header("X-Repro-Node-Url", url)
            self.end_headers()
            # read1 returns per-chunk as data arrives (a plain read(n)
            # would block until n bytes accumulate -- no live tailing).
            read = getattr(resp, "read1", resp.read)
            while True:
                chunk = read(65536)
                if not chunk:
                    break
                self.wfile.write(f"{len(chunk):x}\r\n".encode()
                                 + chunk + b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, TimeoutError,
                OSError):
            pass  # either side went away mid-stream
        finally:
            resp.close()
        self._count("events", 200)

    # -- cancels ---------------------------------------------------------------

    def _delete(self) -> None:
        job_id = self._job_path_id()
        if job_id is None:
            self._send(404, {"error": f"no such endpoint: DELETE {self.path}"})
            return
        status, doc, url = self._router.forward(
            "DELETE", f"/jobs/{job_id}", job_id, retry_404=True)
        self._count("cancel", status)
        if status == 200:
            self.server.forget_spec(job_id)
            doc["node"] = url
        self._send(status, doc)


def make_gateway(registry: NodeRegistry, host: str = "127.0.0.1",
                 port: int = 0,
                 node_timeout_s: float = 60.0,
                 quota: Optional[float] = None,
                 quota_burst: Optional[float] = None,
                 retry_budget: Optional[float] = None,
                 spec_cache_size: Optional[int] = None) -> FleetServer:
    """Bind the gateway (port 0 = ephemeral; read ``server_port``).

    ``quota``/``quota_burst``/``retry_budget``/``spec_cache_size``
    default to their fleet config-flag values when ``None``.
    """
    return FleetServer((host, port), registry, node_timeout_s=node_timeout_s,
                       quota=quota, quota_burst=quota_burst,
                       retry_budget=retry_budget,
                       spec_cache_size=spec_cache_size)
