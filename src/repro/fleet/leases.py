"""Lease-file fleet membership: heartbeat files in a shared directory.

Replaces the static ``--nodes`` list with a protocol any shared
filesystem supports: every ``repro serve`` node writes
``lease-<node_id>.json`` into the lease directory and refreshes it on a
cadence well under the TTL; the gateway's :class:`~repro.fleet.nodes.
NodeRegistry` reads the directory each heartbeat and derives membership:

* a fresh lease for an unknown URL is a **join** (added to the ring);
* a lease older than its TTL is an **expiry** (marked dead, kept in the
  ring so the shard placement survives a reboot);
* a removed lease file is a **graceful leave** (dropped from the ring).

Every membership event bumps the shard-map version, exactly like the
probe-driven transitions.  A node partitioned from the lease directory
(the seeded-partition chaos case) simply stops refreshing: the registry
sees a stale lease and stops routing to it -- clean stale-detection, no
split-brain, because the gateway's registry stays the single source of
routing truth.

Lease files are checksummed atomic JSON (:mod:`repro.ioutil`): a torn or
corrupt lease quarantines to ``*.corrupt`` and reads as absent, which is
the safe direction (a node whose lease cannot be read is not routable).
The ``fleet.lease`` fault site covers the write path so chaos schedules
can simulate a node losing its lease mid-flight.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, Optional

from .. import config
from ..ioutil import atomic_write_json, corrupt_file, read_json_checked
from ..resilience import faults

__all__ = ["lease_path", "write_lease", "clear_lease", "read_leases",
           "LeaseHeartbeat", "LEASE_PREFIX"]

LEASE_PREFIX = "lease-"


def lease_path(lease_dir: str, node_id: str) -> str:
    return os.path.join(lease_dir, f"{LEASE_PREFIX}{node_id}.json")


def write_lease(lease_dir: str, node_id: str, url: str,
                ttl_s: Optional[float] = None) -> str:
    """Write/refresh one node's lease (atomic + checksummed)."""
    ttl_s = config.lease_ttl() if ttl_s is None else float(ttl_s)
    path = lease_path(lease_dir, node_id)
    kind = faults.hit("fleet.lease")
    atomic_write_json(path, {
        "node_id": node_id,
        "url": url.rstrip("/"),
        "ttl_s": ttl_s,
        "written_at": time.time(),
    }, checksum=True)
    if kind == "corrupt":
        corrupt_file(path)
    return path


def clear_lease(lease_dir: str, node_id: str) -> bool:
    """Remove a node's lease (graceful leave); True if one existed."""
    try:
        os.unlink(lease_path(lease_dir, node_id))
        return True
    except OSError:
        return False


def read_leases(lease_dir: str,
                now: Optional[float] = None) -> Dict[str, dict]:
    """url -> {node_id, fresh, age_s, ttl_s} for every readable lease.

    Corrupt leases quarantine (via :func:`read_json_checked`) and read as
    absent.  Two leases claiming one URL keep the freshest writer.
    """
    now = time.time() if now is None else now
    out: Dict[str, dict] = {}
    try:
        names = sorted(os.listdir(lease_dir))
    except OSError:
        return out
    for name in names:
        if not (name.startswith(LEASE_PREFIX) and name.endswith(".json")):
            continue
        doc = read_json_checked(os.path.join(lease_dir, name))
        if not isinstance(doc, dict) or not doc.get("url"):
            continue
        try:
            age = max(0.0, now - float(doc.get("written_at") or 0.0))
            ttl = float(doc.get("ttl_s") or config.lease_ttl())
        except (TypeError, ValueError):
            continue
        url = str(doc["url"]).rstrip("/")
        entry = {"node_id": doc.get("node_id"), "fresh": age <= ttl,
                 "age_s": age, "ttl_s": ttl}
        prior = out.get(url)
        if prior is None or entry["age_s"] < prior["age_s"]:
            out[url] = entry
    return out


class LeaseHeartbeat:
    """Background thread refreshing one node's lease at ttl/3 cadence.

    ``stop(clear=True)`` (the graceful-shutdown path) removes the lease
    so the registry sees a leave, not an expiry; a SIGKILL'd node leaves
    its stale lease behind and expires naturally.
    """

    def __init__(self, lease_dir: str, node_id: str, url: str,
                 ttl_s: Optional[float] = None,
                 on_error: Optional[Callable[[Exception], None]] = None):
        self.lease_dir = lease_dir
        self.node_id = node_id
        self.url = url
        self.ttl_s = config.lease_ttl() if ttl_s is None else float(ttl_s)
        self.on_error = on_error
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "LeaseHeartbeat":
        """Write the first lease synchronously, then refresh in the
        background (idempotent)."""
        self.beat()
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="lease-heartbeat", daemon=True)
            self._thread.start()
        return self

    def beat(self) -> None:
        try:
            write_lease(self.lease_dir, self.node_id, self.url, self.ttl_s)
        except Exception as exc:  # noqa: BLE001 - losing a lease != dying
            if self.on_error is not None:
                self.on_error(exc)

    def _loop(self) -> None:
        interval = max(0.05, self.ttl_s / 3.0)
        while not self._stop.wait(interval):
            self.beat()

    def stop(self, clear: bool = True) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if clear:
            clear_lease(self.lease_dir, self.node_id)
