"""Fleet membership: node liveness, heartbeats and the versioned shard map.

A :class:`NodeRegistry` tracks N ``repro serve`` base URLs.  A
background heartbeat thread (or an explicit :meth:`check_once` from
tests) probes each node's ``/healthz``, learning its stable ``node_id``
and the shard-map version the node last saw.  Any observable membership
event -- a node dying, reviving, or being replaced by a restarted
process with a new ``node_id`` -- bumps the shard-map ``version``, and
the router/gateway stamp that version onto every forwarded request
(``X-Repro-Shard-Version``) so nodes can echo it back:

* a node echoing an *older* version is **stale** (it has not heard from
  this gateway since the last membership change);
* a node echoing a *newer* version is **split-brain** (a second gateway
  with a different view of the fleet is talking to it).

Both conditions are surfaced through the gateway's ``/healthz`` and
``repro top`` rather than acted on automatically -- the fleet's source
of truth for routing is always the gateway's own registry.

Liveness is deliberately simple: ``dead_after`` consecutive probe
failures mark a node dead; one success revives it.  The router can also
report a connection failure directly (:meth:`mark_dead`) so a dead node
is failed over *immediately* rather than a heartbeat later.

Membership is either a static URL list, a shared lease directory
(``lease_dir`` -- see :mod:`repro.fleet.leases`), or both.  With a lease
directory, every :meth:`check_once` first syncs membership from the
lease files: a fresh lease for an unknown URL joins the ring, a removed
lease leaves it, and an expired lease marks the node dead (kept in the
ring so its shard placement survives a reboot).  Static URLs are
permanent members a missing lease never removes.  Every membership
event bumps the shard-map version, and nodes whose lease has expired
are *not* probed -- the lease is the liveness authority for its node,
which is what turns a partition (lease withheld) into clean stale
detection instead of a probe/lease tug-of-war.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import config, telemetry
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["NodeInfo", "NodeRegistry", "ShardMap",
           "ALIVE", "DEAD"]

ALIVE = "alive"
DEAD = "dead"


@dataclass
class NodeInfo:
    """Mutable per-node record inside the registry lock."""

    url: str
    node_id: Optional[str] = None
    state: str = ALIVE  # optimistic until a probe says otherwise
    fails: int = 0
    last_seen: Optional[float] = None
    shard_version: Optional[int] = None  # version the node echoed back
    stale: bool = False
    split_brain: bool = False
    healthz: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "url": self.url,
            "node_id": self.node_id,
            "state": self.state,
            "last_seen": self.last_seen,
            "shard_version": self.shard_version,
            "stale": self.stale,
            "split_brain": self.split_brain,
        }


@dataclass(frozen=True)
class ShardMap:
    """One immutable, versioned view of the fleet (snapshot)."""

    version: int
    nodes: Tuple[dict, ...]  # NodeInfo.to_dict() snapshots, stable order
    ring: HashRing
    replicas: int = 2

    def owners(self, key: str) -> Tuple[str, ...]:
        """Home + replica URLs of a content key, in preference order."""
        return self.ring.owners(key, n=self.replicas)

    def to_dict(self) -> dict:
        return {"version": self.version, "replicas": self.replicas,
                "vnodes": self.ring.vnodes, "nodes": list(self.nodes)}


class NodeRegistry:
    """Liveness-tracking membership list with a versioned shard map."""

    def __init__(self, urls, *, dead_after: int = 2,
                 timeout_s: float = 5.0,
                 interval_s: Optional[float] = None,
                 vnodes: int = DEFAULT_VNODES,
                 replicas: int = 2,
                 lease_dir: Optional[str] = None):
        urls = [u.rstrip("/") for u in urls]
        if not urls and lease_dir is None:
            raise ValueError("a fleet needs at least one node URL "
                             "(or a lease directory)")
        if len(set(urls)) != len(urls):
            raise ValueError(f"duplicate node URLs: {urls}")
        self._lock = threading.Lock()
        self._nodes: Dict[str, NodeInfo] = {u: NodeInfo(u) for u in urls}
        #: Statically configured members: a missing lease never removes
        #: them (operators pinned these URLs on purpose).
        self._static = set(urls)
        self._version = 1
        self.dead_after = max(1, int(dead_after))
        self.timeout_s = timeout_s
        self.interval_s = (config.fleet_heartbeat()
                           if interval_s is None else interval_s)
        self.replicas = replicas
        self._ring = HashRing(urls, vnodes=vnodes)
        self.vnodes = vnodes
        self.lease_dir = lease_dir
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if lease_dir is not None:
            self.sync_leases()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "NodeRegistry":
        """Start the background heartbeat loop (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._heartbeat_loop, name="fleet-heartbeat",
                daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.timeout_s + 1.0)

    def _heartbeat_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.check_once()
            except Exception:
                pass  # a probe bug must never kill the heartbeat
            self._stop.wait(self.interval_s)

    # -- lease-file membership -------------------------------------------------

    def sync_leases(self) -> Dict[str, dict]:
        """Derive membership from the lease directory (no-op without
        one): fresh leases join, removed leases leave, expired leases
        mark the node dead but keep its ring placement.  Returns the
        lease table read (url -> lease info)."""
        if self.lease_dir is None:
            return {}
        from .leases import read_leases

        leases = read_leases(self.lease_dir)
        with self._lock:
            changed = False
            for url, info in leases.items():
                node = self._nodes.get(url)
                if node is None:
                    node = NodeInfo(url, node_id=info.get("node_id"))
                    self._nodes[url] = node
                    changed = True
                if not info["fresh"] and node.state != DEAD:
                    # Lease expired: the node stopped heartbeating (a
                    # crash or a partition from the shared directory).
                    node.state = DEAD
                    node.fails = max(node.fails, self.dead_after)
                    changed = True
            for url in list(self._nodes):
                if url not in leases and url not in self._static:
                    # Lease file removed: a graceful leave drops the
                    # node from membership and the ring entirely.
                    del self._nodes[url]
                    changed = True
            if changed:
                self._ring = HashRing(list(self._nodes), vnodes=self.vnodes)
                self._bump_locked()
        return leases

    # -- probing ---------------------------------------------------------------

    def check_once(self) -> None:
        """Probe every node's ``/healthz`` once, synchronously (after a
        membership sync when a lease directory is configured)."""
        leases = self.sync_leases()
        stale_leases = {url for url, info in leases.items()
                        if not info["fresh"]}
        for url in list(self._nodes):
            if url in stale_leases:
                continue  # the stale lease already marked it dead
            req = urllib.request.Request(
                f"{url}/healthz",
                headers={"X-Repro-Shard-Version": str(self.version)})
            try:
                with urllib.request.urlopen(
                        req, timeout=self.timeout_s) as resp:
                    doc = json.loads(resp.read())
            except (urllib.error.URLError, OSError, ValueError):
                self.mark_failure(url)
                continue
            self.mark_alive(url, doc)
        self._export_metrics()

    def mark_alive(self, url: str, healthz: Optional[dict] = None) -> None:
        """Record a successful probe (revives dead nodes)."""
        doc = healthz or {}
        with self._lock:
            node = self._nodes.get(url)
            if node is None:  # left membership (lease removed) mid-probe
                return
            node.fails = 0
            node.last_seen = time.time()
            node.healthz = doc
            changed = node.state != ALIVE
            node.state = ALIVE
            node_id = doc.get("node_id")
            if node_id:
                if node.node_id is not None and node.node_id != node_id:
                    changed = True  # a restarted process took this URL
                node.node_id = node_id
            echoed = doc.get("shard_version")
            node.shard_version = echoed
            node.stale = echoed is not None and echoed < self._version
            node.split_brain = echoed is not None and echoed > self._version
            if changed:
                self._bump_locked()

    def mark_failure(self, url: str) -> None:
        """Record one failed probe; ``dead_after`` in a row = dead."""
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return
            node.fails += 1
            if node.fails >= self.dead_after and node.state != DEAD:
                node.state = DEAD
                self._bump_locked()

    def mark_dead(self, url: str) -> None:
        """Declare a node dead immediately (router saw its socket die)."""
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return
            node.fails = max(node.fails, self.dead_after)
            if node.state != DEAD:
                node.state = DEAD
                self._bump_locked()

    def _bump_locked(self) -> None:
        self._version += 1

    def _export_metrics(self) -> None:
        if not telemetry.enabled():
            return
        with self._lock:
            states = [n.state for n in self._nodes.values()]
            version = self._version
        gauge = telemetry.fleet_nodes()
        for state in (ALIVE, DEAD):
            gauge.labels(state=state).set(states.count(state))
        telemetry.fleet_shard_version().set(version)

    # -- views -----------------------------------------------------------------

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    @property
    def urls(self) -> List[str]:
        with self._lock:
            return list(self._nodes)

    def alive_urls(self) -> List[str]:
        with self._lock:
            return [u for u, n in self._nodes.items() if n.state == ALIVE]

    def node(self, url: str) -> NodeInfo:
        with self._lock:
            return self._nodes[url]

    def shard_map(self) -> ShardMap:
        """An immutable snapshot of membership + the routing ring.

        The ring always spans *all* members, dead or alive -- placement
        must not churn while a node reboots; liveness only decides which
        owner actually serves a request (the router's job).
        """
        with self._lock:
            return ShardMap(
                version=self._version,
                nodes=tuple(n.to_dict() for n in self._nodes.values()),
                ring=self._ring,
                replicas=self.replicas,
            )
