"""Shard-aware request routing with replica failover.

The router turns a content-addressed job id into an ordered list of
candidate nodes (home first, then its replica -- both from the ring over
*all* members, reordered so live nodes are tried first) and forwards an
HTTP request down that list:

* a **connection-level** failure (refused, reset, timed out socket) is
  node death: the node is declared dead in the registry -- bumping the
  shard-map version immediately -- a failover is counted, and the next
  candidate is tried;
* an **HTTP-level** response, success or error, is authoritative and
  passed through verbatim (a 503 under backpressure or a 400 must reach
  the client unchanged, not trigger a replica retry that could execute
  a rejected job twice);
* ``retry_404=True`` (lookups only) additionally tries the next owner on
  404 -- after a failover the job may live on the replica -- returning
  the first 404 only if every owner lacks the job.

When every candidate is connection-dead the router raises
:class:`~repro.resilience.errors.NodeUnavailable`, which the gateway
maps to 503 + ``Retry-After`` (the taxonomy marks it retryable).

An optional :class:`~repro.fleet.admission.RetryBudget` caps how fast
failover hops may burn through the fleet: each *additional* candidate
tried after a connection death costs one token, and an exhausted budget
raises :class:`NodeUnavailable` instead of hammering the survivors -- a
flapping node amplifies load only up to the budget rate, and the spend
is visible as ``repro_fleet_retry_budget_spent_total``.

Every forwarded request carries ``X-Repro-Shard-Version`` so nodes learn
the fleet's current view (and ``/healthz`` can expose staleness), and
responses' ``X-Repro-Node`` headers feed learned node ids back into the
registry.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..resilience.errors import NodeUnavailable
from .admission import RetryBudget
from .nodes import ALIVE, NodeRegistry

__all__ = ["Router", "http_request"]

#: Connection-level failures that mean "this node is gone" (URLError
#: covers refused/unreachable; OSError covers reset/timeout sockets).
_CONNECTION_ERRORS = (urllib.error.URLError, ConnectionError,
                      TimeoutError, OSError)


def http_request(method: str, url: str,
                 payload: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None,
                 timeout: float = 30.0) -> Tuple[int, dict, Dict[str, str]]:
    """One JSON round trip -> ``(status, body, response_headers)``.

    HTTP error statuses are returned, not raised; connection-level
    failures propagate to the caller (the router's failover signal).
    """
    data = None
    req_headers = dict(headers or {})
    if payload is not None:
        data = json.dumps(payload).encode()
        req_headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=req_headers,
                                 method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read() or b"{}"), dict(
                resp.headers)
    except urllib.error.HTTPError as exc:
        # The node answered: its status/body are the response.
        try:
            body = json.loads(exc.read() or b"{}")
        except ValueError:
            body = {"error": f"non-JSON {exc.code} response"}
        return exc.code, body, dict(exc.headers or {})


class Router:
    """Routes content keys to their owning nodes, failing over on death."""

    def __init__(self, registry: NodeRegistry, timeout_s: float = 30.0,
                 budget: Optional["RetryBudget"] = None):
        self.registry = registry
        self.timeout_s = timeout_s
        self.budget = budget

    # -- placement -------------------------------------------------------------

    def candidates(self, job_id: str) -> List[str]:
        """Owner URLs of ``job_id``: [home, replica], live nodes first.

        Placement comes from the full-membership ring (stable across
        reboots); liveness only reorders, so a revived home node is
        preferred again as soon as a heartbeat sees it.
        """
        smap = self.registry.shard_map()
        owners = smap.owners(job_id)
        states = {n["url"]: n["state"] for n in smap.nodes}
        return sorted(owners, key=lambda u: states.get(u) != ALIVE)

    def home(self, job_id: str) -> str:
        return self.registry.shard_map().owners(job_id)[0]

    def _headers(self, extra: Optional[Dict[str, str]] = None) -> dict:
        headers = {"X-Repro-Shard-Version": str(self.registry.version)}
        if extra:
            headers.update(extra)
        return headers

    # -- forwarding ------------------------------------------------------------

    def forward(self, method: str, path: str, job_id: str,
                payload: Optional[dict] = None,
                headers: Optional[Dict[str, str]] = None,
                retry_404: bool = False) -> Tuple[int, dict, str]:
        """Forward to the first owner that answers -> ``(status, body,
        url)``; raises :class:`NodeUnavailable` when all owners are
        connection-dead."""
        first_404: Optional[Tuple[int, dict, str]] = None
        urls = self.candidates(job_id)
        last_error: Optional[Exception] = None
        for i, url in enumerate(urls):
            try:
                status, body, _ = http_request(
                    method, f"{url}{path}", payload=payload,
                    headers=self._headers(headers), timeout=self.timeout_s)
            except _CONNECTION_ERRORS as exc:
                last_error = exc
                self._note_death(url, failover=i + 1 < len(urls))
                if i + 1 < len(urls):
                    self._spend_retry(job_id, urls)
                continue
            if retry_404 and status == 404 and i + 1 < len(urls):
                first_404 = (status, body, url)
                continue
            return status, body, url
        if first_404 is not None:
            return first_404
        raise NodeUnavailable(
            f"no live node owns shard of job {job_id[:12]}",
            owners=urls, last_error=str(last_error))

    def open_stream(self, path: str, job_id: str,
                    headers: Optional[Dict[str, str]] = None,
                    timeout: Optional[float] = None):
        """Open a streaming GET against the first live owner ->
        ``(response, url)`` (caller reads and closes)."""
        urls = self.candidates(job_id)
        last_error: Optional[Exception] = None
        for i, url in enumerate(urls):
            req = urllib.request.Request(
                f"{url}{path}", headers=self._headers(headers))
            try:
                resp = urllib.request.urlopen(
                    req, timeout=self.timeout_s if timeout is None
                    else timeout)
            except urllib.error.HTTPError as exc:
                return exc, url  # HTTPError is a readable response
            except _CONNECTION_ERRORS as exc:
                last_error = exc
                self._note_death(url, failover=i + 1 < len(urls))
                if i + 1 < len(urls):
                    self._spend_retry(job_id, urls)
                continue
            return resp, url
        raise NodeUnavailable(
            f"no live node owns shard of job {job_id[:12]}",
            owners=urls, last_error=str(last_error))

    def _note_death(self, url: str, failover: bool) -> None:
        self.registry.mark_dead(url)
        if telemetry.enabled() and failover:
            telemetry.fleet_failovers().inc()

    def _spend_retry(self, job_id: str, urls: List[str]) -> None:
        """Draw one failover hop from the retry budget (if any); an
        exhausted budget aborts the failover chain rather than letting a
        flapping node amplify load without bound."""
        if self.budget is None or not self.budget.enabled:
            return
        if not self.budget.try_take():
            raise NodeUnavailable(
                f"retry budget exhausted failing over job {job_id[:12]}",
                owners=urls, budget_exhausted=True)
        if telemetry.enabled():
            telemetry.fleet_retry_budget_spent().inc()
