"""Gateway admission control: per-tenant quotas and a global retry budget.

Two instruments, both plain token buckets over a monotonic clock:

* :class:`TenantQuotas` -- one bucket per tenant (the ``X-Repro-Api-Key``
  request header; absent keys share the ``anonymous`` bucket).  A submit
  that finds the bucket empty is rejected with 429 + ``Retry-After``
  sized to the refill time of one token, so an over-quota tenant backs
  off while in-quota tenants on the same fleet proceed untouched.
* :class:`RetryBudget` -- one global bucket the router draws from before
  each failover hop and the gateway before each loss-resubmission.  A
  flapping node can therefore amplify load only up to the budget rate;
  past it the gateway answers ``NodeUnavailable`` (503 + ``Retry-After``)
  instead of hammering the survivors.

Both are configured through ``REPRO_FLEET_QUOTA`` /
``REPRO_FLEET_QUOTA_BURST`` / ``REPRO_FLEET_RETRY_BUDGET`` (see
:mod:`repro.config`); a rate of 0 disables the instrument entirely --
the default, so single-tenant deployments pay nothing.

The bucket math is deterministic given a clock, and every class takes an
injectable ``clock`` callable so tests never sleep.
"""

from __future__ import annotations

import collections
import math
import threading
import time
from typing import Callable, Optional, Tuple

__all__ = ["TokenBucket", "TenantQuotas", "RetryBudget",
           "ANONYMOUS_TENANT", "TENANT_HEADER"]

#: Request header naming the tenant; absent = the shared anonymous bucket.
TENANT_HEADER = "X-Repro-Api-Key"
ANONYMOUS_TENANT = "anonymous"

#: Distinct tenants tracked before the least-recently-seen bucket is
#: dropped (a dropped tenant simply starts over with a full bucket).
MAX_TENANTS = 4096


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``try_take`` either takes one token (``(True, 0.0)``) or reports how
    long until one is available (``(False, retry_after_s)``).  A rate of
    0 means unlimited: every take succeeds and costs nothing.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = max(0.0, float(rate))
        self.burst = max(1.0, float(burst)) if self.rate else 0.0
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_take(self, n: float = 1.0) -> Tuple[bool, float]:
        """Take ``n`` tokens -> ``(ok, retry_after_s)``."""
        if not self.rate:
            return True, 0.0
        with self._lock:
            now = self._clock()
            self._refill_locked(now)
            if self._tokens >= n:
                self._tokens -= n
                return True, 0.0
            return False, (n - self._tokens) / self.rate

    def available(self) -> float:
        """Current token count (refilled to now); unlimited reads as inf."""
        if not self.rate:
            return math.inf
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens


class TenantQuotas:
    """Per-tenant submit buckets, LRU-bounded at :data:`MAX_TENANTS`.

    ``rate`` <= 0 disables admission control: every tenant is always in
    quota.  ``burst`` <= 0 derives a burst of ``max(1, 2 * rate)`` so a
    small quota still admits at least one request instantly.
    """

    def __init__(self, rate: float, burst: float = 0.0,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = max(0.0, float(rate))
        self.burst = (float(burst) if burst and burst > 0
                      else max(1.0, 2.0 * self.rate))
        self._clock = clock
        self._buckets: "collections.OrderedDict[str, TokenBucket]" = \
            collections.OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[tenant] = bucket
            self._buckets.move_to_end(tenant)
            while len(self._buckets) > MAX_TENANTS:
                self._buckets.popitem(last=False)
            return bucket

    def try_take(self, tenant: Optional[str]) -> Tuple[bool, float]:
        """Admit one submit for ``tenant`` -> ``(ok, retry_after_s)``."""
        if not self.enabled:
            return True, 0.0
        return self._bucket(tenant or ANONYMOUS_TENANT).try_take()


class RetryBudget:
    """Global failover/resubmit budget: ``per_minute`` retries sustained,
    with a full minute's burst so a single node death can still fail its
    whole in-flight shard over at once.  ``per_minute`` <= 0 disables."""

    def __init__(self, per_minute: float,
                 clock: Callable[[], float] = time.monotonic):
        per_minute = max(0.0, float(per_minute))
        self._bucket = TokenBucket(per_minute / 60.0, per_minute,
                                   clock=clock)
        self.per_minute = per_minute

    @property
    def enabled(self) -> bool:
        return self.per_minute > 0

    def try_take(self) -> bool:
        """Spend one retry; ``False`` means the budget is exhausted."""
        return self._bucket.try_take()[0]

    def available(self) -> float:
        return self._bucket.available()
