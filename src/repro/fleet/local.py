"""Spawn a local N-node fleet: real ``repro serve`` processes.

Used by ``repro fleet serve --spawn N`` / ``repro fleet spawn``, the
fleet E2E tests, the node-crash chaos scenario and
``benchmarks/smoke_fleet.py``.  Each node is a genuine subprocess
running ``python -m repro serve --port 0`` (ephemeral port, parsed from
the startup banner), so killing one is real node death: the socket
refuses, the gateway's router fails over, and in-memory state is gone --
exactly the failure the fleet is built to absorb.

With ``data_root`` each node gets its own persistent data directory
(``REPRO_DATA_DIR=<data_root>/node<i>``), which is what makes
:func:`respawn_node` interesting: the replacement process rebinds the
dead node's port and rejoins with its shard's results and tuned plans
warm on disk -- the ``node-reboot-warm`` chaos scenario.  With
``lease_dir`` every node heartbeats a lease file there, so a
lease-driven :class:`~repro.fleet.nodes.NodeRegistry` discovers the
fleet without any static ``--nodes`` list.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional

__all__ = ["LocalNode", "spawn_local_fleet", "respawn_node"]

_BANNER = "repro service on "


class LocalNode:
    """One spawned ``repro serve`` subprocess and its base URL.

    ``cmd``/``env`` record exactly how the process was started so
    :func:`respawn_node` can bring up a bit-compatible replacement after
    a kill (same node id, same data directory, same port).
    """

    def __init__(self, proc: subprocess.Popen, url: str, node_id: str,
                 cmd: Optional[List[str]] = None,
                 env: Optional[Dict[str, str]] = None):
        self.proc = proc
        self.url = url
        self.node_id = node_id
        self.cmd = list(cmd) if cmd else None
        self.env = dict(env) if env else None
        # Keep draining stdout so the child never blocks on a full pipe.
        self._drain = threading.Thread(target=self._drain_stdout,
                                       daemon=True)
        self._drain.start()

    def _drain_stdout(self) -> None:
        try:
            for _ in self.proc.stdout:
                pass
        except (ValueError, OSError):
            pass

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL: abrupt node death (no drain, no spool)."""
        if self.alive:
            try:
                self.proc.kill()
            except OSError:
                pass
        self.proc.wait(timeout=10)

    def terminate(self) -> None:
        """SIGTERM: the node drains gracefully before exiting."""
        if self.alive:
            try:
                self.proc.send_signal(signal.SIGTERM)
            except OSError:
                pass
        try:
            self.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.kill()


def _src_root() -> str:
    """The directory containing the ``repro`` package (for PYTHONPATH)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def spawn_local_fleet(n: int, *, workers: int = 1, mode: str = "thread",
                      host: str = "127.0.0.1",
                      data_root: Optional[str] = None,
                      lease_dir: Optional[str] = None,
                      extra_env: Optional[Dict[str, str]] = None,
                      extra_args: Optional[List[str]] = None,
                      startup_timeout_s: float = 30.0) -> List[LocalNode]:
    """Start ``n`` independent serve nodes on ephemeral ports.

    Each node gets a stable ``REPRO_NODE_ID`` of ``node<i>`` (visible in
    ``/healthz`` and result provenance); ``data_root`` additionally
    gives node *i* the persistent data directory ``<data_root>/node<i>``
    and ``lease_dir`` makes it heartbeat a membership lease.  Raises
    ``RuntimeError`` -- after killing any nodes already up -- if a node
    fails to print its startup banner in time.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_root() + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.update(extra_env or {})
    if lease_dir:
        env["REPRO_LEASE_DIR"] = lease_dir
    nodes: List[LocalNode] = []
    try:
        for i in range(n):
            node_env = dict(env, REPRO_NODE_ID=f"node{i}")
            if data_root:
                node_env["REPRO_DATA_DIR"] = os.path.join(
                    data_root, f"node{i}")
            cmd = [sys.executable, "-m", "repro", "serve",
                   "--host", host, "--port", "0",
                   "--workers", str(workers), "--mode", mode,
                   *(extra_args or [])]
            proc = subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=node_env)
            url = _wait_for_banner(proc, startup_timeout_s)
            nodes.append(LocalNode(proc, url, f"node{i}",
                                   cmd=cmd, env=node_env))
    except Exception:
        for node in nodes:
            node.kill()
        raise
    return nodes


def respawn_node(node: LocalNode,
                 startup_timeout_s: float = 30.0) -> LocalNode:
    """Restart a dead node as the same fleet member: same ``node_id``,
    same data directory (``REPRO_DATA_DIR`` travels in the recorded env)
    and -- crucially -- the same port, so the ring placement and every
    cached URL stay valid.  The node's persistent store makes the reboot
    *warm*: committed results come back as store hits, not re-solves.
    """
    if node.cmd is None or node.env is None:
        raise ValueError("node was not spawned by spawn_local_fleet "
                         "(no recorded cmd/env to respawn from)")
    port = node.url.rsplit(":", 1)[1]
    cmd = list(node.cmd)
    for i, arg in enumerate(cmd):
        if arg == "--port":
            cmd[i + 1] = port
            break
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=dict(node.env))
    url = _wait_for_banner(proc, startup_timeout_s)
    return LocalNode(proc, url, node.node_id, cmd=cmd, env=node.env)


def _wait_for_banner(proc: subprocess.Popen, timeout_s: float) -> str:
    deadline = time.monotonic() + timeout_s
    lines: List[str] = []
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                "fleet node exited before startup: " + " | ".join(lines))
        line = proc.stdout.readline()
        if not line:
            continue
        lines.append(line.strip())
        if _BANNER in line:
            # "repro service on http://127.0.0.1:PORT (...)"
            url = line.split(_BANNER, 1)[1].split()[0]
            return url.rstrip("/")
    proc.kill()
    raise RuntimeError(
        f"fleet node produced no startup banner within {timeout_s}s: "
        + " | ".join(lines))
