"""Fleet tier: N ``repro serve`` nodes behind one consistent-hash gateway.

One job spans processes since the distributed runtime (PR 8); this
package lets one *service* span nodes.  Job ids are already content
hashes of the spec's computational fields, so sharding falls out of a
consistent-hash ring over the node set: every plan-registry/result-store
entry has a home node plus one replica, node-local dedup and
single-flight tuning keep working (identical specs always route to the
same home), and the gateway fails over to the replica when a node dies.

* :mod:`~repro.fleet.ring` -- the consistent-hash ring (vnodes).
* :mod:`~repro.fleet.nodes` -- membership, heartbeats, liveness and the
  versioned shard map.
* :mod:`~repro.fleet.leases` -- lease-file membership: nodes heartbeat
  lease files in a shared directory; the registry derives joins, leaves
  and expiries from them (no static node list required).
* :mod:`~repro.fleet.router` -- candidate ordering + forwarding with
  replica failover, ``NodeUnavailable`` when a shard is dark, and an
  optional global retry budget capping failover amplification.
* :mod:`~repro.fleet.admission` -- per-tenant token-bucket quotas and
  the retry budget (gateway admission control).
* :mod:`~repro.fleet.gateway` -- the HTTP front door (``repro fleet
  serve``): routed submits/lookups/cancels, scattered cross-shard
  batches, proxied event streams, write replication of completed
  results, fleet-level ``/metrics``/``/healthz``.
* :mod:`~repro.fleet.local` -- spawn (and respawn, for warm-reboot
  chaos) a real local N-node fleet for tests, chaos and benches.

The contract that matters: any result fetched through the gateway is
bit-identical to a direct single-node run of the same spec -- including
reads served from a rebooted node's persistent store or a replica's
copy after the computing node died.
"""

from .admission import RetryBudget, TenantQuotas, TokenBucket
from .gateway import FleetServer, make_gateway
from .leases import LeaseHeartbeat, clear_lease, read_leases, write_lease
from .local import LocalNode, respawn_node, spawn_local_fleet
from .nodes import ALIVE, DEAD, NodeInfo, NodeRegistry, ShardMap
from .ring import HashRing
from .router import Router

__all__ = [
    "ALIVE",
    "DEAD",
    "FleetServer",
    "HashRing",
    "LeaseHeartbeat",
    "LocalNode",
    "NodeInfo",
    "NodeRegistry",
    "RetryBudget",
    "Router",
    "ShardMap",
    "TenantQuotas",
    "TokenBucket",
    "clear_lease",
    "make_gateway",
    "read_leases",
    "respawn_node",
    "spawn_local_fleet",
    "write_lease",
]
