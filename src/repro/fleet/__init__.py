"""Fleet tier: N ``repro serve`` nodes behind one consistent-hash gateway.

One job spans processes since the distributed runtime (PR 8); this
package lets one *service* span nodes.  Job ids are already content
hashes of the spec's computational fields, so sharding falls out of a
consistent-hash ring over the node set: every plan-registry/result-store
entry has a home node plus one replica, node-local dedup and
single-flight tuning keep working (identical specs always route to the
same home), and the gateway fails over to the replica when a node dies.

* :mod:`~repro.fleet.ring` -- the consistent-hash ring (vnodes).
* :mod:`~repro.fleet.nodes` -- membership, heartbeats, liveness and the
  versioned shard map.
* :mod:`~repro.fleet.router` -- candidate ordering + forwarding with
  replica failover and ``NodeUnavailable`` when a shard is dark.
* :mod:`~repro.fleet.gateway` -- the HTTP front door (``repro fleet
  serve``): routed submits/lookups/cancels, scattered cross-shard
  batches, proxied event streams, fleet-level ``/metrics``/``/healthz``.
* :mod:`~repro.fleet.local` -- spawn a real local N-node fleet for
  tests, chaos and benches.

The contract that matters: any result fetched through the gateway is
bit-identical to a direct single-node run of the same spec.
"""

from .gateway import FleetServer, make_gateway
from .local import LocalNode, spawn_local_fleet
from .nodes import ALIVE, DEAD, NodeInfo, NodeRegistry, ShardMap
from .ring import HashRing
from .router import Router

__all__ = [
    "ALIVE",
    "DEAD",
    "FleetServer",
    "HashRing",
    "LocalNode",
    "NodeInfo",
    "NodeRegistry",
    "Router",
    "ShardMap",
    "make_gateway",
    "spawn_local_fleet",
]
