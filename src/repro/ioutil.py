"""Atomic filesystem helpers shared by every persistence layer.

Concurrent writers are the norm here: ``REPRO_TUNE_WORKERS`` fork-pool
workers and service scheduler workers all persist results into shared
directories (the tune cache, the plan registry, the result store).  A
plain ``open(path, "w")`` can interleave two writers and leave a torn
JSON file behind; every writer in this codebase therefore goes through
:func:`atomic_write_text` / :func:`atomic_write_json`, which write to a
per-call unique temporary file in the destination directory and publish
with ``os.replace`` -- readers see either the old complete file or the
new complete file, never a mix.

(A pid-suffixed temp name is *not* enough: two threads of one process
share a pid.  ``tempfile.mkstemp`` gives a unique name per call.)

Integrity: atomic writes rule out *torn* files from our own writers, but
not bit rot, hand edits, or foreign processes truncating an artifact in
place.  :func:`atomic_write_json` can therefore embed a content checksum
(``checksum=True`` adds a ``_sha256`` key over the canonical payload) and
:func:`read_json_checked` verifies it on the way back in, quarantining
anything malformed or mismatched to ``<path>.corrupt`` so the caller
recomputes instead of crashing -- the resilience layer's
corrupt-artifact contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

__all__ = [
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_write_json",
    "read_json",
    "read_json_checked",
    "json_checksum",
    "quarantine",
    "corrupt_file",
]


def atomic_write_text(path: str, text: str) -> str:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX).
    """
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Atomically replace ``path`` with raw ``data`` (same mechanism)."""
    path = os.path.abspath(path)
    parent = os.path.dirname(path)
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=parent, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def json_checksum(obj) -> str:
    """SHA-256 over the canonical JSON of ``obj`` (sans any ``_sha256``)."""
    if isinstance(obj, dict):
        obj = {k: v for k, v in obj.items() if k != "_sha256"}
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode("utf-8")
    ).hexdigest()


def atomic_write_json(path: str, obj, checksum: bool = False) -> str:
    """Atomically write ``obj`` as JSON (sorted keys, exact float repr).

    With ``checksum=True`` (dict payloads only) a ``_sha256`` key over
    the canonical payload is embedded so later reads can detect in-place
    corruption, not just torn writes.
    """
    if checksum and isinstance(obj, dict):
        obj = {**obj, "_sha256": json_checksum(obj)}
    return atomic_write_text(path, json.dumps(obj, sort_keys=True))


def read_json(path: str):
    """Load a JSON file, returning ``None`` when missing or unreadable.

    Corrupt or half-written entries (which atomic writes make impossible
    for *our* writers, but a crashed foreign process could still leave)
    read as a miss, never an exception.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def quarantine(path: str) -> str | None:
    """Move a corrupt artifact aside to ``<path>.corrupt`` (atomic rename,
    so concurrent readers see either the bad file or nothing).  Returns
    the quarantine path, or ``None`` when the file vanished first."""
    target = path + ".corrupt"
    try:
        os.replace(path, target)
    except OSError:
        return None
    from .resilience.errors import RESILIENCE_COUNTERS

    RESILIENCE_COUNTERS.bump("quarantined_artifacts")
    from .core import tracing

    rec = tracing.active()
    if rec is not None:
        rec.instant("resilience.quarantine", "resilience",
                    args={"path": os.path.basename(path)})
    return target


def read_json_checked(path: str):
    """Load a JSON artifact, quarantining anything corrupt.

    Three outcomes:

    * missing file -> ``None`` (an ordinary miss);
    * parses and (when a ``_sha256`` key is present) the checksum
      matches -> the value;
    * malformed JSON or checksum mismatch -> the file is moved to
      ``<path>.corrupt``, a counter is bumped, and ``None`` is returned
      so the caller transparently recomputes.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read()
    except OSError:
        return None
    try:
        doc = json.loads(raw)
    except ValueError:
        quarantine(path)
        return None
    if isinstance(doc, dict) and "_sha256" in doc:
        if doc.pop("_sha256") != json_checksum(doc):
            quarantine(path)
            return None
    return doc


def corrupt_file(path: str) -> None:
    """Scribble over an artifact in place (truncated JSON garbage) --
    the chaos harness's ``corrupt`` fault kind and test helper."""
    try:
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"torn": [1, 2,')
    except OSError:
        pass
