"""Atomic filesystem helpers shared by every persistence layer.

Concurrent writers are the norm here: ``REPRO_TUNE_WORKERS`` fork-pool
workers and service scheduler workers all persist results into shared
directories (the tune cache, the plan registry, the result store).  A
plain ``open(path, "w")`` can interleave two writers and leave a torn
JSON file behind; every writer in this codebase therefore goes through
:func:`atomic_write_text` / :func:`atomic_write_json`, which write to a
per-call unique temporary file in the destination directory and publish
with ``os.replace`` -- readers see either the old complete file or the
new complete file, never a mix.

(A pid-suffixed temp name is *not* enough: two threads of one process
share a pid.  ``tempfile.mkstemp`` gives a unique name per call.)
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_text", "atomic_write_json", "read_json"]


def atomic_write_text(path: str, text: str) -> str:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX).
    """
    path = os.path.abspath(path)
    parent = os.path.dirname(path)
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=parent, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str, obj) -> str:
    """Atomically write ``obj`` as JSON (sorted keys, exact float repr)."""
    return atomic_write_text(path, json.dumps(obj, sort_keys=True))


def read_json(path: str):
    """Load a JSON file, returning ``None`` when missing or unreadable.

    Corrupt or half-written entries (which atomic writes make impossible
    for *our* writers, but a crashed foreign process could still leave)
    read as a miss, never an exception.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None
