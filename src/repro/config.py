"""The one place that reads ``REPRO_*`` environment flags.

Every runtime knob of the reproduction is an environment variable with a
``REPRO_`` prefix.  They accumulated across subsystems (autotuner,
stream engines, native kernel, tracing, serving layer); this module is
the registry: each flag is declared once with its default, its type and
a one-line description, and every subsystem reads it through an accessor
here instead of a scattered ``os.environ.get``.

``repro env`` prints the table (flag, current value, default,
description) so a shell session can be audited at a glance.

Flags are always read *live* from ``os.environ`` -- tests and the CLI
mutate the environment mid-process and expect the change to take effect
on the next call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "Flag",
    "FLAGS",
    "checkpoint_dir",
    "checkpoint_every",
    "cluster_pin",
    "cluster_transport",
    "data_dir",
    "describe",
    "drain_timeout",
    "faults_schedule",
    "fleet_heartbeat",
    "fleet_quota",
    "fleet_quota_burst",
    "fleet_retry_budget",
    "fleet_spec_cache",
    "http_timeout",
    "lease_dir",
    "lease_ttl",
    "native_build_dir",
    "native_disabled",
    "node_id",
    "queue_file",
    "registry_dir",
    "result_dir",
    "stream_engine",
    "telemetry_mode",
    "trace_path",
    "tune_cache_dir",
    "tune_workers",
]


@dataclass(frozen=True)
class Flag:
    """One documented environment flag."""

    name: str
    default: str
    kind: str  # "int" | "path" | "choice" | "bool" | "str"
    help: str

    @property
    def raw(self) -> Optional[str]:
        """The current environment value, or ``None`` when unset."""
        return os.environ.get(self.name)


FLAGS: Dict[str, Flag] = {
    f.name: f
    for f in (
        Flag(
            "REPRO_TUNE_WORKERS", "1", "int",
            "fork-pool workers scoring autotuner candidates (1 = serial)",
        ),
        Flag(
            "REPRO_TUNE_CACHE", "(disabled)", "path",
            "directory persisting tuned points across processes",
        ),
        Flag(
            "REPRO_STREAM_ENGINE", "auto", "choice",
            "stream replay engine: reference, batch, native, or auto",
        ),
        Flag(
            "REPRO_NO_NATIVE", "(unset)", "bool",
            "any non-empty value disables the compiled C LRU kernel",
        ),
        Flag(
            "REPRO_NATIVE_BUILD_DIR", "src/repro/machine/_build", "path",
            "where the compiled LRU kernel shared object is cached",
        ),
        Flag(
            "REPRO_TRACE", "(disabled)", "path",
            "Chrome-trace output path; traces any repro CLI command",
        ),
        Flag(
            "REPRO_REGISTRY_DIR", "(in-memory)", "path",
            "persistent plan-registry directory for the solve service",
        ),
        Flag(
            "REPRO_RESULT_DIR", "(in-memory)", "path",
            "persistent result-store directory for the solve service",
        ),
        Flag(
            "REPRO_CHECKPOINT_EVERY", "0", "int",
            "sweep cadence between THIIM solver checkpoints (0 = disabled)",
        ),
        Flag(
            "REPRO_CHECKPOINT_DIR", "(disabled)", "path",
            "directory for solver checkpoint snapshots (crash/resume)",
        ),
        Flag(
            "REPRO_FAULTS", "(none)", "str",
            "deterministic fault schedule: site:kind[:after_n[:attempt]],...",
        ),
        Flag(
            "REPRO_DRAIN_TIMEOUT", "10", "float",
            "seconds repro serve waits for in-flight jobs on SIGTERM/SIGINT",
        ),
        Flag(
            "REPRO_QUEUE_FILE", "(disabled)", "path",
            "spool file persisting queued jobs across graceful restarts",
        ),
        Flag(
            "REPRO_CLUSTER_TRANSPORT", "auto", "choice",
            "distributed halo transport: shm, pipe, or auto "
            "(shared memory with pipe fallback)",
        ),
        Flag(
            "REPRO_TELEMETRY", "(auto)", "bool",
            "metrics + progress events: 1 forces on, 0 vetoes even the "
            "serving stack, unset = on while serving only",
        ),
        Flag(
            "REPRO_NODE_ID", "(generated)", "str",
            "stable node identity reported by /healthz and the "
            "X-Repro-Node header (unset = random per process)",
        ),
        Flag(
            "REPRO_HTTP_TIMEOUT", "30", "float",
            "per-request socket timeout of the serving layer; a stalled "
            "client is disconnected after this many idle seconds",
        ),
        Flag(
            "REPRO_CLUSTER_PIN", "(unset)", "bool",
            "pin each distributed rank process to one CPU via "
            "sched_setaffinity (any non-empty value enables)",
        ),
        Flag(
            "REPRO_FLEET_HEARTBEAT", "1", "float",
            "seconds between gateway heartbeat probes of fleet nodes",
        ),
        Flag(
            "REPRO_DATA_DIR", "(in-memory)", "path",
            "per-node data root for repro serve: derives registry/, "
            "results/, checkpoints/ and queue.json so a rebooted node "
            "rejoins with its shard warm",
        ),
        Flag(
            "REPRO_LEASE_DIR", "(disabled)", "path",
            "shared lease directory for fleet membership: nodes write "
            "heartbeat lease files; the gateway derives the live set",
        ),
        Flag(
            "REPRO_LEASE_TTL", "5", "float",
            "seconds a lease file stays fresh; an unrefreshed lease "
            "reads as node death (join/leave/expiry bump the shard map)",
        ),
        Flag(
            "REPRO_FLEET_QUOTA", "0", "float",
            "per-tenant submit quota at the gateway in requests/second "
            "(token bucket keyed by X-Repro-Api-Key; 0 = unlimited)",
        ),
        Flag(
            "REPRO_FLEET_QUOTA_BURST", "0", "float",
            "burst size of the per-tenant submit bucket "
            "(0 = 2x the quota rate, minimum 1)",
        ),
        Flag(
            "REPRO_FLEET_RETRY_BUDGET", "60", "float",
            "gateway failover/resubmit retries per minute before "
            "NodeUnavailable is returned instead (0 = unlimited)",
        ),
        Flag(
            "REPRO_FLEET_SPEC_CACHE", "4096", "int",
            "entries the gateway's LRU resubmission spec cache holds",
        ),
    )
}


def describe() -> List[Dict[str, str]]:
    """Table rows for ``repro env``: one dict per flag."""
    rows: List[Dict[str, str]] = []
    for flag in FLAGS.values():
        raw = flag.raw
        rows.append(
            {
                "flag": flag.name,
                "value": "(unset)" if raw is None else raw,
                "default": flag.default,
                "description": flag.help,
            }
        )
    return rows


# -- typed accessors (one per flag) -------------------------------------------


def tune_workers() -> int:
    """Autotuner fork-pool width; malformed values fall back to serial."""
    try:
        return max(1, int(os.environ.get("REPRO_TUNE_WORKERS", "1")))
    except ValueError:
        return 1


def tune_cache_dir() -> Optional[str]:
    """Tune-cache root, or ``None`` when persistence is off."""
    return os.environ.get("REPRO_TUNE_CACHE") or None


def stream_engine() -> Optional[str]:
    """The engine override, or ``None`` (caller resolves ``auto``)."""
    return os.environ.get("REPRO_STREAM_ENGINE") or None


def native_disabled() -> bool:
    """True when the compiled LRU kernel is vetoed (any non-empty value)."""
    return bool(os.environ.get("REPRO_NO_NATIVE"))


def native_build_dir(default: str) -> str:
    return os.environ.get("REPRO_NATIVE_BUILD_DIR", default)


def trace_path() -> Optional[str]:
    return os.environ.get("REPRO_TRACE") or None


def registry_dir() -> Optional[str]:
    """Service plan-registry root, or ``None`` for in-memory only."""
    return os.environ.get("REPRO_REGISTRY_DIR") or None


def result_dir() -> Optional[str]:
    """Service result-store root, or ``None`` for in-memory only."""
    return os.environ.get("REPRO_RESULT_DIR") or None


def checkpoint_every() -> int:
    """Checkpoint cadence in sweeps; 0 (or malformed) disables."""
    try:
        return max(0, int(os.environ.get("REPRO_CHECKPOINT_EVERY", "0")))
    except ValueError:
        return 0


def checkpoint_dir() -> Optional[str]:
    """Checkpoint snapshot root, or ``None`` when checkpointing is off."""
    return os.environ.get("REPRO_CHECKPOINT_DIR") or None


def faults_schedule() -> Optional[str]:
    """The raw ``REPRO_FAULTS`` schedule (parsed by resilience.faults)."""
    return os.environ.get("REPRO_FAULTS") or None


def drain_timeout() -> float:
    """Graceful-shutdown drain budget; malformed values fall back to 10s."""
    try:
        return max(0.0, float(os.environ.get("REPRO_DRAIN_TIMEOUT", "10")))
    except ValueError:
        return 10.0


def queue_file() -> Optional[str]:
    """Queue spool path for graceful restarts, or ``None`` (disabled)."""
    return os.environ.get("REPRO_QUEUE_FILE") or None


def cluster_transport() -> str:
    """Distributed halo transport: ``shm``, ``pipe`` or ``auto``
    (malformed values read as ``auto``)."""
    raw = (os.environ.get("REPRO_CLUSTER_TRANSPORT") or "auto").lower()
    return raw if raw in ("shm", "pipe", "auto") else "auto"


def node_id() -> Optional[str]:
    """The operator-pinned node identity, or ``None`` (generate one)."""
    return os.environ.get("REPRO_NODE_ID") or None


def http_timeout() -> float:
    """Per-request socket timeout of the serving layer (seconds);
    malformed or non-positive values fall back to 30s."""
    try:
        value = float(os.environ.get("REPRO_HTTP_TIMEOUT", "30"))
    except ValueError:
        return 30.0
    return value if value > 0 else 30.0


def cluster_pin() -> bool:
    """True when distributed ranks should pin themselves to one CPU."""
    raw = os.environ.get("REPRO_CLUSTER_PIN")
    return bool(raw) and raw.lower() not in ("0", "off", "false", "no")


def fleet_heartbeat() -> float:
    """Gateway heartbeat cadence; malformed values fall back to 1s."""
    try:
        value = float(os.environ.get("REPRO_FLEET_HEARTBEAT", "1"))
    except ValueError:
        return 1.0
    return value if value > 0 else 1.0


def data_dir() -> Optional[str]:
    """Per-node persistent data root, or ``None`` for in-memory state."""
    return os.environ.get("REPRO_DATA_DIR") or None


def lease_dir() -> Optional[str]:
    """Shared fleet-membership lease directory, or ``None`` (static
    node lists only)."""
    return os.environ.get("REPRO_LEASE_DIR") or None


def lease_ttl() -> float:
    """Lease freshness window; malformed/non-positive values read as 5s."""
    try:
        value = float(os.environ.get("REPRO_LEASE_TTL", "5"))
    except ValueError:
        return 5.0
    return value if value > 0 else 5.0


def fleet_quota() -> float:
    """Per-tenant gateway submit quota in req/s; 0 (or malformed) means
    unlimited."""
    try:
        return max(0.0, float(os.environ.get("REPRO_FLEET_QUOTA", "0")))
    except ValueError:
        return 0.0


def fleet_quota_burst() -> float:
    """Burst size of the per-tenant bucket; 0 (or malformed) lets the
    admission layer derive one from the rate."""
    try:
        return max(0.0, float(os.environ.get("REPRO_FLEET_QUOTA_BURST", "0")))
    except ValueError:
        return 0.0


def fleet_retry_budget() -> float:
    """Gateway failover retries per minute; 0 (or malformed non-number)
    means unlimited."""
    try:
        return max(0.0, float(os.environ.get("REPRO_FLEET_RETRY_BUDGET",
                                             "60")))
    except ValueError:
        return 60.0


def fleet_spec_cache() -> int:
    """Gateway spec-cache capacity; malformed or < 1 falls back to 4096."""
    try:
        value = int(os.environ.get("REPRO_FLEET_SPEC_CACHE", "4096"))
    except ValueError:
        return 4096
    return value if value >= 1 else 4096


def telemetry_mode() -> Optional[bool]:
    """``REPRO_TELEMETRY`` tri-state: True (on), False (vetoed), or
    ``None`` when unset (the serving stack decides)."""
    raw = os.environ.get("REPRO_TELEMETRY")
    if raw is None:
        return None
    return bool(raw) and raw.lower() not in ("0", "off", "false", "no")
