"""Typed failure taxonomy + resilience counters.

Every recoverable failure mode of the stack gets one exception class so
callers can branch on *what went wrong* instead of string-matching
messages, and the HTTP layer can map failures to status codes uniformly
(:attr:`ReproError.http_status`).  The taxonomy also records whether a
failure is worth retrying: a worker crash is transient, a diverged solve
is deterministic -- retrying it burns the budget reproducing the same
blow-up, so :attr:`ReproError.retryable` lets the scheduler fail fast.

The module-global :data:`RESILIENCE_COUNTERS` aggregates every
degradation event in the process (quarantined artifacts, checkpoint
saves/resumes, native-engine fallbacks, fired faults).  Counters are
deliberately schema-free (a name -> int dict) so new sites never need a
dataclass change; the serving layer exposes a snapshot under
``GET /metrics`` and child workers ship theirs back through the spool
file, mirroring how substrate counters travel.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = [
    "ReproError",
    "SolverDiverged",
    "CorruptArtifact",
    "EngineUnavailable",
    "CheckpointMismatch",
    "InjectedFault",
    "NodeUnavailable",
    "QuotaExceeded",
    "RankCrash",
    "ResilienceCounters",
    "RESILIENCE_COUNTERS",
    "error_from_kind",
]


class ReproError(RuntimeError):
    """Base of the typed failure taxonomy.

    ``details`` is the machine-readable diagnostic payload (residual
    history tails, quarantined paths, ...) serialized verbatim into HTTP
    error bodies and job records.
    """

    #: Status the serving layer answers with when this escapes a handler.
    http_status = 500
    #: Whether the scheduler should spend retry budget on this failure.
    retryable = True

    def __init__(self, message: str, **details):
        super().__init__(message)
        self.details = details

    def payload(self) -> dict:
        """JSON body for HTTP error responses / job diagnostics."""
        d = {"error": str(self), "kind": type(self).__name__}
        if self.details:
            d["details"] = self.details
        return d


class SolverDiverged(ReproError):
    """The THIIM fixed-point iteration blew up (NaN/Inf or runaway
    residual growth).  Deterministic in the spec: never retried."""

    http_status = 422
    retryable = False


class CorruptArtifact(ReproError):
    """A persisted JSON/npz artifact failed its integrity check
    (malformed, truncated, or checksum mismatch).  The file is
    quarantined to ``*.corrupt`` and the artifact recomputed."""

    http_status = 500


class EngineUnavailable(ReproError):
    """A replay/compute engine could not be loaded.  The degradation
    chain (native -> batched -> pure python) normally absorbs this."""

    http_status = 503


class CheckpointMismatch(ReproError):
    """A checkpoint's scene/plan token does not match the running solve
    -- resuming would silently compute the wrong answer."""

    http_status = 409
    retryable = False


class InjectedFault(ReproError):
    """A fault fired by the deterministic chaos harness
    (:mod:`repro.resilience.faults`)."""

    http_status = 500


class RankCrash(ReproError):
    """A rank process of a distributed solve died mid-step.  Transient
    (like a worker crash): the scheduler retries, and the surviving
    ranks' checkpoints let the retry resume from the last committed
    boundary."""

    http_status = 500


class NodeUnavailable(ReproError):
    """No live fleet node owns the requested shard: the home node and
    its replica are both unreachable.  Transient -- heartbeats revive
    nodes that come back, so the gateway answers 503 with a
    ``Retry-After`` hint and clients should retry."""

    http_status = 503


class QuotaExceeded(ReproError):
    """A tenant blew through its admission-control token bucket at the
    fleet gateway.  Transient by definition -- the bucket refills at the
    quota rate -- so the gateway answers 429 with a ``Retry-After`` hint
    sized to the refill time of one token."""

    http_status = 429


#: Name -> class map used to rehydrate typed errors that crossed a
#: process boundary as strings (forked-worker spool files).
_TAXONOMY = {
    cls.__name__: cls
    for cls in (ReproError, SolverDiverged, CorruptArtifact,
                EngineUnavailable, CheckpointMismatch, InjectedFault,
                RankCrash, NodeUnavailable, QuotaExceeded)
}


def error_from_kind(kind: Optional[str], message: str) -> Exception:
    """Rebuild a typed error from its class name (spool round trip).

    Unknown/absent kinds come back as plain ``RuntimeError`` so foreign
    error strings never gain retry semantics they did not have.
    """
    cls = _TAXONOMY.get(kind or "")
    return cls(message) if cls is not None else RuntimeError(message)


class ResilienceCounters:
    """Thread-safe name -> count map of degradation events."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def bump(self, name: str, n: int = 1) -> None:
        """Count an event; emits a tracing instant when a trace is live."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n
        from ..core import tracing

        rec = tracing.active()
        if rec is not None:
            rec.instant(f"resilience.{name}", "resilience")

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def merge(self, other: Dict[str, int]) -> None:
        """Fold a child worker's counter deltas into this process."""
        with self._lock:
            for name, n in (other or {}).items():
                self._counts[name] = self._counts.get(name, 0) + int(n)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


#: Process-global degradation telemetry (children merge back via spool).
RESILIENCE_COUNTERS = ResilienceCounters()
