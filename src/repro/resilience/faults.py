"""Deterministic fault-injection registry.

One seedable, schedule-based mechanism replaces the ad-hoc
``fail_once``/``crash_once`` flags that used to live in
``service/jobs.py``: a :class:`FaultPlan` is a list of
:class:`FaultSpec` schedules, each naming a **site** (a stable string a
code path passes to :func:`hit`), a **kind** (what happens when it
fires) and **when** it fires (the ``after_n``-th pass through the site,
on a given job attempt).  The plan is parsed from the ``REPRO_FAULTS``
environment variable so it crosses process boundaries for free -- forked
service workers and ``repro serve`` subprocesses inherit the schedule.

Syntax::

    REPRO_FAULTS="site:kind[:after_n[:attempt]][,site:kind...]"

* ``site`` -- one of :data:`SITES` (or any string; unknown sites simply
  never fire, which lets schedules target sites added later).
* ``kind`` -- ``raise`` (raise :class:`InjectedFault`), ``crash``
  (``os._exit`` in a forked worker, degrade to ``raise`` inline), or
  ``corrupt`` (returned to the site, which scribbles over the artifact
  it was about to read/write).
* ``after_n`` -- fire on the ``after_n``-th pass through the site,
  counting from 0 (default 0: the first pass).
* ``attempt`` -- only fire on this job attempt (default 1, so retries
  recover; ``*`` fires on every attempt).

Determinism: site counters are plain per-process integers and every
execution path through the stack is deterministic in the spec, so a
schedule fires at exactly the same point on every run --
the property the bit-identical crash/resume tests are built on.
:meth:`FaultPlan.seeded` derives ``after_n`` from an integer seed for
property-style chaos tests that want *arbitrary but reproducible*
injection points.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import config
from .errors import RESILIENCE_COUNTERS, InjectedFault

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "SITES",
    "KINDS",
    "active",
    "install",
    "uninstall",
    "hit",
    "trigger",
    "set_in_child",
    "set_attempt",
    "fired_summary",
]

#: The named injection sites wired through the stack (documentation /
#: ``repro chaos --list-sites``; unknown sites are legal and inert).
SITES = (
    "native.load",       # compiled LRU kernel build/load
    "tune_cache.read",   # autotuner disk cache lookup
    "tune_cache.write",  # autotuner disk cache store
    "registry.read",     # plan-registry file lookup
    "registry.write",    # plan-registry file store
    "store.read",        # result-store file lookup
    "store.write",       # result-store file store
    "checkpoint.write",  # solver checkpoint snapshot
    "checkpoint.read",   # solver checkpoint resume
    "solver.sweep",      # each THIIM convergence-check block (scalar + batched)
    "tile.execute",      # each wavefront-diamond tile
    "job.run",           # top of run_job (any worker, incl. batch jobs)
    "cluster.rank",      # each rank's sweep block ("cluster.rank.N" targets rank N)
    "http.request",      # top of every HTTP handler
    "fleet.replicate",   # gateway push of a result to the ring's replica
    "fleet.lease",       # node heartbeat lease-file write
)

KINDS = ("raise", "crash", "corrupt")

#: Exit code of an injected worker crash (distinct from the legacy 42 of
#: ``crash_once`` so post-mortems can tell the two apart).
CRASH_EXIT_CODE = 43


@dataclass
class FaultSpec:
    """One scheduled fault: fire ``kind`` at pass ``after_n`` through
    ``site``, on job attempt ``attempt`` (None = every attempt)."""

    site: str
    kind: str
    after_n: int = 0
    attempt: Optional[int] = 1

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = text.strip().split(":")
        if len(parts) < 2 or len(parts) > 4 or not parts[0]:
            raise ValueError(
                f"bad fault spec {text!r}, expected site:kind[:after_n[:attempt]]"
            )
        site, kind = parts[0], parts[1]
        if kind not in KINDS:
            raise ValueError(f"bad fault kind {kind!r}, expected one of {KINDS}")
        after_n = int(parts[2]) if len(parts) > 2 and parts[2] else 0
        if after_n < 0:
            raise ValueError("after_n must be >= 0")
        attempt: Optional[int] = 1
        if len(parts) > 3 and parts[3]:
            attempt = None if parts[3] == "*" else int(parts[3])
        return cls(site=site, kind=kind, after_n=after_n, attempt=attempt)

    def describe(self) -> str:
        att = "*" if self.attempt is None else str(self.attempt)
        return f"{self.site}:{self.kind}:{self.after_n}:{att}"


class FaultPlan:
    """A parsed schedule plus its per-site pass counters."""

    def __init__(self, specs: List[FaultSpec]):
        self.specs = specs
        self._counts: Dict[str, int] = {}
        self._fired: List[str] = []
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = [FaultSpec.parse(p) for p in text.split(",") if p.strip()]
        return cls(specs)

    @classmethod
    def seeded(cls, seed: int, site: str, kind: str, max_after: int,
               attempt: Optional[int] = 1) -> "FaultPlan":
        """A single-fault plan whose injection point is derived
        deterministically from ``seed`` (uniform in ``[0, max_after)``)."""
        import random

        after_n = random.Random(seed).randrange(max(max_after, 1))
        return cls([FaultSpec(site=site, kind=kind, after_n=after_n,
                              attempt=attempt)])

    def env_value(self) -> str:
        """Serialize back to ``REPRO_FAULTS`` syntax (crosses forks and
        subprocess boundaries)."""
        return ",".join(s.describe() for s in self.specs)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def fired(self) -> List[str]:
        with self._lock:
            return list(self._fired)

    def hit(self, site: str) -> Optional[str]:
        """Count one pass through ``site``; fire any due fault.

        ``raise``/``crash`` kinds are applied here; other kinds
        (``corrupt``) are returned for the site to apply to the artifact
        it owns.  Returns ``None`` when nothing fired.
        """
        due: Optional[FaultSpec] = None
        with self._lock:
            n = self._counts.get(site, 0)
            self._counts[site] = n + 1
            for spec in self.specs:
                if (spec.site == site and spec.after_n == n
                        and (spec.attempt is None or spec.attempt == _ATTEMPT.n)):
                    due = spec
                    self._fired.append(spec.describe())
                    break
        if due is None:
            return None
        RESILIENCE_COUNTERS.bump("faults_fired")
        return trigger(site, due.kind, reason=f"pass {due.after_n}")


# -- process-global plan -------------------------------------------------------

_INSTALLED: Optional[FaultPlan] = None
_ENV_PLAN: Optional[FaultPlan] = None
_ENV_SRC: Optional[str] = None
_IN_CHILD = False


class _Attempt(threading.local):
    n = 1


_ATTEMPT = _Attempt()


def install(plan: FaultPlan) -> FaultPlan:
    """Pin a plan programmatically (overrides ``REPRO_FAULTS``)."""
    global _INSTALLED
    _INSTALLED = plan
    return plan


def uninstall() -> None:
    global _INSTALLED, _ENV_PLAN, _ENV_SRC
    _INSTALLED = None
    _ENV_PLAN = None
    _ENV_SRC = None


def active() -> Optional[FaultPlan]:
    """The live plan: the installed one, else ``REPRO_FAULTS`` (re-parsed
    whenever the variable changes, with fresh counters)."""
    global _ENV_PLAN, _ENV_SRC
    if _INSTALLED is not None:
        return _INSTALLED
    src = config.faults_schedule()
    if src != _ENV_SRC:
        _ENV_SRC = src
        _ENV_PLAN = FaultPlan.parse(src) if src else None
    return _ENV_PLAN


def hit(site: str) -> Optional[str]:
    """Pass through a named site (near-free when no plan is active)."""
    plan = active()
    if plan is None:
        return None
    return plan.hit(site)


def set_in_child(value: bool = True) -> None:
    """Mark this process as a forked worker: ``crash`` kinds really
    ``os._exit`` instead of degrading to an exception."""
    global _IN_CHILD
    _IN_CHILD = value


def set_attempt(n: int) -> None:
    """Record the current job attempt (thread-local) for attempt-scoped
    fault specs."""
    _ATTEMPT.n = n


def trigger(site: str, kind: str, reason: str = "",
            in_child: Optional[bool] = None) -> Optional[str]:
    """Apply a fault action -- the one mechanism behind scheduled faults
    *and* the legacy JobSpec ``fault`` flags.

    ``raise`` raises :class:`InjectedFault`; ``crash`` kills a forked
    worker outright (no cleanup, no spool file -- indistinguishable from
    SIGKILL) and degrades to ``raise`` inline; anything else is returned
    for the call site to apply.
    """
    suffix = f" ({reason})" if reason else ""
    if kind == "crash":
        if _IN_CHILD if in_child is None else in_child:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedFault(f"injected crash at {site}{suffix} (inline worker)",
                            site=site)
    if kind == "raise":
        raise InjectedFault(f"injected failure at {site}{suffix}", site=site)
    return kind


def fired_summary() -> Dict[str, object]:
    """What the active plan has done so far (``GET /metrics``)."""
    plan = active()
    if plan is None:
        return {"active": False, "specs": [], "fired": []}
    return {"active": True,
            "specs": [s.describe() for s in plan.specs],
            "fired": plan.fired()}
