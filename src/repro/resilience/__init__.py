"""Resilience layer: checkpoint/restart, fault injection, degradation.

Long THIIM campaigns treat restartability and tolerance of partial
failure as prerequisites for production use; this package is where that
lives, in three cooperating pieces:

``errors``
    The typed failure taxonomy (:class:`SolverDiverged`,
    :class:`CorruptArtifact`, :class:`EngineUnavailable`,
    :class:`CheckpointMismatch`, ...) with HTTP status and retryability
    semantics, plus the process-global degradation counters.
``faults``
    The deterministic fault-injection registry: ``REPRO_FAULTS=
    "site:kind[:after_n[:attempt]]"`` schedules crashes, exceptions and
    artifact corruption at named sites across the stack -- the one
    seedable mechanism behind chaos tests, ``repro chaos`` and the CI
    chaos smoke.
``checkpoint``
    Atomic, token-guarded snapshots of solver loop state with
    bit-identical resume.
"""

from .checkpoint import Checkpoint, CheckpointManager, latest_lag_s, solver_token
from .errors import (
    RESILIENCE_COUNTERS,
    CheckpointMismatch,
    CorruptArtifact,
    EngineUnavailable,
    InjectedFault,
    ReproError,
    SolverDiverged,
    error_from_kind,
)
from .faults import FaultPlan, FaultSpec

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "CheckpointMismatch",
    "CorruptArtifact",
    "EngineUnavailable",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RESILIENCE_COUNTERS",
    "ReproError",
    "SolverDiverged",
    "error_from_kind",
    "latest_lag_s",
    "solver_token",
]
