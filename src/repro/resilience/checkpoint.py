"""Checkpoint/restart for THIIM solves.

A checkpoint is a bit-exact snapshot of a solve's loop state at a
convergence-check boundary: the twelve complex128 field arrays, the
sweep counter, the residual history, and any driver extras (the tiled
driver's step/LUP/job counters).  Because the THIIM sweep sequence is
deterministic, restoring that state and continuing the loop produces
**bit-identical** final fields, observables and counters versus an
uninterrupted run -- the contract the chaos tests assert.

Snapshots are single ``.npz`` files written atomically (serialized to
memory, then published with tempfile + ``os.replace`` via
:mod:`repro.ioutil`), so a crash *during* a checkpoint write leaves the
previous checkpoint intact.  Each checkpoint embeds a ``token`` -- the
caller's content hash of the scene/plan (for service jobs, derived from
the coefficient arrays and solve cadence) -- and a resume refuses (or
quarantines, in lenient mode) any snapshot whose token does not match:
resuming someone else's state would silently compute the wrong answer
(:class:`~repro.resilience.errors.CheckpointMismatch`).

Cadence and location come from ``REPRO_CHECKPOINT_EVERY`` /
``REPRO_CHECKPOINT_DIR`` (see :mod:`repro.config`); the solvers accept a
:class:`CheckpointManager` and call :meth:`~CheckpointManager.due` /
:meth:`~CheckpointManager.save` at check boundaries, so checkpointing
costs nothing when disabled.
"""

from __future__ import annotations

import hashlib
import io as _stdio
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..ioutil import atomic_write_bytes, corrupt_file, quarantine
from . import faults
from .errors import RESILIENCE_COUNTERS, CheckpointMismatch, InjectedFault

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointManager",
    "solver_token",
    "batched_solver_token",
    "latest_lag_s",
    "note_report",
    "take_report",
]

CHECKPOINT_VERSION = 1

_PREFIX = "ckpt-"


@dataclass
class Checkpoint:
    """One restored snapshot (arrays still keyed by component name)."""

    arrays: Dict[str, np.ndarray]
    steps: int
    history: List[float]
    token: str
    extras: Dict[str, int] = field(default_factory=dict)


class _Report(threading.local):
    """Per-thread record of the last solve's checkpoint activity, so the
    scheduler can surface resume provenance without polluting the
    bit-identical result payload."""

    value: Optional[dict] = None


_REPORT = _Report()


def take_report() -> Optional[dict]:
    """Pop the calling thread's last checkpoint report (path, saves,
    resumed_from)."""
    value = _REPORT.value
    _REPORT.value = None
    return value


def note_report(path: str, saves: int, resumed_from: Optional[int]) -> None:
    """Set the calling thread's checkpoint report directly -- used by
    drivers (the distributed runtime) whose checkpoint activity happens
    in rank processes, out of reach of a local manager's bookkeeping."""
    _REPORT.value = {"path": path, "saves": saves,
                     "resumed_from": resumed_from}


def solver_token(solver, **cadence) -> str:
    """Content hash of what a solve computes: every coefficient array,
    the grid geometry, omega/tau, plus the loop cadence (check interval
    or chunk size -- a checkpoint is only valid at its own boundaries)."""
    h = hashlib.sha256()
    grid = solver.grid
    h.update(json.dumps(
        {"version": CHECKPOINT_VERSION, "shape": list(grid.shape),
         "spacing": list(grid.spacing), "periodic": list(grid.periodic),
         "omega": solver.omega, "tau": solver.tau,
         "cadence": dict(sorted(cadence.items()))},
        sort_keys=True).encode())
    coeffs = solver.coefficients
    for name in sorted(coeffs.arrays):
        h.update(name.encode())
        h.update(np.ascontiguousarray(coeffs.arrays[name]).tobytes())
    if coeffs.back_mask is not None:
        h.update(np.ascontiguousarray(coeffs.back_mask).tobytes())
    return h.hexdigest()[:32]


def batched_solver_token(batched, **cadence) -> str:
    """Token of a *batched* solve: the batch width plus every lane's
    scalar token (in lane order).

    The width is part of the hash on purpose: a width-``k`` batch and a
    per-point solve of the same scene must never resume from each
    other's snapshots -- a batched snapshot carries ``(k,) + shape``
    arrays plus per-point loop state, so cross-resume would either crash
    or, worse, silently compute from foreign state.  Distinct tokens
    make such a resume a quarantine (or a :class:`CheckpointMismatch`
    in strict mode) instead.
    """
    h = hashlib.sha256()
    h.update(json.dumps(
        {"version": CHECKPOINT_VERSION, "batch": len(batched.lanes),
         "cadence": dict(sorted(cadence.items()))},
        sort_keys=True).encode())
    for lane in batched.lanes:
        h.update(solver_token(lane, **cadence).encode())
    return "b" + h.hexdigest()[:31]


class CheckpointManager:
    """Writes and restores the snapshots of one named solve.

    Parameters
    ----------
    directory:
        Where snapshots live (created on first save).
    name:
        Stable identity of the solve (the service uses the job id); the
        snapshot file is ``ckpt-<name>.npz``.
    token:
        Scene/plan content hash guarding against resuming foreign state.
    every:
        Sweep cadence: :meth:`due` is true once at least this many sweeps
        ran since the last save.
    strict:
        On a token mismatch, raise :class:`CheckpointMismatch` instead of
        quarantining the snapshot and restarting from sweep 0.
    """

    def __init__(self, directory: str, name: str, token: str,
                 every: int = 100, strict: bool = False):
        if every < 1:
            raise ValueError("checkpoint cadence must be >= 1 sweep")
        self.directory = directory
        self.name = name
        self.token = token
        self.every = every
        self.strict = strict
        self.path = os.path.join(directory, f"{_PREFIX}{name}.npz")
        self.saves = 0
        self.last_saved_steps: Optional[int] = None
        self.resumed_from: Optional[int] = None

    # -- cadence ---------------------------------------------------------------

    def due(self, steps: int) -> bool:
        anchor = self.last_saved_steps
        if anchor is None:
            anchor = self.resumed_from or 0
        return steps - anchor >= self.every

    # -- save ------------------------------------------------------------------

    def save(self, fields, steps: int, history: List[float],
             extras: Optional[Dict[str, int]] = None) -> Optional[str]:
        """Snapshot the loop state; best-effort (an unwritable checkpoint
        degrades the resilience, never the solve)."""
        from .. import telemetry
        from ..core import tracing

        try:
            kind = faults.hit("checkpoint.write")
        except InjectedFault:
            RESILIENCE_COUNTERS.bump("checkpoint_write_errors")
            return None
        meta = {"version": CHECKPOINT_VERSION, "token": self.token,
                "name": self.name, "extras": extras or {}}
        try:
            with tracing.span(f"checkpoint {self.name[:12]}@{steps}",
                              "resilience",
                              args=telemetry.span_args({"steps": steps})) as sp:
                buf = _stdio.BytesIO()
                np.savez(
                    buf,
                    **{n: fields[n] for n in fields},
                    _shape=np.array(fields.grid.shape, dtype=np.int64),
                    _spacing=np.array(fields.grid.spacing, dtype=np.float64),
                    _periodic=np.array(fields.grid.periodic, dtype=np.bool_),
                    _steps=np.array(steps, dtype=np.int64),
                    _history=np.array(history, dtype=np.float64),
                    _meta=np.array(json.dumps(meta, sort_keys=True)),
                )
                data = buf.getvalue()
                atomic_write_bytes(self.path, data)
                sp.set(bytes=len(data))
        except OSError:
            RESILIENCE_COUNTERS.bump("checkpoint_write_errors")
            return None
        if kind == "corrupt":
            corrupt_file(self.path)
        self.saves += 1
        self.last_saved_steps = steps
        RESILIENCE_COUNTERS.bump("checkpoints_written")
        if telemetry.enabled():
            telemetry.checkpoint_writes().inc()
            telemetry.publish("checkpoint", sweeps=steps, saves=self.saves,
                              bytes=len(data))
        self._publish()
        return self.path

    # -- load / resume ---------------------------------------------------------

    def load(self) -> Optional[Checkpoint]:
        """Read the snapshot; corrupt or mismatched files are quarantined
        (or raised in strict mode) and read as a miss."""
        if not os.path.exists(self.path):
            return None
        kind = faults.hit("checkpoint.read")
        if kind == "corrupt":
            corrupt_file(self.path)
        try:
            with np.load(self.path) as data:
                meta = json.loads(str(data["_meta"]))
                if meta.get("version") != CHECKPOINT_VERSION:
                    raise ValueError("checkpoint version mismatch")
                token = meta.get("token")
                steps = int(data["_steps"])
                history = [float(v) for v in data["_history"]]
                arrays = {
                    k: np.ascontiguousarray(data[k])
                    for k in data.files
                    if not k.startswith("_")
                }
        except CheckpointMismatch:
            raise
        except Exception:  # malformed zip/json/fields: quarantine, miss
            quarantine(self.path)
            return None
        if token != self.token:
            if self.strict:
                raise CheckpointMismatch(
                    f"checkpoint {os.path.basename(self.path)} was written "
                    f"for a different scene/plan",
                    expected=self.token, found=token)
            quarantine(self.path)
            return None
        return Checkpoint(arrays=arrays, steps=steps, history=history,
                          token=token, extras=meta.get("extras") or {})

    def resume(self, fields) -> Optional[Checkpoint]:
        """Restore a snapshot into ``fields`` in place; returns it (or
        ``None`` to start from sweep 0)."""
        from .. import telemetry
        from ..core import tracing

        ckpt = self.load()
        if ckpt is None:
            self._publish()
            return None
        for name in fields:
            if name not in ckpt.arrays:
                quarantine(self.path)
                self._publish()
                return None
            fields[name] = ckpt.arrays[name]
        self.resumed_from = ckpt.steps
        RESILIENCE_COUNTERS.bump("checkpoints_resumed")
        if telemetry.enabled():
            telemetry.checkpoint_resumes().inc()
            telemetry.publish("checkpoint", resumed_from=ckpt.steps)
        rec = tracing.active()
        if rec is not None:
            rec.instant("checkpoint.resume", "resilience",
                        args=telemetry.span_args(
                            {"name": self.name[:12], "steps": ckpt.steps}))
        self._publish()
        return ckpt

    # -- bookkeeping -----------------------------------------------------------

    def _publish(self) -> None:
        _REPORT.value = {"path": self.path, "saves": self.saves,
                         "resumed_from": self.resumed_from}

    def clear(self) -> None:
        """Drop the snapshot (called after the result is safely stored)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


def latest_lag_s(directory: Optional[str]) -> Optional[float]:
    """Seconds since the newest checkpoint in ``directory`` was written
    (``None`` when there is no directory or no checkpoint) -- the
    ``checkpoint_lag_s`` field of ``GET /healthz``."""
    import time

    if not directory or not os.path.isdir(directory):
        return None
    newest: Optional[float] = None
    try:
        for fname in os.listdir(directory):
            if fname.startswith(_PREFIX) and fname.endswith(".npz"):
                try:
                    mtime = os.path.getmtime(os.path.join(directory, fname))
                except OSError:
                    continue
                if newest is None or mtime > newest:
                    newest = mtime
    except OSError:
        return None
    return None if newest is None else max(time.time() - newest, 0.0)
