"""repro -- reproduction of "Optimization of an Electromagnetics Code with
Multicore Wavefront Diamond Blocking and Multi-dimensional Intra-Tile
Parallelization" (Malas et al., IPDPS 2016).

Subpackages
-----------
``repro.fdfd``
    The THIIM/FDFD Maxwell solver substrate (the paper's production
    workload): Yee grid, twelve split-field components, split-field PML,
    materials, solar-cell geometry, sources, observables.
``repro.core``
    The paper's contribution: multicore wavefront diamond (MWD) temporal
    blocking -- diamond tiling, wavefront extrusion, dependency-checked
    tiled execution, thread groups with multi-dimensional intra-tile
    parallelization, FIFO dynamic scheduling, analytic cache/traffic
    models and the auto-tuner.
``repro.machine``
    Simulated multicore machine (the hardware substitution documented in
    DESIGN.md): machine specs, LRU shared-cache simulation, LIKWID-style
    performance counters and a discrete-event execution simulator.
``repro.experiments``
    Regeneration of every table and figure of the paper's evaluation.
"""

from . import fdfd

__version__ = "1.0.0"

__all__ = ["fdfd", "__version__"]


def __getattr__(name):
    # Lazy subpackage access: ``repro.core`` / ``repro.machine`` /
    # ``repro.experiments`` / ``repro.cluster`` / ``repro.io`` import on
    # first touch (keeps ``import repro`` light for solver-only users).
    if name in ("core", "machine", "experiments", "cluster", "io", "cli",
                "service", "config", "ioutil", "telemetry"):
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
