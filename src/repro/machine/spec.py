"""Machine specifications for the simulated multicore substrate.

The paper's testbed is an 18-core Intel Xeon E5-2699 v3 (Haswell EP):
2.3 GHz nominal, 45 MiB shared L3, ~50 GB/s applicable memory bandwidth,
Cluster-on-Die off, Turbo off, no SMT (Section IV-A).  :data:`HASWELL_EP`
encodes it; the ablation benchmarks derive lower-machine-balance variants
(the "more memory bandwidth-starved systems" the paper argues MWD is
immune to) via :meth:`MachineSpec.with_bandwidth`.

The in-core throughput parameters are *calibrated*, not measured: see
:mod:`repro.machine.calibration` for the provenance of each constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "HASWELL_EP"]


@dataclass(frozen=True)
class MachineSpec:
    """A single-socket multicore machine model.

    Parameters
    ----------
    name:
        Label used in reports.
    cores:
        Physical cores (= usable threads; the paper disables SMT).
    clock_ghz:
        Nominal core clock.
    l3_bytes:
        Shared last-level cache capacity.
    bandwidth_gbs:
        Applicable (saturated) memory bandwidth of the socket, GB/s.
    core_bandwidth_gbs:
        Memory bandwidth a *single* core can draw (Haswell cores cannot
        individually saturate the socket; this is why spatial blocking
        needs ~6 cores to hit the roofline in Fig. 6).
    usable_cache_fraction:
        The paper's rule of thumb: only about half the L3 is usable for
        tile data (associativity conflicts, other data, pseudo-LRU).  The
        cache simulator uses this as its effective capacity and the
        auto-tuner as its pruning budget.
    t_lup_core_ns:
        Pure in-core execution time of one lattice-site update (all 12
        component updates) per thread, with all operands in cache.
    tiled_overhead:
        Multiplier >= 1 on the in-core time for temporally blocked
        traversals (ragged loop bounds, queue operations, extra index
        arithmetic).
    sync_ns:
        Cost of one intra-tile synchronization point (per level per front
        per thread group), and of one FIFO queue operation.
    """

    name: str
    cores: int
    clock_ghz: float
    l3_bytes: int
    bandwidth_gbs: float
    core_bandwidth_gbs: float = 18.0
    usable_cache_fraction: float = 0.5
    t_lup_core_ns: float = 80.0
    tiled_overhead: float = 1.12
    sync_ns: float = 150.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.clock_ghz <= 0 or self.bandwidth_gbs <= 0 or self.core_bandwidth_gbs <= 0:
            raise ValueError("clock and bandwidths must be positive")
        if self.l3_bytes <= 0:
            raise ValueError("l3_bytes must be positive")
        if not (0 < self.usable_cache_fraction <= 1):
            raise ValueError("usable_cache_fraction must be in (0, 1]")
        if self.t_lup_core_ns <= 0:
            raise ValueError("t_lup_core_ns must be positive")
        if self.tiled_overhead < 1:
            raise ValueError("tiled_overhead must be >= 1")
        if self.sync_ns < 0:
            raise ValueError("sync_ns must be >= 0")

    @property
    def usable_l3_bytes(self) -> float:
        """Effective cache capacity for tile data (22.5 MiB on Haswell)."""
        return self.l3_bytes * self.usable_cache_fraction

    @property
    def peak_gflops(self) -> float:
        """Peak DP rate assuming 16 flops/cycle/core (2x FMA AVX2)."""
        return self.cores * self.clock_ghz * 16.0

    def machine_balance(self, flops_per_lup: int = 248) -> float:
        """Bytes/flop the memory system can feed at peak compute."""
        return self.bandwidth_gbs / self.peak_gflops

    def with_bandwidth(self, bandwidth_gbs: float) -> "MachineSpec":
        """A bandwidth-starved variant (for the machine-balance ablation)."""
        return replace(
            self,
            name=f"{self.name}@{bandwidth_gbs:g}GB/s",
            bandwidth_gbs=bandwidth_gbs,
            core_bandwidth_gbs=min(self.core_bandwidth_gbs, bandwidth_gbs),
        )

    def with_cores(self, cores: int) -> "MachineSpec":
        return replace(self, name=f"{self.name}x{cores}", cores=cores)


#: The paper's testbed (Section IV-A).
HASWELL_EP = MachineSpec(
    name="Xeon E5-2699 v3 (Haswell EP)",
    cores=18,
    clock_ghz=2.3,
    l3_bytes=45 * 2**20,
    bandwidth_gbs=50.0,
)
