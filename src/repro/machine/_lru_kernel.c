/* Batched LRU replay kernel (ctypes; no CPython API).
 *
 * Exact counterpart of repro.machine.cache.LRUCache.access / BatchLRU.replay:
 * a capacity-managed LRU over variable-size chunks, write-allocate without
 * read-for-ownership, write-backs charged on dirty eviction.  The chunk key
 * space of one emitter is dense and small (n_groups * ny * nz), so the cache
 * is direct-mapped over preallocated arrays -- per key: flags (bit0 present,
 * bit1 dirty), byte size, and intrusive doubly-linked recency list (prev
 * toward LRU, next toward MRU).  One call replays the whole packed segment
 * table of a row job.
 *
 * Built on demand by repro.machine.native (cc -O2 -shared -fPIC); if that
 * fails, the pure-Python BatchLRU engine is used instead.
 */

#include <stdint.h>

typedef struct {
    double capacity;
    int64_t used;
    int64_t mru;
    int64_t lru;
    int64_t count;
    int64_t read_hits;
    int64_t read_misses;
    int64_t write_hits;
    int64_t write_misses;
    int64_t writebacks;
    int64_t mem_read_bytes;
    int64_t mem_write_bytes;
} LruState;

/* Replay a *job table*: job j spans segments [job_lo[j], job_hi[j]) of the
 * shared segment table, translated by job_base[j].  One call per batch of
 * jobs keeps the whole hot loop in C (the memoized segment table is built
 * once per shape class and referenced by every congruent job). */
int64_t lru_replay_jobs(LruState *st,
                        int64_t *next, int64_t *prev, int64_t *size, uint8_t *flags,
                        const int64_t *rel, const int64_t *seg_start,
                        const int64_t *seg_base, const int64_t *seg_size,
                        const uint8_t *seg_write,
                        const int64_t *job_lo, const int64_t *job_hi,
                        const int64_t *job_base, int64_t n_jobs)
{
    int64_t mru = st->mru, lru = st->lru, used = st->used, count = st->count;
    const double cap = st->capacity;
    int64_t rh = 0, rm = 0, wh = 0, wm = 0, wb = 0, mrb = 0, mwb = 0;
    int64_t n = 0;

    for (int64_t jj = 0; jj < n_jobs; jj++) {
    const int64_t base = job_base[jj];
    for (int64_t s = job_lo[jj]; s < job_hi[jj]; s++) {
        const int64_t b = seg_base[s] + base;
        const int64_t sz = seg_size[s];
        const int write = seg_write[s];
        const int64_t i0 = seg_start[s], i1 = seg_start[s + 1];
        n += i1 - i0;
        for (int64_t i = i0; i < i1; i++) {
            const int64_t k = rel[i] + b;
            const uint8_t f = flags[k];
            if (f & 1) {
                /* hit: refresh recency (unlink + relink at MRU) */
                if (k != mru) {
                    const int64_t p = prev[k], q = next[k];
                    if (p != -1) next[p] = q; else lru = q;
                    prev[q] = p; /* q != -1 because k != mru */
                    prev[k] = mru;
                    next[k] = -1;
                    next[mru] = k;
                    mru = k;
                }
                if (write) {
                    flags[k] = 3;
                    wh++;
                } else {
                    rh++;
                }
            } else {
                /* miss: install at MRU, then evict while over capacity */
                if (write) {
                    flags[k] = 3;
                    wm++;
                } else {
                    flags[k] = 1;
                    rm++;
                    mrb += sz;
                }
                size[k] = sz;
                prev[k] = mru;
                next[k] = -1;
                if (mru != -1) next[mru] = k; else lru = k;
                mru = k;
                used += sz;
                count++;
                while ((double)used > cap) {
                    const int64_t e = lru;
                    const int64_t q = next[e];
                    lru = q;
                    if (q != -1) prev[q] = -1; else mru = -1;
                    used -= size[e];
                    count--;
                    if (flags[e] & 2) {
                        wb++;
                        mwb += size[e];
                    }
                    flags[e] = 0;
                }
            }
        }
    }
    }

    st->mru = mru;
    st->lru = lru;
    st->used = used;
    st->count = count;
    st->read_hits += rh;
    st->read_misses += rm;
    st->write_hits += wh;
    st->write_misses += wm;
    st->writebacks += wb;
    st->mem_read_bytes += mrb;
    st->mem_write_bytes += mwb;
    return n;
}

/* Single-job convenience entry point: segments [0, n_seg) at one base. */
int64_t lru_replay(LruState *st,
                   int64_t *next, int64_t *prev, int64_t *size, uint8_t *flags,
                   const int64_t *rel, const int64_t *seg_start,
                   const int64_t *seg_base, const int64_t *seg_size,
                   const uint8_t *seg_write,
                   int64_t n_seg, int64_t base)
{
    const int64_t lo = 0;
    return lru_replay_jobs(st, next, prev, size, flags,
                           rel, seg_start, seg_base, seg_size, seg_write,
                           &lo, &n_seg, &base, 1);
}
