"""Lightweight performance counters for the machine substrate itself.

The simulated machine *produces* performance numbers; this module counts
the cost of producing them: how many chunk accesses were replayed through
the LRU model, how often the stream-signature memoization hit, and how
much wall-clock the replay consumed.  The substrate speed benchmark
(``benchmarks/bench_substrate_speed.py``) and ``repro bench`` surface
these so perf regressions in the substrate are visible as data, not
anecdotes.

Counting is deliberately coarse (one increment per *job*, never per
access) so the counters themselves stay out of the hot loop.

Multiprocessing: each ``REPRO_TUNE_WORKERS`` fork-pool worker counts in
its own copy-on-write copy of :data:`SUBSTRATE_COUNTERS`; the autotuner
ships per-candidate snapshots back with the results and folds them into
the parent with :meth:`SubstrateCounters.merge`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["SubstrateCounters", "SUBSTRATE_COUNTERS", "timed_section"]

#: Integer counter fields summed by :meth:`SubstrateCounters.merge`.
_COUNTER_FIELDS = (
    "jobs_replayed",
    "accesses_replayed",
    "stream_memo_hits",
    "stream_memo_misses",
)


@dataclass
class SubstrateCounters:
    """Aggregate telemetry of the stream/replay substrate."""

    #: RowJob / component-row batches replayed through a batched engine.
    jobs_replayed: int = 0
    #: Individual chunk accesses those batches expanded to.
    accesses_replayed: int = 0
    #: Stream-signature memo hits (a congruent job reused a packed stream).
    stream_memo_hits: int = 0
    #: Stream-signature memo misses (a packed stream had to be generated).
    stream_memo_misses: int = 0
    #: Wall-clock seconds spent inside named sections (see timed_section).
    section_seconds: dict = field(default_factory=dict)
    #: Open nesting depth per section name (bookkeeping for re-entrant
    #: timed_section; never serialized).
    _section_depth: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def stream_memo_rate(self) -> float:
        n = self.stream_memo_hits + self.stream_memo_misses
        return self.stream_memo_hits / n if n else 0.0

    def snapshot(self) -> dict:
        d = {f: getattr(self, f) for f in _COUNTER_FIELDS}
        d["section_seconds"] = dict(self.section_seconds)
        d["stream_memo_rate"] = round(self.stream_memo_rate, 4)
        return d

    def sections_by_time(self) -> list:
        """``(name, seconds)`` pairs, most expensive first."""
        return sorted(self.section_seconds.items(), key=lambda kv: -kv[1])

    def merge(self, other: "SubstrateCounters | Mapping") -> None:
        """Fold another counter set (or a :meth:`snapshot` dict) into this
        one -- how fork-pool workers' telemetry reaches the parent."""
        d = other.snapshot() if isinstance(other, SubstrateCounters) else other
        for f in _COUNTER_FIELDS:
            setattr(self, f, getattr(self, f) + int(d.get(f, 0)))
        for name, secs in (d.get("section_seconds") or {}).items():
            self.section_seconds[name] = self.section_seconds.get(name, 0.0) + secs

    def reset(self) -> None:
        for f in _COUNTER_FIELDS:
            setattr(self, f, 0)
        self.section_seconds = {}
        self._section_depth = {}


#: Process-global counters (the substrate is single-threaded per process;
#: multiprocessing tuner workers each count in their own copy and are
#: merged back by the autotuner).
SUBSTRATE_COUNTERS = SubstrateCounters()


@contextmanager
def timed_section(name: str, counters: SubstrateCounters = SUBSTRATE_COUNTERS):
    """Accumulate the wall-clock of a code section under ``name``.

    Re-entrant: when sections of the same name nest (recursive callers,
    a measurement inside a tuner sweep), only the outermost frame
    accumulates, so nested use never double-counts.  Exception-safe: the
    time up to the raise is still recorded on unwind.
    """
    depth = counters._section_depth
    depth[name] = depth.get(name, 0) + 1
    t0 = time.perf_counter()
    try:
        yield
    finally:
        remaining = depth.get(name, 1) - 1
        if remaining > 0:
            depth[name] = remaining
        else:
            depth.pop(name, None)
            counters.section_seconds[name] = (
                counters.section_seconds.get(name, 0.0) + time.perf_counter() - t0
            )
