"""Lightweight performance counters for the machine substrate itself.

The simulated machine *produces* performance numbers; this module counts
the cost of producing them: how many chunk accesses were replayed through
the LRU model, how often the stream-signature memoization hit, and how
much wall-clock the replay consumed.  The substrate speed benchmark
(``benchmarks/bench_substrate_speed.py``) and ``repro bench`` surface
these so perf regressions in the substrate are visible as data, not
anecdotes.

Counting is deliberately coarse (one increment per *job*, never per
access) so the counters themselves stay out of the hot loop.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

__all__ = ["SubstrateCounters", "SUBSTRATE_COUNTERS", "timed_section"]


@dataclass
class SubstrateCounters:
    """Aggregate telemetry of the stream/replay substrate."""

    #: RowJob / component-row batches replayed through a batched engine.
    jobs_replayed: int = 0
    #: Individual chunk accesses those batches expanded to.
    accesses_replayed: int = 0
    #: Stream-signature memo hits (a congruent job reused a packed stream).
    stream_memo_hits: int = 0
    #: Stream-signature memo misses (a packed stream had to be generated).
    stream_memo_misses: int = 0
    #: Wall-clock seconds spent inside named sections (see timed_section).
    section_seconds: dict = field(default_factory=dict)

    @property
    def stream_memo_rate(self) -> float:
        n = self.stream_memo_hits + self.stream_memo_misses
        return self.stream_memo_hits / n if n else 0.0

    def snapshot(self) -> dict:
        d = asdict(self)
        d["stream_memo_rate"] = round(self.stream_memo_rate, 4)
        return d

    def reset(self) -> None:
        self.jobs_replayed = 0
        self.accesses_replayed = 0
        self.stream_memo_hits = 0
        self.stream_memo_misses = 0
        self.section_seconds = {}


#: Process-global counters (the substrate is single-threaded per process;
#: multiprocessing tuner workers each count in their own copy).
SUBSTRATE_COUNTERS = SubstrateCounters()


@contextmanager
def timed_section(name: str, counters: SubstrateCounters = SUBSTRATE_COUNTERS):
    """Accumulate the wall-clock of a code section under ``name``."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        counters.section_seconds[name] = (
            counters.section_seconds.get(name, 0.0) + time.perf_counter() - t0
        )
