"""Native (ctypes) LRU replay engine with transparent fallback.

Loads the tight C loop of ``_lru_kernel.c`` (compiled on first use with
the system C compiler into ``_build/`` next to this module) and wraps it
in :class:`NativeLRU`, an engine with the same replay interface and
byte-identical :class:`~repro.machine.cache.CacheStats` accounting as the
pure-Python :class:`~repro.machine.cache.BatchLRU` -- which remains the
fallback whenever no compiler is available, the build fails, or the
emitter's key space is too large for direct mapping.

Selection is automatic (:func:`make_lru`); set ``REPRO_NO_NATIVE=1`` to
force the pure-Python engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
from typing import List, Sequence, Tuple

import numpy as np

from .. import config
from ..resilience import faults
from ..resilience.errors import RESILIENCE_COUNTERS, EngineUnavailable
from .cache import BatchLRU, CacheStats

__all__ = ["NativeLRU", "make_lru", "native_available"]

#: Direct mapping allocates a few small arrays per key; cap the key space
#: so degenerate emitter domains cannot balloon memory (64M keys ~ 1.6 GB
#: would; this cap keeps it under ~200 MB).
MAX_KEY_SPACE = 8 * 1024 * 1024

_SRC = os.path.join(os.path.dirname(__file__), "_lru_kernel.c")
_LIB = None
_LIB_TRIED = False


class _LruState(ctypes.Structure):
    _fields_ = [
        ("capacity", ctypes.c_double),
        ("used", ctypes.c_int64),
        ("mru", ctypes.c_int64),
        ("lru", ctypes.c_int64),
        ("count", ctypes.c_int64),
        ("read_hits", ctypes.c_int64),
        ("read_misses", ctypes.c_int64),
        ("write_hits", ctypes.c_int64),
        ("write_misses", ctypes.c_int64),
        ("writebacks", ctypes.c_int64),
        ("mem_read_bytes", ctypes.c_int64),
        ("mem_write_bytes", ctypes.c_int64),
    ]


def _build_library():
    """Compile (once) and load the kernel; returns the CDLL or None."""
    with open(_SRC, "rb") as f:
        src = f.read()
    tag = hashlib.sha1(src).hexdigest()[:12]
    build_dir = config.native_build_dir(
        os.path.join(os.path.dirname(_SRC), "_build")
    )
    so_path = os.path.join(build_dir, f"_lru_kernel-{tag}.so")
    if not os.path.exists(so_path):
        os.makedirs(build_dir, exist_ok=True)
        cc = os.environ.get("CC", "cc")
        tmp = so_path + f".tmp{os.getpid()}"
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, _SRC],
            check=True,
            capture_output=True,
        )
        os.replace(tmp, so_path)  # atomic vs concurrent builders
    lib = ctypes.CDLL(so_path)
    p64 = ctypes.POINTER(ctypes.c_int64)
    pu8 = ctypes.POINTER(ctypes.c_uint8)
    lib.lru_replay.restype = ctypes.c_int64
    lib.lru_replay.argtypes = [
        ctypes.POINTER(_LruState),
        p64, p64, p64, pu8,  # next, prev, size, flags
        p64, p64, p64, p64, pu8,  # rel, seg_start, seg_base, seg_size, seg_write
        ctypes.c_int64, ctypes.c_int64,  # n_seg, base
    ]
    lib.lru_replay_jobs.restype = ctypes.c_int64
    lib.lru_replay_jobs.argtypes = [
        ctypes.POINTER(_LruState),
        p64, p64, p64, pu8,  # next, prev, size, flags
        p64, p64, p64, p64, pu8,  # rel, seg_start, seg_base, seg_size, seg_write
        p64, p64, p64,  # job_lo, job_hi, job_base
        ctypes.c_int64,  # n_jobs
    ]
    return lib


def _get_library():
    global _LIB, _LIB_TRIED
    if not _LIB_TRIED:
        _LIB_TRIED = True
        if not config.native_disabled():
            try:
                faults.hit("native.load")
                _LIB = _build_library()
            except Exception:  # no compiler, read-only tree, ... -> fallback
                _LIB = None
                # First link of the degradation chain: native -> batched
                # pure python.  Counted (and surfaced via /metrics) so a
                # silently slow deployment is diagnosable.
                RESILIENCE_COUNTERS.bump("native_degraded")
    return _LIB


def native_available() -> bool:
    """Whether the compiled replay kernel can be used on this machine."""
    return _get_library() is not None


def _as_i64(x) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.int64)


class NativeLRU:
    """Direct-mapped exact-LRU replay engine backed by the C kernel.

    Keys must lie in ``[0, key_space)`` -- emitter chunk keys are dense by
    construction (``(gid * ny + y) * nz + z``), which is what makes direct
    mapping possible.  Interface and accounting match :class:`BatchLRU`.
    """

    def __init__(self, capacity_bytes: float, key_space: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        lib = _get_library()
        if lib is None:
            raise EngineUnavailable(
                "native LRU kernel unavailable "
                "(no compiler, build failure, or REPRO_NO_NATIVE)")
        self._lib = lib
        self.capacity_bytes = float(capacity_bytes)
        self.key_space = int(key_space)
        self._next = np.full(key_space, -1, dtype=np.int64)
        self._prev = np.full(key_space, -1, dtype=np.int64)
        self._size = np.zeros(key_space, dtype=np.int64)
        self._flags = np.zeros(key_space, dtype=np.uint8)
        self._st = _LruState()
        self._st.capacity = self.capacity_bytes
        self._st.mru = -1
        self._st.lru = -1
        p64 = ctypes.POINTER(ctypes.c_int64)
        pu8 = ctypes.POINTER(ctypes.c_uint8)
        self._ptrs = (
            self._next.ctypes.data_as(p64),
            self._prev.ctypes.data_as(p64),
            self._size.ctypes.data_as(p64),
            self._flags.ctypes.data_as(pu8),
        )
        self._st_ref = ctypes.byref(self._st)
        # Growable shared segment table (see table_add / replay_jobs).
        self._tab_rel: List[np.ndarray] = []
        self._tab_base: List[int] = []
        self._tab_size: List[int] = []
        self._tab_write: List[int] = []
        self._tab_nseg = 0
        self._tab_ptrs = None

    # -- properties ---------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        st = self._st
        return CacheStats(
            read_hits=st.read_hits,
            read_misses=st.read_misses,
            write_hits=st.write_hits,
            write_misses=st.write_misses,
            writebacks=st.writebacks,
            mem_read_bytes=st.mem_read_bytes,
            mem_write_bytes=st.mem_write_bytes,
        )

    @property
    def used_bytes(self) -> int:
        return int(self._st.used)

    def __len__(self) -> int:
        return int(self._st.count)

    def __contains__(self, key: int) -> bool:
        return 0 <= key < self.key_space and bool(self._flags[key] & 1)

    def keys_lru_to_mru(self) -> List[int]:
        """Resident keys in recency order (diagnostics / tests)."""
        out: List[int] = []
        k = int(self._st.lru)
        while k != -1:
            out.append(k)
            k = int(self._next[k])
        return out

    # -- the hot path -------------------------------------------------------

    def prepare(self, segments: Sequence[Tuple[int, int, bool, Sequence[int]]]):
        """Pack generic ``(prebase, size, write, rel_keys)`` segments into
        the flat arrays one kernel call consumes."""
        n_seg = len(segments)
        seg_start = np.zeros(n_seg + 1, dtype=np.int64)
        seg_base = np.zeros(n_seg, dtype=np.int64)
        seg_size = np.zeros(n_seg, dtype=np.int64)
        seg_write = np.zeros(n_seg, dtype=np.uint8)
        rels = []
        for s, (prebase, size, write, rel) in enumerate(segments):
            seg_base[s] = prebase
            seg_size[s] = size
            seg_write[s] = 1 if write else 0
            rels.append(_as_i64(rel))
            seg_start[s + 1] = seg_start[s] + len(rels[-1])
        rel = np.concatenate(rels) if rels else np.zeros(0, dtype=np.int64)
        p64 = ctypes.POINTER(ctypes.c_int64)
        pu8 = ctypes.POINTER(ctypes.c_uint8)
        # Keep the arrays alive alongside the raw pointers the call uses.
        return (
            rel, seg_start, seg_base, seg_size, seg_write,
            rel.ctypes.data_as(p64), seg_start.ctypes.data_as(p64),
            seg_base.ctypes.data_as(p64), seg_size.ctypes.data_as(p64),
            seg_write.ctypes.data_as(pu8), n_seg,
        )

    def replay(self, prepared, base: int = 0) -> int:
        """Replay a prepared segment table at an absolute base offset."""
        if isinstance(prepared, (list, tuple)) and (
            not prepared or isinstance(prepared[0], tuple)
        ):
            prepared = self.prepare(prepared)
        (_, _, _, _, _, rel_p, start_p, base_p, size_p, write_p, n_seg) = prepared
        nxt, prv, siz, flg = self._ptrs
        return int(
            self._lib.lru_replay(
                ctypes.byref(self._st), nxt, prv, siz, flg,
                rel_p, start_p, base_p, size_p, write_p, n_seg, base,
            )
        )

    def access(self, key: int, size: int, write: bool) -> bool:
        """Single-access compatibility shim (not the hot path)."""
        hit = key in self
        self.replay([(0, size, write, [key])])
        return hit

    # -- shared segment table + job batching --------------------------------

    def table_add(self, segments: Sequence[Tuple[int, int, bool, Sequence[int]]]):
        """Append segments to the shared table; returns ``(lo, hi, n)`` --
        the segment index range and the total accesses it covers.  Jobs of
        the same shape class all reference one such range (translated per
        job by their base), so the table grows only per *distinct* shape."""
        lo = self._tab_nseg
        n = 0
        for prebase, size, write, rel in segments:
            a = _as_i64(rel)
            self._tab_rel.append(a)
            self._tab_base.append(prebase)
            self._tab_size.append(size)
            self._tab_write.append(1 if write else 0)
            n += len(a)
        self._tab_nseg += len(segments)
        self._tab_ptrs = None  # re-materialize on next replay
        return lo, self._tab_nseg, n

    def _table_arrays(self):
        if self._tab_ptrs is None:
            nseg = self._tab_nseg
            rel = (
                np.concatenate(self._tab_rel)
                if self._tab_rel
                else np.zeros(0, dtype=np.int64)
            )
            seg_start = np.zeros(nseg + 1, dtype=np.int64)
            np.cumsum([len(a) for a in self._tab_rel], out=seg_start[1:])
            seg_base = np.asarray(self._tab_base, dtype=np.int64)
            seg_size = np.asarray(self._tab_size, dtype=np.int64)
            seg_write = np.asarray(self._tab_write, dtype=np.uint8)
            p64 = ctypes.POINTER(ctypes.c_int64)
            pu8 = ctypes.POINTER(ctypes.c_uint8)
            self._tab_ptrs = (
                rel, seg_start, seg_base, seg_size, seg_write,
                rel.ctypes.data_as(p64), seg_start.ctypes.data_as(p64),
                seg_base.ctypes.data_as(p64), seg_size.ctypes.data_as(p64),
                seg_write.ctypes.data_as(pu8),
            )
        return self._tab_ptrs

    def replay_jobs(self, job_lo, job_hi, job_base) -> int:
        """Replay a batch of jobs -- table ranges ``[lo, hi)`` translated
        by per-job bases -- in one kernel call."""
        tab = self._table_arrays()
        jl = _as_i64(job_lo)
        jh = _as_i64(job_hi)
        jb = _as_i64(job_base)
        p64 = ctypes.POINTER(ctypes.c_int64)
        nxt, prv, siz, flg = self._ptrs
        return int(
            self._lib.lru_replay_jobs(
                self._st_ref, nxt, prv, siz, flg,
                tab[5], tab[6], tab[7], tab[8], tab[9],
                jl.ctypes.data_as(p64), jh.ctypes.data_as(p64),
                jb.ctypes.data_as(p64), len(jl),
            )
        )

    # -- management ---------------------------------------------------------

    def flush(self) -> None:
        """Write back all dirty chunks and empty the cache."""
        dirty = self._flags == 3
        st = self._st
        st.writebacks += int(np.count_nonzero(dirty))
        st.mem_write_bytes += int(self._size[dirty].sum())
        self._flags[:] = 0
        self._next[:] = -1
        self._prev[:] = -1
        st.used = 0
        st.count = 0
        st.mru = -1
        st.lru = -1

    def reset_stats(self) -> CacheStats:
        """Return current stats and start a fresh counter epoch (cache
        contents are kept -- used to discard warm-up traffic)."""
        old = self.stats
        st = self._st
        st.read_hits = st.read_misses = st.write_hits = st.write_misses = 0
        st.writebacks = st.mem_read_bytes = st.mem_write_bytes = 0
        return old


def make_lru(capacity_bytes: float, key_space: int):
    """The fastest available exact-LRU engine for a dense key space."""
    if native_available() and key_space <= MAX_KEY_SPACE:
        return NativeLRU(capacity_bytes, key_space)
    return BatchLRU(capacity_bytes)
